//! Sharded multi-engine scale-out: N shard-local [`FlowEngine`]s
//! behind one hash-partition router, with scatter-gather batch
//! analytics whose merged results are **bit-identical** for every
//! shard count — now self-healing under shard failure.
//!
//! This is the flow-level half of the sharded architecture; update
//! routing and the partition itself live in `ga_stream::sharded`
//! ([`ShardPlan`]). The division of labor per concern:
//!
//! * **Ingest** — [`ShardedFlow::process_batch`] routes each update to
//!   its endpoints' owner shards. A cross-shard edge is delivered to
//!   both owners; the second delivery materializes a *ghost* (halo)
//!   entry and is priced at [`UPDATE_WIRE_BYTES`] in the cross-shard
//!   traffic model.
//! * **Batch analytics** — scatter-gather: each shard computes a
//!   partial over the vertices it owns ([`ga_kernels::scatter`]), the
//!   router merges. PageRank keeps every floating-point reduction in
//!   global vertex order (mirroring `pagerank_with`'s determinism
//!   argument), BFS exchanges integer frontiers level-synchronously,
//!   and components union shard-local spanning forests through a
//!   min-id-normalizing union-find — so each merged answer is
//!   bit-identical to the unsharded kernel on the merged graph.
//! * **Durability** — each shard owns its WAL + checkpoint directory
//!   (`base/shard-00`, `base/shard-01`, …), so recovery is
//!   shard-local and a shard's recovery failure names the shard (its
//!   errors are prefixed `[shard-NN]` via
//!   [`FlowEngine::recover_labeled`]).
//! * **Replication** — with [`ShardedConfig::replicate`], every
//!   delivery to a shard is mirrored to that shard's ring successor
//!   (K=2 chain replication over the same router). The successor of
//!   `owner(v)` therefore receives *every* update that touches `v`'s
//!   row, making replica rows slot-exact copies of owner rows. The
//!   mirror copies are priced at [`UPDATE_WIRE_BYTES`] under
//!   [`CrossShardTraffic::replication_bytes`].
//! * **Health supervision** — a [`ShardSupervisor`] classifies each
//!   shard's delivery/checkpoint errors into a health state machine
//!   (Healthy → Suspect → Dead → Rebuilding → Healthy). A shard dies
//!   after [`DEFAULT_SUSPECT_STRIKES`] consecutive failures (or an
//!   injected/announced crash); a success while Suspect heals it.
//!   Every transition is journaled through the router recorder.
//! * **Failover** — while a shard is down, merged views and
//!   scatter-gather analytics serve that shard's vertices from the
//!   ring-successor replica: values stay exact, and results carry a
//!   typed [`Completion::Degraded`] instead of panicking or silently
//!   dropping rows. Without replication the down shard's rows are
//!   simply missing — still `Degraded`, with the gap reported in
//!   [`ShardedRun::uncovered`].
//! * **Online rebuild** — [`ShardedFlow::rebuild_shard`] restores a
//!   dead shard while the fleet keeps ingesting: durable fleets
//!   recover checkpoint + WAL and then redeliver the backlog queued
//!   while the shard was down; replicated fleets reconstruct the
//!   shard's rows exactly from its ring neighbors. No acknowledged
//!   update is lost in either mode ([`ShardedFlow::lost_updates`]
//!   counts the only loss channel: a dead shard on a fleet with
//!   neither durability nor replication).
//! * **Observability** — one labeled [`Recorder`] per shard plus a
//!   `"router"` recorder that books cross-shard network bytes and
//!   journals Failover/Rebuild events, so a merged metrics export
//!   stays attributable per shard.
//!
//! The paper's scale-out argument (§V: network injection bandwidth
//! bounds sharded graph analytics long before per-node compute does)
//! is what the traffic model makes measurable: see `bench_shard` for
//! the scaling curve and `bench_failover` for recovery time and the
//! degraded window under the shard fault matrix.

use crate::faults::{check, with_scope};
use crate::flow::{FlowEngine, FlowStats};
use ga_graph::{DynamicGraph, EdgeRecord, PropertyStore, Timestamp, VertexId};
use ga_kernels::cc::Components;
use ga_kernels::pagerank::PageRankResult;
use ga_kernels::scatter::{
    bfs_owned_expand, cc_local_forest, cc_merge_forests, owned_in_adjacency, pagerank_owned_sweep,
};
use ga_kernels::{Completion, UNREACHED};
use ga_obs::{MetricsSnapshot, Recorder, Step};
use ga_stream::engine::QuarantinedUpdate;
use ga_stream::sharded::{ShardPlan, UPDATE_WIRE_BYTES};
use ga_stream::update::UpdateBatch;
use ga_stream::{Query, QueryResponse, SnapshotHandle};
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Bytes per exchanged PageRank rank value (one `f64`).
const RANK_WIRE_BYTES: u64 = 8;
/// Bytes per exchanged BFS frontier candidate (one `u32` vertex id).
const FRONTIER_WIRE_BYTES: u64 = 4;
/// Bytes per exchanged components forest pair (two `u32` vertex ids).
const FOREST_PAIR_WIRE_BYTES: u64 = 8;

/// Consecutive delivery/checkpoint failures before the supervisor
/// declares a shard Dead (the Suspect → Dead edge). One failure marks
/// the shard Suspect; a success while Suspect heals it back.
pub const DEFAULT_SUSPECT_STRIKES: u32 = 3;

/// Cap on retained [`HealthEvent`]s; the oldest are dropped beyond it.
const HEALTH_EVENT_CAP: usize = 1024;

/// A shard's durability directory under `base`.
pub fn shard_dir(base: &Path, shard: usize) -> PathBuf {
    base.join(shard_label(shard))
}

/// The canonical shard label (`"shard-03"`), used for durability
/// subdirectories, recorder labels, scoped fault sites, and error
/// prefixes alike.
pub fn shard_label(shard: usize) -> String {
    format!("shard-{shard:02}")
}

/// Cross-shard network bytes, per protocol, under the wire model the
/// module docs describe. All zero in a 1-shard deployment — traffic
/// only counts bytes that actually cross a shard boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrossShardTraffic {
    /// Ghost (second-copy) update deliveries during ingest.
    pub ingest_bytes: u64,
    /// Replica (ring-successor) update deliveries during ingest; zero
    /// unless the fleet was built with [`ShardedConfig::replicate`].
    pub replication_bytes: u64,
    /// Rank values pulled from non-owner shards, summed over PageRank
    /// iterations.
    pub pagerank_bytes: u64,
    /// Frontier candidates handed to a different owner shard during
    /// BFS level exchanges.
    pub bfs_bytes: u64,
    /// Spanning-forest pairs shipped to the router for the components
    /// merge.
    pub components_bytes: u64,
}

impl CrossShardTraffic {
    /// Total cross-shard bytes across all protocols.
    pub fn total(&self) -> u64 {
        self.ingest_bytes
            + self.replication_bytes
            + self.pagerank_bytes
            + self.bfs_bytes
            + self.components_bytes
    }
}

/// Health of one shard, as judged by the [`ShardSupervisor`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Healthy,
    /// At least one recent failure; still serving, one success heals.
    Suspect,
    /// Crashed or struck out; not serving, awaiting rebuild.
    Dead,
    /// A rebuild is in flight; not serving yet.
    Rebuilding,
}

impl ShardHealth {
    /// Lower-case display name (`"healthy"`, `"suspect"`, …).
    pub fn name(self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Suspect => "suspect",
            ShardHealth::Dead => "dead",
            ShardHealth::Rebuilding => "rebuilding",
        }
    }

    /// Whether a shard in this state serves reads and accepts
    /// deliveries (Healthy or Suspect).
    pub fn is_serving(self) -> bool {
        matches!(self, ShardHealth::Healthy | ShardHealth::Suspect)
    }
}

/// One health transition, recorded by the supervisor and journaled
/// through the router recorder.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthEvent {
    /// Fleet clock (last routed batch time) when the transition fired.
    pub time: Timestamp,
    /// The shard that changed state.
    pub shard: usize,
    /// State before.
    pub from: ShardHealth,
    /// State after.
    pub to: ShardHealth,
    /// Why (the classified error, or the administrative action).
    pub reason: String,
}

/// Per-shard health state machine: Healthy → Suspect → Dead →
/// Rebuilding → Healthy, driven by classified delivery and checkpoint
/// errors. See [`DEFAULT_SUSPECT_STRIKES`] for the death threshold.
#[derive(Clone, Debug)]
pub struct ShardSupervisor {
    health: Vec<ShardHealth>,
    strikes: Vec<u32>,
    suspect_strikes: u32,
    events: VecDeque<HealthEvent>,
}

impl ShardSupervisor {
    /// A supervisor over `num_shards` initially-healthy shards that
    /// declares death after `suspect_strikes` consecutive failures
    /// (clamped to at least 1).
    pub fn new(num_shards: usize, suspect_strikes: u32) -> ShardSupervisor {
        ShardSupervisor {
            health: vec![ShardHealth::Healthy; num_shards],
            strikes: vec![0; num_shards],
            suspect_strikes: suspect_strikes.max(1),
            events: VecDeque::new(),
        }
    }

    /// Current health of `shard`.
    pub fn health(&self, shard: usize) -> ShardHealth {
        self.health[shard]
    }

    /// Whether `shard` currently serves reads and deliveries.
    pub fn is_serving(&self, shard: usize) -> bool {
        self.health[shard].is_serving()
    }

    /// Whether every shard is Healthy.
    pub fn all_healthy(&self) -> bool {
        self.health.iter().all(|&h| h == ShardHealth::Healthy)
    }

    /// Shards currently Dead or Rebuilding.
    pub fn down_shards(&self) -> Vec<usize> {
        (0..self.health.len())
            .filter(|&i| !self.health[i].is_serving())
            .collect()
    }

    /// Consecutive-failure strikes currently held against `shard`.
    pub fn strikes(&self, shard: usize) -> u32 {
        self.strikes[shard]
    }

    /// The death threshold in force.
    pub fn suspect_strikes(&self) -> u32 {
        self.suspect_strikes
    }

    /// Transitions recorded so far (oldest first, capped at 1024;
    /// oldest entries are dropped past the cap).
    pub fn events(&self) -> &VecDeque<HealthEvent> {
        &self.events
    }

    /// Drain the recorded transitions.
    pub fn take_events(&mut self) -> Vec<HealthEvent> {
        std::mem::take(&mut self.events).into()
    }

    fn transition(
        &mut self,
        time: Timestamp,
        shard: usize,
        to: ShardHealth,
        reason: &str,
    ) -> Option<(ShardHealth, ShardHealth)> {
        let from = self.health[shard];
        if from == to {
            return None;
        }
        self.health[shard] = to;
        if self.events.len() == HEALTH_EVENT_CAP {
            self.events.pop_front();
        }
        self.events.push_back(HealthEvent {
            time,
            shard,
            from,
            to,
            reason: reason.to_string(),
        });
        Some((from, to))
    }

    /// Classify one failure against `shard`: Healthy/Suspect shards
    /// take a strike and become Suspect, then Dead at the threshold.
    /// Errors against Dead/Rebuilding shards are not strikes (the
    /// shard is already down). Returns the transition, if any.
    pub fn record_error(
        &mut self,
        time: Timestamp,
        shard: usize,
        reason: &str,
    ) -> Option<(ShardHealth, ShardHealth)> {
        if !self.health[shard].is_serving() {
            return None;
        }
        self.strikes[shard] += 1;
        let to = if self.strikes[shard] >= self.suspect_strikes {
            ShardHealth::Dead
        } else {
            ShardHealth::Suspect
        };
        self.transition(time, shard, to, reason)
    }

    /// Record one success: clears strikes and heals a Suspect shard.
    pub fn record_success(
        &mut self,
        time: Timestamp,
        shard: usize,
    ) -> Option<(ShardHealth, ShardHealth)> {
        if !self.health[shard].is_serving() {
            return None;
        }
        self.strikes[shard] = 0;
        self.transition(time, shard, ShardHealth::Healthy, "recovered")
    }

    /// Declare `shard` Dead unconditionally (crash announcement or
    /// administrative kill).
    pub fn mark_dead(
        &mut self,
        time: Timestamp,
        shard: usize,
        reason: &str,
    ) -> Option<(ShardHealth, ShardHealth)> {
        self.transition(time, shard, ShardHealth::Dead, reason)
    }

    /// Dead → Rebuilding. No-op unless the shard is Dead.
    pub fn begin_rebuild(
        &mut self,
        time: Timestamp,
        shard: usize,
    ) -> Option<(ShardHealth, ShardHealth)> {
        if self.health[shard] != ShardHealth::Dead {
            return None;
        }
        self.transition(time, shard, ShardHealth::Rebuilding, "rebuild started")
    }

    /// Rebuilding → Healthy; clears strikes.
    pub fn complete_rebuild(
        &mut self,
        time: Timestamp,
        shard: usize,
    ) -> Option<(ShardHealth, ShardHealth)> {
        if self.health[shard] != ShardHealth::Rebuilding {
            return None;
        }
        self.strikes[shard] = 0;
        self.transition(time, shard, ShardHealth::Healthy, "rebuild complete")
    }
}

/// Where [`ShardedFlow::rebuild_shard`] sourced the restored state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildSource {
    /// Checkpoint + WAL replay from the shard's durability directory,
    /// followed by redelivery of the backlog queued while dead.
    WalReplay,
    /// Exact row/property reconstruction from the ring neighbors'
    /// replica state (non-durable replicated fleets).
    Replica,
}

impl RebuildSource {
    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            RebuildSource::WalReplay => "wal-replay",
            RebuildSource::Replica => "replica-copy",
        }
    }
}

/// Outcome of one [`ShardedFlow::rebuild_shard`] call.
#[derive(Clone, Debug)]
pub struct RebuildReport {
    /// The rebuilt shard.
    pub shard: usize,
    /// Where the state came from.
    pub source: RebuildSource,
    /// Backlog batches redelivered after recovery (WAL mode only).
    pub redelivered_batches: usize,
    /// Updates inside those batches.
    pub redelivered_updates: usize,
    /// Wall-clock rebuild time in milliseconds.
    pub millis: f64,
}

/// Outcome of one fleet-wide [`ShardedFlow::checkpoint`] sweep.
/// Partial failure is a first-class, per-shard signal: a caller that
/// prunes old checkpoints after a sweep must consult [`Self::failed`]
/// (and [`Self::skipped`]) before discarding what may be a failed
/// shard's only good recovery source.
#[derive(Clone, Debug)]
pub struct CheckpointReport {
    /// `(shard id, checkpoint path)` per shard that checkpointed.
    pub paths: Vec<(usize, PathBuf)>,
    /// `(shard id, error)` per serving shard whose checkpoint failed;
    /// each failure was absorbed as a health strike.
    pub failed: Vec<(usize, String)>,
    /// Shards skipped because they were not serving (Dead/Rebuilding).
    pub skipped: Vec<usize>,
}

impl CheckpointReport {
    /// True when every shard in the fleet wrote a fresh checkpoint.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty() && self.skipped.is_empty()
    }
}

/// A scatter-gather result plus the fleet-coverage verdict it was
/// computed under. `completion` is [`Completion::Complete`] only when
/// every shard was serving; otherwise [`Completion::Degraded`], with
/// the gap itemized: `failed_over` shards were served exactly from
/// their ring-successor replicas, `uncovered` shards had no serving
/// copy at all (their rows were absent from the computation).
#[derive(Clone, Debug)]
pub struct ShardedRun<T> {
    /// The merged analytic result.
    pub value: T,
    /// [`Completion::Complete`] or [`Completion::Degraded`].
    pub completion: Completion,
    /// Down shards whose rows were served from replicas (exact).
    pub failed_over: Vec<usize>,
    /// Down shards with no serving copy (partial result).
    pub uncovered: Vec<usize>,
}

/// Builder for a [`ShardedFlow`]. Mirrors the knobs of
/// [`crate::flow::FlowConfig`] that make sense across a fleet of
/// engines, plus the fleet-only replication and health knobs.
#[derive(Debug)]
pub struct ShardedConfig {
    num_shards: usize,
    symmetrize: bool,
    vertex_limit: Option<usize>,
    durability_base: Option<PathBuf>,
    record_metrics: bool,
    replicate: bool,
    suspect_strikes: u32,
    tier: Option<ga_graph::tier::TierConfig>,
}

/// Derive shard `i`'s tier config from the fleet template: same knobs,
/// shard-private segment directory (`base/shard-0i`).
fn shard_tier_config(t: &ga_graph::tier::TierConfig, shard: usize) -> ga_graph::tier::TierConfig {
    let mut cfg = t.clone();
    cfg.dir = t.dir.join(shard_label(shard));
    cfg
}

impl ShardedConfig {
    /// A config for `num_shards` shards (must be ≥ 1). Defaults match
    /// `FlowConfig`: symmetrize on, no durability, metrics off,
    /// replication off, death after [`DEFAULT_SUSPECT_STRIKES`]
    /// consecutive failures.
    pub fn new(num_shards: usize) -> ShardedConfig {
        ShardedConfig {
            num_shards,
            symmetrize: true,
            vertex_limit: None,
            durability_base: None,
            record_metrics: false,
            replicate: false,
            suspect_strikes: DEFAULT_SUSPECT_STRIKES,
            tier: None,
        }
    }

    /// Mirror edge updates in both directions on every shard (default
    /// true). Must be uniform across shards — a mixed fleet would break
    /// the owned-row invariant.
    pub fn symmetrize(mut self, symmetrize: bool) -> Self {
        self.symmetrize = symmetrize;
        self
    }

    /// Vertex-id quarantine bound applied to every shard.
    pub fn vertex_limit(mut self, limit: usize) -> Self {
        self.vertex_limit = Some(limit);
        self
    }

    /// Enable per-shard durability under `base`: shard `i` logs and
    /// checkpoints in `base/shard-0i`, so recovery stays shard-local.
    pub fn durability_base(mut self, base: impl Into<PathBuf>) -> Self {
        self.durability_base = Some(base.into());
        self
    }

    /// Attach labeled recorders: one per shard (`"shard-00"`, …) plus
    /// a `"router"` recorder for cross-shard traffic and the
    /// failover/rebuild journal.
    pub fn record_metrics(mut self, on: bool) -> Self {
        self.record_metrics = on;
        self
    }

    /// Mirror every delivery to the owner's ring successor (K=2 chain
    /// replication, default off). Replica rows are slot-exact copies
    /// of owner rows, so merged views and analytics can fail over to
    /// them when a shard dies; the mirror copies are priced under
    /// [`CrossShardTraffic::replication_bytes`]. A no-op with one
    /// shard.
    pub fn replicate(mut self, on: bool) -> Self {
        self.replicate = on;
        self
    }

    /// Consecutive failures before the supervisor declares a shard
    /// Dead (default [`DEFAULT_SUSPECT_STRIKES`]; clamped to ≥ 1).
    pub fn suspect_strikes(mut self, strikes: u32) -> Self {
        self.suspect_strikes = strikes.max(1);
        self
    }

    /// Give every shard a tiered segment store (see
    /// [`crate::flow::FlowConfig::tiered`]): shard `i` spills under
    /// `cfg.dir/shard-0i`, and its segment IO runs inside the shard's
    /// fault scope, so arming `shard-0i/segment.read` faults exactly
    /// one member's tier. [`ShardedFlow::scrub_tiers`] sweeps the
    /// fleet.
    pub fn tiered(mut self, cfg: ga_graph::tier::TierConfig) -> Self {
        self.tier = Some(cfg);
        self
    }

    /// Build the fleet over an empty global graph of `num_vertices`.
    pub fn build(self, num_vertices: usize) -> io::Result<ShardedFlow> {
        let plan = ShardPlan::new(self.num_shards);
        let mut shards = Vec::with_capacity(self.num_shards);
        for i in 0..self.num_shards {
            let label = shard_label(i);
            let mut cfg = FlowEngine::builder()
                .symmetrize(self.symmetrize)
                .shard_label(label.clone())
                // The supervisor owns shard-failure policy: it must
                // classify a shard Dead before the engine-level
                // breaker suspends durability underneath it.
                .breaker_threshold(self.suspect_strikes.saturating_add(1));
            if let Some(limit) = self.vertex_limit {
                cfg = cfg.vertex_limit(limit);
            }
            if self.record_metrics {
                cfg = cfg.recorder(Recorder::labeled(label));
            }
            if let Some(base) = &self.durability_base {
                cfg = cfg.durability_dir(shard_dir(base, i));
            }
            if let Some(t) = &self.tier {
                cfg = cfg.tiered(shard_tier_config(t, i));
            }
            shards.push(cfg.build(num_vertices)?);
        }
        Ok(self.assemble(plan, shards, self.symmetrize))
    }

    /// Recover the whole fleet from per-shard durability directories
    /// under `base` (see [`ShardedConfig::durability_base`]). Every
    /// shard recovers independently from `base/shard-0i`, and **all**
    /// failures are collected before reporting: one bad fleet restart
    /// names every corrupted shard (its `[shard-0i]` prefix and
    /// offending file path) in a single error instead of stopping at
    /// the first. The persisted state knobs (symmetrize, vertex
    /// limit) come from each shard's checkpoint.
    pub fn recover(mut self, base: impl AsRef<Path>) -> io::Result<ShardedFlow> {
        let base = base.as_ref();
        // Recovery implies durability: the recovered fleet keeps
        // logging under the same base, so assemble() must see it —
        // otherwise post-recovery ingest would silently bypass the WAL.
        self.durability_base = Some(base.to_path_buf());
        let plan = ShardPlan::new(self.num_shards);
        let mut shards = Vec::with_capacity(self.num_shards);
        let mut failures: Vec<String> = Vec::new();
        for i in 0..self.num_shards {
            let label = shard_label(i);
            let result = with_scope(&label, || {
                let mut cfg = FlowEngine::builder()
                    .shard_label(label.clone())
                    .breaker_threshold(self.suspect_strikes.saturating_add(1));
                if self.record_metrics {
                    cfg = cfg.recorder(Recorder::labeled(label.clone()));
                }
                if let Some(t) = &self.tier {
                    cfg = cfg.tiered(shard_tier_config(t, i));
                }
                cfg.recover(shard_dir(base, i))
            });
            match result {
                Ok(engine) => shards.push(engine),
                Err(e) => failures.push(e.to_string()),
            }
        }
        if !failures.is_empty() {
            return Err(io::Error::other(format!(
                "fleet recovery failed on {}/{} shards: {}",
                failures.len(),
                self.num_shards,
                failures.join("; ")
            )));
        }
        let symmetrize = shards.first().map(|s| s.symmetrize()).unwrap_or(true);
        Ok(self.assemble(plan, shards, symmetrize))
    }

    fn assemble(&self, plan: ShardPlan, shards: Vec<FlowEngine>, symmetrize: bool) -> ShardedFlow {
        let n = shards.len();
        ShardedFlow {
            plan,
            supervisor: ShardSupervisor::new(n, self.suspect_strikes),
            labels: (0..n).map(shard_label).collect(),
            pending: (0..n).map(|_| VecDeque::new()).collect(),
            shards,
            symmetrize,
            durable: self.durability_base.is_some(),
            replicate: self.replicate,
            vertex_limit: self.vertex_limit,
            record_metrics: self.record_metrics,
            suspect_strikes: self.suspect_strikes,
            base: self.durability_base.clone(),
            tier: self.tier.clone(),
            clock: 0,
            ghost_updates: 0,
            lost_updates: 0,
            dropped_deliveries: 0,
            traffic: CrossShardTraffic::default(),
            recorder: if self.record_metrics {
                Recorder::labeled("router")
            } else {
                Recorder::disabled()
            },
        }
    }
}

/// N shard-local [`FlowEngine`]s behind one hash-partition router.
/// See the module docs for the architecture and invariants.
pub struct ShardedFlow {
    plan: ShardPlan,
    shards: Vec<FlowEngine>,
    supervisor: ShardSupervisor,
    labels: Vec<String>,
    /// Per-shard redelivery queues: failed deliveries awaiting retry,
    /// dropped router deliveries, and (durable fleets) the backlog of
    /// a dead shard awaiting its rebuild.
    pending: Vec<VecDeque<UpdateBatch>>,
    symmetrize: bool,
    durable: bool,
    replicate: bool,
    vertex_limit: Option<usize>,
    record_metrics: bool,
    suspect_strikes: u32,
    base: Option<PathBuf>,
    /// Per-shard tier template (None = untiered fleet); reapplied when a
    /// dead shard is rebuilt so the rebuilt member spills again.
    tier: Option<ga_graph::tier::TierConfig>,
    /// Fleet clock: the time of the last routed batch, used to stamp
    /// health events and journal lines.
    clock: Timestamp,
    ghost_updates: u64,
    lost_updates: u64,
    dropped_deliveries: u64,
    traffic: CrossShardTraffic,
    recorder: Recorder,
}

impl ShardedFlow {
    /// Start a [`ShardedConfig`] builder.
    pub fn builder(num_shards: usize) -> ShardedConfig {
        ShardedConfig::new(num_shards)
    }

    /// The partition in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard-local engines (index = shard id). A dead shard's
    /// slot holds an empty placeholder engine until it is rebuilt.
    pub fn shards(&self) -> &[FlowEngine] {
        &self.shards
    }

    /// Mutable access to one shard's engine.
    pub fn shard_mut(&mut self, i: usize) -> &mut FlowEngine {
        &mut self.shards[i]
    }

    /// The health supervisor (per-shard state and transition log).
    pub fn supervisor(&self) -> &ShardSupervisor {
        &self.supervisor
    }

    /// Current health of shard `i`.
    pub fn health(&self, i: usize) -> ShardHealth {
        self.supervisor.health(i)
    }

    /// Drain the supervisor's recorded health transitions.
    pub fn take_health_events(&mut self) -> Vec<HealthEvent> {
        self.supervisor.take_events()
    }

    /// Whether deliveries are mirrored to ring-successor replicas.
    pub fn replicated(&self) -> bool {
        self.replicate
    }

    /// Ghost (second-copy) update deliveries so far.
    pub fn ghost_updates(&self) -> u64 {
        self.ghost_updates
    }

    /// Updates irrecoverably lost to dead shards. Stays zero whenever
    /// the fleet has durability (the backlog queues for redelivery)
    /// or replication (the replica already holds a copy).
    pub fn lost_updates(&self) -> u64 {
        self.lost_updates
    }

    /// Router deliveries dropped by an injected `route.drop` fault and
    /// queued for redelivery.
    pub fn dropped_deliveries(&self) -> u64 {
        self.dropped_deliveries
    }

    /// Per-shard redelivery backlog lengths (index = shard id).
    pub fn pending_backlog(&self) -> Vec<usize> {
        self.pending.iter().map(|q| q.len()).collect()
    }

    /// Cross-shard bytes per protocol so far.
    pub fn traffic(&self) -> CrossShardTraffic {
        self.traffic
    }

    /// Global vertex width: the widest shard graph (shards grow
    /// independently as updates arrive, so widths can differ).
    pub fn global_width(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.graph().num_vertices())
            .max()
            .unwrap_or(0)
    }

    /// [`Completion::Complete`] when every shard is serving, else
    /// [`Completion::Degraded`].
    pub fn fleet_completion(&self) -> Completion {
        if (0..self.shards.len()).all(|i| self.supervisor.is_serving(i)) {
            Completion::Complete
        } else {
            Completion::Degraded
        }
    }

    /// Down shards currently served exactly from their ring-successor
    /// replica, and down shards with no serving copy at all.
    pub fn coverage(&self) -> (Vec<usize>, Vec<usize>) {
        let n = self.shards.len();
        let mut failed_over = Vec::new();
        let mut uncovered = Vec::new();
        for i in 0..n {
            if self.supervisor.is_serving(i) {
                continue;
            }
            let succ = self.plan.successor(i);
            if self.replicate && succ != i && self.supervisor.is_serving(succ) {
                failed_over.push(i);
            } else {
                uncovered.push(i);
            }
        }
        (failed_over, uncovered)
    }

    /// The shard that serves vertex `v`'s row right now: the owner
    /// when it is alive, else (replicated fleets) the ring successor,
    /// else `None` — the row is unreachable until a rebuild.
    pub fn row_source(&self, v: VertexId) -> Option<usize> {
        let owner = self.plan.owner(v);
        if self.supervisor.is_serving(owner) {
            return Some(owner);
        }
        if self.replicate {
            let succ = self.plan.successor(owner);
            if succ != owner && self.supervisor.is_serving(succ) {
                return Some(succ);
            }
        }
        None
    }

    fn serve_map(&self, n: usize) -> Vec<Option<usize>> {
        (0..n as VertexId).map(|v| self.row_source(v)).collect()
    }

    fn journal_transition(
        &self,
        shard: usize,
        tr: Option<(ShardHealth, ShardHealth)>,
        reason: &str,
    ) {
        let Some((from, to)) = tr else { return };
        let category: &'static str = if to == ShardHealth::Dead {
            "failover"
        } else if to == ShardHealth::Rebuilding || from == ShardHealth::Rebuilding {
            "rebuild"
        } else {
            "health"
        };
        self.recorder.journal(
            self.clock,
            category,
            format!(
                "{}: {} -> {} ({reason})",
                shard_label(shard),
                from.name(),
                to.name()
            ),
        );
    }

    /// Replace a dead shard's engine with an empty placeholder. The
    /// in-memory state is gone (that is what "dead" means); on-disk
    /// durability state survives for [`ShardedFlow::rebuild_shard`].
    fn decommission(&mut self, i: usize) {
        self.shards[i] = FlowEngine::new(0);
    }

    /// Declare shard `i` dead (crash announcement or administrative
    /// kill): its in-memory state is discarded, reads fail over to the
    /// replica (when available), and deliveries queue (durable) or
    /// rely on the replica copy until [`ShardedFlow::rebuild_shard`].
    pub fn kill_shard(&mut self, i: usize, reason: &str) {
        if self.supervisor.health(i) == ShardHealth::Dead {
            return;
        }
        let tr = self.supervisor.mark_dead(self.clock, i, reason);
        self.journal_transition(i, tr, reason);
        self.decommission(i);
    }

    /// Route one batch to every shard and apply it (durably when the
    /// fleet was built with a durability base). Every shard sees a
    /// batch with the same `time`, so watermarks advance uniformly.
    ///
    /// Shard failures are absorbed, not propagated: a failed delivery
    /// stays queued for redelivery and takes a health strike against
    /// the shard (see [`ShardSupervisor`]); deliveries to a dead shard
    /// queue for its rebuild (durable fleets) or rely on the replica
    /// copy (replicated fleets). Returns the total updates quarantined
    /// across shards.
    pub fn process_batch(&mut self, batch: &UpdateBatch) -> io::Result<usize> {
        self.clock = batch.time;
        let (sub, ghosts, replicas) = self.plan.route_batch_replicated(batch, self.replicate);
        self.ghost_updates += ghosts;
        let ghost_bytes = ghosts * UPDATE_WIRE_BYTES;
        let replica_bytes = replicas * UPDATE_WIRE_BYTES;
        self.traffic.ingest_bytes += ghost_bytes;
        self.traffic.replication_bytes += replica_bytes;
        self.recorder
            .span(Step::Ingest)
            .add_net_bytes(ghost_bytes + replica_bytes);
        let mut quarantined = 0;
        for (i, b) in sub.into_iter().enumerate() {
            quarantined += self.offer_shard(i, b);
        }
        Ok(quarantined)
    }

    /// Hand one routed sub-batch to shard `i`, honoring its health and
    /// the injected crash/drop sites. Returns updates quarantined.
    fn offer_shard(&mut self, i: usize, b: UpdateBatch) -> usize {
        // In-band crash announcement: the shard process dies the
        // moment this delivery reaches it. A Dead/Rebuilding shard
        // takes no delivery, so the site is not evaluated then — an
        // armed FailOnce crash stays armed for the rebuilt shard
        // instead of being consumed by a no-op kill.
        if self.supervisor.is_serving(i) && check(&format!("{}/crash", self.labels[i])).is_err() {
            self.kill_shard(i, "injected crash");
        }
        if !self.supervisor.is_serving(i) {
            if self.durable {
                // The rebuild will recover the WAL and then drain this
                // backlog, so nothing is lost.
                self.pending[i].push_back(b);
            } else if !self.replicate {
                // No durability, no replica: this is the one genuine
                // loss channel, and it is counted.
                self.lost_updates += b.updates.len() as u64;
            }
            // Replicated fleets drop the copy: the ring successor
            // received its own delivery of every update in `b` that
            // shard `i` will need, and the rebuild copies it back.
            return 0;
        }
        // Router delivery drop (reliable-delivery model: the router
        // notices the lost delivery and requeues it).
        if check(&format!("{}/route.drop", self.labels[i])).is_err() {
            self.dropped_deliveries += 1;
            self.recorder.journal(
                self.clock,
                "route",
                format!(
                    "{}: delivery dropped, queued for redelivery",
                    self.labels[i]
                ),
            );
            self.pending[i].push_back(b);
            return 0;
        }
        self.pending[i].push_back(b);
        self.drain_pending(i)
    }

    /// Deliver shard `i`'s queued sub-batches in order, stopping at
    /// the first failure (which takes a strike and leaves the batch
    /// queued for the next attempt). Returns updates quarantined.
    fn drain_pending(&mut self, i: usize) -> usize {
        let mut quarantined = 0;
        while let Some(batch) = self.pending[i].pop_front() {
            let before = self.shards[i].stats().ingest.updates_quarantined;
            let durable = self.durable;
            let label = &self.labels[i];
            let engine = &mut self.shards[i];
            let result = with_scope(label, || {
                if durable {
                    engine
                        .process_stream_durable(&batch, |_| None, None)
                        .map(|_| ())
                } else {
                    engine.process_stream(&batch, |_| None, None);
                    Ok(())
                }
            });
            match result {
                Ok(()) => {
                    quarantined += self.shards[i].stats().ingest.updates_quarantined - before;
                    let tr = self.supervisor.record_success(self.clock, i);
                    self.journal_transition(i, tr, "delivery succeeded");
                }
                Err(e) => {
                    // The engine applies nothing on a failed durable
                    // append, so requeuing the whole batch is exact.
                    self.pending[i].push_front(batch);
                    let msg = e.to_string();
                    let tr = self.supervisor.record_error(self.clock, i, &msg);
                    self.journal_transition(i, tr, &msg);
                    if self.supervisor.health(i) == ShardHealth::Dead {
                        self.decommission(i);
                    }
                    break;
                }
            }
        }
        quarantined
    }

    /// Checkpoint every serving shard. A shard's checkpoint failure is
    /// absorbed as a health strike (the fleet keeps running on the
    /// other shards' checkpoints) and reported per-shard in the
    /// returned [`CheckpointReport`]; the call errors only if every
    /// serving shard fails.
    pub fn checkpoint(&mut self) -> io::Result<CheckpointReport> {
        let mut report = CheckpointReport {
            paths: Vec::new(),
            failed: Vec::new(),
            skipped: Vec::new(),
        };
        for i in 0..self.shards.len() {
            if !self.supervisor.is_serving(i) {
                report.skipped.push(i);
                continue;
            }
            let label = &self.labels[i];
            let engine = &mut self.shards[i];
            let result = with_scope(label, || engine.checkpoint());
            match result {
                Ok(p) => {
                    let tr = self.supervisor.record_success(self.clock, i);
                    self.journal_transition(i, tr, "checkpoint succeeded");
                    report.paths.push((i, p));
                }
                Err(e) => {
                    let msg = e.to_string();
                    let tr = self.supervisor.record_error(self.clock, i, &msg);
                    self.journal_transition(i, tr, &msg);
                    if self.supervisor.health(i) == ShardHealth::Dead {
                        self.decommission(i);
                    }
                    report.failed.push((i, msg));
                }
            }
        }
        if report.paths.is_empty() && !report.failed.is_empty() {
            return Err(io::Error::other(format!(
                "every serving shard failed to checkpoint: {}",
                report
                    .failed
                    .iter()
                    .map(|(i, msg)| format!("[{}] {msg}", shard_label(*i)))
                    .collect::<Vec<_>>()
                    .join("; ")
            )));
        }
        Ok(report)
    }

    /// Scrub every serving shard's segment tier under its fault scope
    /// (so an armed `shard-0i/segment.scrub` faults exactly that
    /// member) and repair what was quarantined from the shard's own
    /// recovered state — for a replicated fleet that state is itself
    /// reconstructible from ring neighbors via
    /// [`ShardedFlow::rebuild_shard`], closing the replica-sourced
    /// repair path. Returns one `(shard, scrub, repair)` row per shard
    /// that has a live tier.
    pub fn scrub_tiers(
        &mut self,
    ) -> Vec<(
        usize,
        ga_graph::tier::ScrubReport,
        ga_graph::tier::RepairReport,
    )> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            if !self.supervisor.is_serving(i) {
                continue;
            }
            let label = self.labels[i].clone();
            let shard = &mut self.shards[i];
            if let Some((scrub, repair)) = with_scope(&label, || shard.scrub_tier()) {
                if !scrub.corrupt.is_empty() || !repair.unrepairable.is_empty() {
                    self.recorder.journal(
                        self.clock,
                        "tier_scrub",
                        format!(
                            "{label}: {} corrupt, {} repaired, {} unrepairable",
                            scrub.corrupt.len(),
                            repair.repaired.len(),
                            repair.unrepairable.len()
                        ),
                    );
                }
                out.push((i, scrub, repair));
            }
        }
        out
    }

    /// Rebuild a Dead shard online — the fleet keeps ingesting and
    /// serving throughout. Durable fleets recover checkpoint + WAL
    /// from the shard's directory and then redeliver the backlog that
    /// queued while it was down; non-durable replicated fleets
    /// reconstruct the shard's rows and properties exactly from its
    /// ring neighbors. Errors if the shard is not Dead or the fleet
    /// has neither durability nor replication.
    pub fn rebuild_shard(&mut self, i: usize) -> io::Result<RebuildReport> {
        if self.supervisor.health(i) != ShardHealth::Dead {
            return Err(io::Error::other(format!(
                "{} is {}, not dead; only dead shards can be rebuilt",
                shard_label(i),
                self.supervisor.health(i).name()
            )));
        }
        let started = Instant::now();
        let tr = self.supervisor.begin_rebuild(self.clock, i);
        self.journal_transition(i, tr, "rebuild started");
        let result = if self.durable {
            self.rebuild_from_wal(i)
        } else if self.replicate && self.num_shards() >= 2 {
            self.rebuild_from_replica(i)
        } else {
            Err(io::Error::other(format!(
                "{}: no rebuild source — fleet has neither durability nor replication",
                shard_label(i)
            )))
        };
        match result {
            Ok((source, redelivered_batches, redelivered_updates)) => {
                let tr = self.supervisor.complete_rebuild(self.clock, i);
                self.journal_transition(i, tr, source.name());
                Ok(RebuildReport {
                    shard: i,
                    source,
                    redelivered_batches,
                    redelivered_updates,
                    millis: started.elapsed().as_secs_f64() * 1e3,
                })
            }
            Err(e) => {
                let tr = self.supervisor.mark_dead(self.clock, i, "rebuild failed");
                self.journal_transition(i, tr, &e.to_string());
                self.decommission(i);
                Err(e)
            }
        }
    }

    fn rebuild_from_wal(&mut self, i: usize) -> io::Result<(RebuildSource, usize, usize)> {
        let base = self
            .base
            .clone()
            .ok_or_else(|| io::Error::other("durable fleet missing its base directory"))?;
        let label = shard_label(i);
        let engine = with_scope(&label, || {
            let mut cfg = FlowEngine::builder()
                .shard_label(label.clone())
                .breaker_threshold(self.suspect_strikes.saturating_add(1));
            if self.record_metrics {
                cfg = cfg.recorder(Recorder::labeled(label.clone()));
            }
            if let Some(t) = &self.tier {
                cfg = cfg.tiered(shard_tier_config(t, i));
            }
            cfg.recover(shard_dir(&base, i))
        })?;
        self.shards[i] = engine;
        // Redeliver the backlog that queued while the shard was dead.
        let mut batches = 0;
        let mut updates = 0;
        while let Some(batch) = self.pending[i].pop_front() {
            let engine = &mut self.shards[i];
            let res = with_scope(&label, || {
                engine.process_stream_durable(&batch, |_| None, None)
            });
            if let Err(e) = res {
                self.pending[i].push_front(batch);
                return Err(e);
            }
            batches += 1;
            updates += batch.updates.len();
        }
        Ok((RebuildSource::WalReplay, batches, updates))
    }

    /// Exact reconstruction from ring neighbors. Shard `i` holds
    /// three kinds of rows: its owned rows (full copies live on
    /// `succ(i)` — the replica), the rows it replicates for `pred(i)`
    /// (full copies live on `pred(i)` itself), and ghost rows, which
    /// contain exactly the slots whose destination is owned by `i` or
    /// `pred(i)` — a delivery reaches `i` iff one of the update's
    /// endpoints is owned by `i` or `pred(i)`, so filtering the
    /// owner's full row to those destinations reproduces the live
    /// edge set shard `i` would hold.
    fn rebuild_from_replica(&mut self, i: usize) -> io::Result<(RebuildSource, usize, usize)> {
        let succ = self.plan.successor(i);
        let pred = self.plan.predecessor(i);
        let width = self.global_width();
        let last = self
            .shards
            .iter()
            .map(|s| s.graph().last_update())
            .max()
            .unwrap_or(0);
        let mut rows: Vec<Vec<EdgeRecord>> = Vec::with_capacity(width);
        for v in 0..width as VertexId {
            let owner = self.plan.owner(v);
            let Some(src) = self.row_source(v) else {
                return Err(io::Error::other(format!(
                    "cannot rebuild {} from replicas: no serving copy of vertex {v}'s row",
                    shard_label(i)
                )));
            };
            let slots = self.shards[src].graph().row_slots(v);
            if owner == i || owner == pred {
                rows.push(slots.to_vec());
            } else {
                rows.push(
                    slots
                        .iter()
                        .filter(|r| {
                            let d = self.plan.owner(r.dst);
                            d == i || d == pred
                        })
                        .cloned()
                        .collect(),
                );
            }
        }
        let graph = DynamicGraph::from_rows(rows, last);
        // Properties: shard `i` holds its owned columns (replicated on
        // `succ`) and the replica copies of `pred`'s (live on `pred`).
        let mut props = PropertyStore::new(0);
        for (src_shard, owned_by) in [(succ, i), (pred, pred)] {
            let store = self.shards[src_shard].props();
            props.grow(store.num_vertices());
            for name in store.column_names() {
                for v in 0..store.num_vertices() as VertexId {
                    if self.plan.owner(v) == owned_by {
                        if let Some(val) = store.get(name, v) {
                            props.set(name, v, val);
                        }
                    }
                }
            }
        }
        let label = shard_label(i);
        let mut cfg = FlowEngine::builder()
            .symmetrize(self.symmetrize)
            .shard_label(label.clone())
            .breaker_threshold(self.suspect_strikes.saturating_add(1));
        if let Some(limit) = self.vertex_limit {
            cfg = cfg.vertex_limit(limit);
        }
        if self.record_metrics {
            cfg = cfg.recorder(Recorder::labeled(label));
        }
        let mut engine = cfg.build_with_graph(graph, props)?;
        engine.set_last_batch_time(self.clock);
        self.shards[i] = engine;
        self.pending[i].clear();
        Ok((RebuildSource::Replica, 0, 0))
    }

    /// Resolve ghosts into one global graph: each vertex's row comes
    /// verbatim from the shard serving it — its owner, or (while the
    /// owner is down, on replicated fleets) the ring-successor
    /// replica, whose rows are slot-exact copies. With every shard
    /// serving, the result is bit-identical to an unsharded engine's
    /// graph after the same batches; under single-shard failure with
    /// replication it still is. Rows with no serving copy are empty.
    pub fn merged_graph(&self) -> DynamicGraph {
        let width = self.global_width();
        let last = self
            .shards
            .iter()
            .map(|s| s.graph().last_update())
            .max()
            .unwrap_or(0);
        let rows: Vec<Vec<EdgeRecord>> = (0..width as VertexId)
            .map(|v| match self.row_source(v) {
                Some(s) => self.shards[s].graph().row_slots(v).to_vec(),
                None => Vec::new(),
            })
            .collect();
        DynamicGraph::from_rows(rows, last)
    }

    /// Merge per-shard property stores by vertex ownership, following
    /// the same failover rule as [`ShardedFlow::merged_graph`].
    pub fn merged_props(&self) -> PropertyStore {
        let mut out = PropertyStore::new(0);
        for (shard, engine) in self.shards.iter().enumerate() {
            let store = engine.props();
            out.grow(store.num_vertices());
            for name in store.column_names() {
                for v in 0..store.num_vertices() as VertexId {
                    if self.row_source(v) == Some(shard) {
                        if let Some(val) = store.get(name, v) {
                            out.set(name, v, val);
                        }
                    }
                }
            }
        }
        out
    }

    /// One grouped stats record for the whole fleet (per-shard counters
    /// summed; ghost work is counted on every shard that performed it).
    /// A rebuilt shard's counters restart at its rebuild.
    pub fn merged_stats(&self) -> FlowStats {
        let mut total = FlowStats::default();
        for s in &self.shards {
            total.merge(&s.stats());
        }
        total
    }

    /// Per-shard stats records (index = shard id).
    pub fn shard_stats(&self) -> Vec<FlowStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Labeled metrics exports: the router's snapshot (cross-shard
    /// traffic plus the failover/rebuild journal) followed by each
    /// shard's. With metrics off these are empty-but-valid snapshots.
    pub fn metrics(&self) -> Vec<MetricsSnapshot> {
        let mut out = vec![self.recorder.snapshot()];
        out.extend(self.shards.iter().map(|s| s.metrics()));
        out
    }

    /// Quarantined (dead-letter) updates across the fleet.
    pub fn dead_letter_count(&self) -> usize {
        self.shards.iter().map(|s| s.dead_letters().count()).sum()
    }

    /// Drain every shard's dead-letter queue into one merged list,
    /// tagged with the shard that quarantined each update.
    pub fn drain_dead_letters(&mut self) -> Vec<(usize, QuarantinedUpdate)> {
        let mut out = Vec::new();
        for (i, engine) in self.shards.iter_mut().enumerate() {
            out.extend(engine.drain_dead_letters().into_iter().map(move |q| (i, q)));
        }
        out
    }

    /// Re-validate and re-apply quarantined updates on every serving
    /// shard (see [`FlowEngine::replay_dead_letters`]). Returns the
    /// fleet totals `(replayed, requeued)`.
    pub fn replay_dead_letters(&mut self) -> io::Result<(usize, usize)> {
        let mut replayed = 0;
        let mut requeued = 0;
        for i in 0..self.shards.len() {
            if !self.supervisor.is_serving(i) {
                continue;
            }
            let label = &self.labels[i];
            let engine = &mut self.shards[i];
            let (r, q) = with_scope(label, || engine.replay_dead_letters())?;
            replayed += r;
            requeued += q;
        }
        Ok((replayed, requeued))
    }

    /// Scatter-gather PageRank over the merged graph, bit-identical to
    /// `pagerank_with` on an unsharded engine for any shard count: each
    /// shard pulls over the complete in-adjacency of the vertices it
    /// serves (ascending source order), while the dangling-mass and
    /// residual reductions run at the router in global vertex order.
    /// Under failover the replica serves its dead predecessor's
    /// vertices with exact rows; the result's `completion` is then
    /// [`Completion::Degraded`].
    pub fn pagerank(&mut self, damping: f64, tol: f64, max_iters: usize) -> PageRankResult {
        let n = self.global_width();
        let completion = self.fleet_completion();
        if n == 0 {
            return PageRankResult {
                rank: vec![],
                work: 0,
                residual: 0.0,
                completion,
            };
        }
        let mut span = self.recorder.span(Step::BatchAnalytic);
        // Scatter phase setup: per-shard served vertex lists and
        // in-adjacencies, plus global out-degrees from the serving
        // rows (the owner's, or its replica's exact copy).
        let serve = self.serve_map(n);
        let mut owned: Vec<Vec<VertexId>> = vec![Vec::new(); self.shards.len()];
        for v in 0..n as VertexId {
            if let Some(s) = serve[v as usize] {
                owned[s].push(v);
            }
        }
        let in_adj: Vec<Vec<Vec<VertexId>>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| owned_in_adjacency(s.graph(), n, |v| serve[v as usize] == Some(i)))
            .collect();
        // Rank values pulled across a shard boundary, per iteration.
        let cross_in: u64 = in_adj
            .iter()
            .enumerate()
            .map(|(i, adj)| {
                adj.iter()
                    .flatten()
                    .filter(|&&u| serve[u as usize] != Some(i))
                    .count() as u64
            })
            .sum();
        // The serving shard holds each vertex's exact out-row, so its
        // live degree *is* the global out-degree.
        let out_deg: Vec<f64> = (0..n as VertexId)
            .map(|v| match serve[v as usize] {
                Some(s) => self.shards[s].graph().degree(v) as f64,
                None => 0.0,
            })
            .collect();
        let inv_n = 1.0 / n as f64;
        let mut rank = vec![inv_n; n];
        let mut iters = 0;
        let mut residual = f64::INFINITY;
        while iters < max_iters && residual > tol {
            // Router-side serial reductions in global vertex order —
            // the same summation order as the unsharded kernel.
            let dangling: f64 = (0..n).filter(|&v| out_deg[v] == 0.0).map(|v| rank[v]).sum();
            let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
            let mut next = rank.clone();
            for i in 0..self.shards.len() {
                for (v, r) in
                    pagerank_owned_sweep(&in_adj[i], &owned[i], &rank, &out_deg, base, damping)
                {
                    next[v as usize] = r;
                }
            }
            residual = (0..n).map(|v| (next[v] - rank[v]).abs()).sum();
            rank = next;
            iters += 1;
        }
        let bytes = iters as u64 * RANK_WIRE_BYTES * cross_in;
        self.traffic.pagerank_bytes += bytes;
        span.add_net_bytes(bytes);
        PageRankResult {
            rank,
            work: iters,
            residual,
            completion,
        }
    }

    /// Scatter-gather BFS: level-synchronous frontier exchange. Depths
    /// are integers, so the result is exact for any shard count —
    /// identical to `bfs_depths` on the merged graph, including under
    /// replica failover.
    pub fn bfs(&mut self, src: VertexId) -> Vec<u32> {
        self.bfs_checked(src).value
    }

    /// [`ShardedFlow::bfs`] plus the fleet-coverage verdict it ran
    /// under (see [`ShardedRun`]).
    pub fn bfs_checked(&mut self, src: VertexId) -> ShardedRun<Vec<u32>> {
        let n = self.global_width();
        let (failed_over, uncovered) = self.coverage();
        let completion = self.fleet_completion();
        let mut depth = vec![UNREACHED; n];
        if (src as usize) >= n {
            return ShardedRun {
                value: depth,
                completion,
                failed_over,
                uncovered,
            };
        }
        let mut span = self.recorder.span(Step::BatchAnalytic);
        let serve = self.serve_map(n);
        depth[src as usize] = 0;
        let mut frontier = vec![src];
        let mut d = 0u32;
        let mut cross = 0u64;
        while !frontier.is_empty() {
            let mut per_shard: Vec<Vec<VertexId>> = vec![Vec::new(); self.shards.len()];
            for &v in &frontier {
                if let Some(s) = serve[v as usize] {
                    per_shard[s].push(v);
                }
            }
            let mut next = Vec::new();
            for (i, f) in per_shard.iter().enumerate() {
                for c in bfs_owned_expand(self.shards[i].graph(), f) {
                    if serve[c as usize] != Some(i) {
                        cross += 1;
                    }
                    if (c as usize) < n && depth[c as usize] == UNREACHED {
                        depth[c as usize] = d + 1;
                        next.push(c);
                    }
                }
            }
            d += 1;
            frontier = next;
        }
        let bytes = FRONTIER_WIRE_BYTES * cross;
        self.traffic.bfs_bytes += bytes;
        span.add_net_bytes(bytes);
        ShardedRun {
            value: depth,
            completion,
            failed_over,
            uncovered,
        }
    }

    /// Scatter-gather connected components: each serving shard reduces
    /// its local edges to a spanning forest, the router unions the
    /// forests. Min-id label normalization makes the result
    /// independent of shard count — identical to `wcc_union_find` on
    /// the merged graph. A dead shard's edges are covered by its
    /// ring-successor replica's local graph on replicated fleets.
    pub fn components(&mut self) -> Components {
        self.components_checked().value
    }

    /// [`ShardedFlow::components`] plus the fleet-coverage verdict it
    /// ran under (see [`ShardedRun`]).
    pub fn components_checked(&mut self) -> ShardedRun<Components> {
        let n = self.global_width();
        let (failed_over, uncovered) = self.coverage();
        let completion = self.fleet_completion();
        let mut span = self.recorder.span(Step::BatchAnalytic);
        let mut pairs = Vec::new();
        let mut serving = 0usize;
        for (i, engine) in self.shards.iter().enumerate() {
            if !self.supervisor.is_serving(i) {
                continue;
            }
            serving += 1;
            let csr = engine.graph().snapshot();
            pairs.extend(cc_local_forest(&csr, self.symmetrize));
        }
        if serving > 1 {
            let bytes = FOREST_PAIR_WIRE_BYTES * pairs.len() as u64;
            self.traffic.components_bytes += bytes;
            span.add_net_bytes(bytes);
        }
        ShardedRun {
            value: cc_merge_forests(n, pairs),
            completion,
            failed_over,
            uncovered,
        }
    }

    // -----------------------------------------------------------------
    // Concurrent query serving: per-shard epoch publication + routing.
    // -----------------------------------------------------------------

    /// Start serving from every shard: publish each shard's current
    /// state and return the per-shard [`SnapshotHandle`]s (index =
    /// shard id). Subsequent [`Self::process_batch`] ingest republishes
    /// automatically through each shard engine's publication hooks.
    pub fn serve_handles(&mut self) -> Vec<SnapshotHandle> {
        self.shards
            .iter_mut()
            .map(|engine| engine.serve_handle())
            .collect()
    }

    /// Republish every shard's current generation (useful after
    /// out-of-band mutation through [`Self::shard_mut`]). A no-op on
    /// shards that never started serving.
    pub fn publish_epochs(&mut self) {
        for engine in &mut self.shards {
            engine.publish_epoch();
        }
    }

    /// A query router over this fleet's published snapshots: point
    /// queries go to the owning shard (exact, thanks to ghost edges),
    /// top-k scans scatter-gather. Create one per reader thread — the
    /// router revalidates each shard's snapshot with one atomic load
    /// and never blocks ingest.
    pub fn query_router(&mut self) -> ShardedQueryRouter {
        let handles = self.serve_handles();
        ShardedQueryRouter {
            plan: self.plan,
            readers: handles.iter().map(|h| h.reader()).collect(),
        }
    }
}

/// Why [`ShardedQueryRouter::run`] refused a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The query's traversal crosses shard boundaries; run it against
    /// a merged (unsharded) serving engine instead. Carries the query
    /// kind's name.
    CrossShard(&'static str),
    /// The named shard has not published a snapshot yet.
    NotReady(usize),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::CrossShard(kind) => {
                write!(f, "{kind} traverses across shards; serve it unsharded")
            }
            RouteError::NotReady(shard) => {
                write!(f, "shard {shard} has not published a snapshot yet")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Routes [`Query`]s over a sharded fleet's published epoch snapshots
/// (see [`ShardedFlow::query_router`]).
///
/// * **Point queries** ([`Query::GetProperty`], [`Query::Degree`],
///   [`Query::Neighbors`]) run on the owning shard only. Because every
///   edge incident to an owned vertex is delivered to its owner (the
///   ghost/halo protocol), owner-local degree and neighbor lists are
///   exact.
/// * **[`Query::TopKByProperty`]** scatter-gathers: each shard reports
///   its own top-k over the rows it *owns* (ghost rows are filtered so
///   a replicated row cannot appear twice), and the router merges.
/// * **Traversals** ([`Query::KHop`], [`Query::FilteredTraversal`],
///   [`Query::ShortestPath`], [`Query::SimilarVertices`]) are honestly
///   refused with [`RouteError::CrossShard`] — a shard-local answer
///   would silently stop at partition edges.
#[derive(Debug)]
pub struct ShardedQueryRouter {
    plan: ShardPlan,
    readers: Vec<ga_stream::SnapshotReader>,
}

impl ShardedQueryRouter {
    /// The shard that owns `v` (where point queries on `v` run).
    pub fn owner(&self, v: VertexId) -> usize {
        self.plan.owner(v)
    }

    /// Run one query against the fleet's published generations.
    pub fn run(&mut self, query: &Query) -> Result<QueryResponse, RouteError> {
        match query {
            Query::GetProperty { vertex, .. }
            | Query::Degree { vertex }
            | Query::Neighbors { vertex, .. } => {
                let shard = self.plan.owner(*vertex);
                let snap = self.readers[shard]
                    .snapshot()
                    .ok_or(RouteError::NotReady(shard))?;
                Ok(query.run(snap))
            }
            Query::TopKByProperty { name, k } => {
                let plan = self.plan;
                let mut merged: Vec<(VertexId, f64)> = Vec::new();
                for (shard, reader) in self.readers.iter_mut().enumerate() {
                    let snap = reader.snapshot().ok_or(RouteError::NotReady(shard))?;
                    let local = Query::top_k_by_property(name.clone(), *k).run(snap);
                    if let QueryResponse::Scored(rows) = local {
                        merged.extend(rows.into_iter().filter(|(v, _)| plan.owner(*v) == shard));
                    }
                }
                merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                merged.truncate(*k);
                Ok(QueryResponse::Scored(merged))
            }
            Query::KHop { .. } => Err(RouteError::CrossShard("k_hop")),
            Query::FilteredTraversal { .. } => Err(RouteError::CrossShard("filtered_traversal")),
            Query::ShortestPath { .. } => Err(RouteError::CrossShard("shortest_path")),
            Query::SimilarVertices { .. } => Err(RouteError::CrossShard("similar_vertices")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::CsrBuilder;
    use ga_kernels::bfs::bfs_depths;
    use ga_kernels::cc::wcc_union_find;
    use ga_kernels::pagerank::pagerank_with;
    use ga_kernels::KernelCtx;
    use ga_stream::update::{into_batches, rmat_edge_stream};

    fn drive(flow: &mut ShardedFlow, scale: u32, total: usize, seed: u64) {
        for batch in into_batches(rmat_edge_stream(scale, total, 0.2, seed), 128, 1) {
            flow.process_batch(&batch).unwrap();
        }
    }

    #[test]
    fn scatter_gather_matches_unsharded_kernels() {
        let mut one = ShardedFlow::builder(1).build(64).unwrap();
        drive(&mut one, 6, 1200, 11);
        let reference_pr = one.pagerank(0.85, 1e-10, 60);

        for shards in [1usize, 2, 4] {
            let mut flow = ShardedFlow::builder(shards).build(64).unwrap();
            drive(&mut flow, 6, 1200, 11);
            let merged = flow.merged_graph();
            assert_eq!(merged, one.merged_graph(), "{shards}-shard merge");

            // PageRank: bit-identical to the unsharded kernel AND to
            // the 1-shard run.
            let snap = merged.snapshot();
            let csr = CsrBuilder::new(merged.num_vertices())
                .edges(snap.edges())
                .reverse(true)
                .build();
            let kernel = pagerank_with(&csr, 0.85, 1e-10, 60, &KernelCtx::serial());
            let pr = flow.pagerank(0.85, 1e-10, 60);
            assert_eq!(pr.work, kernel.work, "{shards}-shard pagerank iters");
            assert_eq!(pr.rank, kernel.rank, "{shards}-shard pagerank ranks");
            assert_eq!(pr.rank, reference_pr.rank, "{shards}-shard vs 1-shard");

            // BFS depths and components labels are exact integers.
            assert_eq!(flow.bfs(0), bfs_depths(&snap, 0), "{shards}-shard bfs");
            let cc = flow.components();
            let direct = wcc_union_find(&snap);
            assert_eq!(cc.label, direct.label, "{shards}-shard cc labels");
            assert_eq!(cc.count, direct.count, "{shards}-shard cc count");
        }
    }

    #[test]
    fn query_router_matches_unsharded_serving() {
        // One unsharded serving engine as ground truth.
        let mut one = ShardedFlow::builder(1).build(64).unwrap();
        drive(&mut one, 6, 1200, 11);
        one.shard_mut(0).props_mut().set_column_f64(
            "score",
            &(0..64).map(|v| (v * 7 % 23) as f64).collect::<Vec<_>>(),
        );
        one.publish_epochs();
        let mut reference = one.query_router();

        for shards in [2usize, 4] {
            let mut flow = ShardedFlow::builder(shards).build(64).unwrap();
            drive(&mut flow, 6, 1200, 11);
            for i in 0..shards {
                // Property rows live on the owner; setting the full
                // column everywhere is fine — TopK filters to owned.
                flow.shard_mut(i).props_mut().set_column_f64(
                    "score",
                    &(0..64).map(|v| (v * 7 % 23) as f64).collect::<Vec<_>>(),
                );
            }
            flow.publish_epochs();
            let mut router = flow.query_router();

            for v in 0..64u32 {
                for q in [
                    Query::Degree { vertex: v },
                    Query::Neighbors {
                        vertex: v,
                        limit: 64,
                    },
                    Query::get_property(v, "score"),
                ] {
                    assert_eq!(
                        router.run(&q).unwrap(),
                        reference.run(&q).unwrap(),
                        "{shards}-shard {q:?}"
                    );
                }
            }
            assert_eq!(
                router.run(&Query::top_k_by_property("score", 10)).unwrap(),
                reference
                    .run(&Query::top_k_by_property("score", 10))
                    .unwrap(),
                "{shards}-shard top-k"
            );
            // Traversals are refused with the typed error, not wrong.
            assert_eq!(
                router.run(&Query::ShortestPath { src: 0, dst: 5 }),
                Err(RouteError::CrossShard("shortest_path"))
            );
            assert_eq!(
                router.run(&Query::KHop {
                    vertex: 0,
                    hops: 2,
                    limit: 64
                }),
                Err(RouteError::CrossShard("k_hop"))
            );
        }
    }

    #[test]
    fn traffic_is_zero_single_shard_and_positive_sharded() {
        let mut one = ShardedFlow::builder(1).build(64).unwrap();
        drive(&mut one, 6, 800, 3);
        one.pagerank(0.85, 1e-9, 30);
        one.bfs(0);
        one.components();
        assert_eq!(one.traffic(), CrossShardTraffic::default());

        let mut four = ShardedFlow::builder(4).build(64).unwrap();
        drive(&mut four, 6, 800, 3);
        four.pagerank(0.85, 1e-9, 30);
        four.bfs(0);
        four.components();
        let t = four.traffic();
        assert!(t.ingest_bytes > 0, "{t:?}");
        assert!(t.pagerank_bytes > 0, "{t:?}");
        assert!(t.bfs_bytes > 0, "{t:?}");
        assert!(t.components_bytes > 0, "{t:?}");
        assert_eq!(t.replication_bytes, 0, "replication off by default");
        assert_eq!(t.ingest_bytes, four.ghost_updates() * UPDATE_WIRE_BYTES);
    }

    #[test]
    fn router_recorder_books_cross_shard_bytes() {
        let mut flow = ShardedFlow::builder(2)
            .record_metrics(true)
            .build(64)
            .unwrap();
        drive(&mut flow, 6, 600, 5);
        flow.pagerank(0.85, 1e-9, 20);
        let snaps = flow.metrics();
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].label, "router");
        assert_eq!(snaps[1].label, "shard-00");
        let t = flow.traffic();
        assert_eq!(
            snaps[0].step(Step::Ingest).net_bytes,
            t.ingest_bytes,
            "router ingest bytes"
        );
        assert_eq!(
            snaps[0].step(Step::BatchAnalytic).net_bytes,
            t.pagerank_bytes,
            "router analytic bytes"
        );
    }

    #[test]
    fn supervisor_walks_the_health_state_machine() {
        let mut sup = ShardSupervisor::new(2, 3);
        assert!(sup.all_healthy());

        // One failure: Suspect. A success heals and clears strikes.
        assert_eq!(
            sup.record_error(1, 0, "boom"),
            Some((ShardHealth::Healthy, ShardHealth::Suspect))
        );
        assert_eq!(sup.strikes(0), 1);
        assert_eq!(
            sup.record_success(2, 0),
            Some((ShardHealth::Suspect, ShardHealth::Healthy))
        );
        assert_eq!(sup.strikes(0), 0);

        // Three consecutive failures: Dead. Further errors are not
        // strikes, and success does not resurrect a dead shard.
        sup.record_error(3, 0, "a");
        assert_eq!(sup.record_error(4, 0, "b"), None, "suspect stays suspect");
        assert_eq!(
            sup.record_error(5, 0, "c"),
            Some((ShardHealth::Suspect, ShardHealth::Dead))
        );
        assert!(!sup.is_serving(0));
        assert_eq!(sup.record_error(6, 0, "d"), None);
        assert_eq!(sup.record_success(6, 0), None);
        assert_eq!(sup.down_shards(), vec![0]);

        // Dead -> Rebuilding -> Healthy; rebuild ops gate on state.
        assert_eq!(sup.begin_rebuild(7, 1), None, "healthy shard: no rebuild");
        assert_eq!(
            sup.begin_rebuild(7, 0),
            Some((ShardHealth::Dead, ShardHealth::Rebuilding))
        );
        assert_eq!(
            sup.complete_rebuild(8, 0),
            Some((ShardHealth::Rebuilding, ShardHealth::Healthy))
        );
        assert!(sup.all_healthy());

        let events = sup.take_events();
        assert_eq!(events.len(), 6, "{events:?}");
        assert_eq!(events[0].reason, "boom");
        assert!(sup.events().is_empty(), "drained");
    }

    #[test]
    fn replication_books_traffic_and_keeps_analytics_identical() {
        let mut plain = ShardedFlow::builder(3).build(64).unwrap();
        let mut repl = ShardedFlow::builder(3).replicate(true).build(64).unwrap();
        drive(&mut plain, 6, 1000, 7);
        drive(&mut repl, 6, 1000, 7);

        assert_eq!(repl.merged_graph(), plain.merged_graph());
        assert_eq!(repl.ghost_updates(), plain.ghost_updates());
        assert!(repl.traffic().replication_bytes > 0);
        assert_eq!(plain.traffic().replication_bytes, 0);

        let a = plain.pagerank(0.85, 1e-10, 50);
        let b = repl.pagerank(0.85, 1e-10, 50);
        assert_eq!(a.rank, b.rank, "replication must not perturb pagerank");
        assert_eq!(plain.bfs(0), repl.bfs(0));
        assert_eq!(plain.components().label, repl.components().label);
    }

    #[test]
    fn killed_shard_fails_over_to_replica_and_rebuilds_exactly() {
        let mut reference = ShardedFlow::builder(1).build(64).unwrap();
        let mut fleet = ShardedFlow::builder(3).replicate(true).build(64).unwrap();
        let batches = into_batches(rmat_edge_stream(6, 1400, 0.2, 13), 120, 1);
        let (head, tail) = batches.split_at(batches.len() / 2);
        for b in head {
            reference.process_batch(b).unwrap();
            fleet.process_batch(b).unwrap();
        }

        fleet.kill_shard(1, "test kill");
        assert_eq!(fleet.health(1), ShardHealth::Dead);
        assert_eq!(fleet.fleet_completion(), Completion::Degraded);

        // The fleet keeps ingesting while shard 1 is down; merged
        // views and analytics fail over to the replica and stay exact.
        for b in tail {
            reference.process_batch(b).unwrap();
            fleet.process_batch(b).unwrap();
        }
        assert_eq!(fleet.lost_updates(), 0, "replica holds every update");
        assert_eq!(fleet.merged_graph(), reference.merged_graph());
        let run = fleet.bfs_checked(0);
        assert_eq!(run.completion, Completion::Degraded);
        assert_eq!(run.failed_over, vec![1]);
        assert!(run.uncovered.is_empty());
        assert_eq!(run.value, reference.bfs(0));
        let cc = fleet.components_checked();
        assert_eq!(cc.completion, Completion::Degraded);
        assert_eq!(cc.value.label, reference.components().label);
        let pr = fleet.pagerank(0.85, 1e-10, 50);
        assert_eq!(pr.completion, Completion::Degraded);
        assert_eq!(pr.rank, reference.pagerank(0.85, 1e-10, 50).rank);

        // Online rebuild from the ring neighbors, then full health and
        // bit-identical state — including shard 1's replica duty.
        let report = fleet.rebuild_shard(1).unwrap();
        assert_eq!(report.source, RebuildSource::Replica);
        assert!(fleet.supervisor().all_healthy());
        assert_eq!(fleet.fleet_completion(), Completion::Complete);
        assert_eq!(fleet.merged_graph(), reference.merged_graph());
        let events = fleet.take_health_events();
        assert!(events.iter().any(|e| e.to == ShardHealth::Dead));
        assert!(events.iter().any(|e| e.to == ShardHealth::Healthy));

        // The rebuilt shard serves: kill its successor and the fleet
        // must now serve shard 2's vertices from shard 0... and shard
        // 1's own rows from itself.
        fleet.kill_shard(2, "second kill");
        assert_eq!(fleet.merged_graph(), reference.merged_graph());
    }

    #[test]
    fn dead_shard_without_replication_degrades_and_counts_loss() {
        let mut fleet = ShardedFlow::builder(2).build(64).unwrap();
        let batches = into_batches(rmat_edge_stream(6, 600, 0.2, 21), 100, 1);
        let (head, tail) = batches.split_at(3);
        for b in head {
            fleet.process_batch(b).unwrap();
        }
        fleet.kill_shard(0, "no safety net");
        for b in tail {
            fleet.process_batch(b).unwrap();
        }
        assert!(fleet.lost_updates() > 0, "loss is counted, not hidden");
        let run = fleet.bfs_checked(0);
        assert_eq!(run.completion, Completion::Degraded);
        assert_eq!(run.uncovered, vec![0]);
        assert!(run.failed_over.is_empty());
        let err = fleet.rebuild_shard(0).unwrap_err();
        assert!(
            err.to_string().contains("no rebuild source"),
            "unexpected: {err}"
        );
    }
}
