//! Sharded multi-engine scale-out: N shard-local [`FlowEngine`]s
//! behind one hash-partition router, with scatter-gather batch
//! analytics whose merged results are **bit-identical** for every
//! shard count.
//!
//! This is the flow-level half of the sharded architecture; update
//! routing and the partition itself live in `ga_stream::sharded`
//! ([`ShardPlan`]). The division of labor per concern:
//!
//! * **Ingest** — [`ShardedFlow::process_batch`] routes each update to
//!   its endpoints' owner shards. A cross-shard edge is delivered to
//!   both owners; the second delivery materializes a *ghost* (halo)
//!   entry and is priced at [`UPDATE_WIRE_BYTES`] in the cross-shard
//!   traffic model.
//! * **Batch analytics** — scatter-gather: each shard computes a
//!   partial over the vertices it owns ([`ga_kernels::scatter`]), the
//!   router merges. PageRank keeps every floating-point reduction in
//!   global vertex order (mirroring `pagerank_with`'s determinism
//!   argument), BFS exchanges integer frontiers level-synchronously,
//!   and components union shard-local spanning forests through a
//!   min-id-normalizing union-find — so each merged answer is
//!   bit-identical to the unsharded kernel on the merged graph.
//! * **Durability** — each shard owns its WAL + checkpoint directory
//!   (`base/shard-00`, `base/shard-01`, …), so recovery is
//!   shard-local and a shard's recovery failure names the shard (its
//!   errors are prefixed `[shard-NN]` via
//!   [`FlowEngine::recover_labeled`]).
//! * **Observability** — one labeled [`Recorder`] per shard plus a
//!   `"router"` recorder that books cross-shard network bytes, so a
//!   merged metrics export stays attributable per shard.
//!
//! The paper's scale-out argument (§V: network injection bandwidth
//! bounds sharded graph analytics long before per-node compute does)
//! is what the traffic model makes measurable: see `bench_shard`.

use crate::flow::{FlowEngine, FlowStats};
use ga_graph::{DynamicGraph, PropertyStore, VertexId};
use ga_kernels::cc::Components;
use ga_kernels::pagerank::PageRankResult;
use ga_kernels::scatter::{
    bfs_owned_expand, cc_local_forest, cc_merge_forests, owned_in_adjacency, pagerank_owned_sweep,
};
use ga_kernels::{Completion, UNREACHED};
use ga_obs::{MetricsSnapshot, Recorder, Step};
use ga_stream::sharded::{merge_owned_props, merge_owned_rows, ShardPlan, UPDATE_WIRE_BYTES};
use ga_stream::update::UpdateBatch;
use std::io;
use std::path::{Path, PathBuf};

/// Bytes per exchanged PageRank rank value (one `f64`).
const RANK_WIRE_BYTES: u64 = 8;
/// Bytes per exchanged BFS frontier candidate (one `u32` vertex id).
const FRONTIER_WIRE_BYTES: u64 = 4;
/// Bytes per exchanged components forest pair (two `u32` vertex ids).
const FOREST_PAIR_WIRE_BYTES: u64 = 8;

/// A shard's durability directory under `base`.
pub fn shard_dir(base: &Path, shard: usize) -> PathBuf {
    base.join(shard_label(shard))
}

/// The canonical shard label (`"shard-03"`), used for durability
/// subdirectories, recorder labels, and error prefixes alike.
pub fn shard_label(shard: usize) -> String {
    format!("shard-{shard:02}")
}

/// Cross-shard network bytes, per protocol, under the wire model the
/// module docs describe. All zero in a 1-shard deployment — traffic
/// only counts bytes that actually cross a shard boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrossShardTraffic {
    /// Ghost (second-copy) update deliveries during ingest.
    pub ingest_bytes: u64,
    /// Rank values pulled from non-owner shards, summed over PageRank
    /// iterations.
    pub pagerank_bytes: u64,
    /// Frontier candidates handed to a different owner shard during
    /// BFS level exchanges.
    pub bfs_bytes: u64,
    /// Spanning-forest pairs shipped to the router for the components
    /// merge.
    pub components_bytes: u64,
}

impl CrossShardTraffic {
    /// Total cross-shard bytes across all protocols.
    pub fn total(&self) -> u64 {
        self.ingest_bytes + self.pagerank_bytes + self.bfs_bytes + self.components_bytes
    }
}

/// Builder for a [`ShardedFlow`]. Mirrors the knobs of
/// [`crate::flow::FlowConfig`] that make sense across a fleet of
/// engines.
#[derive(Debug)]
pub struct ShardedConfig {
    num_shards: usize,
    symmetrize: bool,
    vertex_limit: Option<usize>,
    durability_base: Option<PathBuf>,
    record_metrics: bool,
}

impl ShardedConfig {
    /// A config for `num_shards` shards (must be ≥ 1). Defaults match
    /// `FlowConfig`: symmetrize on, no durability, metrics off.
    pub fn new(num_shards: usize) -> ShardedConfig {
        ShardedConfig {
            num_shards,
            symmetrize: true,
            vertex_limit: None,
            durability_base: None,
            record_metrics: false,
        }
    }

    /// Mirror edge updates in both directions on every shard (default
    /// true). Must be uniform across shards — a mixed fleet would break
    /// the owned-row invariant.
    pub fn symmetrize(mut self, symmetrize: bool) -> Self {
        self.symmetrize = symmetrize;
        self
    }

    /// Vertex-id quarantine bound applied to every shard.
    pub fn vertex_limit(mut self, limit: usize) -> Self {
        self.vertex_limit = Some(limit);
        self
    }

    /// Enable per-shard durability under `base`: shard `i` logs and
    /// checkpoints in `base/shard-0i`, so recovery stays shard-local.
    pub fn durability_base(mut self, base: impl Into<PathBuf>) -> Self {
        self.durability_base = Some(base.into());
        self
    }

    /// Attach labeled recorders: one per shard (`"shard-00"`, …) plus
    /// a `"router"` recorder for cross-shard traffic.
    pub fn record_metrics(mut self, on: bool) -> Self {
        self.record_metrics = on;
        self
    }

    /// Build the fleet over an empty global graph of `num_vertices`.
    pub fn build(self, num_vertices: usize) -> io::Result<ShardedFlow> {
        let plan = ShardPlan::new(self.num_shards);
        let mut shards = Vec::with_capacity(self.num_shards);
        for i in 0..self.num_shards {
            let label = shard_label(i);
            let mut cfg = FlowEngine::builder()
                .symmetrize(self.symmetrize)
                .shard_label(label.clone());
            if let Some(limit) = self.vertex_limit {
                cfg = cfg.vertex_limit(limit);
            }
            if self.record_metrics {
                cfg = cfg.recorder(Recorder::labeled(label));
            }
            if let Some(base) = &self.durability_base {
                cfg = cfg.durability_dir(shard_dir(base, i));
            }
            shards.push(cfg.build(num_vertices)?);
        }
        Ok(ShardedFlow {
            plan,
            shards,
            symmetrize: self.symmetrize,
            durable: self.durability_base.is_some(),
            ghost_updates: 0,
            traffic: CrossShardTraffic::default(),
            recorder: if self.record_metrics {
                Recorder::labeled("router")
            } else {
                Recorder::disabled()
            },
        })
    }

    /// Recover the whole fleet from per-shard durability directories
    /// under `base` (see [`ShardedConfig::durability_base`]). Each
    /// shard recovers independently from `base/shard-0i`; a failure is
    /// reported with its `[shard-0i]` prefix and offending file path,
    /// so one bad shard is diagnosable from the error alone. The
    /// persisted state knobs (symmetrize, vertex limit) come from each
    /// shard's checkpoint.
    pub fn recover(self, base: impl AsRef<Path>) -> io::Result<ShardedFlow> {
        let base = base.as_ref();
        let plan = ShardPlan::new(self.num_shards);
        let mut shards = Vec::with_capacity(self.num_shards);
        for i in 0..self.num_shards {
            let label = shard_label(i);
            let mut engine = FlowEngine::recover_labeled(shard_dir(base, i), &label)?;
            if self.record_metrics {
                engine.set_recorder(Recorder::labeled(label));
            }
            shards.push(engine);
        }
        let symmetrize = shards.first().map(|s| s.symmetrize()).unwrap_or(true);
        Ok(ShardedFlow {
            plan,
            shards,
            symmetrize,
            durable: true,
            ghost_updates: 0,
            traffic: CrossShardTraffic::default(),
            recorder: if self.record_metrics {
                Recorder::labeled("router")
            } else {
                Recorder::disabled()
            },
        })
    }
}

/// N shard-local [`FlowEngine`]s behind one hash-partition router.
/// See the module docs for the architecture and invariants.
pub struct ShardedFlow {
    plan: ShardPlan,
    shards: Vec<FlowEngine>,
    symmetrize: bool,
    durable: bool,
    ghost_updates: u64,
    traffic: CrossShardTraffic,
    recorder: Recorder,
}

impl ShardedFlow {
    /// Start a [`ShardedConfig`] builder.
    pub fn builder(num_shards: usize) -> ShardedConfig {
        ShardedConfig::new(num_shards)
    }

    /// The partition in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard-local engines (index = shard id).
    pub fn shards(&self) -> &[FlowEngine] {
        &self.shards
    }

    /// Mutable access to one shard's engine.
    pub fn shard_mut(&mut self, i: usize) -> &mut FlowEngine {
        &mut self.shards[i]
    }

    /// Ghost (second-copy) update deliveries so far.
    pub fn ghost_updates(&self) -> u64 {
        self.ghost_updates
    }

    /// Cross-shard bytes per protocol so far.
    pub fn traffic(&self) -> CrossShardTraffic {
        self.traffic
    }

    /// Global vertex width: the widest shard graph (shards grow
    /// independently as updates arrive, so widths can differ).
    pub fn global_width(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.graph().num_vertices())
            .max()
            .unwrap_or(0)
    }

    /// Route one batch to every shard and apply it (durably when the
    /// fleet was built with a durability base). Every shard sees a
    /// batch with the same `time`, so watermarks advance uniformly.
    /// Returns the total updates quarantined across shards.
    pub fn process_batch(&mut self, batch: &UpdateBatch) -> io::Result<usize> {
        let (sub, ghosts) = self.plan.route_batch(batch);
        self.ghost_updates += ghosts;
        let bytes = ghosts * UPDATE_WIRE_BYTES;
        self.traffic.ingest_bytes += bytes;
        self.recorder.span(Step::Ingest).add_net_bytes(bytes);
        let mut quarantined = 0;
        for (b, engine) in sub.iter().zip(self.shards.iter_mut()) {
            let before = engine.stats().ingest.updates_quarantined;
            if self.durable {
                engine.process_stream_durable(b, |_| None, None)?;
            } else {
                engine.process_stream(b, |_| None, None);
            }
            quarantined += engine.stats().ingest.updates_quarantined - before;
        }
        Ok(quarantined)
    }

    /// Checkpoint every shard; returns the per-shard checkpoint paths.
    pub fn checkpoint(&mut self) -> io::Result<Vec<PathBuf>> {
        self.shards.iter_mut().map(|e| e.checkpoint()).collect()
    }

    /// Resolve ghosts into one global graph: each vertex's row comes
    /// verbatim from its owner shard, so the result is bit-identical
    /// to an unsharded engine's graph after the same batches.
    pub fn merged_graph(&self) -> DynamicGraph {
        let width = self.global_width();
        let last = self
            .shards
            .iter()
            .map(|s| s.graph().last_update())
            .max()
            .unwrap_or(0);
        merge_owned_rows(
            width,
            last,
            |v| self.plan.owner(v),
            |shard, v| self.shards[shard].graph().row_slots(v),
        )
    }

    /// Merge per-shard property stores by vertex ownership.
    pub fn merged_props(&self) -> PropertyStore {
        merge_owned_props(
            |v| self.plan.owner(v),
            self.shards.iter().map(|s| s.props()),
        )
    }

    /// One grouped stats record for the whole fleet (per-shard counters
    /// summed; ghost work is counted on every shard that performed it).
    pub fn merged_stats(&self) -> FlowStats {
        let mut total = FlowStats::default();
        for s in &self.shards {
            total.merge(&s.stats());
        }
        total
    }

    /// Per-shard stats records (index = shard id).
    pub fn shard_stats(&self) -> Vec<FlowStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Labeled metrics exports: the router's snapshot (cross-shard
    /// traffic) followed by each shard's. With metrics off these are
    /// empty-but-valid snapshots.
    pub fn metrics(&self) -> Vec<MetricsSnapshot> {
        let mut out = vec![self.recorder.snapshot()];
        out.extend(self.shards.iter().map(|s| s.metrics()));
        out
    }

    /// Scatter-gather PageRank over the merged graph, bit-identical to
    /// `pagerank_with` on an unsharded engine for any shard count: each
    /// shard pulls over the complete in-adjacency of its owned
    /// vertices (ascending source order), while the dangling-mass and
    /// residual reductions run at the router in global vertex order.
    pub fn pagerank(&mut self, damping: f64, tol: f64, max_iters: usize) -> PageRankResult {
        let n = self.global_width();
        if n == 0 {
            return PageRankResult {
                rank: vec![],
                work: 0,
                residual: 0.0,
                completion: Completion::Complete,
            };
        }
        let mut span = self.recorder.span(Step::BatchAnalytic);
        // Scatter phase setup: per-shard owned vertex lists and
        // in-adjacencies, plus global out-degrees from the owner rows.
        let mut owned: Vec<Vec<VertexId>> = vec![Vec::new(); self.shards.len()];
        for v in 0..n as VertexId {
            owned[self.plan.owner(v)].push(v);
        }
        let in_adj: Vec<Vec<Vec<VertexId>>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| owned_in_adjacency(s.graph(), n, |v| self.plan.owner(v) == i))
            .collect();
        // Rank values pulled across a shard boundary, per iteration.
        let cross_in: u64 = in_adj
            .iter()
            .enumerate()
            .map(|(i, adj)| {
                adj.iter()
                    .flatten()
                    .filter(|&&u| self.plan.owner(u) != i)
                    .count() as u64
            })
            .sum();
        // The owner holds each vertex's exact out-row, so its live
        // degree *is* the global out-degree.
        let out_deg: Vec<f64> = (0..n as VertexId)
            .map(|v| self.shards[self.plan.owner(v)].graph().degree(v) as f64)
            .collect();
        let inv_n = 1.0 / n as f64;
        let mut rank = vec![inv_n; n];
        let mut iters = 0;
        let mut residual = f64::INFINITY;
        while iters < max_iters && residual > tol {
            // Router-side serial reductions in global vertex order —
            // the same summation order as the unsharded kernel.
            let dangling: f64 = (0..n).filter(|&v| out_deg[v] == 0.0).map(|v| rank[v]).sum();
            let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
            let mut next = rank.clone();
            for i in 0..self.shards.len() {
                for (v, r) in
                    pagerank_owned_sweep(&in_adj[i], &owned[i], &rank, &out_deg, base, damping)
                {
                    next[v as usize] = r;
                }
            }
            residual = (0..n).map(|v| (next[v] - rank[v]).abs()).sum();
            rank = next;
            iters += 1;
        }
        let bytes = iters as u64 * RANK_WIRE_BYTES * cross_in;
        self.traffic.pagerank_bytes += bytes;
        span.add_net_bytes(bytes);
        PageRankResult {
            rank,
            work: iters,
            residual,
            completion: Completion::Complete,
        }
    }

    /// Scatter-gather BFS: level-synchronous frontier exchange. Depths
    /// are integers, so the result is exact for any shard count —
    /// identical to `bfs_depths` on the merged graph.
    pub fn bfs(&mut self, src: VertexId) -> Vec<u32> {
        let n = self.global_width();
        let mut depth = vec![UNREACHED; n];
        if (src as usize) >= n {
            return depth;
        }
        let mut span = self.recorder.span(Step::BatchAnalytic);
        depth[src as usize] = 0;
        let mut frontier = vec![src];
        let mut d = 0u32;
        let mut cross = 0u64;
        while !frontier.is_empty() {
            let mut per_shard: Vec<Vec<VertexId>> = vec![Vec::new(); self.shards.len()];
            for &v in &frontier {
                per_shard[self.plan.owner(v)].push(v);
            }
            let mut next = Vec::new();
            for (i, f) in per_shard.iter().enumerate() {
                for c in bfs_owned_expand(self.shards[i].graph(), f) {
                    if self.plan.owner(c) != i {
                        cross += 1;
                    }
                    if (c as usize) < n && depth[c as usize] == UNREACHED {
                        depth[c as usize] = d + 1;
                        next.push(c);
                    }
                }
            }
            d += 1;
            frontier = next;
        }
        let bytes = FRONTIER_WIRE_BYTES * cross;
        self.traffic.bfs_bytes += bytes;
        span.add_net_bytes(bytes);
        depth
    }

    /// Scatter-gather connected components: each shard reduces its
    /// local edges to a spanning forest, the router unions the forests.
    /// Min-id label normalization makes the result independent of shard
    /// count — identical to `wcc_union_find` on the merged graph.
    pub fn components(&mut self) -> Components {
        let n = self.global_width();
        let mut span = self.recorder.span(Step::BatchAnalytic);
        let mut pairs = Vec::new();
        for engine in &self.shards {
            let csr = engine.graph().snapshot();
            pairs.extend(cc_local_forest(&csr, self.symmetrize));
        }
        if self.shards.len() > 1 {
            let bytes = FOREST_PAIR_WIRE_BYTES * pairs.len() as u64;
            self.traffic.components_bytes += bytes;
            span.add_net_bytes(bytes);
        }
        cc_merge_forests(n, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::CsrBuilder;
    use ga_kernels::bfs::bfs_depths;
    use ga_kernels::cc::wcc_union_find;
    use ga_kernels::pagerank::pagerank_with;
    use ga_kernels::KernelCtx;
    use ga_stream::update::{into_batches, rmat_edge_stream};

    fn drive(flow: &mut ShardedFlow, scale: u32, total: usize, seed: u64) {
        for batch in into_batches(rmat_edge_stream(scale, total, 0.2, seed), 128, 1) {
            flow.process_batch(&batch).unwrap();
        }
    }

    #[test]
    fn scatter_gather_matches_unsharded_kernels() {
        let mut one = ShardedFlow::builder(1).build(64).unwrap();
        drive(&mut one, 6, 1200, 11);
        let reference_pr = one.pagerank(0.85, 1e-10, 60);

        for shards in [1usize, 2, 4] {
            let mut flow = ShardedFlow::builder(shards).build(64).unwrap();
            drive(&mut flow, 6, 1200, 11);
            let merged = flow.merged_graph();
            assert_eq!(merged, one.merged_graph(), "{shards}-shard merge");

            // PageRank: bit-identical to the unsharded kernel AND to
            // the 1-shard run.
            let snap = merged.snapshot();
            let csr = CsrBuilder::new(merged.num_vertices())
                .edges(snap.edges())
                .reverse(true)
                .build();
            let kernel = pagerank_with(&csr, 0.85, 1e-10, 60, &KernelCtx::serial());
            let pr = flow.pagerank(0.85, 1e-10, 60);
            assert_eq!(pr.work, kernel.work, "{shards}-shard pagerank iters");
            assert_eq!(pr.rank, kernel.rank, "{shards}-shard pagerank ranks");
            assert_eq!(pr.rank, reference_pr.rank, "{shards}-shard vs 1-shard");

            // BFS depths and components labels are exact integers.
            assert_eq!(flow.bfs(0), bfs_depths(&snap, 0), "{shards}-shard bfs");
            let cc = flow.components();
            let direct = wcc_union_find(&snap);
            assert_eq!(cc.label, direct.label, "{shards}-shard cc labels");
            assert_eq!(cc.count, direct.count, "{shards}-shard cc count");
        }
    }

    #[test]
    fn traffic_is_zero_single_shard_and_positive_sharded() {
        let mut one = ShardedFlow::builder(1).build(64).unwrap();
        drive(&mut one, 6, 800, 3);
        one.pagerank(0.85, 1e-9, 30);
        one.bfs(0);
        one.components();
        assert_eq!(one.traffic(), CrossShardTraffic::default());

        let mut four = ShardedFlow::builder(4).build(64).unwrap();
        drive(&mut four, 6, 800, 3);
        four.pagerank(0.85, 1e-9, 30);
        four.bfs(0);
        four.components();
        let t = four.traffic();
        assert!(t.ingest_bytes > 0, "{t:?}");
        assert!(t.pagerank_bytes > 0, "{t:?}");
        assert!(t.bfs_bytes > 0, "{t:?}");
        assert!(t.components_bytes > 0, "{t:?}");
        assert_eq!(t.ingest_bytes, four.ghost_updates() * UPDATE_WIRE_BYTES);
    }

    #[test]
    fn router_recorder_books_cross_shard_bytes() {
        let mut flow = ShardedFlow::builder(2)
            .record_metrics(true)
            .build(64)
            .unwrap();
        drive(&mut flow, 6, 600, 5);
        flow.pagerank(0.85, 1e-9, 20);
        let snaps = flow.metrics();
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].label, "router");
        assert_eq!(snaps[1].label, "shard-00");
        let t = flow.traffic();
        assert_eq!(
            snaps[0].step(Step::Ingest).net_bytes,
            t.ingest_bytes,
            "router ingest bytes"
        );
        assert_eq!(
            snaps[0].step(Step::BatchAnalytic).net_bytes,
            t.pagerank_bytes,
            "router analytic bytes"
        );
    }
}
