//! Fault injection, re-exported at the flow-engine level, plus the
//! seeded fault *matrix* the crash-recovery suite iterates.
//!
//! The registry itself lives in [`ga_graph::faults`] (the bottom of the
//! dependency stack, so both the WAL in `ga-stream` and the checkpoint
//! writer here can reach it); this module re-exports it and adds the
//! deterministic seed → fault-scenario mapping driven by the
//! `GA_FAULT_SEED` environment variable in CI.

pub use ga_graph::faults::{
    apply_delay, arm, check, clear_all, fired_count, injected, intercept, is_injected, with_scope,
    FaultMode, Intercept,
};

/// One point of the crash-recovery fault matrix: which site misbehaves,
/// how, and after how many successfully processed batches the simulated
/// crash happens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed this plan was derived from.
    pub seed: u64,
    /// Fault site to arm (`None` = clean crash, no injected I/O fault).
    pub site: Option<&'static str>,
    /// How the armed site misbehaves.
    pub mode: Option<FaultMode>,
    /// Crash (abandon the engine) after this many batches have been
    /// offered to the durable path.
    pub crash_after_batches: usize,
    /// Force a checkpoint right before the crash point (exercises
    /// recovery from a just-written checkpoint and checkpoint-time
    /// faults).
    pub checkpoint_before_crash: bool,
    /// Durability retry budget the run should configure
    /// ([`crate::retry::RetryPolicy::max_retries`]). Zero for the
    /// classic points 0–7, preserving their fail-fast semantics; the
    /// transient points 8–9 set it high enough to ride out the fault.
    pub retries: u32,
}

/// Number of distinct scenarios [`FaultPlan::from_seed`] generates
/// before wrapping (CI loops `GA_FAULT_SEED` over `0..MATRIX_SIZE`).
pub const MATRIX_SIZE: u64 = 10;

impl FaultPlan {
    /// Deterministically map a seed to a fault scenario. Seeds beyond
    /// [`MATRIX_SIZE`] wrap, so any `GA_FAULT_SEED` value is valid.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let point = seed % MATRIX_SIZE;
        // Vary the crash point a little with the wrap count so large
        // seeds still add coverage, deterministically.
        let wave = (seed / MATRIX_SIZE) as usize % 3;
        match point {
            // Crash during a WAL append: the frame is vetoed entirely.
            0 => FaultPlan {
                seed,
                site: Some("wal.append"),
                mode: Some(FaultMode::FailOnce),
                crash_after_batches: 3 + wave,
                checkpoint_before_crash: false,
                retries: 0,
            },
            // Crash mid-WAL-append: a torn frame of 5 bytes.
            1 => FaultPlan {
                seed,
                site: Some("wal.append"),
                mode: Some(FaultMode::ShortWrite(5)),
                crash_after_batches: 4 + wave,
                checkpoint_before_crash: false,
                retries: 0,
            },
            // Torn frame that cuts inside the payload, not the header.
            2 => FaultPlan {
                seed,
                site: Some("wal.append"),
                mode: Some(FaultMode::ShortWrite(21)),
                crash_after_batches: 6 + wave,
                checkpoint_before_crash: false,
                retries: 0,
            },
            // Checkpoint write fails outright; WAL must carry recovery.
            3 => FaultPlan {
                seed,
                site: Some("checkpoint.write"),
                mode: Some(FaultMode::FailOnce),
                crash_after_batches: 5 + wave,
                checkpoint_before_crash: true,
                retries: 0,
            },
            // Checkpoint write is torn at the final path; recovery must
            // skip the corrupt file and fall back.
            4 => FaultPlan {
                seed,
                site: Some("checkpoint.write"),
                mode: Some(FaultMode::ShortWrite(64)),
                crash_after_batches: 5 + wave,
                checkpoint_before_crash: true,
                retries: 0,
            },
            // Loading the newest checkpoint fails; recovery falls back
            // to an older one and replays more WAL.
            5 => FaultPlan {
                seed,
                site: Some("checkpoint.load"),
                mode: Some(FaultMode::FailOnce),
                crash_after_batches: 5 + wave,
                checkpoint_before_crash: true,
                retries: 0,
            },
            // Transient WAL fault: the append fails twice, then the
            // retried write succeeds. With retries configured, no batch
            // is lost and no quarantine happens.
            8 => FaultPlan {
                seed,
                site: Some("wal.append"),
                mode: Some(FaultMode::FailTimes(2)),
                crash_after_batches: 5 + wave,
                checkpoint_before_crash: false,
                retries: 3,
            },
            // Transient checkpoint fault: two failed writes, then the
            // retry lands the checkpoint.
            9 => FaultPlan {
                seed,
                site: Some("checkpoint.write"),
                mode: Some(FaultMode::FailTimes(2)),
                crash_after_batches: 5 + wave,
                checkpoint_before_crash: true,
                retries: 3,
            },
            // Clean crash between batches, no injected fault.
            6 => FaultPlan {
                seed,
                site: None,
                mode: None,
                crash_after_batches: 4 + wave,
                checkpoint_before_crash: false,
                retries: 0,
            },
            // Crash immediately after a successful checkpoint.
            _ => FaultPlan {
                seed,
                site: None,
                mode: None,
                crash_after_batches: 4 + wave,
                checkpoint_before_crash: true,
                retries: 0,
            },
        }
    }

    /// Arm this plan's fault (if any) in the global registry.
    pub fn arm(&self) {
        if let (Some(site), Some(mode)) = (self.site, self.mode) {
            arm(site, mode);
        }
    }
}

/// The plan selected by the `GA_FAULT_SEED` environment variable, or
/// `None` when unset/unparsable (test drivers then iterate the full
/// matrix themselves).
pub fn plan_from_env() -> Option<FaultPlan> {
    std::env::var("GA_FAULT_SEED")
        .ok()?
        .trim()
        .parse::<u64>()
        .ok()
        .map(FaultPlan::from_seed)
}

/// One point of the **shard** chaos matrix: which shard of a fleet is
/// faulted, at which shard-scoped site, and when. Unlike [`FaultPlan`]
/// (one engine, process-death crashes), these scenarios fault one
/// member of a live fleet and expect the fleet to classify the error,
/// fail over, and rebuild the member online — see
/// [`crate::sharded::ShardSupervisor`].
///
/// Site names are fully scoped (`"shard-01/wal.append"`), matching the
/// scoped-intercept support in [`ga_graph::faults::with_scope`]; the
/// sharded router wraps each shard's durable I/O in its label's scope,
/// so arming a scoped site faults exactly one shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardFaultPlan {
    /// Seed this plan was derived from.
    pub seed: u64,
    /// The targeted shard (derived from the seed, wrapped to the fleet
    /// size so every seed is valid for every shard count).
    pub shard: usize,
    /// Shard-scoped fault site to arm at the fault point (`None` for
    /// the explicit-kill points).
    pub site: Option<String>,
    /// How the armed site misbehaves.
    pub mode: Option<FaultMode>,
    /// Whether the driver kills the shard outright at the fault point
    /// (simulating member death rather than an I/O fault).
    pub kill: bool,
    /// Arm the fault (and/or kill) after this many batches.
    pub fault_after_batches: usize,
    /// Force a fleet checkpoint right before the fault point, so
    /// rebuild exercises a fresh checkpoint + short WAL suffix.
    pub checkpoint_at_fault: bool,
}

/// Number of distinct scenarios [`ShardFaultPlan::from_seed`]
/// generates before wrapping (CI loops `GA_FAULT_SEED` over
/// `0..SHARD_MATRIX_SIZE` × `GA_SHARDS` ∈ {2, 4}).
pub const SHARD_MATRIX_SIZE: u64 = 10;

impl ShardFaultPlan {
    /// Deterministically map a seed to a shard fault scenario for a
    /// fleet of `num_shards`. Seeds beyond [`SHARD_MATRIX_SIZE`] wrap
    /// with a varied fault point, like [`FaultPlan::from_seed`].
    pub fn from_seed(seed: u64, num_shards: usize) -> ShardFaultPlan {
        assert!(num_shards >= 1);
        let point = seed % SHARD_MATRIX_SIZE;
        let wave = (seed / SHARD_MATRIX_SIZE) as usize % 3;
        let shard = (seed as usize) % num_shards;
        let label = crate::sharded::shard_label(shard);
        let base = ShardFaultPlan {
            seed,
            shard,
            site: None,
            mode: None,
            kill: false,
            fault_after_batches: 3 + wave,
            checkpoint_at_fault: false,
        };
        match point {
            // Hard WAL fault: three consecutive append vetoes exhaust
            // the supervisor's strike budget — Suspect → Dead → online
            // rebuild from checkpoint + WAL + redelivered backlog.
            0 => ShardFaultPlan {
                site: Some(format!("{label}/wal.append")),
                mode: Some(FaultMode::FailTimes(3)),
                ..base
            },
            // One vetoed append: Suspect, the batch is queued, and the
            // next round's redelivery heals the shard.
            1 => ShardFaultPlan {
                site: Some(format!("{label}/wal.append")),
                mode: Some(FaultMode::FailOnce),
                ..base
            },
            // Torn WAL frame: the engine repairs the tail, the router
            // redelivers, the shard self-heals.
            2 => ShardFaultPlan {
                site: Some(format!("{label}/wal.append")),
                mode: Some(FaultMode::ShortWrite(5)),
                ..base
            },
            // Checkpoint write fails on one shard mid-fleet-checkpoint:
            // Suspect, then healed by the next successful delivery.
            3 => ShardFaultPlan {
                site: Some(format!("{label}/checkpoint.write")),
                mode: Some(FaultMode::FailOnce),
                checkpoint_at_fault: true,
                ..base
            },
            // In-band crash: the shard's delivery path dies — immediate
            // Dead, WAL rebuild.
            4 => ShardFaultPlan {
                site: Some(format!("{label}/crash")),
                mode: Some(FaultMode::FailOnce),
                ..base
            },
            // Crash immediately after a fleet checkpoint (short WAL
            // suffix on rebuild).
            5 => ShardFaultPlan {
                site: Some(format!("{label}/crash")),
                mode: Some(FaultMode::FailOnce),
                checkpoint_at_fault: true,
                ..base
            },
            // Router delivery drop (network loss): two sub-batches are
            // dropped on the wire, queued, and redelivered — the shard
            // never leaves Healthy and no update is lost.
            6 => ShardFaultPlan {
                site: Some(format!("{label}/route.drop")),
                mode: Some(FaultMode::FailTimes(2)),
                ..base
            },
            // Transient WAL fault below the strike budget: two vetoes
            // → Suspect, third attempt lands, healed.
            7 => ShardFaultPlan {
                site: Some(format!("{label}/wal.append")),
                mode: Some(FaultMode::FailTimes(2)),
                ..base
            },
            // Member death plus a corrupt-newest-checkpoint rebuild:
            // recovery must fall back to the previous checkpoint and
            // replay a longer WAL suffix.
            8 => ShardFaultPlan {
                site: Some(format!("{label}/checkpoint.load")),
                mode: Some(FaultMode::FailOnce),
                kill: true,
                checkpoint_at_fault: true,
                ..base
            },
            // Clean member death mid-stream, plain WAL rebuild.
            _ => ShardFaultPlan { kill: true, ..base },
        }
    }

    /// Arm this plan's fault site (if any) in the global registry.
    pub fn arm(&self) {
        if let (Some(site), Some(mode)) = (&self.site, self.mode) {
            arm(site, mode);
        }
    }

    /// Whether this scenario is expected to take the shard to `Dead`
    /// (and therefore require a rebuild), given the default supervisor
    /// strike budget of [`crate::sharded::DEFAULT_SUSPECT_STRIKES`].
    pub fn expects_death(&self) -> bool {
        if self.kill {
            return true;
        }
        let Some(site) = &self.site else {
            return false;
        };
        if site.ends_with("/crash") {
            return true;
        }
        matches!(self.mode, Some(FaultMode::FailTimes(k))
            if k >= crate::sharded::DEFAULT_SUSPECT_STRIKES as u64
                && site.ends_with("/wal.append"))
    }
}

/// One point of the **segment-IO** chaos matrix: which tier site
/// misbehaves and how, while a spill-forcing RAM budget keeps the
/// segment store on the hot path. Unlike the crash/shard matrices there
/// is no process death here — the contract under test is the tier's
/// own ladder: retry transient errors, quarantine (never decode)
/// corruption, repair from a source of truth, fall back to the pinned
/// snapshot, and trip the breaker into pinned-in-RAM operation when the
/// device keeps failing — with zero acknowledged updates lost and all
/// kernels bit-identical after scrub + repair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentFaultPlan {
    /// Seed this plan was derived from.
    pub seed: u64,
    /// Tier fault site to arm (`segment.write`, `segment.read`, or
    /// `segment.scrub`).
    pub site: &'static str,
    /// How the armed site misbehaves.
    pub mode: FaultMode,
}

/// Number of distinct scenarios [`SegmentFaultPlan::from_seed`]
/// generates before wrapping (CI loops `GA_FAULT_SEED` over
/// `0..SEGMENT_MATRIX_SIZE`).
pub const SEGMENT_MATRIX_SIZE: u64 = 10;

impl SegmentFaultPlan {
    /// Deterministically map a seed to a segment-IO scenario. Seeds
    /// beyond [`SEGMENT_MATRIX_SIZE`] wrap with a varied fault
    /// magnitude, like the other matrices.
    pub fn from_seed(seed: u64) -> SegmentFaultPlan {
        let point = seed % SEGMENT_MATRIX_SIZE;
        let wave = (seed / SEGMENT_MATRIX_SIZE) % 3;
        let (site, mode) = match point {
            // Spill write vetoed once; the write retry lands it.
            0 => ("segment.write", FaultMode::FailOnce),
            // Torn spill: a 12-byte frame fragment at the final path —
            // exactly what a crash mid-write leaves. The next read must
            // CRC-detect it, quarantine, and repair.
            1 => ("segment.write", FaultMode::ShortWrite(12 + wave as usize)),
            // Persistent write failure past the retry budget: the
            // segment stays resident (non-evictable) rather than lost,
            // and the breaker arms.
            2 => ("segment.write", FaultMode::FailTimes(3 + wave)),
            // One vetoed demand read; the read retry recovers it.
            3 => ("segment.read", FaultMode::FailOnce),
            // A device that fails every read: pinned fallback serves
            // every row and the breaker trips to pinned mode.
            4 => ("segment.read", FaultMode::FailTimes(64)),
            // Intermittent read errors (every 3rd IO).
            5 => ("segment.read", FaultMode::FailEveryNth(3)),
            // A slow disk, not a broken one: every read delayed, all
            // answers still exact, `slow_ios` counted.
            6 => ("segment.read", FaultMode::Delay(wave)),
            // Scrub read errors: counted as scrub errors, and the
            // segment is NOT quarantined — an IO error is not a verdict
            // on the bytes.
            7 => ("segment.scrub", FaultMode::FailOnce),
            // Slow scrub pass.
            8 => ("segment.scrub", FaultMode::Delay(wave)),
            // Slow spill path.
            _ => ("segment.write", FaultMode::Delay(wave)),
        };
        SegmentFaultPlan { seed, site, mode }
    }

    /// Arm this plan's fault in the global registry.
    pub fn arm(&self) {
        arm(self.site, self.mode);
    }

    /// Whether this scenario only slows IO (a [`FaultMode::Delay`]
    /// point): no error path should fire at all, only `slow_ios`.
    pub fn slow_only(&self) -> bool {
        matches!(self.mode, FaultMode::Delay(_))
    }
}

/// The segment plan selected by `GA_FAULT_SEED`, or `None` when the
/// variable is unset/unparsable.
pub fn segment_plan_from_env() -> Option<SegmentFaultPlan> {
    std::env::var("GA_FAULT_SEED")
        .ok()?
        .trim()
        .parse::<u64>()
        .ok()
        .map(SegmentFaultPlan::from_seed)
}

/// The shard plan selected by `GA_FAULT_SEED` for a fleet of
/// `num_shards`, or `None` when the variable is unset/unparsable.
pub fn shard_plan_from_env(num_shards: usize) -> Option<ShardFaultPlan> {
    std::env::var("GA_FAULT_SEED")
        .ok()?
        .trim()
        .parse::<u64>()
        .ok()
        .map(|s| ShardFaultPlan::from_seed(s, num_shards))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_cover_all_sites() {
        let plans: Vec<FaultPlan> = (0..MATRIX_SIZE).map(FaultPlan::from_seed).collect();
        assert_eq!(
            plans,
            (0..MATRIX_SIZE)
                .map(FaultPlan::from_seed)
                .collect::<Vec<_>>()
        );
        let sites: std::collections::HashSet<_> = plans.iter().filter_map(|p| p.site).collect();
        assert!(sites.contains("wal.append"));
        assert!(sites.contains("checkpoint.write"));
        assert!(sites.contains("checkpoint.load"));
        // And at least one clean-crash point.
        assert!(plans.iter().any(|p| p.site.is_none()));
    }

    #[test]
    fn transient_points_carry_a_retry_budget() {
        for p in (0..MATRIX_SIZE).map(FaultPlan::from_seed) {
            let transient = matches!(p.mode, Some(FaultMode::FailTimes(_)));
            assert_eq!(transient, p.retries > 0, "point {}", p.seed);
            if let Some(FaultMode::FailTimes(k)) = p.mode {
                // The budget must be able to outlast the fault.
                assert!(p.retries as u64 >= k, "point {}", p.seed);
            }
        }
        // Both transient points exist: one per durable write site.
        assert_eq!(FaultPlan::from_seed(8).mode, Some(FaultMode::FailTimes(2)));
        assert_eq!(FaultPlan::from_seed(8).site, Some("wal.append"));
        assert_eq!(FaultPlan::from_seed(9).site, Some("checkpoint.write"));
    }

    #[test]
    fn large_seeds_wrap_with_varied_crash_points() {
        let a = FaultPlan::from_seed(0);
        let b = FaultPlan::from_seed(MATRIX_SIZE);
        assert_eq!(a.site, b.site);
        assert_ne!(a.crash_after_batches, b.crash_after_batches);
    }

    #[test]
    fn shard_matrix_is_deterministic_and_scoped_to_the_target() {
        for num_shards in [2usize, 4] {
            let plans: Vec<ShardFaultPlan> = (0..SHARD_MATRIX_SIZE)
                .map(|s| ShardFaultPlan::from_seed(s, num_shards))
                .collect();
            assert_eq!(
                plans,
                (0..SHARD_MATRIX_SIZE)
                    .map(|s| ShardFaultPlan::from_seed(s, num_shards))
                    .collect::<Vec<_>>()
            );
            for p in &plans {
                assert!(p.shard < num_shards);
                if let Some(site) = &p.site {
                    let label = crate::sharded::shard_label(p.shard);
                    assert!(
                        site.starts_with(&format!("{label}/")),
                        "site must be scoped to the target shard: {site}"
                    );
                }
            }
            // All four shard-scoped site kinds appear in the matrix.
            let suffixes = [
                "/wal.append",
                "/checkpoint.write",
                "/checkpoint.load",
                "/crash",
            ];
            for suffix in suffixes {
                assert!(
                    plans
                        .iter()
                        .any(|p| p.site.as_deref().is_some_and(|s| s.ends_with(suffix))),
                    "matrix must cover {suffix}"
                );
            }
            assert!(plans.iter().any(|p| p
                .site
                .as_deref()
                .is_some_and(|s| s.ends_with("/route.drop"))));
            // Both death modes (I/O-driven and explicit kill) and both
            // survivable modes exist.
            assert!(plans.iter().any(|p| p.kill));
            assert!(plans.iter().any(|p| p.expects_death() && !p.kill));
            assert!(plans.iter().any(|p| !p.expects_death()));
        }
    }

    #[test]
    fn shard_matrix_wraps_with_varied_fault_points() {
        let a = ShardFaultPlan::from_seed(0, 4);
        let b = ShardFaultPlan::from_seed(SHARD_MATRIX_SIZE, 4);
        assert_ne!(a.fault_after_batches, b.fault_after_batches);
    }

    #[test]
    fn segment_matrix_is_deterministic_and_covers_all_sites_and_modes() {
        let plans: Vec<SegmentFaultPlan> = (0..SEGMENT_MATRIX_SIZE)
            .map(SegmentFaultPlan::from_seed)
            .collect();
        assert_eq!(
            plans,
            (0..SEGMENT_MATRIX_SIZE)
                .map(SegmentFaultPlan::from_seed)
                .collect::<Vec<_>>()
        );
        for site in ["segment.write", "segment.read", "segment.scrub"] {
            assert!(
                plans.iter().any(|p| p.site == site),
                "matrix must cover {site}"
            );
        }
        // All five fault modes appear, including slow-IO Delay.
        assert!(plans.iter().any(|p| matches!(p.mode, FaultMode::FailOnce)));
        assert!(plans
            .iter()
            .any(|p| matches!(p.mode, FaultMode::FailTimes(_))));
        assert!(plans
            .iter()
            .any(|p| matches!(p.mode, FaultMode::FailEveryNth(_))));
        assert!(plans
            .iter()
            .any(|p| matches!(p.mode, FaultMode::ShortWrite(_))));
        assert!(plans.iter().any(|p| p.slow_only()));
        // Delay appears on every one of the three sites across the
        // matrix (read, scrub, write at points 6, 8, 9).
        for site in ["segment.write", "segment.read", "segment.scrub"] {
            assert!(
                plans.iter().any(|p| p.site == site && p.slow_only()),
                "Delay must cover {site}"
            );
        }
    }

    #[test]
    fn segment_matrix_wraps_with_varied_magnitudes() {
        let a = SegmentFaultPlan::from_seed(1);
        let b = SegmentFaultPlan::from_seed(1 + SEGMENT_MATRIX_SIZE);
        assert_eq!(a.site, b.site);
        assert_ne!(a.mode, b.mode);
    }
}
