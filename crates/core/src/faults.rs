//! Fault injection, re-exported at the flow-engine level, plus the
//! seeded fault *matrix* the crash-recovery suite iterates.
//!
//! The registry itself lives in [`ga_graph::faults`] (the bottom of the
//! dependency stack, so both the WAL in `ga-stream` and the checkpoint
//! writer here can reach it); this module re-exports it and adds the
//! deterministic seed → fault-scenario mapping driven by the
//! `GA_FAULT_SEED` environment variable in CI.

pub use ga_graph::faults::{
    arm, check, clear_all, fired_count, injected, intercept, is_injected, FaultMode, Intercept,
};

/// One point of the crash-recovery fault matrix: which site misbehaves,
/// how, and after how many successfully processed batches the simulated
/// crash happens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed this plan was derived from.
    pub seed: u64,
    /// Fault site to arm (`None` = clean crash, no injected I/O fault).
    pub site: Option<&'static str>,
    /// How the armed site misbehaves.
    pub mode: Option<FaultMode>,
    /// Crash (abandon the engine) after this many batches have been
    /// offered to the durable path.
    pub crash_after_batches: usize,
    /// Force a checkpoint right before the crash point (exercises
    /// recovery from a just-written checkpoint and checkpoint-time
    /// faults).
    pub checkpoint_before_crash: bool,
    /// Durability retry budget the run should configure
    /// ([`crate::retry::RetryPolicy::max_retries`]). Zero for the
    /// classic points 0–7, preserving their fail-fast semantics; the
    /// transient points 8–9 set it high enough to ride out the fault.
    pub retries: u32,
}

/// Number of distinct scenarios [`FaultPlan::from_seed`] generates
/// before wrapping (CI loops `GA_FAULT_SEED` over `0..MATRIX_SIZE`).
pub const MATRIX_SIZE: u64 = 10;

impl FaultPlan {
    /// Deterministically map a seed to a fault scenario. Seeds beyond
    /// [`MATRIX_SIZE`] wrap, so any `GA_FAULT_SEED` value is valid.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let point = seed % MATRIX_SIZE;
        // Vary the crash point a little with the wrap count so large
        // seeds still add coverage, deterministically.
        let wave = (seed / MATRIX_SIZE) as usize % 3;
        match point {
            // Crash during a WAL append: the frame is vetoed entirely.
            0 => FaultPlan {
                seed,
                site: Some("wal.append"),
                mode: Some(FaultMode::FailOnce),
                crash_after_batches: 3 + wave,
                checkpoint_before_crash: false,
                retries: 0,
            },
            // Crash mid-WAL-append: a torn frame of 5 bytes.
            1 => FaultPlan {
                seed,
                site: Some("wal.append"),
                mode: Some(FaultMode::ShortWrite(5)),
                crash_after_batches: 4 + wave,
                checkpoint_before_crash: false,
                retries: 0,
            },
            // Torn frame that cuts inside the payload, not the header.
            2 => FaultPlan {
                seed,
                site: Some("wal.append"),
                mode: Some(FaultMode::ShortWrite(21)),
                crash_after_batches: 6 + wave,
                checkpoint_before_crash: false,
                retries: 0,
            },
            // Checkpoint write fails outright; WAL must carry recovery.
            3 => FaultPlan {
                seed,
                site: Some("checkpoint.write"),
                mode: Some(FaultMode::FailOnce),
                crash_after_batches: 5 + wave,
                checkpoint_before_crash: true,
                retries: 0,
            },
            // Checkpoint write is torn at the final path; recovery must
            // skip the corrupt file and fall back.
            4 => FaultPlan {
                seed,
                site: Some("checkpoint.write"),
                mode: Some(FaultMode::ShortWrite(64)),
                crash_after_batches: 5 + wave,
                checkpoint_before_crash: true,
                retries: 0,
            },
            // Loading the newest checkpoint fails; recovery falls back
            // to an older one and replays more WAL.
            5 => FaultPlan {
                seed,
                site: Some("checkpoint.load"),
                mode: Some(FaultMode::FailOnce),
                crash_after_batches: 5 + wave,
                checkpoint_before_crash: true,
                retries: 0,
            },
            // Transient WAL fault: the append fails twice, then the
            // retried write succeeds. With retries configured, no batch
            // is lost and no quarantine happens.
            8 => FaultPlan {
                seed,
                site: Some("wal.append"),
                mode: Some(FaultMode::FailTimes(2)),
                crash_after_batches: 5 + wave,
                checkpoint_before_crash: false,
                retries: 3,
            },
            // Transient checkpoint fault: two failed writes, then the
            // retry lands the checkpoint.
            9 => FaultPlan {
                seed,
                site: Some("checkpoint.write"),
                mode: Some(FaultMode::FailTimes(2)),
                crash_after_batches: 5 + wave,
                checkpoint_before_crash: true,
                retries: 3,
            },
            // Clean crash between batches, no injected fault.
            6 => FaultPlan {
                seed,
                site: None,
                mode: None,
                crash_after_batches: 4 + wave,
                checkpoint_before_crash: false,
                retries: 0,
            },
            // Crash immediately after a successful checkpoint.
            _ => FaultPlan {
                seed,
                site: None,
                mode: None,
                crash_after_batches: 4 + wave,
                checkpoint_before_crash: true,
                retries: 0,
            },
        }
    }

    /// Arm this plan's fault (if any) in the global registry.
    pub fn arm(&self) {
        if let (Some(site), Some(mode)) = (self.site, self.mode) {
            arm(site, mode);
        }
    }
}

/// The plan selected by the `GA_FAULT_SEED` environment variable, or
/// `None` when unset/unparsable (test drivers then iterate the full
/// matrix themselves).
pub fn plan_from_env() -> Option<FaultPlan> {
    std::env::var("GA_FAULT_SEED")
        .ok()?
        .trim()
        .parse::<u64>()
        .ok()
        .map(FaultPlan::from_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_cover_all_sites() {
        let plans: Vec<FaultPlan> = (0..MATRIX_SIZE).map(FaultPlan::from_seed).collect();
        assert_eq!(
            plans,
            (0..MATRIX_SIZE)
                .map(FaultPlan::from_seed)
                .collect::<Vec<_>>()
        );
        let sites: std::collections::HashSet<_> = plans.iter().filter_map(|p| p.site).collect();
        assert!(sites.contains("wal.append"));
        assert!(sites.contains("checkpoint.write"));
        assert!(sites.contains("checkpoint.load"));
        // And at least one clean-crash point.
        assert!(plans.iter().any(|p| p.site.is_none()));
    }

    #[test]
    fn transient_points_carry_a_retry_budget() {
        for p in (0..MATRIX_SIZE).map(FaultPlan::from_seed) {
            let transient = matches!(p.mode, Some(FaultMode::FailTimes(_)));
            assert_eq!(transient, p.retries > 0, "point {}", p.seed);
            if let Some(FaultMode::FailTimes(k)) = p.mode {
                // The budget must be able to outlast the fault.
                assert!(p.retries as u64 >= k, "point {}", p.seed);
            }
        }
        // Both transient points exist: one per durable write site.
        assert_eq!(FaultPlan::from_seed(8).mode, Some(FaultMode::FailTimes(2)));
        assert_eq!(FaultPlan::from_seed(8).site, Some("wal.append"));
        assert_eq!(FaultPlan::from_seed(9).site, Some("checkpoint.write"));
    }

    #[test]
    fn large_seeds_wrap_with_varied_crash_points() {
        let a = FaultPlan::from_seed(0);
        let b = FaultPlan::from_seed(MATRIX_SIZE);
        assert_eq!(a.site, b.site);
        assert_ne!(a.crash_after_batches, b.crash_after_batches);
    }
}
