//! Fig. 2: the canonical graph-processing flow, with instrumentation.
//!
//! The paper's conclusion asks for exactly this artifact: "a reference
//! implementation, with explicit instrumentation, of a combined
//! benchmark would allow calibration of the model."
//!
//! [`FlowEngine`] wires the stages of Fig. 2 together around a
//! persistent property graph:
//!
//! ```text
//!   update stream ─▶ StreamEngine ─ monitors ─ events ─┐
//!                         │                            ▼ (threshold)
//!   bulk records ─▶ dedup ┴▶ persistent graph ◀─ property write-back
//!                              │        ▲
//!              selection criteria       │
//!                seeds ─▶ subgraph extraction (+projection)
//!                              │
//!                       batch analytics ─▶ global metrics / alerts
//! ```
//!
//! Every stage increments [`FlowStats`] — the calibration counters the
//! NORA model (`crate::model`) prices.

use crate::durability::{Checkpoint, Durability};
use ga_graph::sub::{extract_ball, Subgraph};
use ga_graph::{DynamicGraph, ExtractOptions, PropertyStore, VertexId};
use ga_kernels::{topk, KernelCtx, Parallelism};
use ga_stream::engine::QuarantinedUpdate;
use ga_stream::update::UpdateBatch;
use ga_stream::{Event, StreamEngine};
use std::io;
use std::path::{Path, PathBuf};

/// How the batch path picks its seed vertices (Fig. 2's "selection
/// criteria" box).
#[derive(Clone, Debug)]
pub enum SelectionCriteria {
    /// Explicit vertex list ("as simple as specifying some particular
    /// vertex").
    Explicit(Vec<VertexId>),
    /// Scan for the top-k vertices of a property column ("scanning for
    /// the top-k vertices with the highest values of some properties").
    TopKProperty {
        /// Property column name.
        name: String,
        /// Seed count.
        k: usize,
    },
    /// Top-k by current out-degree.
    TopKDegree {
        /// Seed count.
        k: usize,
    },
    /// All vertices whose property exceeds a threshold.
    PropertyAbove {
        /// Property column name.
        name: String,
        /// Threshold.
        tau: f64,
    },
}

/// What a batch analytic produced.
#[derive(Clone, Debug, Default)]
pub struct AnalyticOutput {
    /// Global scalar metrics (name, value).
    pub globals: Vec<(String, f64)>,
    /// Per-vertex properties in *subgraph* ids, to be written back
    /// through the back-map.
    pub vertex_props: Vec<(String, Vec<f64>)>,
    /// Human-readable alerts for the external system.
    pub alerts: Vec<String>,
}

/// A batch analytic runnable on an extracted subgraph.
pub trait BatchAnalytic {
    /// Stable name (used in stats and write-back provenance).
    fn name(&self) -> &'static str;
    /// Run on the extracted subgraph. The context selects serial vs
    /// parallel kernel engines and collects the kernels' operation
    /// counters, which the engine drains into [`FlowStats`] after each
    /// run.
    fn run(&self, sub: &Subgraph, ctx: &KernelCtx) -> AnalyticOutput;
}

/// The instrumentation record (the paper's "explicit instrumentation").
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FlowStats {
    /// Raw records deduped into the graph.
    pub records_ingested: usize,
    /// Entities created by dedup.
    pub entities_created: usize,
    /// Batch runs executed.
    pub batch_runs: usize,
    /// Seeds selected across runs.
    pub seeds_selected: usize,
    /// Subgraphs extracted.
    pub subgraphs_extracted: usize,
    /// Vertices copied into extracted subgraphs.
    pub vertices_extracted: usize,
    /// Edges copied into extracted subgraphs.
    pub edges_extracted: usize,
    /// Property values written back to the persistent graph.
    pub props_written_back: usize,
    /// Global metrics produced.
    pub globals_produced: usize,
    /// Alerts raised.
    pub alerts_raised: usize,
    /// Streaming updates applied.
    pub updates_applied: usize,
    /// Malformed streaming updates quarantined to the dead-letter queue
    /// instead of applied.
    pub updates_quarantined: usize,
    /// Streaming events observed.
    pub events_observed: usize,
    /// Streaming events that triggered a batch analytic.
    pub triggers_fired: usize,
    /// CPU operations the batch kernels reported ([`ga_graph::OpCounters`]).
    pub kernel_cpu_ops: usize,
    /// Memory traffic (bytes) the batch kernels reported.
    pub kernel_mem_bytes: usize,
    /// Edges the batch kernels touched.
    pub kernel_edges_touched: usize,
    /// CSR snapshot rebuilds (full + delta) the batch path performed.
    pub snapshot_rebuilds: usize,
    /// Rows whose CSR slices were reused from the previous snapshot
    /// instead of re-sorted (the delta path's savings).
    pub snapshot_rows_reused: usize,
    /// Bytes written into snapshot arrays — the measured cost of Fig. 2's
    /// "copy subgraph into faster memory" step the model prices.
    pub snapshot_mem_bytes: usize,
}

/// Report of one batch run.
#[derive(Clone, Debug)]
pub struct BatchRunReport {
    /// The analytic that ran.
    pub analytic: &'static str,
    /// Seeds used.
    pub seeds: Vec<VertexId>,
    /// Extracted subgraph size (vertices, edges).
    pub subgraph_size: (usize, usize),
    /// Global metrics produced.
    pub globals: Vec<(String, f64)>,
    /// Alerts raised.
    pub alerts: Vec<String>,
}

/// The Fig. 2 engine: a persistent graph with batch and streaming paths.
pub struct FlowEngine {
    stream: StreamEngine,
    analytics: Vec<Box<dyn BatchAnalytic>>,
    stats: FlowStats,
    durability: Option<Durability>,
    /// Extraction settings used by both paths.
    pub extract: ExtractOptions,
    /// Property columns projected into extracted subgraphs.
    pub project_columns: Vec<String>,
    /// Kernel execution context handed to every analytic run; set its
    /// `parallelism` to steer serial/parallel kernel dispatch.
    pub kernel_ctx: KernelCtx,
}

impl FlowEngine {
    /// Engine over an empty persistent graph of `num_vertices`.
    pub fn new(num_vertices: usize) -> Self {
        Self::with_graph(
            DynamicGraph::new(num_vertices),
            PropertyStore::new(num_vertices),
        )
    }

    /// Engine over an existing persistent graph.
    pub fn with_graph(graph: DynamicGraph, props: PropertyStore) -> Self {
        FlowEngine {
            stream: StreamEngine::with_graph(graph, props),
            analytics: Vec::new(),
            stats: FlowStats::default(),
            durability: None,
            extract: ExtractOptions {
                depth: 2,
                max_vertices: 4096,
                undirected_expand: false,
            },
            project_columns: Vec::new(),
            kernel_ctx: KernelCtx::new(Parallelism::Auto),
        }
    }

    /// Register a batch analytic; returns its index.
    pub fn register_analytic(&mut self, a: Box<dyn BatchAnalytic>) -> usize {
        self.analytics.push(a);
        self.analytics.len() - 1
    }

    /// Attach a streaming monitor (incremental kernel).
    pub fn register_monitor(&mut self, m: Box<dyn ga_stream::Monitor>) {
        self.stream.register(m);
    }

    /// The persistent graph.
    pub fn graph(&self) -> &DynamicGraph {
        self.stream.graph()
    }

    /// The persistent property store.
    pub fn props(&self) -> &PropertyStore {
        self.stream.props()
    }

    /// Mutable property access (bulk write-back).
    pub fn props_mut(&mut self) -> &mut PropertyStore {
        self.stream.props_mut()
    }

    /// The instrumentation counters.
    pub fn stats(&self) -> FlowStats {
        self.stats
    }

    /// The stream layer's own counters (persisted in checkpoints and
    /// restored by recovery alongside [`FlowStats`]).
    pub fn stream_stats(&self) -> ga_stream::engine::StreamStats {
        self.stream.stats()
    }

    /// Record that `records → entities` dedup ingest happened (the
    /// caller builds graph edges from the deduped entities; see the
    /// NORA example for the full path).
    pub fn note_ingest(&mut self, records: usize, entities: usize) {
        self.stats.records_ingested += records;
        self.stats.entities_created += entities;
    }

    /// Resolve selection criteria into seed vertices.
    pub fn select_seeds(&self, criteria: &SelectionCriteria) -> Vec<VertexId> {
        match criteria {
            SelectionCriteria::Explicit(v) => v.clone(),
            SelectionCriteria::TopKProperty { name, k } => {
                topk::top_k_property(self.stream.props(), name, *k)
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect()
            }
            SelectionCriteria::TopKDegree { k } => {
                let g = self.stream.graph();
                topk::top_k_by(g.num_vertices(), *k, |v| Some(g.degree(v) as f64))
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect()
            }
            SelectionCriteria::PropertyAbove { name, tau } => {
                let tau = *tau;
                self.stream.props().select_f64(name, |x| x > tau)
            }
        }
    }

    /// The full batch path: select seeds → extract (with projection) →
    /// run the analytic → write back vertex properties → collect
    /// globals and alerts.
    pub fn run_batch(
        &mut self,
        criteria: &SelectionCriteria,
        analytic_idx: usize,
    ) -> BatchRunReport {
        let seeds = self.select_seeds(criteria);
        self.stats.seeds_selected += seeds.len();
        self.run_batch_on_seeds(&seeds, analytic_idx)
    }

    fn run_batch_on_seeds(&mut self, seeds: &[VertexId], analytic_idx: usize) -> BatchRunReport {
        // Freeze through the stream engine's snapshot cache: repeat
        // triggers against an unchanged graph reuse the cached CSR, and
        // after an update batch only the dirtied rows are rebuilt.
        let snap = self.stream.csr_snapshot(self.kernel_ctx.parallelism);
        let snap_stats = self.stream.take_snapshot_stats();
        self.stats.snapshot_rebuilds += snap_stats.rebuilds() as usize;
        self.stats.snapshot_rows_reused += snap_stats.rows_reused as usize;
        self.stats.snapshot_mem_bytes += snap_stats.mem_bytes as usize;
        let cols: Vec<&str> = self.project_columns.iter().map(|s| s.as_str()).collect();
        let props_ref = (!cols.is_empty()).then(|| (self.stream.props(), cols.as_slice()));
        let sub = extract_ball(&snap, seeds, &self.extract, props_ref);
        self.stats.subgraphs_extracted += 1;
        self.stats.vertices_extracted += sub.num_vertices();
        self.stats.edges_extracted += sub.graph.num_edges();

        let analytic = &self.analytics[analytic_idx];
        let name = analytic.name();
        let out = analytic.run(&sub, &self.kernel_ctx);
        // Drain the kernels' operation counters into the run stats — the
        // measured inputs model calibration consumes.
        let ops = self.kernel_ctx.take();
        self.stats.kernel_cpu_ops += ops.cpu_ops as usize;
        self.stats.kernel_mem_bytes += ops.mem_bytes as usize;
        self.stats.kernel_edges_touched += ops.edges_touched as usize;
        self.stats.batch_runs += 1;
        self.stats.globals_produced += out.globals.len();
        self.stats.alerts_raised += out.alerts.len();

        // Write back per-vertex results through the back-map ("use of
        // the analytic to compute/update properties of vertices ... sent
        // back to update the original persistent graph").
        for (prop_name, values) in &out.vertex_props {
            assert_eq!(values.len(), sub.num_vertices());
            for (local, &value) in values.iter().enumerate() {
                let global = sub.back_map[local];
                self.stream.props_mut().set(prop_name, global, value);
                self.stats.props_written_back += 1;
            }
        }
        BatchRunReport {
            analytic: name,
            seeds: seeds.to_vec(),
            subgraph_size: (sub.num_vertices(), sub.graph.num_edges()),
            globals: out.globals,
            alerts: out.alerts,
        }
    }

    /// The streaming path: apply a batch of updates, observe monitor
    /// events, and for each event the `trigger` turns into seeds, run
    /// the chosen analytic on the extracted neighborhood ("use the
    /// modified vertices/edges as seeds into a subgraph extraction
    /// process similar to that described for the batch process").
    pub fn process_stream(
        &mut self,
        batch: &UpdateBatch,
        trigger: impl Fn(&Event) -> Option<Vec<VertexId>>,
        analytic_idx: Option<usize>,
    ) -> Vec<BatchRunReport> {
        let quarantined = self.stream.apply_batch(batch);
        self.stats.updates_applied += batch.updates.len() - quarantined;
        self.stats.updates_quarantined += quarantined;
        let events = self.stream.take_events();
        self.stats.events_observed += events.len();
        let mut reports = Vec::new();
        for ev in &events {
            if let Some(seeds) = trigger(ev) {
                self.stats.triggers_fired += 1;
                if let Some(idx) = analytic_idx {
                    self.stats.seeds_selected += seeds.len();
                    reports.push(self.run_batch_on_seeds(&seeds, idx));
                }
            }
        }
        reports
    }

    // -----------------------------------------------------------------
    // Durability: WAL + checkpoint/recovery (crate::durability).
    // -----------------------------------------------------------------

    /// Make this engine durable: every subsequent
    /// [`Self::process_stream_durable`] batch is written ahead to a log
    /// in `dir`, and [`Self::checkpoint`] snapshots full state there.
    ///
    /// Writes an initial checkpoint capturing the *current* state, so
    /// recovery always has a base — including any graph content or
    /// analytic write-backs that predate durability (those are not in
    /// the WAL and are only durable via checkpoints). Fails if `dir`
    /// already holds engine state; use [`Self::recover`] for that.
    pub fn enable_durability(&mut self, dir: impl AsRef<Path>) -> io::Result<()> {
        let ckpt = self.snapshot(1);
        self.durability = Some(Durability::create(dir, &ckpt)?);
        Ok(())
    }

    /// Whether [`Self::enable_durability`] / [`Self::recover`] attached
    /// a durability directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Sequence number the next WAL append will carry (1-based; frame
    /// `i` holds the `i`-th durable batch). Recovery drivers use this to
    /// know where to resume an input stream.
    pub fn next_wal_seq(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.next_wal_seq())
    }

    /// Cursor of the newest successfully written checkpoint.
    pub fn last_checkpoint_seq(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.last_checkpoint_seq())
    }

    /// Durable form of [`Self::process_stream`]: the batch is appended
    /// to the write-ahead log (fsynced) *before* it touches the engine,
    /// so a crash at any later point replays it on recovery.
    ///
    /// On a WAL error the engine state is untouched and the batch is
    /// NOT applied — the caller decides whether to retry or crash.
    pub fn process_stream_durable(
        &mut self,
        batch: &UpdateBatch,
        trigger: impl Fn(&Event) -> Option<Vec<VertexId>>,
        analytic_idx: Option<usize>,
    ) -> io::Result<Vec<BatchRunReport>> {
        let Some(d) = self.durability.as_mut() else {
            return Err(io::Error::other(
                "durability not enabled; call enable_durability or recover first",
            ));
        };
        d.append(batch)?;
        Ok(self.process_stream(batch, trigger, analytic_idx))
    }

    /// Snapshot current state as a checkpoint with the given cursor.
    fn snapshot(&self, next_wal_seq: u64) -> Checkpoint {
        Checkpoint {
            graph: self.stream.graph().clone(),
            props: self.stream.props().clone(),
            flow: self.stats,
            stream: self.stream.stats(),
            symmetrize: self.stream.symmetrize,
            vertex_limit: self.stream.vertex_limit() as u64,
            last_batch_time: self.stream.last_batch_time(),
            next_wal_seq,
        }
    }

    /// Write a checkpoint of the current state, rotate the WAL, and
    /// prune old files. Returns the checkpoint's path.
    pub fn checkpoint(&mut self) -> io::Result<PathBuf> {
        let Some(d) = self.durability.as_mut() else {
            return Err(io::Error::other(
                "durability not enabled; call enable_durability or recover first",
            ));
        };
        let ckpt = Checkpoint {
            graph: self.stream.graph().clone(),
            props: self.stream.props().clone(),
            flow: self.stats,
            stream: self.stream.stats(),
            symmetrize: self.stream.symmetrize,
            vertex_limit: self.stream.vertex_limit() as u64,
            last_batch_time: self.stream.last_batch_time(),
            next_wal_seq: d.next_wal_seq(),
        };
        d.checkpoint(&ckpt)
    }

    /// Rebuild an engine from a durability directory: load the newest
    /// usable checkpoint, replay the WAL suffix through the normal
    /// ingest path (quarantine included), and reattach the log for
    /// further appends.
    ///
    /// The recovered state — graph slots, property columns, stats,
    /// batch-time watermark — is bit-identical to an uninterrupted run
    /// over the same durable batches. Configuration that is not state
    /// (registered analytics, monitors, extraction options, kernel
    /// context) is NOT persisted; re-register after recovery.
    pub fn recover(dir: impl AsRef<Path>) -> io::Result<FlowEngine> {
        let (durability, ckpt, replay) = Durability::recover(dir)?;
        let mut engine = FlowEngine::with_graph(ckpt.graph, ckpt.props);
        engine.stats = ckpt.flow;
        engine.stream.set_stats(ckpt.stream);
        engine.stream.symmetrize = ckpt.symmetrize;
        engine.stream.set_vertex_limit(ckpt.vertex_limit as usize);
        engine.stream.set_last_batch_time(ckpt.last_batch_time);
        engine.durability = Some(durability);
        for (_seq, batch) in &replay {
            // Replay through the plain path: the frames are already in
            // the log, and re-validation re-quarantines deterministically.
            engine.process_stream(batch, |_| None, None);
        }
        Ok(engine)
    }

    /// Quarantined updates, oldest first (bounded dead-letter queue).
    pub fn dead_letters(&self) -> impl Iterator<Item = &QuarantinedUpdate> {
        self.stream.dead_letters()
    }

    /// Set the vertex-id bound above which updates are quarantined.
    pub fn set_vertex_limit(&mut self, limit: usize) {
        self.stream.set_vertex_limit(limit);
    }

    /// Mirror edge updates in both directions (undirected mode). Must
    /// match across crash/recovery for replay to reproduce state.
    pub fn set_symmetrize(&mut self, symmetrize: bool) {
        self.stream.symmetrize = symmetrize;
    }
}

// ---------------------------------------------------------------------
// Built-in analytics wrapping the kernel crate.
// ---------------------------------------------------------------------

/// PageRank over the extracted subgraph; writes `pagerank` back.
pub struct PageRankAnalytic {
    /// Damping factor (0.85 typical).
    pub damping: f64,
}

impl BatchAnalytic for PageRankAnalytic {
    fn name(&self) -> &'static str {
        "pagerank"
    }
    fn run(&self, sub: &Subgraph, ctx: &KernelCtx) -> AnalyticOutput {
        let r = ga_kernels::pagerank::pagerank_delta_with(&sub.graph, self.damping, 1e-3, ctx);
        AnalyticOutput {
            globals: vec![("pagerank_pushes".into(), r.work as f64)],
            vertex_props: vec![("pagerank".into(), r.rank)],
            alerts: vec![],
        }
    }
}

/// Connected components; writes `component` back and reports the count.
pub struct ComponentsAnalytic;

impl BatchAnalytic for ComponentsAnalytic {
    fn name(&self) -> &'static str {
        "components"
    }
    fn run(&self, sub: &Subgraph, ctx: &KernelCtx) -> AnalyticOutput {
        let c = ga_kernels::cc::wcc_with(&sub.graph, ctx);
        AnalyticOutput {
            globals: vec![("num_components".into(), c.count as f64)],
            vertex_props: vec![(
                "component".into(),
                c.label.iter().map(|&l| l as f64).collect(),
            )],
            alerts: vec![],
        }
    }
}

/// Triangle count + clustering; alerts when transitivity exceeds a
/// threshold (a toy "dense neighborhood" detector).
pub struct TriangleAnalytic {
    /// Transitivity above which to raise an alert.
    pub alert_transitivity: f64,
}

impl BatchAnalytic for TriangleAnalytic {
    fn name(&self) -> &'static str {
        "triangles"
    }
    fn run(&self, sub: &Subgraph, ctx: &KernelCtx) -> AnalyticOutput {
        let c = ga_kernels::cluster::clustering_coefficients(&sub.graph);
        let triangles = ga_kernels::triangles::count_global_with(&sub.graph, ctx);
        let mut alerts = vec![];
        if c.transitivity > self.alert_transitivity {
            alerts.push(format!(
                "dense neighborhood: transitivity {:.3} over {} vertices",
                c.transitivity,
                sub.num_vertices()
            ));
        }
        AnalyticOutput {
            globals: vec![
                ("triangles".into(), triangles as f64),
                ("transitivity".into(), c.transitivity),
            ],
            vertex_props: vec![("clustering".into(), c.local)],
            alerts,
        }
    }
}

/// All-pairs Jaccard over the extracted subgraph — the NORA-class
/// analytic (§III: "close to the Jaccard coefficient kernel"). Writes
/// each vertex's best coefficient back as `jaccard_max` and alerts on
/// pairs at or above `alert_tau`.
pub struct JaccardAnalytic {
    /// Pairs with J >= this threshold are reported.
    pub tau: f64,
    /// Pairs with J >= this (higher) threshold raise alerts.
    pub alert_tau: f64,
}

impl BatchAnalytic for JaccardAnalytic {
    fn name(&self) -> &'static str {
        "jaccard"
    }
    fn run(&self, sub: &Subgraph, ctx: &KernelCtx) -> AnalyticOutput {
        let pairs = ga_kernels::jaccard::all_pairs_above(&sub.graph, self.tau);
        // The Jaccard kernel isn't internally instrumented yet; record
        // the dominant traffic (every adjacency list read per probed
        // pair's merge) analytically.
        let m = sub.graph.num_edges() as u64;
        ctx.counters.flush(2 * m, 8 * m, m);
        let mut best = vec![0.0f64; sub.num_vertices()];
        let mut alerts = Vec::new();
        for &(a, b, j) in &pairs {
            best[a as usize] = best[a as usize].max(j);
            best[b as usize] = best[b as usize].max(j);
            if j >= self.alert_tau {
                alerts.push(format!(
                    "near-duplicate neighborhoods: {} and {} (J = {j:.3})",
                    sub.to_source(a),
                    sub.to_source(b)
                ));
            }
        }
        AnalyticOutput {
            globals: vec![("jaccard_pairs".into(), pairs.len() as f64)],
            vertex_props: vec![("jaccard_max".into(), best)],
            alerts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::gen;
    use ga_stream::update::{into_batches, Update};
    use ga_stream::EventKind;

    fn engine_with_ring(n: usize) -> FlowEngine {
        let mut g = DynamicGraph::new(n);
        g.insert_undirected(&gen::ring(n), 1);
        FlowEngine::with_graph(g, PropertyStore::new(n))
    }

    #[test]
    fn batch_path_writes_back_properties() {
        let mut e = engine_with_ring(20);
        let idx = e.register_analytic(Box::new(ComponentsAnalytic));
        let report = e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        assert_eq!(report.analytic, "components");
        // depth-2 ball around 0 on a ring: {18,19,0,1,2}
        assert_eq!(report.subgraph_size.0, 5);
        assert_eq!(report.globals[0].1, 1.0); // one component
                                              // Write-back landed on persistent (global) vertex ids.
        assert!(e.props().get_f64("component", 0).is_some());
        assert!(e.props().get_f64("component", 19).is_some());
        assert!(e.props().get_f64("component", 10).is_none());
        let s = e.stats();
        assert_eq!(s.batch_runs, 1);
        assert_eq!(s.props_written_back, 5);
    }

    #[test]
    fn top_k_degree_selection() {
        let mut g = DynamicGraph::new(10);
        g.insert_undirected(&gen::star(10), 1);
        let e = FlowEngine::with_graph(g, PropertyStore::new(10));
        let seeds = e.select_seeds(&SelectionCriteria::TopKDegree { k: 1 });
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn property_selection_paths() {
        let mut e = engine_with_ring(6);
        e.props_mut()
            .set_column_f64("risk", &[0.1, 0.9, 0.2, 0.8, 0.0, 0.5]);
        let top = e.select_seeds(&SelectionCriteria::TopKProperty {
            name: "risk".into(),
            k: 2,
        });
        assert_eq!(top, vec![1, 3]);
        let above = e.select_seeds(&SelectionCriteria::PropertyAbove {
            name: "risk".into(),
            tau: 0.45,
        });
        assert_eq!(above, vec![1, 3, 5]);
    }

    #[test]
    fn projection_carries_columns_into_subgraph() {
        let mut e = engine_with_ring(8);
        e.props_mut().set_column_f64("score", &[0.0; 8]);
        e.project_columns = vec!["score".into()];
        let idx = e.register_analytic(Box::new(ComponentsAnalytic));
        // Smoke: run succeeds with projection enabled.
        let r = e.run_batch(&SelectionCriteria::Explicit(vec![3]), idx);
        assert_eq!(r.subgraph_size.0, 5);
    }

    #[test]
    fn pagerank_analytic_writes_ranks() {
        let mut e = engine_with_ring(12);
        e.extract.depth = 6;
        let idx = e.register_analytic(Box::new(PageRankAnalytic { damping: 0.85 }));
        e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        let total: f64 = (0..12)
            .filter_map(|v| e.props().get_f64("pagerank", v))
            .sum();
        assert!((total - 1.0).abs() < 1e-3, "ranks sum to {total}");
    }

    #[test]
    fn triangle_analytic_alerts_on_dense_region() {
        let mut g = DynamicGraph::new(5);
        g.insert_undirected(&gen::complete(5), 1);
        let mut e = FlowEngine::with_graph(g, PropertyStore::new(5));
        let idx = e.register_analytic(Box::new(TriangleAnalytic {
            alert_transitivity: 0.5,
        }));
        let r = e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        assert_eq!(r.alerts.len(), 1);
        assert_eq!(r.globals[0].1, 10.0); // C(5,3)
        assert_eq!(e.stats().alerts_raised, 1);
    }

    #[test]
    fn streaming_trigger_runs_analytic() {
        let mut e = FlowEngine::new(16);
        e.extract.depth = 1;
        e.register_monitor(Box::new(ga_stream::jaccard_stream::JaccardMonitor::new(
            0.99,
        )));
        let idx = e.register_analytic(Box::new(TriangleAnalytic {
            alert_transitivity: 0.0,
        }));
        // Build two vertices with identical neighborhoods -> J = 1.0.
        let ups = vec![
            Update::EdgeInsert {
                src: 0,
                dst: 2,
                weight: 1.0,
            },
            Update::EdgeInsert {
                src: 0,
                dst: 3,
                weight: 1.0,
            },
            Update::EdgeInsert {
                src: 1,
                dst: 2,
                weight: 1.0,
            },
            Update::EdgeInsert {
                src: 1,
                dst: 3,
                weight: 1.0,
            },
        ];
        let mut reports = Vec::new();
        for b in into_batches(ups, 1, 0) {
            reports.extend(e.process_stream(
                &b,
                |ev| match ev.kind {
                    EventKind::PairThreshold { a, b, .. } => Some(vec![a, b]),
                    _ => None,
                },
                Some(idx),
            ));
        }
        assert!(!reports.is_empty(), "no triggered analytic runs");
        let s = e.stats();
        assert!(s.triggers_fired >= 1);
        assert_eq!(s.updates_applied, 4);
        assert!(s.events_observed >= 1);
        // Triggered run extracted the pair's neighborhood.
        assert!(reports[0].subgraph_size.0 >= 3);
    }

    #[test]
    fn jaccard_analytic_reports_twin_neighborhoods() {
        // Vertices 0 and 1 share exactly the same two neighbors.
        let mut g = DynamicGraph::new(5);
        for (u, v) in [(0, 2), (0, 3), (1, 2), (1, 3)] {
            g.insert_edge(u, v, 1.0, 1);
            g.insert_edge(v, u, 1.0, 1);
        }
        let mut e = FlowEngine::with_graph(g, PropertyStore::new(5));
        let idx = e.register_analytic(Box::new(JaccardAnalytic {
            tau: 0.3,
            alert_tau: 0.99,
        }));
        let r = e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        // Two perfect twins: (0,1) share {2,3} and (2,3) share {0,1}.
        assert_eq!(r.alerts.len(), 2, "alerts: {:?}", r.alerts);
        assert!(r.alerts.iter().all(|a| a.contains("J = 1.000")));
        // Write-back landed in persistent ids.
        assert_eq!(e.props().get_f64("jaccard_max", 0), Some(1.0));
        assert_eq!(e.props().get_f64("jaccard_max", 1), Some(1.0));
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let mut e = engine_with_ring(30);
        let idx = e.register_analytic(Box::new(ComponentsAnalytic));
        e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        e.run_batch(&SelectionCriteria::Explicit(vec![15]), idx);
        let s = e.stats();
        assert_eq!(s.batch_runs, 2);
        assert_eq!(s.subgraphs_extracted, 2);
        assert_eq!(s.seeds_selected, 2);
        assert_eq!(s.vertices_extracted, 10);
    }

    #[test]
    fn batch_runs_drain_kernel_counters_into_stats() {
        let mut e = engine_with_ring(40);
        let idx = e.register_analytic(Box::new(ComponentsAnalytic));
        e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        let s = e.stats();
        assert!(s.kernel_cpu_ops > 0);
        assert!(s.kernel_mem_bytes > 0);
        assert!(s.kernel_edges_touched > 0);
        // The engine-held counters were drained, not left accumulating.
        assert!(e.kernel_ctx.snapshot().is_zero());
        // A second run accumulates further.
        e.run_batch(&SelectionCriteria::Explicit(vec![20]), idx);
        assert!(e.stats().kernel_edges_touched > s.kernel_edges_touched);
    }

    #[test]
    fn note_ingest_counts() {
        let mut e = FlowEngine::new(4);
        e.note_ingest(100, 37);
        assert_eq!(e.stats().records_ingested, 100);
        assert_eq!(e.stats().entities_created, 37);
    }

    #[test]
    fn batch_runs_account_snapshot_cost_and_hit_cache() {
        let mut e = engine_with_ring(40);
        let idx = e.register_analytic(Box::new(ComponentsAnalytic));
        e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        let s1 = e.stats();
        assert_eq!(s1.snapshot_rebuilds, 1, "first run freezes the graph");
        assert!(s1.snapshot_mem_bytes > 0);
        // Second run against the unchanged graph: cache hit, no rebuild.
        e.run_batch(&SelectionCriteria::Explicit(vec![20]), idx);
        let s2 = e.stats();
        assert_eq!(s2.snapshot_rebuilds, 1, "unchanged graph must not rebuild");
        assert_eq!(s2.snapshot_mem_bytes, s1.snapshot_mem_bytes);
        // An update dirties two rows (symmetrized insert); the next run
        // takes the delta path and reuses every clean row.
        e.process_stream(
            &UpdateBatch {
                time: 9,
                updates: vec![Update::EdgeInsert {
                    src: 0,
                    dst: 20,
                    weight: 1.0,
                }],
            },
            |_| None,
            None,
        );
        e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        let s3 = e.stats();
        assert_eq!(s3.snapshot_rebuilds, 2);
        assert_eq!(s3.snapshot_rows_reused, 38, "40 rows - 2 dirty");
    }
}
