//! Fig. 2: the canonical graph-processing flow, with instrumentation.
//!
//! The paper's conclusion asks for exactly this artifact: "a reference
//! implementation, with explicit instrumentation, of a combined
//! benchmark would allow calibration of the model."
//!
//! [`FlowEngine`] wires the stages of Fig. 2 together around a
//! persistent property graph:
//!
//! ```text
//!   update stream ─▶ StreamEngine ─ monitors ─ events ─┐
//!                         │                            ▼ (threshold)
//!   bulk records ─▶ dedup ┴▶ persistent graph ◀─ property write-back
//!                              │        ▲
//!              selection criteria       │
//!                seeds ─▶ subgraph extraction (+projection)
//!                              │
//!                       batch analytics ─▶ global metrics / alerts
//! ```
//!
//! Every stage increments [`FlowStats`] — the calibration counters the
//! NORA model (`crate::model`) prices.

use crate::durability::{Checkpoint, Durability};
use crate::retry::{CircuitBreaker, RetryPolicy};
use ga_graph::sub::{extract_ball, Subgraph};
use ga_graph::{
    CompressedCsr, DynamicGraph, ExtractOptions, PropertyStore, SnapshotEpoch, VertexId,
};
use ga_kernels::{topk, Budget, KernelCtx, Parallelism};
use ga_obs::{MetricsSnapshot, Recorder, Step};
use ga_stream::admission::{
    AdmissionConfig, AdmissionDecision, AdmissionQueue, AdmissionStats, Ewma, Priority,
};
use ga_stream::engine::QuarantinedUpdate;
use ga_stream::epoch::{EpochSnapshot, SnapshotHandle};
use ga_stream::update::UpdateBatch;
use ga_stream::{Event, EventKind, StreamEngine};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the batch path picks its seed vertices (Fig. 2's "selection
/// criteria" box).
#[derive(Clone, Debug)]
pub enum SelectionCriteria {
    /// Explicit vertex list ("as simple as specifying some particular
    /// vertex").
    Explicit(Vec<VertexId>),
    /// Scan for the top-k vertices of a property column ("scanning for
    /// the top-k vertices with the highest values of some properties").
    TopKProperty {
        /// Property column name.
        name: String,
        /// Seed count.
        k: usize,
    },
    /// Top-k by current out-degree.
    TopKDegree {
        /// Seed count.
        k: usize,
    },
    /// All vertices whose property exceeds a threshold.
    PropertyAbove {
        /// Property column name.
        name: String,
        /// Threshold.
        tau: f64,
    },
}

/// What a batch analytic produced.
#[derive(Clone, Debug, Default)]
pub struct AnalyticOutput {
    /// Global scalar metrics (name, value).
    pub globals: Vec<(String, f64)>,
    /// Per-vertex properties in *subgraph* ids, to be written back
    /// through the back-map.
    pub vertex_props: Vec<(String, Vec<f64>)>,
    /// Human-readable alerts for the external system.
    pub alerts: Vec<String>,
}

/// A batch analytic runnable on an extracted subgraph.
pub trait BatchAnalytic {
    /// Stable name (used in stats and write-back provenance).
    fn name(&self) -> &'static str;
    /// Run on the extracted subgraph. The context selects serial vs
    /// parallel kernel engines and collects the kernels' operation
    /// counters, which the engine drains into [`FlowStats`] after each
    /// run.
    fn run(&self, sub: &Subgraph, ctx: &KernelCtx) -> AnalyticOutput;
}

/// Ingest-side counters: bulk dedup plus the streaming path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Raw records deduped into the graph.
    pub records_ingested: usize,
    /// Entities created by dedup.
    pub entities_created: usize,
    /// Streaming updates applied.
    pub updates_applied: usize,
    /// Malformed streaming updates quarantined to the dead-letter queue
    /// instead of applied.
    pub updates_quarantined: usize,
    /// Streaming events observed.
    pub events_observed: usize,
    /// Streaming events that triggered a batch analytic.
    pub triggers_fired: usize,
}

/// Batch-path counters: selection → extraction → analytic → write-back,
/// plus the kernels' own operation tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalyticsStats {
    /// Batch runs executed.
    pub batch_runs: usize,
    /// Seeds selected across runs.
    pub seeds_selected: usize,
    /// Subgraphs extracted.
    pub subgraphs_extracted: usize,
    /// Vertices copied into extracted subgraphs.
    pub vertices_extracted: usize,
    /// Edges copied into extracted subgraphs.
    pub edges_extracted: usize,
    /// Property values written back to the persistent graph.
    pub props_written_back: usize,
    /// Global metrics produced.
    pub globals_produced: usize,
    /// Alerts raised.
    pub alerts_raised: usize,
    /// CPU operations the batch kernels reported ([`ga_graph::OpCounters`]).
    pub kernel_cpu_ops: usize,
    /// Memory traffic (bytes) the batch kernels reported.
    pub kernel_mem_bytes: usize,
    /// Edges the batch kernels touched.
    pub kernel_edges_touched: usize,
}

/// CSR snapshot-pipeline counters (the "copy subgraph into faster
/// memory" step of Fig. 2 the model prices).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// CSR snapshot rebuilds (full + delta) the batch path performed.
    pub rebuilds: usize,
    /// Rows whose CSR slices were reused from the previous snapshot
    /// instead of re-sorted (the delta path's savings).
    pub rows_reused: usize,
    /// Bytes written into snapshot arrays.
    pub mem_bytes: usize,
}

/// Durability counters (WAL + checkpoint retry machinery).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Durable-write attempts that failed transiently and were retried
    /// (WAL appends + checkpoint writes).
    pub retries: usize,
    /// Times the durability circuit breaker tripped open (each trip also
    /// raises an alert).
    pub breaker_trips: usize,
}

/// Overload counters (admission control + degradation ladder).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Updates refused or evicted by admission control under overload
    /// (they never reached the graph).
    pub updates_shed: usize,
    /// Analytic runs that hit their op/deadline budget and returned a
    /// typed partial result instead of a complete one.
    pub deadline_partials: usize,
    /// Triggered analytic runs skipped outright at the `SeedsOnly`
    /// degradation level (seeds were still selected).
    pub analytics_skipped: usize,
}

/// The instrumentation record (the paper's "explicit instrumentation"),
/// grouped by pipeline concern. The GAC1 checkpoint codec serialises
/// these groups as stats version 3 (version 2 plus the tier group) and
/// still decodes the version-2 grouped layout and the flat 25-field
/// version-1 layout older checkpoints carry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Bulk + streaming ingest.
    pub ingest: IngestStats,
    /// The batch analytic path.
    pub analytics: AnalyticsStats,
    /// CSR snapshot pipeline.
    pub snapshots: SnapshotStats,
    /// WAL/checkpoint retry machinery.
    pub durability: DurabilityStats,
    /// Admission control + degradation ladder.
    pub overload: OverloadStats,
    /// Tiered segment-store IO (spill, page cache, scrub, repair).
    pub tier: ga_graph::tier::TierStats,
}

impl IngestStats {
    /// Add another shard's counters into this one.
    pub fn merge(&mut self, o: &IngestStats) {
        self.records_ingested += o.records_ingested;
        self.entities_created += o.entities_created;
        self.updates_applied += o.updates_applied;
        self.updates_quarantined += o.updates_quarantined;
        self.events_observed += o.events_observed;
        self.triggers_fired += o.triggers_fired;
    }
}

impl AnalyticsStats {
    /// Add another shard's counters into this one.
    pub fn merge(&mut self, o: &AnalyticsStats) {
        self.batch_runs += o.batch_runs;
        self.seeds_selected += o.seeds_selected;
        self.subgraphs_extracted += o.subgraphs_extracted;
        self.vertices_extracted += o.vertices_extracted;
        self.edges_extracted += o.edges_extracted;
        self.props_written_back += o.props_written_back;
        self.globals_produced += o.globals_produced;
        self.alerts_raised += o.alerts_raised;
        self.kernel_cpu_ops += o.kernel_cpu_ops;
        self.kernel_mem_bytes += o.kernel_mem_bytes;
        self.kernel_edges_touched += o.kernel_edges_touched;
    }
}

impl SnapshotStats {
    /// Add another shard's counters into this one.
    pub fn merge(&mut self, o: &SnapshotStats) {
        self.rebuilds += o.rebuilds;
        self.rows_reused += o.rows_reused;
        self.mem_bytes += o.mem_bytes;
    }
}

impl DurabilityStats {
    /// Add another shard's counters into this one.
    pub fn merge(&mut self, o: &DurabilityStats) {
        self.retries += o.retries;
        self.breaker_trips += o.breaker_trips;
    }
}

impl OverloadStats {
    /// Add another shard's counters into this one.
    pub fn merge(&mut self, o: &OverloadStats) {
        self.updates_shed += o.updates_shed;
        self.deadline_partials += o.deadline_partials;
        self.analytics_skipped += o.analytics_skipped;
    }
}

impl FlowStats {
    /// Add another engine's counters into this one, group by group —
    /// how a sharded deployment reports one grouped record across its
    /// shard-local engines. Ghost (replicated) work is counted on every
    /// shard that performed it, so merged sums can exceed an unsharded
    /// run's by exactly the replicated cross-shard work.
    pub fn merge(&mut self, o: &FlowStats) {
        self.ingest.merge(&o.ingest);
        self.analytics.merge(&o.analytics);
        self.snapshots.merge(&o.snapshots);
        self.durability.merge(&o.durability);
        self.overload.merge(&o.overload);
        self.tier.merge(&o.tier);
    }
}

/// Rung of the overload degradation ladder, least to most degraded.
/// `Ord` follows declaration order, so `max(depth_level, latency_level)`
/// picks the more degraded of the two signals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// Normal operation: full analytics on every trigger.
    #[default]
    Full,
    /// Analytics run under a reduced op/deadline budget and may return
    /// typed partial results.
    PartialDeadline,
    /// Seeds are still selected (cheap) but triggered analytics are
    /// skipped entirely.
    SeedsOnly,
    /// Updates are applied unmonitored — no events, no triggers, no
    /// analytics — keeping the graph current at minimal cost.
    Shed,
}

impl DegradationLevel {
    /// Stable name (event payloads, JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            DegradationLevel::Full => "full",
            DegradationLevel::PartialDeadline => "partial-deadline",
            DegradationLevel::SeedsOnly => "seeds-only",
            DegradationLevel::Shed => "shed",
        }
    }
}

/// Thresholds driving the degradation ladder. Depth thresholds are in
/// queued *updates* (the [`AdmissionQueue::depth`] quantity) and are the
/// deterministic signal; the latency thresholds consume a wall-clock
/// EWMA of per-batch processing time and default to *off* so tests and
/// reproducible runs are depth-driven only.
#[derive(Clone, Copy, Debug)]
pub struct OverloadConfig {
    /// Queue depth at or above which analytics run under the degraded
    /// budget.
    pub partial_at: usize,
    /// Queue depth at or above which triggered analytics are skipped.
    pub seeds_only_at: usize,
    /// Queue depth at or above which updates are applied unmonitored.
    pub shed_at: usize,
    /// Op budget for analytic runs at `PartialDeadline` (see
    /// [`ga_kernels::Budget::ops`]).
    pub degraded_budget_ops: u64,
    /// Optional wall-clock deadline composed into the degraded budget.
    pub degraded_deadline: Option<Duration>,
    /// Smoothing factor of the recent-latency EWMA.
    pub latency_alpha: f64,
    /// Mean batch latency above which to enter `PartialDeadline`
    /// (`None` = latency never drives this rung).
    pub latency_partial: Option<Duration>,
    /// Mean batch latency above which to enter `SeedsOnly`.
    pub latency_seeds_only: Option<Duration>,
    /// Mean batch latency above which to enter `Shed`.
    pub latency_shed: Option<Duration>,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        let adm = AdmissionConfig::default();
        OverloadConfig {
            partial_at: adm.bulk_watermark / 2,
            seeds_only_at: adm.normal_watermark,
            shed_at: adm.capacity,
            degraded_budget_ops: 1 << 20,
            degraded_deadline: None,
            latency_alpha: 0.2,
            latency_partial: None,
            latency_seeds_only: None,
            latency_shed: None,
        }
    }
}

/// Report of one batch run.
#[derive(Clone, Debug)]
pub struct BatchRunReport {
    /// The analytic that ran.
    pub analytic: &'static str,
    /// Seeds used.
    pub seeds: Vec<VertexId>,
    /// Extracted subgraph size (vertices, edges).
    pub subgraph_size: (usize, usize),
    /// Global metrics produced.
    pub globals: Vec<(String, f64)>,
    /// Alerts raised.
    pub alerts: Vec<String>,
}

/// Construction-time configuration for a [`FlowEngine`]: the one
/// coherent way to set parallelism, budgets, retry/breaker, admission,
/// overload thresholds, durability, and observability. (The scattered
/// pre-PR-5 setters — `enable_durability`, `set_admission_config`,
/// `set_retry_policy`, `set_breaker` — are gone; this builder is the
/// only configuration surface.)
///
/// ```
/// # use ga_core::flow::FlowEngine;
/// # use ga_core::retry::RetryPolicy;
/// # use ga_kernels::Parallelism;
/// let engine = FlowEngine::builder()
///     .parallelism(Parallelism::Serial)
///     .retry(RetryPolicy::retries(3, 42))
///     .build(1 << 10)
///     .unwrap();
/// ```
#[derive(Debug)]
pub struct FlowConfig {
    parallelism: Parallelism,
    budget: Budget,
    retry: RetryPolicy,
    breaker_threshold: u32,
    admission: AdmissionConfig,
    overload: OverloadConfig,
    extract: ExtractOptions,
    project_columns: Vec<String>,
    vertex_limit: Option<usize>,
    symmetrize: bool,
    durability_dir: Option<PathBuf>,
    recorder: Recorder,
    shard_label: String,
    compressed_adjacency: bool,
    tier: Option<ga_graph::tier::TierConfig>,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            parallelism: Parallelism::Auto,
            budget: Budget::unlimited(),
            retry: RetryPolicy::none(),
            breaker_threshold: 3,
            admission: AdmissionConfig::default(),
            overload: OverloadConfig::default(),
            extract: ExtractOptions {
                depth: 2,
                max_vertices: 4096,
                undirected_expand: false,
            },
            project_columns: Vec::new(),
            vertex_limit: None,
            symmetrize: true,
            durability_dir: None,
            recorder: Recorder::disabled(),
            shard_label: String::new(),
            compressed_adjacency: false,
            tier: None,
        }
    }
}

impl FlowConfig {
    /// Serial/parallel kernel dispatch policy (default `Auto`).
    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Standing op/deadline budget for analytic runs (default
    /// unlimited).
    pub fn budget(mut self, b: Budget) -> Self {
        self.budget = b;
        self
    }

    /// Retry policy for durable writes (default
    /// [`RetryPolicy::none`]).
    pub fn retry(mut self, r: RetryPolicy) -> Self {
        self.retry = r;
        self
    }

    /// Consecutive durable-write failures before the circuit breaker
    /// trips (default 3).
    pub fn breaker_threshold(mut self, consecutive_failures: u32) -> Self {
        self.breaker_threshold = consecutive_failures;
        self
    }

    /// Admission-queue watermarks for the overload front door.
    pub fn admission(mut self, cfg: AdmissionConfig) -> Self {
        self.admission = cfg;
        self
    }

    /// Degradation-ladder thresholds.
    pub fn overload(mut self, cfg: OverloadConfig) -> Self {
        self.overload = cfg;
        self
    }

    /// Subgraph-extraction settings for both paths (default depth 2,
    /// 4096 vertices).
    pub fn extract(mut self, opts: ExtractOptions) -> Self {
        self.extract = opts;
        self
    }

    /// Property columns projected into extracted subgraphs.
    pub fn project_columns(mut self, cols: Vec<String>) -> Self {
        self.project_columns = cols;
        self
    }

    /// Vertex-id bound above which updates are quarantined (default
    /// [`ga_stream::engine::DEFAULT_VERTEX_LIMIT`]).
    pub fn vertex_limit(mut self, limit: usize) -> Self {
        self.vertex_limit = Some(limit);
        self
    }

    /// Mirror edge updates in both directions (default true).
    pub fn symmetrize(mut self, symmetrize: bool) -> Self {
        self.symmetrize = symmetrize;
        self
    }

    /// Enable durability (WAL + checkpoints) under `dir`. The directory
    /// must not already hold engine state; use [`FlowEngine::recover`]
    /// for that. `build` writes the initial checkpoint.
    pub fn durability_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durability_dir = Some(dir.into());
        self
    }

    /// Attach an observability recorder; it is threaded through the
    /// kernel context, stream engine, WAL, and checkpoint writer so
    /// [`FlowEngine::metrics`] reports the whole stack.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Maintain a delta-varint [`CompressedCsr`] snapshot alongside
    /// the plain CSR (default off). Each batch run re-serves it through
    /// the snapshot cache — an unchanged graph costs one `Arc` clone —
    /// and [`FlowEngine::compressed_snapshot`] hands it to whole-graph
    /// kernels, which accept it through the `Adjacency` trait and
    /// return bit-identical results at ~2–4× fewer adjacency bytes.
    pub fn compressed_adjacency(mut self, on: bool) -> Self {
        self.compressed_adjacency = on;
        self
    }

    /// Serve batch extraction through a tiered larger-than-RAM segment
    /// store (default off): each batch's CSR snapshot spills to
    /// CRC-framed segments under the tier directory and the extraction
    /// BFS pages rows back in through a RAM-budgeted cache, so cold
    /// rows cost real disk IO that shows up as disk demand in the
    /// calibration model. See [`ga_graph::tier::TieredCsr`].
    pub fn tiered(mut self, cfg: ga_graph::tier::TierConfig) -> Self {
        self.tier = Some(cfg);
        self
    }

    /// Label this engine as one shard of a multi-engine deployment
    /// (e.g. `"shard-03"`). The label is prefixed onto durability
    /// errors raised during [`FlowConfig::recover`], so a failed
    /// shard-local recovery names the shard and checkpoint path in CI
    /// logs instead of an anonymous `io::Error`.
    pub fn shard_label(mut self, label: impl Into<String>) -> Self {
        self.shard_label = label.into();
        self
    }

    /// Build an engine over an empty persistent graph of
    /// `num_vertices`.
    pub fn build(self, num_vertices: usize) -> io::Result<FlowEngine> {
        self.build_with_graph(
            DynamicGraph::new(num_vertices),
            PropertyStore::new(num_vertices),
        )
    }

    /// Build an engine over an existing persistent graph.
    pub fn build_with_graph(
        self,
        graph: DynamicGraph,
        props: PropertyStore,
    ) -> io::Result<FlowEngine> {
        let mut engine = FlowEngine::with_graph(graph, props);
        if let Some(limit) = self.vertex_limit {
            engine.stream.set_vertex_limit(limit);
        }
        engine.stream.symmetrize = self.symmetrize;
        let durability_dir = self.apply_runtime(&mut engine);
        // Durability last: the initial checkpoint must capture the
        // configured symmetrize/vertex-limit state.
        if let Some(dir) = durability_dir {
            engine.enable_durability_impl(&dir)?;
        }
        Ok(engine)
    }

    /// Recover an engine from a durability directory (see
    /// [`FlowEngine::recover`]) and apply this configuration's runtime
    /// settings to it. The persisted state knobs — `vertex_limit`,
    /// `symmetrize`, and the durability directory itself — come from the
    /// checkpoint, not from the builder, so replay stays deterministic.
    pub fn recover(self, dir: impl AsRef<Path>) -> io::Result<FlowEngine> {
        let mut engine = FlowEngine::recover_labeled(dir, &self.shard_label)?;
        self.apply_runtime(&mut engine);
        Ok(engine)
    }

    /// Apply every non-persisted setting to `engine`; returns the
    /// durability directory for the caller to act on (or ignore).
    fn apply_runtime(self, engine: &mut FlowEngine) -> Option<PathBuf> {
        engine.kernel_ctx.parallelism = self.parallelism;
        engine.kernel_ctx.budget = self.budget;
        engine.retry = self.retry;
        engine.breaker = CircuitBreaker::new(self.breaker_threshold);
        engine.admission = AdmissionQueue::new(self.admission);
        engine.batch_latency = Ewma::new(self.overload.latency_alpha);
        engine.overload = self.overload;
        engine.extract = self.extract;
        engine.project_columns = self.project_columns;
        engine.compressed_adjacency = self.compressed_adjacency;
        engine.tier_config = self.tier;
        engine.set_recorder(self.recorder);
        self.durability_dir
    }
}

/// Publication state for the concurrent query-serving front end: the
/// shared [`SnapshotHandle`] readers load from, plus enough caching to
/// make a no-op republish free.
struct ServePublisher {
    /// The slot reader threads load from ([`FlowEngine::serve_handle`]
    /// hands out clones).
    handle: SnapshotHandle,
    /// Frozen property columns keyed by [`PropertyStore::version`]: the
    /// deep clone is taken only when the columns actually moved.
    props: Option<(u64, Arc<PropertyStore>)>,
    /// `(stamp, props_version)` of the last publish — an unchanged pair
    /// skips publication entirely.
    last: Option<(SnapshotEpoch, u64)>,
}

/// The Fig. 2 engine: a persistent graph with batch and streaming paths.
pub struct FlowEngine {
    stream: StreamEngine,
    analytics: Vec<Box<dyn BatchAnalytic>>,
    stats: FlowStats,
    durability: Option<Durability>,
    /// Bounded priority-classed ingest queue (the overload front door).
    admission: AdmissionQueue,
    /// Retry policy for durable writes (WAL appends, checkpoints).
    retry: RetryPolicy,
    /// Trips after consecutive exhausted-retry durability failures.
    breaker: CircuitBreaker,
    /// True once the breaker tripped: the engine runs non-durably.
    durability_suspended: bool,
    /// Recent per-batch processing latency (seconds).
    batch_latency: Ewma,
    /// Current rung of the degradation ladder (for change events).
    level: DegradationLevel,
    /// Overload events (LoadShed / Degraded / CircuitBreaker) pending
    /// collection via [`Self::take_overload_events`].
    overload_events: Vec<Event>,
    /// Observability sink: span totals, latency histograms, and the
    /// unified event journal. Disabled (free) unless configured through
    /// [`FlowConfig::recorder`] or [`Self::set_recorder`].
    recorder: Recorder,
    /// Degradation-ladder thresholds.
    pub overload: OverloadConfig,
    /// Extraction settings used by both paths.
    pub extract: ExtractOptions,
    /// Property columns projected into extracted subgraphs.
    pub project_columns: Vec<String>,
    /// Kernel execution context handed to every analytic run; set its
    /// `parallelism` to steer serial/parallel kernel dispatch and its
    /// `budget` to impose a standing op/deadline budget on analytics.
    pub kernel_ctx: KernelCtx,
    /// When set ([`FlowConfig::compressed_adjacency`]), each batch run
    /// also refreshes the delta-varint compressed snapshot.
    compressed_adjacency: bool,
    /// When set ([`FlowConfig::tiered`]), batch extraction reads
    /// through a spilled segment tier instead of the in-RAM snapshot.
    tier_config: Option<ga_graph::tier::TierConfig>,
    /// The live tier, tagged with the snapshot it was spilled from so
    /// an unchanged graph skips the respill.
    tier: Option<(std::sync::Arc<ga_graph::CsrGraph>, ga_graph::TieredCsr)>,
    /// Epoch publication state, lazily created by
    /// [`Self::serve_handle`]. `None` = not serving (publication hooks
    /// are free).
    serve: Option<ServePublisher>,
}

impl FlowEngine {
    /// Engine over an empty persistent graph of `num_vertices`.
    pub fn new(num_vertices: usize) -> Self {
        Self::with_graph(
            DynamicGraph::new(num_vertices),
            PropertyStore::new(num_vertices),
        )
    }

    /// Start a [`FlowConfig`] builder — the one coherent way to
    /// configure parallelism, budgets, retry/breaker, admission,
    /// overload thresholds, durability, and observability at
    /// construction time.
    pub fn builder() -> FlowConfig {
        FlowConfig::default()
    }

    /// Engine over an existing persistent graph.
    pub fn with_graph(graph: DynamicGraph, props: PropertyStore) -> Self {
        let overload = OverloadConfig::default();
        FlowEngine {
            stream: StreamEngine::with_graph(graph, props),
            analytics: Vec::new(),
            stats: FlowStats::default(),
            durability: None,
            admission: AdmissionQueue::new(AdmissionConfig::default()),
            retry: RetryPolicy::none(),
            breaker: CircuitBreaker::new(3),
            durability_suspended: false,
            batch_latency: Ewma::new(overload.latency_alpha),
            level: DegradationLevel::Full,
            overload_events: Vec::new(),
            recorder: Recorder::disabled(),
            overload,
            extract: ExtractOptions {
                depth: 2,
                max_vertices: 4096,
                undirected_expand: false,
            },
            project_columns: Vec::new(),
            kernel_ctx: KernelCtx::new(Parallelism::Auto),
            compressed_adjacency: false,
            tier_config: None,
            tier: None,
            serve: None,
        }
    }

    /// A delta-varint compressed snapshot of the persistent graph,
    /// served through the stream engine's snapshot cache. Pass it to
    /// any whole-graph kernel (they are generic over
    /// `ga_graph::Adjacency`) for bit-identical results at the
    /// compressed representation's byte cost. Available regardless of
    /// [`FlowConfig::compressed_adjacency`]; the knob only controls
    /// whether batch runs keep the mirror warm.
    pub fn compressed_snapshot(&mut self) -> std::sync::Arc<CompressedCsr> {
        self.stream
            .compressed_csr_snapshot(self.kernel_ctx.parallelism)
    }

    /// Whether batch runs maintain the compressed adjacency mirror.
    pub fn compressed_adjacency(&self) -> bool {
        self.compressed_adjacency
    }

    // -----------------------------------------------------------------
    // Concurrent query serving: epoch-based snapshot publication.
    // -----------------------------------------------------------------

    /// Start serving: publish the current state and return the
    /// [`SnapshotHandle`] query threads read from. Clone the handle
    /// freely (clones share the slot); each reader thread should take
    /// one [`ga_stream::SnapshotReader`] via `handle.reader()` — its
    /// steady-state load is a single atomic read.
    ///
    /// Once serving, every ingest/batch entry point
    /// ([`Self::process_stream`], [`Self::pump`], [`Self::run_batch`],
    /// durable and recovery paths included) republishes automatically
    /// when the graph or its property columns moved, so readers always
    /// see one consistent frozen generation. Engines that never call
    /// this pay nothing.
    pub fn serve_handle(&mut self) -> SnapshotHandle {
        if self.serve.is_none() {
            self.serve = Some(ServePublisher {
                handle: SnapshotHandle::new(),
                props: None,
                last: None,
            });
        }
        self.publish_epoch();
        self.serve.as_ref().unwrap().handle.clone()
    }

    /// Publish the current graph + property generation to the serving
    /// slot, if serving is on and anything moved since the last publish.
    /// The ingest/batch entry points call this automatically; call it
    /// directly after out-of-band mutation (e.g. [`Self::props_mut`]
    /// write-backs from external code).
    pub fn publish_epoch(&mut self) {
        if self.serve.is_none() {
            return;
        }
        let par = self.kernel_ctx.parallelism;
        let (csr, stamp) = self.stream.csr_snapshot_stamped(par);
        let props_version = self.stream.props().version();
        let serve = self.serve.as_mut().unwrap();
        if serve.last == Some((stamp, props_version)) {
            return;
        }
        let compressed = if self.compressed_adjacency {
            Some(self.stream.compressed_csr_snapshot_stamped(par).0)
        } else {
            None
        };
        let serve = self.serve.as_mut().unwrap();
        let props = match &serve.props {
            Some((v, arc)) if *v == props_version => Arc::clone(arc),
            _ => {
                let arc = Arc::new(self.stream.props().clone());
                serve.props = Some((props_version, Arc::clone(&arc)));
                arc
            }
        };
        serve.handle.publish(EpochSnapshot {
            stamp,
            props_version,
            time: self.stream.last_batch_time(),
            csr,
            compressed,
            props,
        });
        serve.last = Some((stamp, props_version));
    }

    /// The live segment tier, if [`FlowConfig::tiered`] is on and a
    /// batch has spilled one.
    pub fn tier(&self) -> Option<&ga_graph::TieredCsr> {
        self.tier.as_ref().map(|(_, t)| t)
    }

    /// Scrub the segment tier and repair what the scrub (or earlier
    /// reads) quarantined, using the current CSR snapshot — the same
    /// state a checkpoint+WAL recovery reproduces — as the repair
    /// source. Corruption is detected by CRC, quarantined, rewritten
    /// from good data, and journalled; a segment with no source left is
    /// refused and counted lost, never fabricated. Returns `None` when
    /// no tier is live.
    pub fn scrub_tier(
        &mut self,
    ) -> Option<(ga_graph::tier::ScrubReport, ga_graph::tier::RepairReport)> {
        let snap = self.stream.csr_snapshot(self.kernel_ctx.parallelism);
        let time = self.stream.last_batch_time();
        let (_, tier) = self.tier.as_ref()?;
        let scrub = tier.scrub();
        if !scrub.corrupt.is_empty() {
            self.recorder.journal(
                time,
                "tier_quarantine",
                format!("scrub quarantined {} segment(s)", scrub.corrupt.len()),
            );
        }
        let repair = tier.repair_from(Some(&snap));
        self.recorder.journal(
            time,
            "tier_scrub",
            format!(
                "scanned {} clean / {} corrupt / {} missing, repaired {}, unrepairable {}",
                scrub.clean,
                scrub.corrupt.len(),
                scrub.missing.len(),
                repair.repaired.len(),
                repair.unrepairable.len()
            ),
        );
        self.stats.tier.merge(&tier.take_stats());
        Some((scrub, repair))
    }

    /// Register a batch analytic; returns its index.
    pub fn register_analytic(&mut self, a: Box<dyn BatchAnalytic>) -> usize {
        self.analytics.push(a);
        self.analytics.len() - 1
    }

    /// Attach a streaming monitor (incremental kernel).
    pub fn register_monitor(&mut self, m: Box<dyn ga_stream::Monitor>) {
        self.stream.register(m);
    }

    /// The persistent graph.
    pub fn graph(&self) -> &DynamicGraph {
        self.stream.graph()
    }

    /// The persistent property store.
    pub fn props(&self) -> &PropertyStore {
        self.stream.props()
    }

    /// Mutable property access (bulk write-back).
    pub fn props_mut(&mut self) -> &mut PropertyStore {
        self.stream.props_mut()
    }

    /// The instrumentation counters.
    pub fn stats(&self) -> FlowStats {
        self.stats
    }

    /// The stream layer's own counters (persisted in checkpoints and
    /// restored by recovery alongside [`FlowStats`]).
    pub fn stream_stats(&self) -> ga_stream::engine::StreamStats {
        self.stream.stats()
    }

    /// Attach (or replace) the observability recorder, threading it
    /// through the kernel context, stream engine, WAL, and checkpoint
    /// writer. Pass [`Recorder::disabled`] to turn instrumentation off.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.kernel_ctx.recorder = recorder.clone();
        self.stream.set_recorder(recorder.clone());
        if let Some(d) = self.durability.as_mut() {
            d.set_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }

    /// The attached recorder (disabled by default). Callers owning flow
    /// stages the engine cannot see — e.g. the dedup pass feeding
    /// [`Self::note_ingest`] — open their own spans on this.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Point-in-time export of everything the recorder has seen: span
    /// totals and wall-time histograms for every [`Step`], plus the
    /// journal of overload events. Empty (but schema-valid) when the
    /// recorder is disabled.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.recorder.snapshot()
    }

    /// Record that `records → entities` dedup ingest happened (the
    /// caller builds graph edges from the deduped entities; see the
    /// NORA example for the full path).
    pub fn note_ingest(&mut self, records: usize, entities: usize) {
        self.stats.ingest.records_ingested += records;
        self.stats.ingest.entities_created += entities;
    }

    /// Resolve selection criteria into seed vertices.
    pub fn select_seeds(&self, criteria: &SelectionCriteria) -> Vec<VertexId> {
        match criteria {
            SelectionCriteria::Explicit(v) => v.clone(),
            SelectionCriteria::TopKProperty { name, k } => {
                topk::top_k_property(self.stream.props(), name, *k)
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect()
            }
            SelectionCriteria::TopKDegree { k } => {
                let g = self.stream.graph();
                topk::top_k_by(g.num_vertices(), *k, |v| Some(g.degree(v) as f64))
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect()
            }
            SelectionCriteria::PropertyAbove { name, tau } => {
                let tau = *tau;
                self.stream.props().select_f64(name, |x| x > tau)
            }
        }
    }

    /// The full batch path: select seeds → extract (with projection) →
    /// run the analytic → write back vertex properties → collect
    /// globals and alerts.
    pub fn run_batch(
        &mut self,
        criteria: &SelectionCriteria,
        analytic_idx: usize,
    ) -> BatchRunReport {
        let mut span = self.recorder.span(Step::Selection);
        let seeds = self.select_seeds(criteria);
        if span.is_recording() {
            // Explicit selection touches only its own list; every other
            // criterion scans the full vertex set.
            let scanned = match criteria {
                SelectionCriteria::Explicit(v) => v.len() as u64,
                _ => self.stream.graph().num_vertices() as u64,
            };
            span.add(scanned, scanned * 8, 0, 0);
        }
        drop(span);
        self.stats.analytics.seeds_selected += seeds.len();
        let report = self.run_batch_on_seeds(&seeds, analytic_idx);
        self.publish_epoch();
        report
    }

    fn run_batch_on_seeds(&mut self, seeds: &[VertexId], analytic_idx: usize) -> BatchRunReport {
        // Freeze through the stream engine's snapshot cache: repeat
        // triggers against an unchanged graph reuse the cached CSR, and
        // after an update batch only the dirtied rows are rebuilt.
        let snap = self.stream.csr_snapshot(self.kernel_ctx.parallelism);
        if self.compressed_adjacency {
            // Keep the compressed mirror current while the plain rows
            // are still warm; a repeat trigger on an unchanged graph is
            // an Arc clone.
            self.stream
                .compressed_csr_snapshot(self.kernel_ctx.parallelism);
        }
        let snap_stats = self.stream.take_snapshot_stats();
        self.stats.snapshots.rebuilds += snap_stats.rebuilds() as usize;
        self.stats.snapshots.rows_reused += snap_stats.rows_reused as usize;
        self.stats.snapshots.mem_bytes += snap_stats.mem_bytes as usize;
        if let Some(cfg) = &self.tier_config {
            // Respill only when the snapshot actually changed; a repeat
            // trigger on an unchanged graph keeps the warm tier. Spill
            // bytes are disk traffic of the Snapshot step.
            let stale = !matches!(&self.tier, Some((s, _)) if std::sync::Arc::ptr_eq(s, &snap));
            if stale {
                let mut span = self.recorder.span(Step::Snapshot);
                match ga_graph::TieredCsr::spill(&snap, cfg.clone()) {
                    Ok(tier) => {
                        if span.is_recording() {
                            span.add_disk_bytes(tier.stats().spilled_bytes);
                        }
                        self.tier = Some((std::sync::Arc::clone(&snap), tier));
                    }
                    Err(e) => {
                        // Spill refused (tier directory unusable):
                        // degrade to in-RAM extraction, on the record.
                        self.recorder.journal(
                            self.stream.last_batch_time(),
                            "tier_spill_failed",
                            format!("{e}"),
                        );
                        self.tier = None;
                    }
                }
                drop(span);
            }
            if let Some((_, tier)) = &self.tier {
                tier.begin_io_window();
            }
        } else {
            self.tier = None;
        }
        let mut span = self.recorder.span(Step::Extraction);
        let cols: Vec<&str> = self.project_columns.iter().map(|s| s.as_str()).collect();
        let props_ref = (!cols.is_empty()).then(|| (self.stream.props(), cols.as_slice()));
        let sub = match &self.tier {
            // The extraction BFS reads through the tier: cold rows page
            // in from disk and the IO lands on this span's disk axis.
            Some((_, tier)) => {
                let before = tier.stats().read_bytes;
                let sub = extract_ball(tier, seeds, &self.extract, props_ref);
                if span.is_recording() {
                    span.add_disk_bytes(tier.stats().read_bytes - before);
                }
                sub
            }
            None => extract_ball(&*snap, seeds, &self.extract, props_ref),
        };
        if span.is_recording() {
            let (nv, ne) = (sub.num_vertices() as u64, sub.graph.num_edges() as u64);
            // One visit per vertex + edge; ids and CSR copies dominate
            // the memory traffic.
            span.add(nv + ne, nv * 8 + ne * 16, 0, 0);
        }
        drop(span);
        if let Some((_, tier)) = &self.tier {
            self.stats.tier.merge(&tier.take_stats());
        }
        self.stats.analytics.subgraphs_extracted += 1;
        self.stats.analytics.vertices_extracted += sub.num_vertices();
        self.stats.analytics.edges_extracted += sub.graph.num_edges();

        let analytic = &self.analytics[analytic_idx];
        let name = analytic.name();
        let mut span = self.recorder.span(Step::BatchAnalytic);
        let out = analytic.run(&sub, &self.kernel_ctx);
        // Drain the kernels' operation counters into the run stats — the
        // measured inputs model calibration consumes — and attribute the
        // same work to the analytic's span.
        let ops = self.kernel_ctx.take();
        span.add(ops.cpu_ops, ops.mem_bytes, 0, 0);
        drop(span);
        self.stats.analytics.kernel_cpu_ops += ops.cpu_ops as usize;
        self.stats.analytics.kernel_mem_bytes += ops.mem_bytes as usize;
        self.stats.analytics.kernel_edges_touched += ops.edges_touched as usize;
        // A budgeted run that tripped its op/deadline bound produced a
        // typed partial result (see the Completion fields on kernel
        // results) — count it.
        if self.kernel_ctx.budget.take_hits() > 0 {
            self.stats.overload.deadline_partials += 1;
        }
        self.stats.analytics.batch_runs += 1;
        self.stats.analytics.globals_produced += out.globals.len();
        self.stats.analytics.alerts_raised += out.alerts.len();

        // Write back per-vertex results through the back-map ("use of
        // the analytic to compute/update properties of vertices ... sent
        // back to update the original persistent graph").
        let mut span = self.recorder.span(Step::WriteBack);
        let mut written = 0usize;
        for (prop_name, values) in &out.vertex_props {
            assert_eq!(values.len(), sub.num_vertices());
            for (local, &value) in values.iter().enumerate() {
                let global = sub.back_map[local];
                self.stream.props_mut().set(prop_name, global, value);
                written += 1;
            }
        }
        if span.is_recording() {
            // Each write-back is a property-store update shipped to the
            // persistent side: name lookup + one f64 slot, modeled as a
            // network transfer in the distributed configurations.
            let w = written as u64;
            span.add(w, w * 8, 0, w * 8);
        }
        drop(span);
        self.stats.analytics.props_written_back += written;
        BatchRunReport {
            analytic: name,
            seeds: seeds.to_vec(),
            subgraph_size: (sub.num_vertices(), sub.graph.num_edges()),
            globals: out.globals,
            alerts: out.alerts,
        }
    }

    /// The streaming path: apply a batch of updates, observe monitor
    /// events, and for each event the `trigger` turns into seeds, run
    /// the chosen analytic on the extracted neighborhood ("use the
    /// modified vertices/edges as seeds into a subgraph extraction
    /// process similar to that described for the batch process").
    pub fn process_stream(
        &mut self,
        batch: &UpdateBatch,
        trigger: impl Fn(&Event) -> Option<Vec<VertexId>>,
        analytic_idx: Option<usize>,
    ) -> Vec<BatchRunReport> {
        let reports = self.process_stream_inner(batch, trigger, analytic_idx, true);
        self.publish_epoch();
        reports
    }

    /// Shared streaming path. With `run_analytics` false (the
    /// `SeedsOnly` degradation rung) triggers still fire and seeds are
    /// still selected/counted, but each would-be analytic run is skipped
    /// and counted in `analytics_skipped` instead.
    fn process_stream_inner(
        &mut self,
        batch: &UpdateBatch,
        trigger: impl Fn(&Event) -> Option<Vec<VertexId>>,
        analytic_idx: Option<usize>,
        run_analytics: bool,
    ) -> Vec<BatchRunReport> {
        let quarantined = self.stream.apply_batch(batch);
        self.stats.ingest.updates_applied += batch.updates.len() - quarantined;
        self.stats.ingest.updates_quarantined += quarantined;
        let events = self.stream.take_events();
        self.stats.ingest.events_observed += events.len();
        let mut reports = Vec::new();
        for ev in &events {
            if let Some(seeds) = trigger(ev) {
                self.stats.ingest.triggers_fired += 1;
                if let Some(idx) = analytic_idx {
                    self.stats.analytics.seeds_selected += seeds.len();
                    if run_analytics {
                        reports.push(self.run_batch_on_seeds(&seeds, idx));
                    } else {
                        self.stats.overload.analytics_skipped += 1;
                    }
                }
            }
        }
        reports
    }

    // -----------------------------------------------------------------
    // Durability: WAL + checkpoint/recovery (crate::durability).
    // -----------------------------------------------------------------

    /// Make this engine durable: every subsequent
    /// [`Self::process_stream_durable`] batch is written ahead to a log
    /// in `dir`, and [`Self::checkpoint`] snapshots full state there.
    ///
    /// Writes an initial checkpoint capturing the *current* state, so
    /// recovery always has a base — including any graph content or
    /// analytic write-backs that predate durability (those are not in
    /// the WAL and are only durable via checkpoints). Fails if `dir`
    /// already holds engine state; use [`Self::recover`] for that.
    fn enable_durability_impl(&mut self, dir: &Path) -> io::Result<()> {
        let ckpt = self.snapshot(1);
        let mut d = Durability::create(dir, &ckpt)?;
        d.set_recorder(self.recorder.clone());
        self.durability = Some(d);
        Ok(())
    }

    /// Whether [`FlowConfig::durability_dir`] / [`Self::recover`]
    /// attached a durability directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Sequence number the next WAL append will carry (1-based; frame
    /// `i` holds the `i`-th durable batch). Recovery drivers use this to
    /// know where to resume an input stream.
    pub fn next_wal_seq(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.next_wal_seq())
    }

    /// Cursor of the newest successfully written checkpoint.
    pub fn last_checkpoint_seq(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.last_checkpoint_seq())
    }

    /// Durable form of [`Self::process_stream`]: the batch is appended
    /// to the write-ahead log (fsynced) *before* it touches the engine,
    /// so a crash at any later point replays it on recovery.
    ///
    /// Transient append failures are retried per the configured
    /// [`FlowConfig::retry`] policy (the torn tail is repaired between
    /// attempts). With the default no-retry policy this is the PR 2
    /// fail-fast contract: on a WAL error the engine state is untouched
    /// and the batch is NOT applied. Once the circuit breaker trips, the
    /// engine degrades to non-durable operation — the batch IS applied
    /// and `Ok` is returned, with the trip surfaced as an alert, a
    /// `CircuitBreaker` event, and the `breaker_trips` counter.
    pub fn process_stream_durable(
        &mut self,
        batch: &UpdateBatch,
        trigger: impl Fn(&Event) -> Option<Vec<VertexId>>,
        analytic_idx: Option<usize>,
    ) -> io::Result<Vec<BatchRunReport>> {
        if self.durability.is_none() {
            return Err(io::Error::other(
                "durability not enabled; build with durability_dir or recover first",
            ));
        }
        self.append_with_retry(batch)?;
        Ok(self.process_stream(batch, trigger, analytic_idx))
    }

    /// Append `batch` to the WAL, retrying transient failures with the
    /// configured backoff. Exhausted retries feed the circuit breaker;
    /// when it trips the engine suspends durability (returning `Ok` so
    /// the caller proceeds non-durably) instead of erroring forever.
    fn append_with_retry(&mut self, batch: &UpdateBatch) -> io::Result<()> {
        if self.durability_suspended || self.durability.is_none() {
            return Ok(());
        }
        let mut attempt = 0u32;
        let err = loop {
            let d = self.durability.as_mut().unwrap();
            match d.append(batch) {
                Ok(_) => {
                    self.breaker.record_success();
                    return Ok(());
                }
                Err(e) => {
                    // A failed append may have torn the log; truncate the
                    // tail so the retried frame lands on a clean boundary.
                    // A repair failure is itself a durability failure —
                    // and on a hard storage fault the most likely
                    // correlated one — so it must feed the breaker below
                    // rather than bypass it.
                    if let Err(re) = d.repair_wal() {
                        break re;
                    }
                    if attempt < self.retry.max_retries {
                        std::thread::sleep(self.retry.delay(attempt));
                        attempt += 1;
                        self.stats.durability.retries += 1;
                    } else {
                        break e;
                    }
                }
            }
        };
        if self.breaker.record_failure() {
            self.trip_breaker();
            return Ok(());
        }
        Err(err)
    }

    /// Record a breaker trip: suspend durable writes, raise an alert,
    /// and emit a `CircuitBreaker` event.
    fn trip_breaker(&mut self) {
        self.durability_suspended = true;
        self.stats.durability.breaker_trips += 1;
        self.stats.analytics.alerts_raised += 1;
        let time = self.stream.last_batch_time();
        self.recorder
            .journal(time, "circuit_breaker", "durability open".into());
        self.overload_events.push(Event {
            time,
            source: "flow",
            kind: EventKind::CircuitBreaker {
                site: "durability",
                open: true,
            },
        });
    }

    /// Snapshot current state as a checkpoint with the given cursor.
    fn snapshot(&self, next_wal_seq: u64) -> Checkpoint {
        Checkpoint {
            graph: self.stream.graph().clone(),
            props: self.stream.props().clone(),
            flow: self.stats,
            stream: self.stream.stats(),
            symmetrize: self.stream.symmetrize,
            vertex_limit: self.stream.vertex_limit() as u64,
            last_batch_time: self.stream.last_batch_time(),
            next_wal_seq,
        }
    }

    /// Write a checkpoint of the current state, rotate the WAL, and
    /// prune old files. Returns the checkpoint's path.
    ///
    /// Transient write failures are retried like WAL appends (the
    /// tmp-file + rename protocol makes a retried write safe), feeding
    /// the same circuit breaker. Fails fast when durability is already
    /// suspended — a checkpoint is an explicit durability request the
    /// engine cannot silently skip.
    pub fn checkpoint(&mut self) -> io::Result<PathBuf> {
        if self.durability.is_none() {
            return Err(io::Error::other(
                "durability not enabled; build with durability_dir or recover first",
            ));
        }
        if self.durability_suspended {
            return Err(io::Error::other(
                "durability suspended by the circuit breaker; call resume_durability",
            ));
        }
        let seq = self.durability.as_ref().unwrap().next_wal_seq();
        let ckpt = self.snapshot(seq);
        // Retries of this very write cannot be part of the image being
        // written; the live counter is folded up after the write lands
        // (recovered counters lag by exactly those retries, which the
        // equivalence suite normalizes).
        let mut attempt = 0u32;
        let result = loop {
            let d = self.durability.as_mut().unwrap();
            match d.checkpoint(&ckpt) {
                Ok(path) => break Ok(path),
                Err(_) if attempt < self.retry.max_retries => {
                    std::thread::sleep(self.retry.delay(attempt));
                    attempt += 1;
                }
                Err(e) => break Err(e),
            }
        };
        self.stats.durability.retries += attempt as usize;
        match result {
            Ok(path) => {
                self.breaker.record_success();
                Ok(path)
            }
            Err(e) => {
                if self.breaker.record_failure() {
                    self.trip_breaker();
                }
                Err(e)
            }
        }
    }

    /// Rebuild an engine from a durability directory: load the newest
    /// usable checkpoint, replay the WAL suffix through the normal
    /// ingest path (quarantine included), and reattach the log for
    /// further appends.
    ///
    /// The recovered state — graph slots, property columns, stats,
    /// batch-time watermark — is bit-identical to an uninterrupted run
    /// over the same durable batches. Configuration that is not state
    /// (registered analytics, monitors, extraction options, kernel
    /// context) is NOT persisted; re-register after recovery.
    pub fn recover(dir: impl AsRef<Path>) -> io::Result<FlowEngine> {
        Self::recover_labeled(dir, "")
    }

    /// [`Self::recover`] for one shard of a multi-engine deployment:
    /// `label` (e.g. `"shard-03"`) is prefixed onto every durability
    /// error so a failed recovery names the shard and the offending
    /// checkpoint/WAL path.
    pub fn recover_labeled(dir: impl AsRef<Path>, label: &str) -> io::Result<FlowEngine> {
        let (durability, ckpt, replay) = Durability::recover_labeled(dir, label)?;
        let mut engine = FlowEngine::with_graph(ckpt.graph, ckpt.props);
        engine.stats = ckpt.flow;
        engine.stream.set_stats(ckpt.stream);
        engine.stream.symmetrize = ckpt.symmetrize;
        engine.stream.set_vertex_limit(ckpt.vertex_limit as usize);
        engine.stream.set_last_batch_time(ckpt.last_batch_time);
        engine.durability = Some(durability);
        for (_seq, batch) in &replay {
            // Replay through the plain path: the frames are already in
            // the log, and re-validation re-quarantines deterministically.
            engine.process_stream(batch, |_| None, None);
        }
        Ok(engine)
    }

    /// Quarantined updates, oldest first (bounded dead-letter queue).
    pub fn dead_letters(&self) -> impl Iterator<Item = &QuarantinedUpdate> {
        self.stream.dead_letters()
    }

    /// Remove and return every quarantined update (oldest first),
    /// leaving the dead-letter queue empty. For re-admission through
    /// the normal ingest path use [`Self::replay_dead_letters`], which
    /// WAL-logs the replay on durable engines.
    pub fn drain_dead_letters(&mut self) -> Vec<QuarantinedUpdate> {
        self.stream.drain_dead_letters()
    }

    /// Align the batch-time watermark without ingesting (used when a
    /// shard engine is rebuilt from replica rows: the copied rows carry
    /// the fleet's timestamps, so the clock must match the fleet's).
    pub(crate) fn set_last_batch_time(&mut self, t: ga_graph::Timestamp) {
        self.stream.set_last_batch_time(t);
    }

    /// Set the vertex-id bound above which updates are quarantined.
    pub fn set_vertex_limit(&mut self, limit: usize) {
        self.stream.set_vertex_limit(limit);
    }

    /// Mirror edge updates in both directions (undirected mode). Must
    /// match across crash/recovery for replay to reproduce state.
    pub fn set_symmetrize(&mut self, symmetrize: bool) {
        self.stream.symmetrize = symmetrize;
    }

    /// Whether edge updates are mirrored in both directions (persisted
    /// in checkpoints, so valid right after recovery too).
    pub fn symmetrize(&self) -> bool {
        self.stream.symmetrize
    }

    // -----------------------------------------------------------------
    // Overload resilience: admission control, degradation ladder,
    // retry/backoff + circuit breaker, dead-letter replay.
    // -----------------------------------------------------------------

    /// The configured retry policy (set via [`FlowConfig::retry`]).
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// True once the circuit breaker has suspended durable writes.
    pub fn durability_suspended(&self) -> bool {
        self.durability_suspended
    }

    /// Operator action after the storage fault is fixed: close the
    /// breaker, repair the WAL tail, and resume durable operation.
    /// Batches applied while suspended were never logged — take a
    /// [`Self::checkpoint`] right after resuming to re-base recovery.
    pub fn resume_durability(&mut self) -> io::Result<()> {
        if let Some(d) = self.durability.as_mut() {
            d.repair_wal()?;
        }
        self.breaker.reset();
        if self.durability_suspended {
            self.durability_suspended = false;
            let time = self.stream.last_batch_time();
            self.recorder
                .journal(time, "circuit_breaker", "durability closed".into());
            self.overload_events.push(Event {
                time,
                source: "flow",
                kind: EventKind::CircuitBreaker {
                    site: "durability",
                    open: false,
                },
            });
        }
        Ok(())
    }

    /// Offer a batch to the admission queue under `class`. Refused or
    /// evicted updates are counted in `updates_shed` and surfaced as
    /// [`EventKind::LoadShed`] events; nothing here touches the graph —
    /// call [`Self::pump`] to drain admitted work.
    pub fn offer(&mut self, class: Priority, batch: UpdateBatch) -> AdmissionDecision {
        let lost_before = self.admission.stats().total_lost();
        let decision = self.admission.offer(class, batch);
        self.stats.overload.updates_shed += self.admission.stats().total_lost() - lost_before;
        let events = self.admission.take_events();
        if self.recorder.is_enabled() {
            for ev in &events {
                if let EventKind::LoadShed {
                    class,
                    updates,
                    queue_depth,
                } = ev.kind
                {
                    self.recorder.journal(
                        ev.time,
                        "load_shed",
                        format!("{class}: {updates} updates at depth {queue_depth}"),
                    );
                }
            }
        }
        self.overload_events.extend(events);
        decision
    }

    /// Queued updates awaiting [`Self::pump`].
    pub fn queue_depth(&self) -> usize {
        self.admission.depth()
    }

    /// Admission counters (offered/admitted/shed/evicted per class).
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// Overload events (load shedding, ladder moves, breaker trips)
    /// accumulated since the last take.
    pub fn take_overload_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.overload_events)
    }

    /// The rung of the degradation ladder the next pumped batch will be
    /// processed at: the more degraded of the queue-depth signal
    /// (deterministic) and the recent-latency EWMA signal (off unless
    /// latency thresholds are configured).
    pub fn degradation_level(&self) -> DegradationLevel {
        let depth = self.admission.depth();
        let o = &self.overload;
        let by_depth = if depth >= o.shed_at {
            DegradationLevel::Shed
        } else if depth >= o.seeds_only_at {
            DegradationLevel::SeedsOnly
        } else if depth >= o.partial_at {
            DegradationLevel::PartialDeadline
        } else {
            DegradationLevel::Full
        };
        let by_latency = match self.batch_latency.value() {
            None => DegradationLevel::Full,
            Some(secs) => {
                let over = |t: Option<Duration>| t.is_some_and(|t| secs > t.as_secs_f64());
                if over(o.latency_shed) {
                    DegradationLevel::Shed
                } else if over(o.latency_seeds_only) {
                    DegradationLevel::SeedsOnly
                } else if over(o.latency_partial) {
                    DegradationLevel::PartialDeadline
                } else {
                    DegradationLevel::Full
                }
            }
        };
        by_depth.max(by_latency)
    }

    /// Emit a `Degraded` event when the ladder rung changed since the
    /// last pump (recovery back toward `Full` is reported the same way).
    fn note_level(&mut self, level: DegradationLevel) {
        if level != self.level {
            let time = self.stream.last_batch_time();
            if self.recorder.is_enabled() {
                self.recorder.journal(
                    time,
                    "degraded",
                    format!(
                        "{} -> {} at depth {}",
                        self.level.name(),
                        level.name(),
                        self.admission.depth()
                    ),
                );
            }
            self.overload_events.push(Event {
                time,
                source: "flow",
                kind: EventKind::Degraded {
                    from: self.level.name(),
                    to: level.name(),
                    queue_depth: self.admission.depth(),
                },
            });
            self.level = level;
        }
    }

    /// Drain up to `max_batches` admitted batches through the streaming
    /// path, each at the degradation level in force when it is popped
    /// (high-priority batches first):
    ///
    /// * `Full` — the normal [`Self::process_stream`] path.
    /// * `PartialDeadline` — analytics run under
    ///   [`OverloadConfig::degraded_budget_ops`] (+ optional deadline)
    ///   and may return typed partial results (`deadline_partials`).
    /// * `SeedsOnly` — triggers still fire and seeds are selected, but
    ///   analytic runs are skipped (`analytics_skipped`).
    /// * `Shed` — updates are applied unmonitored: no events, no
    ///   triggers, minimal cost.
    ///
    /// Durable engines append every pumped batch (with retry) before it
    /// touches the graph, at every level — degradation sacrifices
    /// analytics, never durability. If an append fails without tripping
    /// the breaker, the popped batch is re-queued at the front of its
    /// class before the error is returned, so a durability error never
    /// silently loses an admitted batch. Returns the reports of analytic
    /// runs that did execute.
    pub fn pump(
        &mut self,
        max_batches: usize,
        trigger: impl Fn(&Event) -> Option<Vec<VertexId>>,
        analytic_idx: Option<usize>,
    ) -> io::Result<Vec<BatchRunReport>> {
        let mut reports = Vec::new();
        for _ in 0..max_batches {
            let level = self.degradation_level();
            self.note_level(level);
            let Some((class, batch)) = self.admission.pop() else {
                break;
            };
            let t0 = Instant::now();
            if let Err(e) = self.append_with_retry(&batch) {
                // The batch never touched the graph; put it back at the
                // front of its class so nothing admitted is lost to a
                // durability error.
                self.admission.requeue_front(class, batch);
                return Err(e);
            }
            match level {
                DegradationLevel::Full => {
                    reports.extend(self.process_stream(&batch, &trigger, analytic_idx));
                }
                DegradationLevel::PartialDeadline => {
                    let saved = std::mem::replace(
                        &mut self.kernel_ctx.budget,
                        match self.overload.degraded_deadline {
                            Some(d) => {
                                Budget::ops_and_deadline(self.overload.degraded_budget_ops, d)
                            }
                            None => Budget::ops(self.overload.degraded_budget_ops),
                        },
                    );
                    reports.extend(self.process_stream(&batch, &trigger, analytic_idx));
                    self.kernel_ctx.budget = saved;
                }
                DegradationLevel::SeedsOnly => {
                    self.process_stream_inner(&batch, &trigger, analytic_idx, false);
                }
                DegradationLevel::Shed => {
                    let quarantined = self.stream.apply_batch_unmonitored(&batch);
                    self.stats.ingest.updates_applied += batch.updates.len() - quarantined;
                    self.stats.ingest.updates_quarantined += quarantined;
                }
            }
            self.batch_latency.observe(t0.elapsed().as_secs_f64());
        }
        // Re-evaluate after draining so recovery back to Full is visible
        // without waiting for the next pump.
        let level = self.degradation_level();
        self.note_level(level);
        // Degraded rungs (SeedsOnly/Shed) bypass process_stream, so
        // republish here — degradation sheds analytics, never freshness.
        self.publish_epoch();
        Ok(reports)
    }

    /// Drain the dead-letter queue and re-admit every quarantined update
    /// through the normal ingest path (after the operator fixed the
    /// cause — e.g. [`Self::set_vertex_limit`]). The replay batch is
    /// WAL-logged first on durable engines, so recovery reproduces it.
    /// Still-invalid updates are re-quarantined.
    ///
    /// Returns `(applied, requarantined)`.
    pub fn replay_dead_letters(&mut self) -> io::Result<(usize, usize)> {
        // Build the replay batch from a *copy* of the queue and append
        // it to the WAL before draining: if the append fails, the
        // quarantined updates stay safely retained in the dead-letter
        // queue instead of being destroyed with the error.
        let updates: Vec<_> = self
            .stream
            .dead_letters()
            .map(|l| l.update.clone())
            .collect();
        if updates.is_empty() {
            return Ok((0, 0));
        }
        let batch = UpdateBatch {
            time: self.stream.last_batch_time(),
            updates,
        };
        if self.durability.is_some() {
            self.append_with_retry(&batch)?;
        }
        self.stream.drain_dead_letters();
        let before = self.stats.ingest.updates_quarantined;
        self.process_stream(&batch, |_| None, None);
        let requarantined = self.stats.ingest.updates_quarantined - before;
        Ok((batch.updates.len() - requarantined, requarantined))
    }
}

// ---------------------------------------------------------------------
// Built-in analytics wrapping the kernel crate.
// ---------------------------------------------------------------------

/// PageRank over the extracted subgraph; writes `pagerank` back.
pub struct PageRankAnalytic {
    /// Damping factor (0.85 typical).
    pub damping: f64,
}

impl BatchAnalytic for PageRankAnalytic {
    fn name(&self) -> &'static str {
        "pagerank"
    }
    fn run(&self, sub: &Subgraph, ctx: &KernelCtx) -> AnalyticOutput {
        let r = ga_kernels::pagerank::pagerank_delta_with(&sub.graph, self.damping, 1e-3, ctx);
        AnalyticOutput {
            globals: vec![("pagerank_pushes".into(), r.work as f64)],
            vertex_props: vec![("pagerank".into(), r.rank)],
            alerts: vec![],
        }
    }
}

/// Connected components; writes `component` back and reports the count.
pub struct ComponentsAnalytic;

impl BatchAnalytic for ComponentsAnalytic {
    fn name(&self) -> &'static str {
        "components"
    }
    fn run(&self, sub: &Subgraph, ctx: &KernelCtx) -> AnalyticOutput {
        let c = ga_kernels::cc::wcc_with(&sub.graph, ctx);
        AnalyticOutput {
            globals: vec![("num_components".into(), c.count as f64)],
            vertex_props: vec![(
                "component".into(),
                c.label.iter().map(|&l| l as f64).collect(),
            )],
            alerts: vec![],
        }
    }
}

/// Triangle count + clustering; alerts when transitivity exceeds a
/// threshold (a toy "dense neighborhood" detector).
pub struct TriangleAnalytic {
    /// Transitivity above which to raise an alert.
    pub alert_transitivity: f64,
}

impl BatchAnalytic for TriangleAnalytic {
    fn name(&self) -> &'static str {
        "triangles"
    }
    fn run(&self, sub: &Subgraph, ctx: &KernelCtx) -> AnalyticOutput {
        let c = ga_kernels::cluster::clustering_coefficients(&sub.graph);
        let triangles = ga_kernels::triangles::count_global_with(&sub.graph, ctx);
        let mut alerts = vec![];
        if c.transitivity > self.alert_transitivity {
            alerts.push(format!(
                "dense neighborhood: transitivity {:.3} over {} vertices",
                c.transitivity,
                sub.num_vertices()
            ));
        }
        AnalyticOutput {
            globals: vec![
                ("triangles".into(), triangles as f64),
                ("transitivity".into(), c.transitivity),
            ],
            vertex_props: vec![("clustering".into(), c.local)],
            alerts,
        }
    }
}

/// All-pairs Jaccard over the extracted subgraph — the NORA-class
/// analytic (§III: "close to the Jaccard coefficient kernel"). Writes
/// each vertex's best coefficient back as `jaccard_max` and alerts on
/// pairs at or above `alert_tau`.
pub struct JaccardAnalytic {
    /// Pairs with J >= this threshold are reported.
    pub tau: f64,
    /// Pairs with J >= this (higher) threshold raise alerts.
    pub alert_tau: f64,
}

impl BatchAnalytic for JaccardAnalytic {
    fn name(&self) -> &'static str {
        "jaccard"
    }
    fn run(&self, sub: &Subgraph, ctx: &KernelCtx) -> AnalyticOutput {
        let pairs = ga_kernels::jaccard::all_pairs_above(&sub.graph, self.tau);
        // The Jaccard kernel isn't internally instrumented yet; record
        // the dominant traffic (every adjacency list read per probed
        // pair's merge) analytically.
        let m = sub.graph.num_edges() as u64;
        ctx.counters.flush(2 * m, 8 * m, m);
        let mut best = vec![0.0f64; sub.num_vertices()];
        let mut alerts = Vec::new();
        for &(a, b, j) in &pairs {
            best[a as usize] = best[a as usize].max(j);
            best[b as usize] = best[b as usize].max(j);
            if j >= self.alert_tau {
                alerts.push(format!(
                    "near-duplicate neighborhoods: {} and {} (J = {j:.3})",
                    sub.to_source(a),
                    sub.to_source(b)
                ));
            }
        }
        AnalyticOutput {
            globals: vec![("jaccard_pairs".into(), pairs.len() as f64)],
            vertex_props: vec![("jaccard_max".into(), best)],
            alerts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::gen;
    use ga_stream::update::{into_batches, Update};
    use ga_stream::EventKind;

    fn engine_with_ring(n: usize) -> FlowEngine {
        let mut g = DynamicGraph::new(n);
        g.insert_undirected(&gen::ring(n), 1);
        FlowEngine::with_graph(g, PropertyStore::new(n))
    }

    #[test]
    fn batch_path_writes_back_properties() {
        let mut e = engine_with_ring(20);
        let idx = e.register_analytic(Box::new(ComponentsAnalytic));
        let report = e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        assert_eq!(report.analytic, "components");
        // depth-2 ball around 0 on a ring: {18,19,0,1,2}
        assert_eq!(report.subgraph_size.0, 5);
        assert_eq!(report.globals[0].1, 1.0); // one component
                                              // Write-back landed on persistent (global) vertex ids.
        assert!(e.props().get_f64("component", 0).is_some());
        assert!(e.props().get_f64("component", 19).is_some());
        assert!(e.props().get_f64("component", 10).is_none());
        let s = e.stats();
        assert_eq!(s.analytics.batch_runs, 1);
        assert_eq!(s.analytics.props_written_back, 5);
    }

    #[test]
    fn compressed_adjacency_mirror_is_exact_and_accounted() {
        let n = 64;
        let mut g = DynamicGraph::new(n);
        g.insert_undirected(&gen::erdos_renyi(n, 200, 5), 1);
        let props = PropertyStore::new(n);
        let mut e = FlowEngine::builder()
            .compressed_adjacency(true)
            .build_with_graph(g, props)
            .unwrap();
        assert!(e.compressed_adjacency());
        let idx = e.register_analytic(Box::new(ComponentsAnalytic));
        e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        // The mirror decodes to the exact plain snapshot, and kernels
        // accept it directly with bit-identical results.
        let compressed = e.compressed_snapshot();
        let plain = e.graph().snapshot();
        let decoded = compressed.to_csr();
        assert_eq!(decoded.num_edges(), plain.num_edges());
        for v in 0..n as VertexId {
            assert_eq!(decoded.neighbors(v), plain.neighbors(v));
        }
        let cc_plain = ga_kernels::cc::wcc_union_find(&plain);
        let cc_comp = ga_kernels::cc::wcc_union_find(compressed.as_ref());
        assert_eq!(cc_plain.label, cc_comp.label);
        // The compressed build was charged to the snapshot stats the
        // batch path folds into FlowStats.
        assert!(e.stats().snapshots.mem_bytes > 0);
    }

    #[test]
    fn top_k_degree_selection() {
        let mut g = DynamicGraph::new(10);
        g.insert_undirected(&gen::star(10), 1);
        let e = FlowEngine::with_graph(g, PropertyStore::new(10));
        let seeds = e.select_seeds(&SelectionCriteria::TopKDegree { k: 1 });
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn property_selection_paths() {
        let mut e = engine_with_ring(6);
        e.props_mut()
            .set_column_f64("risk", &[0.1, 0.9, 0.2, 0.8, 0.0, 0.5]);
        let top = e.select_seeds(&SelectionCriteria::TopKProperty {
            name: "risk".into(),
            k: 2,
        });
        assert_eq!(top, vec![1, 3]);
        let above = e.select_seeds(&SelectionCriteria::PropertyAbove {
            name: "risk".into(),
            tau: 0.45,
        });
        assert_eq!(above, vec![1, 3, 5]);
    }

    #[test]
    fn projection_carries_columns_into_subgraph() {
        let mut e = engine_with_ring(8);
        e.props_mut().set_column_f64("score", &[0.0; 8]);
        e.project_columns = vec!["score".into()];
        let idx = e.register_analytic(Box::new(ComponentsAnalytic));
        // Smoke: run succeeds with projection enabled.
        let r = e.run_batch(&SelectionCriteria::Explicit(vec![3]), idx);
        assert_eq!(r.subgraph_size.0, 5);
    }

    #[test]
    fn pagerank_analytic_writes_ranks() {
        let mut e = engine_with_ring(12);
        e.extract.depth = 6;
        let idx = e.register_analytic(Box::new(PageRankAnalytic { damping: 0.85 }));
        e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        let total: f64 = (0..12)
            .filter_map(|v| e.props().get_f64("pagerank", v))
            .sum();
        assert!((total - 1.0).abs() < 1e-3, "ranks sum to {total}");
    }

    #[test]
    fn triangle_analytic_alerts_on_dense_region() {
        let mut g = DynamicGraph::new(5);
        g.insert_undirected(&gen::complete(5), 1);
        let mut e = FlowEngine::with_graph(g, PropertyStore::new(5));
        let idx = e.register_analytic(Box::new(TriangleAnalytic {
            alert_transitivity: 0.5,
        }));
        let r = e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        assert_eq!(r.alerts.len(), 1);
        assert_eq!(r.globals[0].1, 10.0); // C(5,3)
        assert_eq!(e.stats().analytics.alerts_raised, 1);
    }

    #[test]
    fn streaming_trigger_runs_analytic() {
        let mut e = FlowEngine::new(16);
        e.extract.depth = 1;
        e.register_monitor(Box::new(ga_stream::jaccard_stream::JaccardMonitor::new(
            0.99,
        )));
        let idx = e.register_analytic(Box::new(TriangleAnalytic {
            alert_transitivity: 0.0,
        }));
        // Build two vertices with identical neighborhoods -> J = 1.0.
        let ups = vec![
            Update::EdgeInsert {
                src: 0,
                dst: 2,
                weight: 1.0,
            },
            Update::EdgeInsert {
                src: 0,
                dst: 3,
                weight: 1.0,
            },
            Update::EdgeInsert {
                src: 1,
                dst: 2,
                weight: 1.0,
            },
            Update::EdgeInsert {
                src: 1,
                dst: 3,
                weight: 1.0,
            },
        ];
        let mut reports = Vec::new();
        for b in into_batches(ups, 1, 0) {
            reports.extend(e.process_stream(
                &b,
                |ev| match ev.kind {
                    EventKind::PairThreshold { a, b, .. } => Some(vec![a, b]),
                    _ => None,
                },
                Some(idx),
            ));
        }
        assert!(!reports.is_empty(), "no triggered analytic runs");
        let s = e.stats();
        assert!(s.ingest.triggers_fired >= 1);
        assert_eq!(s.ingest.updates_applied, 4);
        assert!(s.ingest.events_observed >= 1);
        // Triggered run extracted the pair's neighborhood.
        assert!(reports[0].subgraph_size.0 >= 3);
    }

    #[test]
    fn jaccard_analytic_reports_twin_neighborhoods() {
        // Vertices 0 and 1 share exactly the same two neighbors.
        let mut g = DynamicGraph::new(5);
        for (u, v) in [(0, 2), (0, 3), (1, 2), (1, 3)] {
            g.insert_edge(u, v, 1.0, 1);
            g.insert_edge(v, u, 1.0, 1);
        }
        let mut e = FlowEngine::with_graph(g, PropertyStore::new(5));
        let idx = e.register_analytic(Box::new(JaccardAnalytic {
            tau: 0.3,
            alert_tau: 0.99,
        }));
        let r = e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        // Two perfect twins: (0,1) share {2,3} and (2,3) share {0,1}.
        assert_eq!(r.alerts.len(), 2, "alerts: {:?}", r.alerts);
        assert!(r.alerts.iter().all(|a| a.contains("J = 1.000")));
        // Write-back landed in persistent ids.
        assert_eq!(e.props().get_f64("jaccard_max", 0), Some(1.0));
        assert_eq!(e.props().get_f64("jaccard_max", 1), Some(1.0));
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let mut e = engine_with_ring(30);
        let idx = e.register_analytic(Box::new(ComponentsAnalytic));
        e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        e.run_batch(&SelectionCriteria::Explicit(vec![15]), idx);
        let s = e.stats();
        assert_eq!(s.analytics.batch_runs, 2);
        assert_eq!(s.analytics.subgraphs_extracted, 2);
        assert_eq!(s.analytics.seeds_selected, 2);
        assert_eq!(s.analytics.vertices_extracted, 10);
    }

    #[test]
    fn batch_runs_drain_kernel_counters_into_stats() {
        let mut e = engine_with_ring(40);
        let idx = e.register_analytic(Box::new(ComponentsAnalytic));
        e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        let s = e.stats();
        assert!(s.analytics.kernel_cpu_ops > 0);
        assert!(s.analytics.kernel_mem_bytes > 0);
        assert!(s.analytics.kernel_edges_touched > 0);
        // The engine-held counters were drained, not left accumulating.
        assert!(e.kernel_ctx.snapshot().is_zero());
        // A second run accumulates further.
        e.run_batch(&SelectionCriteria::Explicit(vec![20]), idx);
        assert!(e.stats().analytics.kernel_edges_touched > s.analytics.kernel_edges_touched);
    }

    #[test]
    fn note_ingest_counts() {
        let mut e = FlowEngine::new(4);
        e.note_ingest(100, 37);
        assert_eq!(e.stats().ingest.records_ingested, 100);
        assert_eq!(e.stats().ingest.entities_created, 37);
    }

    /// Emits one O(1) event per batch end — a deterministic trigger
    /// source for ladder tests.
    struct PulseMonitor;

    impl ga_stream::Monitor for PulseMonitor {
        fn name(&self) -> &'static str {
            "pulse"
        }
        fn on_update(
            &mut self,
            _g: &DynamicGraph,
            _u: &ga_stream::Update,
            _r: ga_graph::dynamic::ApplyResult,
            _t: u64,
            _out: &mut Vec<Event>,
        ) {
        }
        fn on_batch_end(&mut self, _g: &DynamicGraph, time: u64, out: &mut Vec<Event>) {
            out.push(Event {
                time,
                source: "pulse",
                kind: EventKind::GlobalValue {
                    metric: "pulse",
                    value: 1.0,
                },
            });
        }
    }

    fn ring_batch(n: usize, time: u64, len: usize) -> UpdateBatch {
        UpdateBatch {
            time,
            updates: (0..len)
                .map(|i| Update::EdgeInsert {
                    src: (i % n) as u32,
                    dst: ((i + 1) % n) as u32,
                    weight: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn zero_budget_run_counts_deadline_partial() {
        let mut e = engine_with_ring(20);
        let idx = e.register_analytic(Box::new(ComponentsAnalytic));
        e.kernel_ctx.budget = Budget::ops(0);
        e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        assert_eq!(e.stats().overload.deadline_partials, 1);
        // An unlimited run does not count one.
        e.kernel_ctx.budget = Budget::unlimited();
        e.run_batch(&SelectionCriteria::Explicit(vec![5]), idx);
        assert_eq!(e.stats().overload.deadline_partials, 1);
    }

    #[test]
    fn offer_sheds_over_watermark_and_counts() {
        let mut e = FlowEngine::builder()
            .admission(AdmissionConfig {
                capacity: 100,
                normal_watermark: 80,
                bulk_watermark: 40,
            })
            .build(8)
            .unwrap();
        assert!(e.offer(Priority::Bulk, ring_batch(8, 1, 40)).admitted());
        let d = e.offer(Priority::Bulk, ring_batch(8, 2, 10));
        assert!(!d.admitted());
        assert_eq!(e.stats().overload.updates_shed, 10);
        assert_eq!(e.queue_depth(), 40);
        let evs = e.take_overload_events();
        assert_eq!(evs.len(), 1);
        assert!(matches!(
            evs[0].kind,
            EventKind::LoadShed {
                class: "bulk",
                updates: 10,
                ..
            }
        ));
    }

    #[test]
    fn pump_walks_the_degradation_ladder() {
        let mut e = FlowEngine::builder()
            .admission(AdmissionConfig {
                capacity: 1000,
                normal_watermark: 800,
                bulk_watermark: 500,
            })
            .build(16)
            .unwrap();
        e.extract.depth = 1;
        e.register_monitor(Box::new(PulseMonitor));
        let idx = e.register_analytic(Box::new(ComponentsAnalytic));
        e.overload.partial_at = 100;
        e.overload.seeds_only_at = 200;
        e.overload.shed_at = 300;
        e.overload.degraded_budget_ops = 0; // any analytic run is partial
        let trigger = |ev: &Event| match ev.kind {
            EventKind::GlobalValue { .. } => Some(vec![0]),
            _ => None,
        };

        // Depth 50 → Full: the analytic runs to completion.
        e.offer(Priority::Normal, ring_batch(16, 1, 50));
        assert_eq!(e.degradation_level(), DegradationLevel::Full);
        let r = e.pump(1, trigger, Some(idx)).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(e.stats().overload.deadline_partials, 0);

        // Depth 150 → PartialDeadline: runs happen but trip the budget.
        for t in 2..5 {
            e.offer(Priority::Normal, ring_batch(16, t, 50));
        }
        assert_eq!(e.degradation_level(), DegradationLevel::PartialDeadline);
        e.pump(1, trigger, Some(idx)).unwrap();
        assert_eq!(e.stats().overload.deadline_partials, 1);
        assert_eq!(e.stats().analytics.batch_runs, 2);
        // The standing budget was restored afterwards.
        assert!(!e.kernel_ctx.budget.is_limited());

        // Depth 250 → SeedsOnly: trigger fires, analytic skipped.
        for t in 5..8 {
            e.offer(Priority::Normal, ring_batch(16, t, 50));
        }
        assert_eq!(e.degradation_level(), DegradationLevel::SeedsOnly);
        e.pump(1, trigger, Some(idx)).unwrap();
        assert_eq!(e.stats().overload.analytics_skipped, 1);
        assert_eq!(e.stats().analytics.batch_runs, 2, "no analytic ran");

        // Depth 300 → Shed: updates applied, no events observed.
        for t in 8..10 {
            e.offer(Priority::Normal, ring_batch(16, t, 50));
        }
        assert_eq!(e.degradation_level(), DegradationLevel::Shed);
        let observed = e.stats().ingest.events_observed;
        e.pump(1, trigger, Some(idx)).unwrap();
        assert_eq!(
            e.stats().ingest.events_observed,
            observed,
            "shed batch is silent"
        );

        // Drain the rest: the ladder recovers to Full and said so.
        e.pump(100, trigger, Some(idx)).unwrap();
        assert_eq!(e.queue_depth(), 0);
        assert_eq!(e.degradation_level(), DegradationLevel::Full);
        let evs = e.take_overload_events();
        let moves: Vec<(&str, &str)> = evs
            .iter()
            .filter_map(|ev| match ev.kind {
                EventKind::Degraded { from, to, .. } => Some((from, to)),
                _ => None,
            })
            .collect();
        assert!(moves.contains(&("full", "partial-deadline")), "{moves:?}");
        // Recovery is stepwise as the queue drains, but it ends at full
        // and the shed level was both entered and left.
        assert_eq!(moves.last().map(|m| m.1), Some("full"), "{moves:?}");
        assert!(moves.iter().any(|m| m.0 == "shed"), "{moves:?}");
        // Every update was accounted: applied, nothing lost.
        assert_eq!(e.stats().ingest.updates_applied, 450);
        assert_eq!(e.stats().overload.updates_shed, 0);
    }

    #[test]
    fn flow_replay_dead_letters_after_raising_limit() {
        let mut e = FlowEngine::new(4);
        e.set_vertex_limit(10);
        e.process_stream(
            &UpdateBatch {
                time: 1,
                updates: vec![
                    Update::EdgeInsert {
                        src: 0,
                        dst: 50,
                        weight: 1.0,
                    },
                    Update::EdgeInsert {
                        src: 0,
                        dst: 1,
                        weight: 1.0,
                    },
                ],
            },
            |_| None,
            None,
        );
        assert_eq!(e.stats().ingest.updates_quarantined, 1);
        e.set_vertex_limit(100);
        let (applied, requarantined) = e.replay_dead_letters().unwrap();
        assert_eq!((applied, requarantined), (1, 0));
        assert!(e.graph().has_edge(0, 50));
        assert_eq!(e.stats().ingest.updates_applied, 2);
        // Queue is empty now; a second replay is a no-op.
        assert_eq!(e.replay_dead_letters().unwrap(), (0, 0));
    }

    #[test]
    fn batch_runs_account_snapshot_cost_and_hit_cache() {
        let mut e = engine_with_ring(40);
        let idx = e.register_analytic(Box::new(ComponentsAnalytic));
        e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        let s1 = e.stats();
        assert_eq!(s1.snapshots.rebuilds, 1, "first run freezes the graph");
        assert!(s1.snapshots.mem_bytes > 0);
        // Second run against the unchanged graph: cache hit, no rebuild.
        e.run_batch(&SelectionCriteria::Explicit(vec![20]), idx);
        let s2 = e.stats();
        assert_eq!(s2.snapshots.rebuilds, 1, "unchanged graph must not rebuild");
        assert_eq!(s2.snapshots.mem_bytes, s1.snapshots.mem_bytes);
        // An update dirties two rows (symmetrized insert); the next run
        // takes the delta path and reuses every clean row.
        e.process_stream(
            &UpdateBatch {
                time: 9,
                updates: vec![Update::EdgeInsert {
                    src: 0,
                    dst: 20,
                    weight: 1.0,
                }],
            },
            |_| None,
            None,
        );
        e.run_batch(&SelectionCriteria::Explicit(vec![0]), idx);
        let s3 = e.stats();
        assert_eq!(s3.snapshots.rebuilds, 2);
        assert_eq!(s3.snapshots.rows_reused, 38, "40 rows - 2 dirty");
    }
}
