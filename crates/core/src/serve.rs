//! Concurrent query-serving front end over published epoch snapshots.
//!
//! The paper's second streaming form (§II) is "a stream of independent
//! local queries ... for each stream input a specification of some
//! vertex to search for, and an operation to perform to some
//! property(ies) of that vertex", with §V-B putting the latency target
//! at tens of microseconds per point query. This module is that front
//! end: reader threads run [`ga_stream::Query`]s against the frozen
//! [`ga_stream::EpochSnapshot`] generations a [`crate::flow::FlowEngine`]
//! publishes (see [`crate::flow::FlowEngine::serve_handle`]), while the
//! ingest thread keeps pumping and republishing underneath them.
//!
//! Admission reuses the class semantics of [`ga_stream::admission`],
//! recast from queue depth to *concurrent queries in flight*:
//!
//! * **Bulk** scans run only while total in-flight load is below
//!   `bulk_watermark` — the first traffic refused under load.
//! * **Normal** queries are admitted below `normal_watermark`.
//! * **High** point reads are admitted all the way to `capacity`, so
//!   the `capacity - normal_watermark` gap is reserved headroom no
//!   amount of Bulk/Normal traffic can occupy: Bulk scans cannot starve
//!   High point reads. The soak test in `tests/serve_queries.rs` pins
//!   "zero High-class shed under firehose + Bulk pressure".
//!
//! Per-tenant [`TenantConfig::quota`]s bound any single tenant inside
//! its class. Latency lands in one lock-free [`Log2Histogram`] per
//! class ([`ServeStats`] reports p50/p99/p999 per class via
//! [`ga_obs::QuantileSummary`]).

use ga_graph::SnapshotEpoch;
use ga_obs::{Log2Histogram, QuantileSummary};
use ga_stream::admission::{AdmissionConfig, Priority};
use ga_stream::epoch::SnapshotReader;
use ga_stream::{Query, QueryResponse, SnapshotHandle};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Concurrency watermarks for the serving front door. Same shape and
/// ordering rule as ingest admission ([`AdmissionConfig`]), but counted
/// in *concurrent in-flight queries* instead of queued updates.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// In-flight watermarks: Bulk admitted below `bulk_watermark`,
    /// Normal below `normal_watermark`, High to full `capacity`.
    pub admission: AdmissionConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            admission: AdmissionConfig {
                capacity: 64,
                normal_watermark: 48,
                bulk_watermark: 32,
            },
        }
    }
}

/// One tenant of the serving front end: a name for reporting, the
/// admission class its queries run under, and an optional cap on its
/// own concurrent queries (inside whatever its class allows).
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Tenant name (stats and reports).
    pub name: String,
    /// Admission class for every query this tenant runs.
    pub class: Priority,
    /// Max concurrent in-flight queries for this tenant alone
    /// (`None` = bounded only by the class watermark).
    pub quota: Option<usize>,
}

impl TenantConfig {
    /// A tenant with no per-tenant quota.
    pub fn new(name: impl Into<String>, class: Priority) -> Self {
        TenantConfig {
            name: name.into(),
            class,
            quota: None,
        }
    }

    /// Cap this tenant at `quota` concurrent queries.
    pub fn quota(mut self, quota: usize) -> Self {
        self.quota = Some(quota);
        self
    }
}

/// Shared serving state: the in-flight gauge the watermarks gate on,
/// plus per-class outcome counters and latency histograms. Everything
/// is atomic — recording is lock-free on the query path.
#[derive(Debug)]
struct ServeShared {
    cfg: AdmissionConfig,
    /// Total queries currently executing, all classes.
    inflight: AtomicUsize,
    /// Queries answered, per [`Priority::idx`].
    answered: [AtomicU64; 3],
    /// Queries refused at the class watermark, per class.
    shed: [AtomicU64; 3],
    /// Queries refused by a tenant quota, per class.
    shed_quota: [AtomicU64; 3],
    /// End-to-end query latency in microseconds, per class.
    latency_us: [Log2Histogram; 3],
}

/// Per-tenant shared state (all clients of one tenant share it).
#[derive(Debug)]
struct TenantState {
    cfg: TenantConfig,
    inflight: AtomicUsize,
}

/// A registered tenant. Clone freely; clones share the quota gauge.
#[derive(Clone, Debug)]
pub struct Tenant {
    state: Arc<TenantState>,
}

impl Tenant {
    /// The tenant's configuration.
    pub fn config(&self) -> &TenantConfig {
        &self.state.cfg
    }

    /// This tenant's queries currently executing.
    pub fn inflight(&self) -> usize {
        self.state.inflight.load(Ordering::Acquire)
    }
}

/// The serving front end: one per served engine. Holds the
/// [`SnapshotHandle`] the engine publishes to and the shared admission
/// state; hand each reader thread a [`QueryClient`] via
/// [`Self::client`].
#[derive(Clone, Debug)]
pub struct QueryService {
    handle: SnapshotHandle,
    shared: Arc<ServeShared>,
}

impl QueryService {
    /// Front a published snapshot slot (from
    /// [`crate::flow::FlowEngine::serve_handle`]) with admission
    /// control.
    pub fn new(handle: SnapshotHandle, cfg: ServeConfig) -> Self {
        QueryService {
            handle,
            shared: Arc::new(ServeShared {
                cfg: cfg.admission,
                inflight: AtomicUsize::new(0),
                answered: Default::default(),
                shed: Default::default(),
                shed_quota: Default::default(),
                latency_us: Default::default(),
            }),
        }
    }

    /// Register a tenant. The returned handle is shareable; every
    /// client created from it counts against the same quota.
    pub fn tenant(&self, cfg: TenantConfig) -> Tenant {
        Tenant {
            state: Arc::new(TenantState {
                cfg,
                inflight: AtomicUsize::new(0),
            }),
        }
    }

    /// A per-thread query client for `tenant`. Each client owns its
    /// own [`SnapshotReader`], so its steady-state snapshot access is
    /// one atomic load.
    pub fn client(&self, tenant: &Tenant) -> QueryClient {
        QueryClient {
            reader: self.handle.reader(),
            shared: Arc::clone(&self.shared),
            tenant: Arc::clone(&tenant.state),
        }
    }

    /// Point-in-time serving counters and latency digests.
    pub fn stats(&self) -> ServeStats {
        let s = &self.shared;
        let class = |i: usize| ClassServeStats {
            answered: s.answered[i].load(Ordering::Relaxed),
            shed: s.shed[i].load(Ordering::Relaxed),
            shed_quota: s.shed_quota[i].load(Ordering::Relaxed),
            latency_us: s.latency_us[i].snapshot().summary(),
        };
        ServeStats {
            classes: [class(0), class(1), class(2)],
            inflight: s.inflight.load(Ordering::Acquire),
        }
    }
}

/// Why a query was not executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeShed {
    /// Concurrent load at the class watermark.
    ClassLimit,
    /// The tenant is at its own [`TenantConfig::quota`].
    TenantQuota,
    /// Nothing published yet (the engine has not called
    /// `serve_handle`/`publish_epoch`, or no data has been ingested).
    NotReady,
}

/// The outcome of one [`QueryClient::run`].
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutcome {
    /// The query ran to completion on one frozen generation.
    Answered {
        /// The generation it ran on.
        epoch: SnapshotEpoch,
        /// The result.
        response: QueryResponse,
    },
    /// The query was refused without touching the graph.
    Shed(ServeShed),
}

impl QueryOutcome {
    /// The response, if answered.
    pub fn response(&self) -> Option<&QueryResponse> {
        match self {
            QueryOutcome::Answered { response, .. } => Some(response),
            QueryOutcome::Shed(_) => None,
        }
    }
}

/// A reader-thread handle: admission + snapshot access + latency
/// recording around [`Query::run`]. Create one per thread via
/// [`QueryService::client`].
#[derive(Debug)]
pub struct QueryClient {
    reader: SnapshotReader,
    shared: Arc<ServeShared>,
    tenant: Arc<TenantState>,
}

impl QueryClient {
    /// Run `query` on the current published generation under this
    /// tenant's admission class. Admission, execution, and latency
    /// recording are all lock-free in the steady state; the query sees
    /// exactly one frozen [`ga_stream::EpochSnapshot`] end to end.
    pub fn run(&mut self, query: &Query) -> QueryOutcome {
        let class = self.tenant.cfg.class;
        let ci = class.idx();
        let limit = match class {
            Priority::High => self.shared.cfg.capacity,
            Priority::Normal => self.shared.cfg.normal_watermark,
            Priority::Bulk => self.shared.cfg.bulk_watermark,
        };
        // fetch_add-then-check: concurrent admits observe distinct prior
        // values, so at most `limit` queries of this class's ceiling are
        // ever in flight together — no CAS loop needed.
        let prior = self.shared.inflight.fetch_add(1, Ordering::AcqRel);
        if prior >= limit {
            self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
            self.shared.shed[ci].fetch_add(1, Ordering::Relaxed);
            return QueryOutcome::Shed(ServeShed::ClassLimit);
        }
        if let Some(quota) = self.tenant.cfg.quota {
            let t_prior = self.tenant.inflight.fetch_add(1, Ordering::AcqRel);
            if t_prior >= quota {
                self.tenant.inflight.fetch_sub(1, Ordering::AcqRel);
                self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
                self.shared.shed_quota[ci].fetch_add(1, Ordering::Relaxed);
                return QueryOutcome::Shed(ServeShed::TenantQuota);
            }
        } else {
            self.tenant.inflight.fetch_add(1, Ordering::AcqRel);
        }
        let t0 = Instant::now();
        let outcome = match self.reader.snapshot() {
            Some(snap) => QueryOutcome::Answered {
                epoch: snap.stamp,
                response: query.run(snap),
            },
            None => QueryOutcome::Shed(ServeShed::NotReady),
        };
        if matches!(outcome, QueryOutcome::Answered { .. }) {
            self.shared.latency_us[ci].record(t0.elapsed().as_micros() as u64);
            self.shared.answered[ci].fetch_add(1, Ordering::Relaxed);
        }
        self.tenant.inflight.fetch_sub(1, Ordering::AcqRel);
        self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
        outcome
    }

    /// The generation the next query would run on (`None` before the
    /// first publish).
    pub fn current_epoch(&mut self) -> Option<SnapshotEpoch> {
        self.reader.snapshot().map(|s| s.stamp)
    }
}

/// Serving counters for one admission class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassServeStats {
    /// Queries answered.
    pub answered: u64,
    /// Queries refused at the class watermark.
    pub shed: u64,
    /// Queries refused by a tenant quota.
    pub shed_quota: u64,
    /// End-to-end latency digest, microseconds (log2-bucket bounds).
    pub latency_us: QuantileSummary,
}

/// Point-in-time serving stats, per class plus the live in-flight
/// gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Per-class counters, indexed by [`Priority::idx`].
    pub classes: [ClassServeStats; 3],
    /// Queries executing right now.
    pub inflight: usize,
}

impl ServeStats {
    /// Counters for one class.
    pub fn class(&self, class: Priority) -> &ClassServeStats {
        &self.classes[class.idx()]
    }

    /// Total queries answered across classes.
    pub fn total_answered(&self) -> u64 {
        self.classes.iter().map(|c| c.answered).sum()
    }

    /// Total queries refused (watermark + quota) across classes.
    pub fn total_shed(&self) -> u64 {
        self.classes.iter().map(|c| c.shed + c.shed_quota).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowEngine;
    use ga_stream::update::{Update, UpdateBatch};

    fn served_engine() -> (FlowEngine, SnapshotHandle) {
        let mut engine = FlowEngine::new(8);
        let batch = UpdateBatch {
            time: 1,
            updates: vec![
                Update::EdgeInsert {
                    src: 0,
                    dst: 1,
                    weight: 1.0,
                },
                Update::EdgeInsert {
                    src: 1,
                    dst: 2,
                    weight: 1.0,
                },
                Update::PropertySet {
                    vertex: 2,
                    name: "risk".into(),
                    value: 0.9,
                },
            ],
        };
        engine.process_stream(&batch, |_| None, None);
        let handle = engine.serve_handle();
        (engine, handle)
    }

    #[test]
    fn answered_queries_carry_the_published_epoch() {
        let (_engine, handle) = served_engine();
        let service = QueryService::new(handle, ServeConfig::default());
        let tenant = service.tenant(TenantConfig::new("ops", Priority::High));
        let mut client = service.client(&tenant);
        let out = client.run(&Query::Degree { vertex: 1 });
        match out {
            QueryOutcome::Answered { epoch, response } => {
                assert!(epoch.epoch >= 1);
                assert_eq!(response, QueryResponse::Scalar(2.0));
            }
            other => panic!("expected answer, got {other:?}"),
        }
        let out = client.run(&Query::get_property(2, "risk"));
        assert_eq!(out.response(), Some(&QueryResponse::Scalar(0.9)));
        let stats = service.stats();
        assert_eq!(stats.class(Priority::High).answered, 2);
        assert_eq!(stats.total_shed(), 0);
        assert!(stats.class(Priority::High).latency_us.count == 2);
    }

    #[test]
    fn unserved_engine_is_not_ready() {
        let handle = SnapshotHandle::new();
        let service = QueryService::new(handle, ServeConfig::default());
        let tenant = service.tenant(TenantConfig::new("t", Priority::Normal));
        let mut client = service.client(&tenant);
        assert_eq!(
            client.run(&Query::Degree { vertex: 0 }),
            QueryOutcome::Shed(ServeShed::NotReady)
        );
        // NotReady is not an answer: nothing recorded.
        assert_eq!(service.stats().total_answered(), 0);
    }

    #[test]
    fn tenant_quota_zero_refuses_everything() {
        let (_engine, handle) = served_engine();
        let service = QueryService::new(handle, ServeConfig::default());
        let tenant = service.tenant(TenantConfig::new("greedy", Priority::Bulk).quota(0));
        let mut client = service.client(&tenant);
        assert_eq!(
            client.run(&Query::Degree { vertex: 0 }),
            QueryOutcome::Shed(ServeShed::TenantQuota)
        );
        let stats = service.stats();
        assert_eq!(stats.class(Priority::Bulk).shed_quota, 1);
        assert_eq!(stats.inflight, 0, "refused query released its slot");
    }

    #[test]
    fn bulk_watermark_zero_sheds_bulk_but_not_high() {
        let (_engine, handle) = served_engine();
        let service = QueryService::new(
            handle,
            ServeConfig {
                admission: AdmissionConfig {
                    capacity: 8,
                    normal_watermark: 4,
                    bulk_watermark: 0,
                },
            },
        );
        let bulk = service.tenant(TenantConfig::new("scan", Priority::Bulk));
        let high = service.tenant(TenantConfig::new("point", Priority::High));
        let mut bc = service.client(&bulk);
        let mut hc = service.client(&high);
        assert_eq!(
            bc.run(&Query::TopKByProperty {
                name: "risk".into(),
                k: 3
            }),
            QueryOutcome::Shed(ServeShed::ClassLimit)
        );
        assert!(matches!(
            hc.run(&Query::Degree { vertex: 0 }),
            QueryOutcome::Answered { .. }
        ));
        let stats = service.stats();
        assert_eq!(stats.class(Priority::Bulk).shed, 1);
        assert_eq!(stats.class(Priority::High).shed, 0);
    }

    #[test]
    fn republish_after_ingest_moves_the_served_epoch() {
        let (mut engine, handle) = served_engine();
        let service = QueryService::new(handle, ServeConfig::default());
        let tenant = service.tenant(TenantConfig::new("t", Priority::Normal));
        let mut client = service.client(&tenant);
        let e0 = client.current_epoch().unwrap();
        let out = client.run(&Query::Degree { vertex: 3 });
        assert_eq!(out.response(), Some(&QueryResponse::Scalar(0.0)));
        engine.process_stream(
            &UpdateBatch {
                time: 2,
                updates: vec![Update::EdgeInsert {
                    src: 3,
                    dst: 0,
                    weight: 1.0,
                }],
            },
            |_| None,
            None,
        );
        let e1 = client.current_epoch().unwrap();
        assert!(e1 > e0, "ingest republished a newer epoch");
        let out = client.run(&Query::Degree { vertex: 3 });
        // Symmetrized insert: 3->0 and 0->3, degree(3) == 1.
        assert_eq!(out.response(), Some(&QueryResponse::Scalar(1.0)));
    }
}
