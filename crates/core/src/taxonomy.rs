//! Fig. 1: the spectrum of existing kernels, as a machine-readable
//! registry.
//!
//! Every row of the paper's Fig. 1 table is a [`KernelEntry`]: the
//! kernel, its kernel classes (columns 1–6), which benchmark suites use
//! it in batch ("B") or streaming ("S") mode (columns 7–16), and its
//! modification/output categories (columns 17–22). [`render_figure1`]
//! regenerates the table; `impl_path` cross-links each row to the module
//! in this workspace that implements it, and a test asserts the link is
//! non-empty for every implementable row.

/// The kernel-class columns (first column group of Fig. 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelClass {
    /// Connectedness kernels (CCW, CCS, BFS...).
    Connectedness,
    /// Path analysis kernels (SSSP, APSP...).
    PathAnalysis,
    /// Centrality kernels (BC, PR...).
    Centrality,
    /// Clustering kernels (CCO, Jaccard...).
    Clustering,
    /// Subgraph isomorphism kernels (GTC, TL, SI).
    SubgraphIsomorphism,
    /// Everything else (anomaly detection, top-k search).
    Other,
}

/// The benchmark-suite columns (second column group of Fig. 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// Standalone kernel definitions.
    Standalone,
    /// Sandia Firehose.
    Firehose,
    /// Graph500.
    Graph500,
    /// GraphBLAS.
    GraphBlas,
    /// MIT/Amazon Graph Challenge.
    GraphChallenge,
    /// Berkeley GAP.
    GraphAlgorithmPlatform,
    /// HPC Graph Analysis (graphanalysis.org).
    HpcGraphAnalysis,
    /// Kepner & Gilbert's book kernels.
    KeplerGilbert,
    /// Georgia Tech STINGER.
    Stinger,
    /// The VAST challenge.
    Vast,
}

/// Batch or streaming membership of a kernel in a suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Batch ("B" in Fig. 1).
    Batch,
    /// Streaming ("S").
    Streaming,
    /// Both ("B/S").
    Both,
}

impl Mode {
    /// The Fig. 1 cell text.
    pub fn cell(&self) -> &'static str {
        match self {
            Mode::Batch => "B",
            Mode::Streaming => "S",
            Mode::Both => "B/S",
        }
    }
}

/// The modification/output columns (third column group of Fig. 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputCol {
    /// Modifies the graph itself.
    GraphModification,
    /// Computes a property per vertex.
    ComputeVertexProperty,
    /// Outputs a single global value.
    OutputGlobalValue,
    /// Emits O(1)-sized events.
    OutputO1Events,
    /// Emits lists up to O(|V|).
    OutputOVList,
    /// Emits lists up to O(|V|^k), k > 1.
    OutputOVkList,
}

/// One row of Fig. 1.
#[derive(Clone, Debug)]
pub struct KernelEntry {
    /// Row label (as printed in the paper).
    pub name: &'static str,
    /// Kernel classes it belongs to.
    pub classes: &'static [KernelClass],
    /// Suite membership with batch/streaming mode.
    pub suites: &'static [(Suite, Mode)],
    /// Output/modification categories.
    pub outputs: &'static [OutputCol],
    /// Where this workspace implements it ("" = survey-only row).
    pub impl_path: &'static str,
    /// Implementation variants this workspace carries beyond the row's
    /// canonical `impl_path` — alternate engines and representations
    /// (e.g. cache-blocked pull PageRank, frontier-bitmap traversal,
    /// compressed adjacency). Variants are *not* Fig. 1 rows: the
    /// figure's 22-row shape is pinned, and every variant computes the
    /// row's kernel bit-identically.
    pub variants: &'static [&'static str],
}

use KernelClass::*;
use Mode::*;
use OutputCol::*;
use Suite::*;

/// The full Fig. 1 registry, row for row.
pub fn registry() -> Vec<KernelEntry> {
    vec![
        KernelEntry {
            name: "Anomaly - Fixed Key",
            classes: &[Other],
            suites: &[(Standalone, Streaming), (Firehose, Streaming)],
            outputs: &[ComputeVertexProperty, OutputO1Events],
            impl_path: "ga_stream::firehose::FixedKeyDetector",
            variants: &[],
        },
        KernelEntry {
            name: "Anomaly - Unbounded Key",
            classes: &[Other],
            suites: &[(Standalone, Streaming), (Firehose, Streaming)],
            outputs: &[ComputeVertexProperty, OutputO1Events],
            impl_path: "ga_stream::firehose::UnboundedKeyDetector",
            variants: &[],
        },
        KernelEntry {
            name: "Anomaly - Two-level Key",
            classes: &[Other],
            suites: &[(Standalone, Streaming), (Firehose, Streaming)],
            outputs: &[OutputGlobalValue, OutputO1Events],
            impl_path: "ga_stream::firehose::TwoLevelDetector",
            variants: &[],
        },
        KernelEntry {
            name: "BC: Betweenness Centrality",
            classes: &[Centrality],
            suites: &[
                (Graph500, Batch),
                (GraphChallenge, Batch),
                (HpcGraphAnalysis, Batch),
                (KeplerGilbert, Streaming),
            ],
            outputs: &[ComputeVertexProperty],
            impl_path: "ga_kernels::bc::brandes",
            variants: &[],
        },
        KernelEntry {
            name: "BFS: Breadth First Search",
            classes: &[Connectedness],
            suites: &[
                (Graph500, Batch),
                (GraphBlas, Batch),
                (GraphChallenge, Batch),
                (GraphAlgorithmPlatform, Batch),
                (HpcGraphAnalysis, Batch),
                (KeplerGilbert, Batch),
            ],
            outputs: &[ComputeVertexProperty, OutputO1Events],
            impl_path: "ga_kernels::bfs::bfs_direction_optimizing",
            variants: &[
                "frontier-bitmap (ga_graph::Frontier dual representation)",
                "bottom-up / direction-optimizing",
                "compressed adjacency (delta-varint CSR)",
            ],
        },
        KernelEntry {
            name: "Search for \"Largest\"",
            classes: &[Other],
            suites: &[(GraphChallenge, Batch)],
            outputs: &[OutputO1Events],
            impl_path: "ga_kernels::topk::top_k_by",
            variants: &[],
        },
        KernelEntry {
            name: "CCW: Weakly Connected Components",
            classes: &[Connectedness],
            suites: &[
                (GraphAlgorithmPlatform, Batch),
                (HpcGraphAnalysis, Batch),
                (KeplerGilbert, Streaming),
            ],
            outputs: &[ComputeVertexProperty, OutputO1Events],
            impl_path: "ga_kernels::cc::wcc_union_find",
            variants: &[
                "frontier label propagation (active-set sweeps)",
                "afforest (sampled union-find)",
                "compressed adjacency (delta-varint CSR)",
            ],
        },
        KernelEntry {
            name: "CCS: Strongly Connected Components",
            classes: &[Connectedness],
            suites: &[(GraphAlgorithmPlatform, Batch), (HpcGraphAnalysis, Batch)],
            outputs: &[OutputO1Events],
            impl_path: "ga_kernels::cc::scc_tarjan",
            variants: &[],
        },
        KernelEntry {
            name: "CCO: Clustering Coefficients",
            classes: &[Centrality],
            suites: &[(HpcGraphAnalysis, Batch), (KeplerGilbert, Streaming)],
            outputs: &[ComputeVertexProperty],
            impl_path: "ga_kernels::cluster::clustering_coefficients",
            variants: &[],
        },
        KernelEntry {
            name: "CD: Community Detection",
            classes: &[Connectedness, PathAnalysis],
            suites: &[(HpcGraphAnalysis, Streaming)],
            outputs: &[ComputeVertexProperty, OutputO1Events],
            impl_path: "ga_kernels::community::louvain",
            variants: &[],
        },
        KernelEntry {
            name: "GC: Graph Contraction",
            classes: &[PathAnalysis],
            suites: &[(GraphChallenge, Batch), (GraphAlgorithmPlatform, Batch)],
            outputs: &[OutputGlobalValue],
            impl_path: "ga_kernels::contract::contract_by_label",
            variants: &[],
        },
        KernelEntry {
            name: "GP: Graph Partitioning",
            classes: &[PathAnalysis],
            suites: &[(GraphBlas, Both), (GraphAlgorithmPlatform, Batch)],
            outputs: &[OutputGlobalValue],
            impl_path: "ga_kernels::partition::bfs_grow",
            variants: &[],
        },
        KernelEntry {
            name: "GTC: Global Triangle Counting",
            classes: &[PathAnalysis, SubgraphIsomorphism],
            suites: &[(GraphChallenge, Batch)],
            outputs: &[OutputGlobalValue],
            impl_path: "ga_kernels::triangles::count_global",
            variants: &["compressed adjacency (delta-varint CSR)"],
        },
        KernelEntry {
            name: "Insert/Delete",
            classes: &[Centrality],
            suites: &[(HpcGraphAnalysis, Streaming)],
            outputs: &[GraphModification],
            impl_path: "ga_graph::dynamic::DynamicGraph",
            variants: &[],
        },
        KernelEntry {
            name: "Jaccard",
            classes: &[PathAnalysis, Clustering],
            suites: &[(Standalone, Both)],
            outputs: &[OutputOVList],
            impl_path: "ga_kernels::jaccard::all_pairs_above",
            variants: &[],
        },
        KernelEntry {
            name: "MIS: Maximally Independent Set",
            classes: &[Other],
            suites: &[(Firehose, Batch), (GraphChallenge, Batch)],
            outputs: &[],
            impl_path: "ga_kernels::mis::luby",
            variants: &[],
        },
        KernelEntry {
            name: "PR: PageRank",
            classes: &[Connectedness, Centrality],
            suites: &[(GraphChallenge, Batch)],
            outputs: &[ComputeVertexProperty],
            impl_path: "ga_kernels::pagerank::pagerank",
            variants: &[
                "cache-blocked pull (L1/L2-resident accumulation)",
                "Gauss-Southwell delta push",
                "compressed adjacency (delta-varint CSR)",
            ],
        },
        KernelEntry {
            name: "SSSP: Single Source Shortest Path",
            classes: &[Connectedness, PathAnalysis],
            suites: &[
                (Firehose, Batch),
                (GraphChallenge, Both),
                (GraphAlgorithmPlatform, Batch),
            ],
            outputs: &[ComputeVertexProperty, OutputO1Events],
            impl_path: "ga_kernels::sssp::delta_stepping",
            variants: &[
                "frontier bucket scans (delta-stepping batches)",
                "auto-delta (GAP heuristic)",
                "compressed adjacency (delta-varint CSR)",
            ],
        },
        KernelEntry {
            name: "APSP: All pairs Shortest Path",
            classes: &[Connectedness, PathAnalysis],
            suites: &[(GraphAlgorithmPlatform, Batch)],
            outputs: &[OutputOVList],
            impl_path: "ga_kernels::apsp::repeated_sssp",
            variants: &[],
        },
        KernelEntry {
            name: "SI: General Subgraph Isomorphism",
            classes: &[PathAnalysis, SubgraphIsomorphism],
            suites: &[(Graph500, Both)],
            outputs: &[OutputOVkList],
            impl_path: "ga_kernels::subiso::find_embeddings",
            variants: &[],
        },
        KernelEntry {
            name: "TL: Triangle Listing",
            classes: &[PathAnalysis, SubgraphIsomorphism],
            suites: &[(Graph500, Both)],
            outputs: &[OutputOVList],
            impl_path: "ga_kernels::triangles::list_triangles",
            variants: &[],
        },
        KernelEntry {
            name: "Geo & Temporal Correlation",
            classes: &[Clustering],
            suites: &[(KeplerGilbert, Both), (Vast, Both)],
            outputs: &[OutputO1Events],
            impl_path: "ga_stream::correlate::correlate_batch",
            variants: &[],
        },
    ]
}

/// Render the registry as a Fig. 1-style text table.
pub fn render_figure1() -> String {
    let rows = registry();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<36} {:<14} {:<34} {}\n",
        "Kernel", "Classes", "Suites (B=batch, S=streaming)", "Outputs"
    ));
    out.push_str(&"-".repeat(120));
    out.push('\n');
    for r in &rows {
        let classes: Vec<&str> = r.classes.iter().map(class_label).collect();
        let suites: Vec<String> = r
            .suites
            .iter()
            .map(|(s, m)| format!("{}:{}", suite_label(*s), m.cell()))
            .collect();
        let outputs: Vec<&str> = r.outputs.iter().map(output_label).collect();
        out.push_str(&format!(
            "{:<36} {:<14} {:<34} {}\n",
            r.name,
            classes.join(","),
            suites.join(" "),
            outputs.join(",")
        ));
        // Variants are continuation lines, not rows: Fig. 1's 22-row
        // shape stays pinned while the table still advertises the
        // alternate engines the workspace carries for the row.
        if !r.variants.is_empty() {
            out.push_str(&format!("{:<36} variants: {}\n", "", r.variants.join("; ")));
        }
    }
    out
}

fn class_label(c: &KernelClass) -> &'static str {
    match c {
        Connectedness => "Conn",
        PathAnalysis => "Path",
        Centrality => "Centr",
        Clustering => "Clust",
        SubgraphIsomorphism => "SubIso",
        Other => "Other",
    }
}

fn suite_label(s: Suite) -> &'static str {
    match s {
        Standalone => "Standalone",
        Firehose => "Firehose",
        Graph500 => "Graph500",
        GraphBlas => "GraphBLAS",
        GraphChallenge => "GraphChal",
        GraphAlgorithmPlatform => "GAP",
        HpcGraphAnalysis => "HPC-GA",
        KeplerGilbert => "K&G",
        Stinger => "STINGER",
        Vast => "VAST",
    }
}

fn output_label(o: &OutputCol) -> &'static str {
    match o {
        GraphModification => "graph-mod",
        ComputeVertexProperty => "vertex-prop",
        OutputGlobalValue => "global",
        OutputO1Events => "O(1)-events",
        OutputOVList => "O(V)-list",
        OutputOVkList => "O(V^k)-list",
    }
}

/// Streaming rows (any suite membership with an S).
pub fn streaming_kernels() -> Vec<KernelEntry> {
    registry()
        .into_iter()
        .filter(|k| {
            k.suites
                .iter()
                .any(|(_, m)| matches!(m, Mode::Streaming | Mode::Both))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_count_matches_figure() {
        // Fig. 1 has 22 kernel rows.
        assert_eq!(registry().len(), 22);
    }

    #[test]
    fn no_one_kernel_is_universal() {
        // The paper's take-away: no kernel appears in every suite.
        let all_suites = 10;
        for k in registry() {
            let mut suites: Vec<Suite> = k.suites.iter().map(|&(s, _)| s).collect();
            suites.dedup();
            assert!(
                suites.len() < all_suites,
                "{} claims universal suite coverage",
                k.name
            );
        }
    }

    #[test]
    fn streaming_and_batch_differ() {
        // A significant difference between streaming and batch kernels:
        // neither set contains the other.
        let streaming: Vec<String> = streaming_kernels()
            .iter()
            .map(|k| k.name.to_string())
            .collect();
        assert!(!streaming.is_empty());
        assert!(streaming.len() < registry().len());
        assert!(streaming.iter().any(|n| n.contains("Anomaly")));
        // BFS is batch-only in the figure.
        assert!(!streaming.iter().any(|n| n.contains("BFS")));
    }

    #[test]
    fn every_row_is_implemented() {
        for k in registry() {
            assert!(
                !k.impl_path.is_empty(),
                "{} has no implementation link",
                k.name
            );
            assert!(k.impl_path.starts_with("ga_"), "{}", k.impl_path);
        }
    }

    #[test]
    fn every_row_has_a_class() {
        for k in registry() {
            assert!(!k.classes.is_empty(), "{} has no class", k.name);
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let table = render_figure1();
        for k in registry() {
            assert!(table.contains(k.name), "missing row {}", k.name);
        }
        assert!(table.contains("Graph500:B"));
        assert!(table.contains("Firehose:S"));
    }

    #[test]
    fn variants_annotate_rows_without_adding_rows() {
        let rows = registry();
        // The GAP-parity kernels advertise their alternate engines.
        for name in [
            "BFS: Breadth First Search",
            "PR: PageRank",
            "SSSP: Single Source Shortest Path",
            "CCW: Weakly Connected Components",
            "GTC: Global Triangle Counting",
        ] {
            let row = rows.iter().find(|k| k.name == name).unwrap();
            assert!(!row.variants.is_empty(), "{name} lost its variants");
            assert!(
                row.variants
                    .iter()
                    .any(|v| v.contains("compressed adjacency")),
                "{name} must list the compressed-adjacency variant"
            );
        }
        // Variants render as continuation lines, so the table's row
        // count stays the figure's 22 + header + rule.
        let table = render_figure1();
        let kernel_rows = table
            .lines()
            .filter(|l| rows.iter().any(|k| l.starts_with(k.name)))
            .count();
        assert_eq!(kernel_rows, 22, "variants must not become rows");
        assert!(table.contains("variants: cache-blocked pull"));
        assert!(table.contains("frontier-bitmap"));
    }
}
