//! NORA — Non-Obvious Relationship Analysis (§III–IV's motivating
//! application).
//!
//! The paper's real-world anchor is a LexisNexis insurance pipeline:
//! 40+ TB of public records boiled weekly into a person–address graph,
//! where the valuable queries are "relationships between people, such as
//! 'who has shared an address with what other individuals 2 or more
//! times, especially if they have shared a common last name'" — a
//! computation "close to the Jaccard coefficient kernel".
//!
//! The proprietary data is substituted (see DESIGN.md) with a
//! controlled synthetic world: households (innocent address sharing),
//! movers (people with several addresses), and planted **fraud rings**
//! (groups cycling through the same address set — the ground truth the
//! relationship search should surface). Both paper modes exist:
//!
//! * [`boil`] — the weekly batch: find all related pairs
//!   ([`relationships`]), attach scores, and return the precomputed
//!   answer set.
//! * [`QuoteServer`] — the real-time side: per-applicant relationship
//!   queries against the live graph (the latency-sensitive path the
//!   paper wants streaming systems to serve), plus incremental record
//!   ingest with threshold events.

use ga_graph::{DynamicGraph, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// A person–address co-residence record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Residence {
    /// Person id (0..num_people).
    pub person: u32,
    /// Address id (0..num_addresses).
    pub address: u32,
    /// Year the residence started (the edge timestamp).
    pub year: u16,
}

/// The synthetic world with ground truth.
#[derive(Clone, Debug)]
pub struct NoraWorld {
    /// Number of people.
    pub num_people: usize,
    /// Number of addresses.
    pub num_addresses: usize,
    /// Last-name id per person (shared within families/rings).
    pub last_name: Vec<u16>,
    /// All residence records.
    pub residences: Vec<Residence>,
    /// Planted fraud rings (each a set of person ids that share ≥2
    /// addresses).
    pub rings: Vec<Vec<u32>>,
}

/// World-generation knobs.
#[derive(Clone, Copy, Debug)]
pub struct NoraParams {
    /// People in the world.
    pub num_people: usize,
    /// Addresses in the world.
    pub num_addresses: usize,
    /// Mean addresses per ordinary person.
    pub moves_per_person: f64,
    /// Number of planted fraud rings.
    pub num_rings: usize,
    /// People per ring.
    pub ring_size: usize,
    /// Addresses each ring cycles through (≥2 so members co-occur
    /// repeatedly).
    pub ring_addresses: usize,
}

impl Default for NoraParams {
    fn default() -> Self {
        NoraParams {
            num_people: 2000,
            num_addresses: 1200,
            moves_per_person: 2.0,
            num_rings: 8,
            ring_size: 4,
            ring_addresses: 3,
        }
    }
}

impl NoraWorld {
    /// Generate a world.
    pub fn generate(p: NoraParams, seed: u64) -> NoraWorld {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let num_names = (p.num_people / 6).max(4);
        let mut last_name: Vec<u16> = (0..p.num_people)
            .map(|_| rng.gen_range(0..num_names) as u16)
            .collect();
        let mut residences = Vec::new();
        // Ordinary people move between random addresses.
        for person in 0..p.num_people as u32 {
            let moves = 1 + rng.gen_range(0..=(2.0 * p.moves_per_person) as usize);
            for _ in 0..moves {
                residences.push(Residence {
                    person,
                    address: rng.gen_range(0..p.num_addresses) as u32,
                    year: 1990 + rng.gen_range(0..30) as u16,
                });
            }
        }
        // Planted rings: disjoint groups of people cycling through the
        // same small address set; ring members share a last name half
        // the time ("especially if they have shared a common last name").
        let mut rings = Vec::new();
        let mut next_person = 0u32;
        for ring_idx in 0..p.num_rings {
            let members: Vec<u32> = (0..p.ring_size)
                .map(|_| {
                    let m = next_person;
                    next_person += 1;
                    m
                })
                .collect();
            let shared_name = rng.gen_range(0..num_names) as u16;
            let ring_addrs: Vec<u32> = (0..p.ring_addresses)
                .map(|_| rng.gen_range(0..p.num_addresses) as u32)
                .collect();
            for &m in &members {
                if ring_idx % 2 == 0 {
                    last_name[m as usize] = shared_name;
                }
                for &a in &ring_addrs {
                    residences.push(Residence {
                        person: m,
                        address: a,
                        year: 2010 + rng.gen_range(0..10) as u16,
                    });
                }
            }
            rings.push(members);
        }
        NoraWorld {
            num_people: p.num_people,
            num_addresses: p.num_addresses,
            last_name,
            residences,
            rings,
        }
    }

    /// Vertex id of a person in the bipartite graph.
    pub fn person_vertex(&self, person: u32) -> VertexId {
        person
    }

    /// Vertex id of an address in the bipartite graph.
    pub fn address_vertex(&self, address: u32) -> VertexId {
        self.num_people as VertexId + address
    }

    /// Build the bipartite person–address [`DynamicGraph`] (symmetric
    /// edges; timestamps = residence year).
    pub fn build_graph(&self) -> DynamicGraph {
        let mut g = DynamicGraph::new(self.num_people + self.num_addresses);
        for r in &self.residences {
            let (pv, av) = (self.person_vertex(r.person), self.address_vertex(r.address));
            g.insert_edge(pv, av, 1.0, r.year as u64);
            g.insert_edge(av, pv, 1.0, r.year as u64);
        }
        g
    }
}

/// A discovered relationship.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Relationship {
    /// The pair (a < b).
    pub a: u32,
    /// Second person.
    pub b: u32,
    /// Number of distinct shared addresses.
    pub shared_addresses: u32,
    /// Do they share a last name?
    pub same_last_name: bool,
    /// NORA score: shared count, +50 % when the last name matches.
    pub score: f64,
}

fn score(shared: u32, same_name: bool) -> f64 {
    shared as f64 * if same_name { 1.5 } else { 1.0 }
}

/// Instrumentation from a relationship search.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoraStats {
    /// Person-at-address pairs enumerated.
    pub pair_candidates: u64,
    /// Relationships emitted.
    pub relationships: u64,
}

/// Find all pairs of people sharing at least `min_shared` distinct
/// addresses. Walks address adjacency (the 2-hop wedge enumeration that
/// makes NORA "close to the Jaccard coefficient kernel").
pub fn relationships(
    world: &NoraWorld,
    g: &DynamicGraph,
    min_shared: u32,
) -> (Vec<Relationship>, NoraStats) {
    let mut stats = NoraStats::default();
    let mut shared: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    for addr in 0..world.num_addresses as u32 {
        let av = world.address_vertex(addr);
        let people: Vec<u32> = g.neighbor_ids(av).collect();
        for (i, &p) in people.iter().enumerate() {
            for &q in &people[i + 1..] {
                stats.pair_candidates += 1;
                let key = (p.min(q), p.max(q));
                let addrs = shared.entry(key).or_default();
                if !addrs.contains(&addr) {
                    addrs.push(addr);
                }
            }
        }
    }
    let mut out: Vec<Relationship> = shared
        .into_iter()
        .filter(|(_, addrs)| addrs.len() as u32 >= min_shared)
        .map(|((a, b), addrs)| {
            let same = world.last_name[a as usize] == world.last_name[b as usize];
            Relationship {
                a,
                b,
                shared_addresses: addrs.len() as u32,
                same_last_name: same,
                score: score(addrs.len() as u32, same),
            }
        })
        .collect();
    out.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap()
            .then((x.a, x.b).cmp(&(y.a, y.b)))
    });
    stats.relationships = out.len() as u64;
    (out, stats)
}

/// The weekly batch "boil": all relationships with ≥2 shared addresses,
/// precomputed for later constant-time lookup.
pub struct BoilResult {
    /// All qualifying relationships, best score first.
    pub relationships: Vec<Relationship>,
    /// Per-person index into precomputed answers.
    pub by_person: HashMap<u32, Vec<usize>>,
    /// Search instrumentation.
    pub stats: NoraStats,
}

/// Run the batch boil.
pub fn boil(world: &NoraWorld, g: &DynamicGraph) -> BoilResult {
    let (relationships, stats) = self::relationships(world, g, 2);
    let mut by_person: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, r) in relationships.iter().enumerate() {
        by_person.entry(r.a).or_default().push(i);
        by_person.entry(r.b).or_default().push(i);
    }
    BoilResult {
        relationships,
        by_person,
        stats,
    }
}

impl BoilResult {
    /// Precomputed answers for one applicant.
    pub fn lookup(&self, person: u32) -> Vec<&Relationship> {
        self.by_person
            .get(&person)
            .map(|idx| idx.iter().map(|&i| &self.relationships[i]).collect())
            .unwrap_or_default()
    }

    /// Fraction of planted ring pairs surfaced (ground-truth recall).
    pub fn ring_recall(&self, world: &NoraWorld) -> f64 {
        let mut total = 0usize;
        let mut found = 0usize;
        for ring in &world.rings {
            for (i, &a) in ring.iter().enumerate() {
                for &b in &ring[i + 1..] {
                    total += 1;
                    let key = (a.min(b), a.max(b));
                    if self.relationships.iter().any(|r| (r.a, r.b) == key) {
                        found += 1;
                    }
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            found as f64 / total as f64
        }
    }
}

/// The real-time side: live per-applicant queries plus streaming record
/// ingest — "one stream would be updates to the persistent graph...
/// the second type of streaming would take a sequence of applicants and
/// compute in real-time whatever relationships are relevant."
pub struct QuoteServer {
    world: NoraWorld,
    graph: DynamicGraph,
    /// Relationship-strength threshold for ingest events.
    pub alert_threshold: f64,
    /// Queries served.
    pub queries: usize,
}

impl QuoteServer {
    /// Server over a freshly built world graph.
    pub fn new(world: NoraWorld) -> Self {
        let graph = world.build_graph();
        QuoteServer {
            world,
            graph,
            alert_threshold: 3.0,
            queries: 0,
        }
    }

    /// The live graph (exposed for latency benchmarks).
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Real-time applicant query: all relationships of `person` with at
    /// least `min_shared` shared addresses, computed on the live graph
    /// (no staleness — the advantage §III credits streaming with).
    pub fn quote(&mut self, person: u32, min_shared: u32) -> Vec<Relationship> {
        self.queries += 1;
        let pv = self.world.person_vertex(person);
        let mut shared: HashMap<u32, Vec<u32>> = HashMap::new();
        for av in self.graph.neighbor_ids(pv).collect::<Vec<_>>() {
            let addr = av - self.world.num_people as u32;
            for qv in self.graph.neighbor_ids(av) {
                let q = qv;
                if q != person {
                    let entry = shared.entry(q).or_default();
                    if !entry.contains(&addr) {
                        entry.push(addr);
                    }
                }
            }
        }
        let mut out: Vec<Relationship> = shared
            .into_iter()
            .filter(|(_, addrs)| addrs.len() as u32 >= min_shared)
            .map(|(q, addrs)| {
                let same =
                    self.world.last_name[person as usize] == self.world.last_name[q as usize];
                Relationship {
                    a: person.min(q),
                    b: person.max(q),
                    shared_addresses: addrs.len() as u32,
                    same_last_name: same,
                    score: score(addrs.len() as u32, same),
                }
            })
            .collect();
        out.sort_by(|x, y| {
            y.score
                .partial_cmp(&x.score)
                .unwrap()
                .then((x.a, x.b).cmp(&(y.a, y.b)))
        });
        out
    }

    /// Streaming ingest of a new residence record. Returns any
    /// relationship that crossed the alert threshold because of it (the
    /// "test of some sort that, if passed, may trigger larger
    /// computations").
    pub fn ingest(&mut self, r: Residence) -> Vec<Relationship> {
        let (pv, av) = (
            self.world.person_vertex(r.person),
            self.world.address_vertex(r.address),
        );
        let before = self.quote(r.person, 1);
        self.graph.insert_edge(pv, av, 1.0, r.year as u64);
        self.graph.insert_edge(av, pv, 1.0, r.year as u64);
        self.world.residences.push(r);
        let after = self.quote(r.person, 1);
        after
            .into_iter()
            .filter(|rel| {
                rel.score >= self.alert_threshold
                    && !before
                        .iter()
                        .any(|o| (o.a, o.b) == (rel.a, rel.b) && o.score >= self.alert_threshold)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> NoraWorld {
        NoraWorld::generate(
            NoraParams {
                num_people: 400,
                num_addresses: 300,
                moves_per_person: 1.5,
                num_rings: 4,
                ring_size: 3,
                ring_addresses: 3,
                // ring members 0..12
            },
            42,
        )
    }

    #[test]
    fn world_generation_shape() {
        let w = small_world();
        assert_eq!(w.rings.len(), 4);
        assert_eq!(w.last_name.len(), 400);
        assert!(w.residences.len() > 400);
        // Deterministic.
        let w2 = NoraWorld::generate(
            NoraParams {
                num_people: 400,
                num_addresses: 300,
                moves_per_person: 1.5,
                num_rings: 4,
                ring_size: 3,
                ring_addresses: 3,
            },
            42,
        );
        assert_eq!(w.residences, w2.residences);
    }

    #[test]
    fn boil_finds_planted_rings() {
        let w = small_world();
        let g = w.build_graph();
        let b = boil(&w, &g);
        assert!(
            b.ring_recall(&w) >= 0.99,
            "ring recall {}",
            b.ring_recall(&w)
        );
        // Ring pairs share >= 2 addresses by construction; their scores
        // must reflect it.
        for ring in &w.rings {
            let rels = b.lookup(ring[0]);
            assert!(
                rels.iter()
                    .any(|r| ring.contains(&r.a) && ring.contains(&r.b)),
                "ring member {} has no ring relationship",
                ring[0]
            );
        }
    }

    #[test]
    fn shared_name_boosts_score() {
        let w = small_world();
        let g = w.build_graph();
        let (rels, _) = relationships(&w, &g, 2);
        for r in &rels {
            let base = r.shared_addresses as f64;
            if r.same_last_name {
                assert_eq!(r.score, base * 1.5);
            } else {
                assert_eq!(r.score, base);
            }
        }
    }

    #[test]
    fn quote_matches_boil() {
        let w = small_world();
        let g = w.build_graph();
        let b = boil(&w, &g);
        let mut server = QuoteServer::new(w);
        // Ring member 0's live answers equal the precomputed ones.
        let live = server.quote(0, 2);
        let precomputed = b.lookup(0);
        assert_eq!(live.len(), precomputed.len());
        for rel in &live {
            assert!(
                precomputed
                    .iter()
                    .any(|p| (p.a, p.b) == (rel.a, rel.b)
                        && p.shared_addresses == rel.shared_addresses),
                "live rel {rel:?} not in boil"
            );
        }
    }

    #[test]
    fn ingest_triggers_threshold_alert() {
        let w = NoraWorld::generate(
            NoraParams {
                num_people: 50,
                num_addresses: 40,
                moves_per_person: 0.0,
                num_rings: 0,
                ring_size: 0,
                ring_addresses: 0,
                // clean world: we plant the relationship by hand
            },
            7,
        );
        let mut server = QuoteServer::new(w);
        server.alert_threshold = 2.0;
        // Persons 10 and 11 successively share two addresses.
        assert!(server
            .ingest(Residence {
                person: 10,
                address: 5,
                year: 2020
            })
            .is_empty());
        assert!(server
            .ingest(Residence {
                person: 11,
                address: 5,
                year: 2020
            })
            .is_empty()); // 1 shared address: below threshold
        server.ingest(Residence {
            person: 10,
            address: 6,
            year: 2021,
        });
        let alerts = server.ingest(Residence {
            person: 11,
            address: 6,
            year: 2021,
        });
        assert_eq!(alerts.len(), 1, "alerts: {alerts:?}");
        assert_eq!(
            (alerts[0].a, alerts[0].b, alerts[0].shared_addresses),
            (10, 11, 2)
        );
        // Re-ingesting the same record doesn't re-alert.
        let again = server.ingest(Residence {
            person: 11,
            address: 6,
            year: 2022,
        });
        assert!(again.is_empty(), "{again:?}");
    }

    #[test]
    fn quote_reflects_fresh_updates_immediately() {
        let w = small_world();
        let mut server = QuoteServer::new(w);
        let before = server.quote(100, 1).len();
        // Move person 100 in with person 101 twice.
        for addr in [200, 201] {
            for p in [100, 101] {
                server.ingest(Residence {
                    person: p,
                    address: addr,
                    year: 2024,
                });
            }
        }
        let after = server.quote(100, 2);
        assert!(after.iter().any(|r| (r.a, r.b) == (100, 101)));
        assert!(!after.is_empty() && server.quote(100, 1).len() >= before);
    }
}
