//! Model calibration from measured instrumentation — the paper's
//! closing proposal made real.
//!
//! §VI: "a reference implementation, with explicit instrumentation, of
//! a combined benchmark would allow calibration of the model."
//!
//! [`calibrate`] turns the counters a real [`crate::flow::FlowEngine`]
//! run produces ([`crate::flow::FlowStats`]) plus a dedup/NORA workload
//! profile into a [`StepDemand`] table in the *same units* the analytic
//! model prices — so the Fig. 3 machinery can be re-run against demands
//! measured from this codebase instead of the hand-calibrated 2013
//! table. The mapping from counters to resource demands uses explicit,
//! documented per-operation cost coefficients ([`CostCoefficients`]).

use crate::flow::FlowStats;
use crate::model::{evaluate, StepDemand, SystemConfig};
use crate::nora::NoraStats;
use ga_obs::{MetricsSnapshot, Step};
use std::fmt::Write as _;

/// Per-operation resource costs used to convert counters into demands.
///
/// These are order-of-magnitude software constants (instructions and
/// bytes per logical operation), not tuned numbers; the point of
/// calibration is that the *ratios between steps* come from measurement.
#[derive(Clone, Copy, Debug)]
pub struct CostCoefficients {
    /// CPU ops per record-pair similarity comparison (string edit
    /// distances dominate dedup).
    pub ops_per_comparison: f64,
    /// CPU ops per graph update applied.
    pub ops_per_update: f64,
    /// CPU ops per candidate pair scanned in the relationship search.
    pub ops_per_pair_candidate: f64,
    /// CPU ops per vertex copied during extraction.
    pub ops_per_extracted_vertex: f64,
    /// Bytes of memory traffic per extracted edge.
    pub mem_bytes_per_edge: f64,
    /// Bytes of memory traffic per property write-back.
    pub mem_bytes_per_writeback: f64,
    /// Raw record size on disk (ingest reads, export writes).
    pub disk_bytes_per_record: f64,
    /// Bytes shipped per update crossing the network (shuffle model).
    pub net_bytes_per_update: f64,
    /// Bytes shipped per emitted relationship/event.
    pub net_bytes_per_event: f64,
    /// CPU ops per answered point query (High/Normal classes: property
    /// reads, degree, neighbor lists — the §V-B microsecond workload).
    pub ops_per_point_query: f64,
    /// CPU ops per answered scan query (Bulk class: top-k property
    /// scans and other whole-column work).
    pub ops_per_scan_query: f64,
    /// Bytes of memory traffic per answered point query.
    pub mem_bytes_per_point_query: f64,
    /// Bytes of memory traffic per answered scan query.
    pub mem_bytes_per_scan_query: f64,
}

impl Default for CostCoefficients {
    fn default() -> Self {
        CostCoefficients {
            ops_per_comparison: 2_000.0,
            ops_per_update: 300.0,
            ops_per_pair_candidate: 120.0,
            ops_per_extracted_vertex: 150.0,
            mem_bytes_per_edge: 16.0,
            mem_bytes_per_writeback: 64.0,
            disk_bytes_per_record: 2_048.0,
            net_bytes_per_update: 64.0,
            net_bytes_per_event: 128.0,
            ops_per_point_query: 400.0,
            ops_per_scan_query: 20_000.0,
            mem_bytes_per_point_query: 256.0,
            mem_bytes_per_scan_query: 64_000.0,
        }
    }
}

/// A measured workload profile: the flow engine's counters plus the
/// NORA search's own instrumentation, and (when the run served
/// concurrent queries) the serving front end's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeasuredRun {
    /// The flow engine counters.
    pub flow: FlowStats,
    /// The relationship-search counters.
    pub nora: NoraStats,
    /// The query-serving counters ([`crate::serve::QueryService::stats`]);
    /// default (all-zero) when the run served no queries.
    pub serve: crate::serve::ServeStats,
}

/// Convert a measured run into a demand table shaped like
/// [`crate::model::nora_steps`] (same step names, measured magnitudes).
///
/// The step mapping:
/// 1. ingest          ← records read from "disk", **plus the admission
///    cost of shed updates** ([`crate::flow::OverloadStats::updates_shed`]) — an update
///    dropped at the watermark still crossed the wire and was
///    classified before being refused
/// 2. clean/spell     ← dedup comparisons (CPU)
/// 3. shuffle/sort    ← updates crossing the network
/// 4. dedup/link      ← comparisons again (the union/merge pass)
/// 5. join/merge      ← entity materialization (disk + memory)
/// 6. graph build     ← edges extracted/inserted (memory) **plus the
///    measured snapshot-freeze traffic**
///    ([`crate::flow::SnapshotStats::mem_bytes`]) — the Fig. 2 "copy subgraph
///    into faster memory" step priced from what the snapshot cache
///    actually wrote, not an estimate — **plus WAL retry disk traffic**
///    ([`crate::flow::DurabilityStats::retries`]): each retried append
///    re-writes a frame to the persistent graph's log
/// 7. NORA search     ← pair candidates scanned **plus the measured
///    batch-kernel counters** ([`crate::flow::AnalyticsStats::kernel_cpu_ops`],
///    [`crate::flow::AnalyticsStats::kernel_mem_bytes`]) drained from the kernels'
///    [`ga_graph::OpCounters`] — the analytic step now prices what the
///    instrumented kernels actually did, not an estimate — **plus the
///    served query load** ([`MeasuredRun::serve`]): answered
///    High/Normal queries priced as point reads, answered Bulk queries
///    as scans (the §II "stream of independent local queries" is graph
///    search demand, so it lands on the search row)
/// 8. index build     ← relationships written (disk)
/// 9. export/boil     ← events/alerts shipped (network)
pub fn calibrate(run: &MeasuredRun, c: &CostCoefficients) -> Vec<StepDemand> {
    let f = &run.flow;
    let n = &run.nora;
    let records = f.ingest.records_ingested as f64;
    let comparisons = f.ingest.records_ingested as f64 * 0.0 + dedup_comparisons(f);
    let updates = f.ingest.updates_applied as f64;
    let edges = f.analytics.edges_extracted as f64;
    let pairs = n.pair_candidates as f64;
    let rels = n.relationships as f64;
    let events = f.ingest.events_observed as f64;
    let writebacks = f.analytics.props_written_back as f64;
    let snap_bytes = f.snapshots.mem_bytes as f64;
    let shed = f.overload.updates_shed as f64;
    let retries = f.durability.retries as f64;
    use ga_stream::admission::Priority;
    let point_queries = (run.serve.class(Priority::High).answered
        + run.serve.class(Priority::Normal).answered) as f64;
    let scan_queries = run.serve.class(Priority::Bulk).answered as f64;

    let d = |name, cpu, mem, disk, net| StepDemand {
        name,
        cpu_ops: cpu,
        mem_bytes: mem,
        disk_bytes: disk,
        net_bytes: net,
    };

    vec![
        d(
            "1 ingest raw data ",
            // Shed updates still cost their admission decision: parse,
            // classify, compare against the watermark (~25 ops each).
            records * 50.0 + shed * 25.0,
            records * c.disk_bytes_per_record, // every byte read touches memory
            records * c.disk_bytes_per_record,
            records * c.net_bytes_per_update * 0.5 + shed * c.net_bytes_per_update,
        ),
        d(
            "2 clean / spell   ",
            comparisons * c.ops_per_comparison * 0.5,
            comparisons * 256.0,
            records * 64.0,
            0.0,
        ),
        d(
            "3 shuffle / sort  ",
            updates * 40.0,
            updates * c.net_bytes_per_update,
            0.0,
            updates * c.net_bytes_per_update,
        ),
        d(
            "4 dedup / link    ",
            comparisons * c.ops_per_comparison * 0.5,
            comparisons * 128.0,
            0.0,
            0.0,
        ),
        d(
            "5 join / merge    ",
            f.ingest.entities_created as f64 * 500.0,
            f.ingest.entities_created as f64 * 1_024.0,
            f.ingest.entities_created as f64 * c.disk_bytes_per_record,
            0.0,
        ),
        d(
            "6 graph build     ",
            // Snapshot freezes are bandwidth-bound streaming writes:
            // ~1 op per 8 bytes moved (index arithmetic + store).
            edges * 20.0 + updates * c.ops_per_update + snap_bytes / 8.0,
            edges * c.mem_bytes_per_edge + updates * 48.0 + snap_bytes,
            // Each durability retry re-writes roughly one record-sized
            // WAL frame to the persistent graph's log.
            retries * c.disk_bytes_per_record,
            0.0,
        ),
        d(
            "7 NORA search     ",
            pairs * c.ops_per_pair_candidate
                + f.analytics.vertices_extracted as f64 * c.ops_per_extracted_vertex
                + f.analytics.kernel_cpu_ops as f64
                + point_queries * c.ops_per_point_query
                + scan_queries * c.ops_per_scan_query,
            pairs * 32.0
                + edges * c.mem_bytes_per_edge
                + f.analytics.kernel_mem_bytes as f64
                + point_queries * c.mem_bytes_per_point_query
                + scan_queries * c.mem_bytes_per_scan_query,
            0.0,
            0.0,
        ),
        d(
            "8 index build     ",
            rels * 200.0 + writebacks * 20.0,
            writebacks * c.mem_bytes_per_writeback,
            rels * 256.0 + writebacks * 64.0,
            0.0,
        ),
        d(
            "9 export / boil   ",
            events * 30.0,
            events * c.net_bytes_per_event,
            rels * 256.0,
            (events + rels) * c.net_bytes_per_event,
        ),
    ]
}

fn dedup_comparisons(f: &FlowStats) -> f64 {
    // FlowStats doesn't carry the comparison count directly (it lives in
    // DedupResult); approximate from the blocking model when absent:
    // records * ~50 within-block comparisons. Callers with the exact
    // count should prefer `calibrate_with_comparisons`.
    f.ingest.records_ingested as f64 * 50.0
}

// ---------------------------------------------------------------------
// Measured mode: per-step demands read straight from a recorded trace.
// ---------------------------------------------------------------------

/// Demands *measured* by the instrumentation layer: one row per
/// [`ga_obs::Step`], four resources each, taken verbatim from the span
/// totals an enabled [`ga_obs::Recorder`] accumulated during a real
/// run. No cost coefficients are involved — this is the ground truth
/// the projected table is checked against.
pub fn measured_demands(snap: &MetricsSnapshot) -> Vec<StepDemand> {
    Step::ALL
        .iter()
        .map(|&step| {
            let m = snap.step(step);
            StepDemand {
                name: step.name(),
                cpu_ops: m.cpu_ops as f64,
                mem_bytes: m.mem_bytes as f64,
                disk_bytes: m.disk_bytes as f64,
                net_bytes: m.net_bytes as f64,
            }
        })
        .collect()
}

/// Demands *projected* onto the same per-[`Step`] rows from the grouped
/// [`FlowStats`] counters and the documented cost coefficients — the
/// model side of the measured-vs-projected comparison. Rows the
/// counters cannot see (checkpoint count, for one) project as zero and
/// show up as measurement-only rows in the table; that asymmetry is the
/// point of having both columns.
pub fn projected_step_demands(f: &FlowStats, c: &CostCoefficients) -> Vec<StepDemand> {
    let comparisons = dedup_comparisons(f);
    let records = f.ingest.records_ingested as f64;
    let updates = f.ingest.updates_applied as f64;
    let seeds = f.analytics.seeds_selected as f64;
    let nv = f.analytics.vertices_extracted as f64;
    let ne = f.analytics.edges_extracted as f64;
    let writes = f.analytics.props_written_back as f64;
    let snap_bytes = f.snapshots.mem_bytes as f64;
    // Tier IO projects from its own counters, split by the step that
    // paid for it: spill (and scrub re-reads) happen while the snapshot
    // freezes; demand misses and prefetches happen while the extraction
    // BFS walks cold rows. This is what makes the larger-than-RAM
    // regime measurable — E3's "disk is the tall pole" shows up as
    // nonzero disk rows instead of vanishing into RAM.
    let tier_spill = (f.tier.spilled_bytes + f.tier.scrub_bytes) as f64;
    let tier_read = f.tier.read_bytes as f64;
    let d = |step: Step, cpu, mem, disk, net| StepDemand {
        name: step.name(),
        cpu_ops: cpu,
        mem_bytes: mem,
        disk_bytes: disk,
        net_bytes: net,
    };
    vec![
        d(
            Step::Dedup,
            comparisons * c.ops_per_comparison,
            comparisons * 256.0,
            records * c.disk_bytes_per_record,
            0.0,
        ),
        d(Step::Ingest, updates, updates * 16.0, 0.0, updates * 13.0),
        d(Step::Selection, seeds * 100.0, seeds * 800.0, 0.0, 0.0),
        d(
            Step::Extraction,
            nv + ne,
            nv * 8.0 + ne * c.mem_bytes_per_edge,
            tier_read,
            0.0,
        ),
        d(
            Step::BatchAnalytic,
            f.analytics.kernel_cpu_ops as f64,
            f.analytics.kernel_mem_bytes as f64,
            0.0,
            0.0,
        ),
        d(Step::WriteBack, writes, writes * 8.0, 0.0, writes * 8.0),
        d(Step::Wal, 0.0, 0.0, updates * 16.0, 0.0),
        d(Step::Checkpoint, 0.0, 0.0, 0.0, 0.0),
        d(Step::Snapshot, 0.0, snap_bytes, tier_spill, 0.0),
    ]
}

/// Render the measured-vs-projected comparison: a per-step
/// four-resource table (measured `m` next to projected `p`), followed
/// by the total step time both demand tables imply on each system
/// configuration. `fmt` formats one magnitude (pass an engineering
/// formatter for readable output).
pub fn measured_vs_projected_table(
    measured: &[StepDemand],
    projected: &[StepDemand],
    configs: &[SystemConfig],
    fmt: impl Fn(f64) -> String,
) -> String {
    assert_eq!(measured.len(), projected.len());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<15} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "step", "cpu m", "cpu p", "mem m", "mem p", "disk m", "disk p", "net m", "net p"
    );
    for (m, p) in measured.iter().zip(projected) {
        let _ = writeln!(
            out,
            "{:<15} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            m.name,
            fmt(m.cpu_ops),
            fmt(p.cpu_ops),
            fmt(m.mem_bytes),
            fmt(p.mem_bytes),
            fmt(m.disk_bytes),
            fmt(p.disk_bytes),
            fmt(m.net_bytes),
            fmt(p.net_bytes),
        );
    }
    if !configs.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<38} {:>14} {:>14} {:>8}",
            "configuration", "measured (s)", "projected (s)", "ratio"
        );
        for cfg in configs {
            let tm = evaluate(cfg, measured).total_seconds;
            let tp = evaluate(cfg, projected).total_seconds;
            let ratio = if tm > 0.0 { tp / tm } else { f64::NAN };
            let _ = writeln!(
                out,
                "{:<38} {:>14.3e} {:>14.3e} {:>8.2}",
                cfg.name, tm, tp, ratio
            );
        }
    }
    out
}

/// As [`calibrate`], with the exact dedup comparison count from
/// [`crate::dedup::DedupResult::comparisons`].
pub fn calibrate_with_comparisons(
    run: &MeasuredRun,
    comparisons: usize,
    c: &CostCoefficients,
) -> Vec<StepDemand> {
    let mut steps = calibrate(run, c);
    let approx = dedup_comparisons(&run.flow);
    if approx > 0.0 {
        let scale = comparisons as f64 / approx;
        for idx in [1usize, 3] {
            steps[idx].cpu_ops *= scale;
            steps[idx].mem_bytes *= scale;
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{AnalyticsStats, DurabilityStats, IngestStats, OverloadStats, SnapshotStats};
    use crate::model::{baseline2012, Resource};

    fn sample_run() -> MeasuredRun {
        MeasuredRun {
            flow: FlowStats {
                ingest: IngestStats {
                    records_ingested: 10_000,
                    entities_created: 2_200,
                    updates_applied: 60_000,
                    updates_quarantined: 0,
                    events_observed: 9_000,
                    triggers_fired: 50,
                },
                analytics: AnalyticsStats {
                    batch_runs: 10,
                    seeds_selected: 20,
                    subgraphs_extracted: 10,
                    vertices_extracted: 5_000,
                    edges_extracted: 100_000,
                    props_written_back: 5_000,
                    globals_produced: 20,
                    alerts_raised: 3,
                    kernel_cpu_ops: 400_000,
                    kernel_mem_bytes: 3_200_000,
                    kernel_edges_touched: 200_000,
                },
                snapshots: SnapshotStats {
                    rebuilds: 10,
                    rows_reused: 45_000,
                    mem_bytes: 2_400_000,
                },
                durability: DurabilityStats {
                    retries: 4,
                    breaker_trips: 0,
                },
                overload: OverloadStats {
                    updates_shed: 1_500,
                    deadline_partials: 3,
                    analytics_skipped: 2,
                },
                tier: Default::default(),
            },
            nora: NoraStats {
                pair_candidates: 150_000,
                relationships: 200,
            },
            serve: Default::default(),
        }
    }

    #[test]
    fn produces_nine_steps_matching_model_names() {
        let steps = calibrate(&sample_run(), &CostCoefficients::default());
        let reference = crate::model::nora_steps();
        assert_eq!(steps.len(), 9);
        for (s, r) in steps.iter().zip(&reference) {
            assert_eq!(s.name, r.name);
        }
    }

    #[test]
    fn demands_are_positive_where_work_happened() {
        let steps = calibrate(&sample_run(), &CostCoefficients::default());
        for s in &steps {
            assert!(s.cpu_ops > 0.0, "{} has zero cpu", s.name);
            assert!(s.mem_bytes > 0.0, "{} has zero mem", s.name);
        }
        // Ingest/export move disk bytes; shuffle/export move net bytes.
        assert!(steps[0].disk_bytes > 0.0);
        assert!(steps[2].net_bytes > 0.0);
        assert!(steps[8].net_bytes > 0.0);
    }

    #[test]
    fn calibrated_demands_price_on_any_config() {
        let steps = calibrate(&sample_run(), &CostCoefficients::default());
        let e = evaluate(&baseline2012(), &steps);
        assert!(e.total_seconds > 0.0);
        assert_eq!(e.steps.len(), 9);
        // Every step has a bounding resource.
        let total: usize = Resource::ALL.iter().map(|&r| e.steps_bound_by(r)).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn exact_comparisons_rescale_dedup_steps() {
        let run = sample_run();
        let c = CostCoefficients::default();
        let approx = calibrate(&run, &c);
        let exact = calibrate_with_comparisons(&run, 1_000_000, &c);
        // 10k records * 50 = 500k approx; exact 1M doubles steps 2 & 4.
        assert!((exact[1].cpu_ops / approx[1].cpu_ops - 2.0).abs() < 1e-9);
        assert!((exact[3].cpu_ops / approx[3].cpu_ops - 2.0).abs() < 1e-9);
        // Other steps untouched.
        assert_eq!(exact[0].cpu_ops, approx[0].cpu_ops);
        assert_eq!(exact[6].cpu_ops, approx[6].cpu_ops);
    }

    #[test]
    fn kernel_counters_shift_nora_step() {
        let base = sample_run();
        let mut hot = base;
        hot.flow.analytics.kernel_cpu_ops *= 100;
        hot.flow.analytics.kernel_mem_bytes *= 100;
        let c = CostCoefficients::default();
        let a = calibrate(&base, &c);
        let b = calibrate(&hot, &c);
        assert!(b[6].cpu_ops > a[6].cpu_ops);
        assert!(b[6].mem_bytes > a[6].mem_bytes);
        // Only step 7 consumes the kernel counters.
        for i in (0..9).filter(|&i| i != 6) {
            assert_eq!(a[i].cpu_ops, b[i].cpu_ops, "step {i}");
        }
    }

    #[test]
    fn served_queries_price_only_the_search_row() {
        use ga_stream::admission::Priority;
        let base = sample_run();
        let mut served = base;
        served.serve.classes[Priority::High.idx()].answered = 100_000;
        served.serve.classes[Priority::Bulk.idx()].answered = 1_000;
        let c = CostCoefficients::default();
        let a = calibrate(&base, &c);
        let b = calibrate(&served, &c);
        let extra_cpu = 100_000.0 * c.ops_per_point_query + 1_000.0 * c.ops_per_scan_query;
        let extra_mem =
            100_000.0 * c.mem_bytes_per_point_query + 1_000.0 * c.mem_bytes_per_scan_query;
        assert!((b[6].cpu_ops - a[6].cpu_ops - extra_cpu).abs() < 1e-6);
        assert!((b[6].mem_bytes - a[6].mem_bytes - extra_mem).abs() < 1e-6);
        for i in (0..9).filter(|&i| i != 6) {
            assert_eq!(a[i].cpu_ops, b[i].cpu_ops, "step {i}");
            assert_eq!(a[i].mem_bytes, b[i].mem_bytes, "step {i}");
        }
        // Shed queries cost nothing here: only answered work is demand.
        let mut shed = base;
        shed.serve.classes[Priority::Bulk.idx()].shed = 1_000_000;
        assert_eq!(calibrate(&shed, &c)[6].cpu_ops, a[6].cpu_ops);
    }

    #[test]
    fn snapshot_counters_shift_only_graph_build_step() {
        let base = sample_run();
        let mut hot = base;
        hot.flow.snapshots.mem_bytes *= 100;
        let c = CostCoefficients::default();
        let a = calibrate(&base, &c);
        let b = calibrate(&hot, &c);
        assert!(b[5].cpu_ops > a[5].cpu_ops);
        assert!(b[5].mem_bytes > a[5].mem_bytes);
        // Only step 6 prices the snapshot copy.
        for i in (0..9).filter(|&i| i != 5) {
            assert_eq!(a[i].cpu_ops, b[i].cpu_ops, "step {i}");
            assert_eq!(a[i].mem_bytes, b[i].mem_bytes, "step {i}");
        }
    }

    #[test]
    fn overload_counters_price_admission_and_retry_cost() {
        let base = sample_run();
        let mut hot = base;
        hot.flow.overload.updates_shed *= 100;
        hot.flow.durability.retries *= 100;
        let c = CostCoefficients::default();
        let a = calibrate(&base, &c);
        let b = calibrate(&hot, &c);
        // Shed updates are priced at ingest: classification CPU plus the
        // wire bytes they consumed before being refused.
        assert!(b[0].cpu_ops > a[0].cpu_ops);
        assert!(b[0].net_bytes > a[0].net_bytes);
        // WAL retries re-write frames: disk traffic on graph build.
        assert!(b[5].disk_bytes > a[5].disk_bytes);
        // Nothing else moves.
        for i in 1..9 {
            assert_eq!(a[i].cpu_ops, b[i].cpu_ops, "step {i}");
            assert_eq!(a[i].net_bytes, b[i].net_bytes, "step {i}");
        }
        for i in (0..9).filter(|&i| i != 5) {
            assert_eq!(a[i].disk_bytes, b[i].disk_bytes, "step {i}");
        }
    }

    #[test]
    fn measured_flow_run_calibrates() {
        // End-to-end: a real FlowEngine batch run drains nonzero kernel
        // counters into FlowStats, and calibrate prices them.
        use crate::flow::{FlowEngine, PageRankAnalytic, SelectionCriteria};
        use ga_graph::{gen, DynamicGraph, PropertyStore};

        let mut g = DynamicGraph::new(64);
        g.insert_undirected(&gen::ring(64), 1);
        let mut eng = FlowEngine::with_graph(g, PropertyStore::new(64));
        let idx = eng.register_analytic(Box::new(PageRankAnalytic { damping: 0.85 }));
        eng.run_batch(&SelectionCriteria::Explicit(vec![0, 16, 32]), idx);
        let stats = eng.stats();
        assert!(
            stats.analytics.kernel_cpu_ops > 0,
            "no kernel cpu ops measured"
        );
        assert!(
            stats.analytics.kernel_mem_bytes > 0,
            "no kernel mem traffic measured"
        );
        assert!(
            stats.analytics.kernel_edges_touched > 0,
            "no kernel edges measured"
        );
        assert!(stats.snapshots.rebuilds > 0, "no snapshot freeze measured");
        assert!(
            stats.snapshots.mem_bytes > 0,
            "no snapshot traffic measured"
        );

        let run = MeasuredRun {
            flow: stats,
            nora: NoraStats::default(),
            serve: Default::default(),
        };
        let steps = calibrate(&run, &CostCoefficients::default());
        assert!(steps[6].cpu_ops >= stats.analytics.kernel_cpu_ops as f64);
        assert!(steps[6].mem_bytes >= stats.analytics.kernel_mem_bytes as f64);
        assert!(steps[5].mem_bytes >= stats.snapshots.mem_bytes as f64);
    }

    #[test]
    fn measured_demands_read_span_totals_verbatim() {
        let rec = ga_obs::Recorder::enabled();
        {
            let mut span = rec.span(Step::Extraction);
            span.add(10, 20, 30, 40);
        }
        let m = measured_demands(&rec.snapshot());
        assert_eq!(m.len(), 9);
        let ex = m.iter().find(|s| s.name == "extraction").unwrap();
        assert_eq!(
            (ex.cpu_ops, ex.mem_bytes, ex.disk_bytes, ex.net_bytes),
            (10.0, 20.0, 30.0, 40.0)
        );
        // Untouched steps are present with zero demand.
        assert!(m.iter().all(|s| s.name != "wal" || s.cpu_ops == 0.0));
    }

    #[test]
    fn projected_rows_align_with_measured_rows() {
        let run = sample_run();
        let p = projected_step_demands(&run.flow, &CostCoefficients::default());
        let m = measured_demands(&MetricsSnapshot::empty());
        assert_eq!(p.len(), m.len());
        for (a, b) in p.iter().zip(&m) {
            assert_eq!(a.name, b.name, "step rows must line up");
        }
        // The analytic row projects the kernels' own counters exactly.
        let ba = p.iter().find(|s| s.name == "batch_analytic").unwrap();
        assert_eq!(ba.cpu_ops, run.flow.analytics.kernel_cpu_ops as f64);
        let table = measured_vs_projected_table(&m, &p, &[baseline2012()], |v| format!("{v:.0}"));
        assert!(table.contains("batch_analytic"));
        assert!(table.contains("configuration"));
        assert!(table.contains("Baseline 2012"));
    }

    #[test]
    fn instrumented_run_feeds_measured_mode() {
        // End-to-end: an engine built with a recorder produces a trace
        // whose measured batch-analytic demand matches the drained
        // kernel counters in FlowStats.
        use crate::flow::{FlowEngine, PageRankAnalytic, SelectionCriteria};
        use ga_graph::{gen, DynamicGraph, PropertyStore};

        let mut g = DynamicGraph::new(64);
        g.insert_undirected(&gen::ring(64), 1);
        let mut eng = FlowEngine::builder()
            .recorder(ga_obs::Recorder::enabled())
            .build_with_graph(g, PropertyStore::new(64))
            .unwrap();
        let idx = eng.register_analytic(Box::new(PageRankAnalytic { damping: 0.85 }));
        eng.run_batch(&SelectionCriteria::Explicit(vec![0, 16, 32]), idx);
        let m = measured_demands(&eng.metrics());
        let stats = eng.stats();
        let ba = m.iter().find(|s| s.name == "batch_analytic").unwrap();
        assert_eq!(ba.cpu_ops, stats.analytics.kernel_cpu_ops as f64);
        assert_eq!(ba.mem_bytes, stats.analytics.kernel_mem_bytes as f64);
        let sn = m.iter().find(|s| s.name == "snapshot").unwrap();
        assert_eq!(sn.mem_bytes, stats.snapshots.mem_bytes as f64);
        // Selection, extraction, write-back all saw work too.
        for name in ["selection", "extraction", "write_back"] {
            let s = m.iter().find(|s| s.name == name).unwrap();
            assert!(s.cpu_ops > 0.0, "{name} span recorded nothing");
        }
    }

    #[test]
    fn scaling_counters_scales_demands_linearly() {
        let run = sample_run();
        let mut big = run;
        big.flow.ingest.updates_applied *= 10;
        let c = CostCoefficients::default();
        let a = calibrate(&run, &c);
        let b = calibrate(&big, &c);
        assert!((b[2].net_bytes / a[2].net_bytes - 10.0).abs() < 1e-9);
    }
}
