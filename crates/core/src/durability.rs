//! Checkpoints + WAL management: the durable half of the flow engine.
//!
//! A durable [`crate::flow::FlowEngine`] directs every update batch
//! through a write-ahead log (`ga_stream::wal`) and periodically
//! serializes its full state into a *checkpoint* file:
//!
//! ```text
//! GAC1 | version | symmetrize | vertex_limit | last_batch_time
//!      | next_wal_seq | GAD1 graph | GAP1 props | FlowStats
//!      | StreamStats | crc32
//! ```
//!
//! `next_wal_seq` is the recovery cursor: every WAL frame with a
//! sequence number below it is already reflected in the checkpoint, so
//! recovery = *newest checkpoint that passes its CRC* + *replay of the
//! WAL suffix at or past the cursor*. Checkpoints are written to a
//! temporary file and renamed into place, the body carries a whole-file
//! CRC32, and recovery transparently falls back to the previous
//! checkpoint when the newest is torn or unreadable — so a crash at any
//! byte of any write leaves a recoverable directory.
//!
//! Retention keeps the last two checkpoints; a WAL segment is deleted
//! only once it is fully covered by the *older* retained checkpoint, so
//! the fallback path always has the frames it needs.
//!
//! Fault sites: `"checkpoint.write"` (veto or tear the file) and
//! `"checkpoint.load"` (veto a candidate during recovery); WAL appends
//! carry their own `"wal.append"` site.

use crate::faults;
use crate::flow::{
    AnalyticsStats, DurabilityStats, FlowStats, IngestStats, OverloadStats, SnapshotStats,
};
use ga_graph::io::{self as gio, crc32};
use ga_graph::{DynamicGraph, PropertyStore, Timestamp};
use ga_obs::{Recorder, Step};
use ga_stream::engine::StreamStats;
use ga_stream::update::UpdateBatch;
use ga_stream::wal::{self, Wal};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"GAC1";
/// Current checkpoint format. Version 3 appends the tier-IO group to
/// the version-2 per-group [`FlowStats`] layout; versions 2 (grouped,
/// no tier) and 1 (the flat 25-field layout) are still decoded for
/// checkpoints written by older builds, with tier counters defaulting
/// to zero.
const VERSION: u16 = 3;

/// A complete, self-contained snapshot of engine state.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// The persistent graph, slot-exact (tombstones + timestamps).
    pub graph: DynamicGraph,
    /// The property columns.
    pub props: PropertyStore,
    /// Flow-level instrumentation counters.
    pub flow: FlowStats,
    /// Stream-level instrumentation counters.
    pub stream: StreamStats,
    /// The stream engine's symmetrize setting (replay must mirror it).
    pub symmetrize: bool,
    /// The quarantine bound for vertex ids (replay must mirror it).
    pub vertex_limit: u64,
    /// Batch-time watermark (replay must face the same monotonicity
    /// checks as the original run).
    pub last_batch_time: Timestamp,
    /// First WAL sequence number NOT reflected in this checkpoint.
    pub next_wal_seq: u64,
}

fn corrupt(what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("GAC1: {what}"))
}

/// Prefix an error with a deployment label (`[shard-03] ...`) so that
/// in a multi-engine deployment a recovery failure names the engine it
/// came from. Empty labels pass errors through untouched.
fn annotate(label: &str, e: io::Error) -> io::Error {
    if label.is_empty() {
        e
    } else {
        io::Error::new(e.kind(), format!("[{label}] {e}"))
    }
}

fn push_group(out: &mut Vec<u8>, fields: &[usize]) {
    out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
    for &f in fields {
        out.extend_from_slice(&(f as u64).to_le_bytes());
    }
}

fn push_group_u64(out: &mut Vec<u8>, fields: &[u64]) {
    out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
    for &f in fields {
        out.extend_from_slice(&f.to_le_bytes());
    }
}

/// Stats version 3: one length-prefixed section per group, in fixed
/// group order (ingest, analytics, snapshots, durability, overload,
/// tier).
fn push_flow_stats(out: &mut Vec<u8>, s: &FlowStats) {
    let i = &s.ingest;
    push_group(
        out,
        &[
            i.records_ingested,
            i.entities_created,
            i.updates_applied,
            i.updates_quarantined,
            i.events_observed,
            i.triggers_fired,
        ],
    );
    let a = &s.analytics;
    push_group(
        out,
        &[
            a.batch_runs,
            a.seeds_selected,
            a.subgraphs_extracted,
            a.vertices_extracted,
            a.edges_extracted,
            a.props_written_back,
            a.globals_produced,
            a.alerts_raised,
            a.kernel_cpu_ops,
            a.kernel_mem_bytes,
            a.kernel_edges_touched,
        ],
    );
    let sn = &s.snapshots;
    push_group(out, &[sn.rebuilds, sn.rows_reused, sn.mem_bytes]);
    let d = &s.durability;
    push_group(out, &[d.retries, d.breaker_trips]);
    let o = &s.overload;
    push_group(
        out,
        &[o.updates_shed, o.deadline_partials, o.analytics_skipped],
    );
    let t = &s.tier;
    push_group_u64(
        out,
        &[
            t.spilled_segments,
            t.spilled_bytes,
            t.cache_hits,
            t.cache_misses,
            t.read_bytes,
            t.prefetches,
            t.prefetch_denied,
            t.evictions,
            t.corrupt_segments,
            t.scrubbed_segments,
            t.scrub_bytes,
            t.scrub_errors,
            t.repaired_segments,
            t.lost_segments,
            t.lost_rows,
            t.slow_ios,
            t.pinned_fallbacks,
            t.breaker_trips,
            t.write_failures,
            t.read_failures,
        ],
    );
}

/// Decode the version-1 flat 25-field layout into the grouped struct.
fn take_flow_stats_v1(r: &mut &[u8]) -> io::Result<FlowStats> {
    let f = take_stats(r, 25, "FlowStats")?;
    Ok(FlowStats {
        ingest: IngestStats {
            records_ingested: f[0],
            entities_created: f[1],
            updates_applied: f[10],
            updates_quarantined: f[11],
            events_observed: f[12],
            triggers_fired: f[13],
        },
        analytics: AnalyticsStats {
            batch_runs: f[2],
            seeds_selected: f[3],
            subgraphs_extracted: f[4],
            vertices_extracted: f[5],
            edges_extracted: f[6],
            props_written_back: f[7],
            globals_produced: f[8],
            alerts_raised: f[9],
            kernel_cpu_ops: f[14],
            kernel_mem_bytes: f[15],
            kernel_edges_touched: f[16],
        },
        snapshots: SnapshotStats {
            rebuilds: f[17],
            rows_reused: f[18],
            mem_bytes: f[19],
        },
        durability: DurabilityStats {
            retries: f[23],
            breaker_trips: f[24],
        },
        overload: OverloadStats {
            updates_shed: f[20],
            deadline_partials: f[21],
            analytics_skipped: f[22],
        },
        tier: Default::default(),
    })
}

/// Decode the version-2 grouped layout.
fn take_flow_stats_v2(r: &mut &[u8]) -> io::Result<FlowStats> {
    let i = take_stats(r, 6, "IngestStats")?;
    let a = take_stats(r, 11, "AnalyticsStats")?;
    let sn = take_stats(r, 3, "SnapshotStats")?;
    let d = take_stats(r, 2, "DurabilityStats")?;
    let o = take_stats(r, 3, "OverloadStats")?;
    Ok(FlowStats {
        ingest: IngestStats {
            records_ingested: i[0],
            entities_created: i[1],
            updates_applied: i[2],
            updates_quarantined: i[3],
            events_observed: i[4],
            triggers_fired: i[5],
        },
        analytics: AnalyticsStats {
            batch_runs: a[0],
            seeds_selected: a[1],
            subgraphs_extracted: a[2],
            vertices_extracted: a[3],
            edges_extracted: a[4],
            props_written_back: a[5],
            globals_produced: a[6],
            alerts_raised: a[7],
            kernel_cpu_ops: a[8],
            kernel_mem_bytes: a[9],
            kernel_edges_touched: a[10],
        },
        snapshots: SnapshotStats {
            rebuilds: sn[0],
            rows_reused: sn[1],
            mem_bytes: sn[2],
        },
        durability: DurabilityStats {
            retries: d[0],
            breaker_trips: d[1],
        },
        overload: OverloadStats {
            updates_shed: o[0],
            deadline_partials: o[1],
            analytics_skipped: o[2],
        },
        tier: Default::default(),
    })
}

/// Decode the version-3 layout: version 2 plus the tier-IO group.
fn take_flow_stats_v3(r: &mut &[u8]) -> io::Result<FlowStats> {
    let mut flow = take_flow_stats_v2(r)?;
    let t = take_stats(r, 20, "TierStats")?;
    flow.tier = ga_graph::tier::TierStats {
        spilled_segments: t[0] as u64,
        spilled_bytes: t[1] as u64,
        cache_hits: t[2] as u64,
        cache_misses: t[3] as u64,
        read_bytes: t[4] as u64,
        prefetches: t[5] as u64,
        prefetch_denied: t[6] as u64,
        evictions: t[7] as u64,
        corrupt_segments: t[8] as u64,
        scrubbed_segments: t[9] as u64,
        scrub_bytes: t[10] as u64,
        scrub_errors: t[11] as u64,
        repaired_segments: t[12] as u64,
        lost_segments: t[13] as u64,
        lost_rows: t[14] as u64,
        slow_ios: t[15] as u64,
        pinned_fallbacks: t[16] as u64,
        breaker_trips: t[17] as u64,
        write_failures: t[18] as u64,
        read_failures: t[19] as u64,
    };
    Ok(flow)
}

fn push_stream_stats(out: &mut Vec<u8>, s: &StreamStats) {
    let fields = [
        s.edges_inserted,
        s.edges_updated,
        s.edges_deleted,
        s.deletes_missed,
        s.props_set,
        s.batches,
        s.events_emitted,
        s.updates_quarantined,
    ];
    out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
    for f in fields {
        out.extend_from_slice(&(f as u64).to_le_bytes());
    }
}

fn take_stats(r: &mut &[u8], expect: usize, what: &str) -> io::Result<Vec<usize>> {
    let count = take_u32(r, what)? as usize;
    if count != expect {
        return Err(corrupt(format!(
            "{what}: {count} fields on disk, this build expects {expect}"
        )));
    }
    (0..count)
        .map(|_| Ok(take_u64(r, what)? as usize))
        .collect()
}

fn take_array<const N: usize>(r: &mut &[u8], what: &str) -> io::Result<[u8; N]> {
    if r.len() < N {
        return Err(corrupt(format!("truncated in {what}")));
    }
    let (head, rest) = r.split_at(N);
    *r = rest;
    Ok(head.try_into().unwrap())
}

fn take_u32(r: &mut &[u8], what: &str) -> io::Result<u32> {
    Ok(u32::from_le_bytes(take_array(r, what)?))
}

fn take_u64(r: &mut &[u8], what: &str) -> io::Result<u64> {
    Ok(u64::from_le_bytes(take_array(r, what)?))
}

/// Serialize a checkpoint (including the trailing CRC32).
pub fn encode_checkpoint(c: &Checkpoint) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // reserved
    out.push(c.symmetrize as u8);
    out.extend_from_slice(&c.vertex_limit.to_le_bytes());
    out.extend_from_slice(&c.last_batch_time.to_le_bytes());
    out.extend_from_slice(&c.next_wal_seq.to_le_bytes());
    let mut graph_buf = Vec::new();
    gio::write_dynamic(&c.graph, &mut graph_buf)?;
    out.extend_from_slice(&(graph_buf.len() as u64).to_le_bytes());
    out.extend_from_slice(&graph_buf);
    let mut props_buf = Vec::new();
    gio::write_props(&c.props, &mut props_buf)?;
    out.extend_from_slice(&(props_buf.len() as u64).to_le_bytes());
    out.extend_from_slice(&props_buf);
    push_flow_stats(&mut out, &c.flow);
    push_stream_stats(&mut out, &c.stream);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(out)
}

/// Deserialize and CRC-verify a checkpoint.
pub fn decode_checkpoint(bytes: &[u8]) -> io::Result<Checkpoint> {
    if bytes.len() < 4 {
        return Err(corrupt("file shorter than its checksum"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored {
        return Err(corrupt("checksum mismatch (torn or corrupt file)"));
    }
    let mut r = body;
    let magic: [u8; 4] = take_array(&mut r, "magic")?;
    if &magic != MAGIC {
        return Err(corrupt(format!(
            "bad magic {:?}",
            String::from_utf8_lossy(&magic)
        )));
    }
    let version = u16::from_le_bytes(take_array(&mut r, "version")?);
    if version == 0 || version > VERSION {
        return Err(corrupt(format!(
            "unsupported version {version} (this build reads versions 1..={VERSION})"
        )));
    }
    let _reserved = u16::from_le_bytes(take_array::<2>(&mut r, "header")?);
    let symmetrize = match take_array::<1>(&mut r, "symmetrize flag")?[0] {
        0 => false,
        1 => true,
        x => return Err(corrupt(format!("invalid symmetrize flag {x}"))),
    };
    let vertex_limit = take_u64(&mut r, "vertex_limit")?;
    let last_batch_time = take_u64(&mut r, "last_batch_time")?;
    let next_wal_seq = take_u64(&mut r, "next_wal_seq")?;
    let graph_len = take_u64(&mut r, "graph section length")? as usize;
    if r.len() < graph_len {
        return Err(corrupt("truncated in graph section"));
    }
    let (graph_bytes, rest) = r.split_at(graph_len);
    r = rest;
    let graph = gio::read_dynamic(graph_bytes)?;
    let props_len = take_u64(&mut r, "props section length")? as usize;
    if r.len() < props_len {
        return Err(corrupt("truncated in props section"));
    }
    let (props_bytes, rest) = r.split_at(props_len);
    r = rest;
    let props = gio::read_props(props_bytes)?;
    let flow = match version {
        1 => take_flow_stats_v1(&mut r)?,
        2 => take_flow_stats_v2(&mut r)?,
        _ => take_flow_stats_v3(&mut r)?,
    };
    let s = take_stats(&mut r, 8, "StreamStats")?;
    let stream = StreamStats {
        edges_inserted: s[0],
        edges_updated: s[1],
        edges_deleted: s[2],
        deletes_missed: s[3],
        props_set: s[4],
        batches: s[5],
        events_emitted: s[6],
        updates_quarantined: s[7],
    };
    if !r.is_empty() {
        return Err(corrupt(format!("{} trailing bytes", r.len())));
    }
    Ok(Checkpoint {
        graph,
        props,
        flow,
        stream,
        symmetrize,
        vertex_limit,
        last_batch_time,
        next_wal_seq,
    })
}

fn ckpt_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{seq:020}.gac"))
}

fn wal_path(dir: &Path, start_seq: u64) -> PathBuf {
    dir.join(format!("wal-{start_seq:020}.log"))
}

fn list_numbered(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix(prefix)
            .and_then(|s| s.strip_suffix(suffix))
        {
            if let Ok(n) = num.parse::<u64>() {
                out.push((n, entry.path()));
            }
        }
    }
    out.sort_by_key(|(n, _)| *n);
    Ok(out)
}

/// How many checkpoints [`Durability`] retains (the newest plus one
/// fallback for torn-checkpoint recovery).
pub const CHECKPOINTS_RETAINED: usize = 2;

/// Owns a durability directory: the open WAL segment plus checkpoint
/// rotation/retention.
pub struct Durability {
    dir: PathBuf,
    wal: Wal,
    /// Sequence of the newest successfully written checkpoint.
    last_checkpoint_seq: u64,
    /// Observability sink: checkpoint spans here, WAL spans in the open
    /// segment (re-attached after every rotation).
    recorder: Recorder,
}

impl Durability {
    /// Initialize a fresh durability directory with `initial` as
    /// checkpoint zero. Fails if `dir` already holds engine state
    /// (recover instead of silently clobbering it).
    pub fn create(dir: impl AsRef<Path>, initial: &Checkpoint) -> io::Result<Durability> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        if !list_numbered(&dir, "ckpt-", ".gac")?.is_empty()
            || !list_numbered(&dir, "wal-", ".log")?.is_empty()
        {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "{} already contains engine state; use recover",
                    dir.display()
                ),
            ));
        }
        let seq = initial.next_wal_seq;
        write_checkpoint_file(&dir, initial)?;
        let wal = Wal::create(wal_path(&dir, seq), seq)?;
        Ok(Durability {
            dir,
            wal,
            last_checkpoint_seq: seq,
            recorder: Recorder::disabled(),
        })
    }

    /// Attach the observability recorder: checkpoint writes are recorded
    /// here and the open WAL segment gets its own copy (kept across
    /// rotations).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.wal.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// The directory this manager owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number the next WAL append will carry.
    pub fn next_wal_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Sequence recorded by the newest successfully written checkpoint.
    pub fn last_checkpoint_seq(&self) -> u64 {
        self.last_checkpoint_seq
    }

    /// Append a batch to the WAL (fsynced). Returns its sequence.
    pub fn append(&mut self, batch: &UpdateBatch) -> io::Result<u64> {
        self.wal.append(batch)
    }

    /// Truncate any torn tail a failed append left in the open WAL
    /// segment (see [`ga_stream::wal::Wal::repair`]). Must run before an
    /// in-process *retry* of a failed append, or the retried frame lands
    /// after the torn bytes and is unreadable at replay.
    pub fn repair_wal(&mut self) -> io::Result<()> {
        self.wal.repair()
    }

    /// Write `ckpt` durably, rotate the WAL, and prune per retention.
    /// On success returns the checkpoint's path.
    pub fn checkpoint(&mut self, ckpt: &Checkpoint) -> io::Result<PathBuf> {
        let seq = ckpt.next_wal_seq;
        // The span counts attempts: a failed write still records its
        // wall time, with zero disk bytes.
        let mut span = self.recorder.span(Step::Checkpoint);
        let path = write_checkpoint_file(&self.dir, ckpt)?;
        if span.is_recording() {
            span.add_disk_bytes(fs::metadata(&path).map(|m| m.len()).unwrap_or(0));
        }
        drop(span);
        // Rotate: new appends land in a fresh segment starting at the
        // checkpoint cursor (no-op rename-over when seq already has a
        // segment, i.e. a checkpoint with no intervening batches).
        if wal_path(&self.dir, seq) != *self.wal.path() {
            self.wal = Wal::create(wal_path(&self.dir, seq), seq)?;
            self.wal.set_recorder(self.recorder.clone());
        }
        self.last_checkpoint_seq = seq;
        self.prune()?;
        Ok(path)
    }

    /// Drop checkpoints beyond the retention window and WAL segments
    /// fully covered by the *oldest retained* checkpoint.
    fn prune(&self) -> io::Result<()> {
        let ckpts = list_numbered(&self.dir, "ckpt-", ".gac")?;
        if ckpts.len() > CHECKPOINTS_RETAINED {
            for (_, path) in &ckpts[..ckpts.len() - CHECKPOINTS_RETAINED] {
                fs::remove_file(path)?;
            }
        }
        let keep_floor = ckpts
            .iter()
            .rev()
            .take(CHECKPOINTS_RETAINED)
            .map(|(n, _)| *n)
            .min()
            .unwrap_or(0);
        let wals = list_numbered(&self.dir, "wal-", ".log")?;
        // Segment [start_i, start_{i+1}) is disposable once even the
        // fallback checkpoint no longer needs any frame in it.
        for w in wals.windows(2) {
            let (_, ref path) = w[0];
            let (next_start, _) = w[1];
            if next_start <= keep_floor {
                fs::remove_file(path)?;
            }
        }
        Ok(())
    }

    /// Load the newest usable checkpoint in `dir` and the WAL suffix
    /// after it. Returns the manager (ready to append), the checkpoint,
    /// and the `(seq, batch)` replay list in order.
    #[allow(clippy::type_complexity)]
    pub fn recover(
        dir: impl AsRef<Path>,
    ) -> io::Result<(Durability, Checkpoint, Vec<(u64, UpdateBatch)>)> {
        Self::recover_labeled(dir, "")
    }

    /// [`Self::recover`] with a deployment label (e.g. `"shard-03"`)
    /// prefixed onto every error, and file paths attached to candidate
    /// load failures — so a sharded recovery failure read from a CI log
    /// names both the shard and the checkpoint file that sank it.
    #[allow(clippy::type_complexity)]
    pub fn recover_labeled(
        dir: impl AsRef<Path>,
        label: &str,
    ) -> io::Result<(Durability, Checkpoint, Vec<(u64, UpdateBatch)>)> {
        let dir = dir.as_ref().to_path_buf();
        let tag = |e: io::Error| annotate(label, e);
        let ckpts = list_numbered(&dir, "ckpt-", ".gac").map_err(tag)?;
        if ckpts.is_empty() {
            return Err(tag(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{}: no checkpoint files", dir.display()),
            )));
        }
        let mut ckpt = None;
        let mut last_err = None;
        for (seq, path) in ckpts.iter().rev() {
            // A vetoed or corrupt candidate falls through to the next
            // older checkpoint; the WAL suffix covers the difference.
            let attempt = faults::check("checkpoint.load")
                .and_then(|()| fs::read(path))
                .and_then(|bytes| decode_checkpoint(&bytes))
                .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())));
            match attempt {
                Ok(c) => {
                    if c.next_wal_seq != *seq {
                        last_err = Some(corrupt(format!(
                            "{}: cursor {} disagrees with filename",
                            path.display(),
                            c.next_wal_seq
                        )));
                        continue;
                    }
                    ckpt = Some(c);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let Some(ckpt) = ckpt else {
            return Err(tag(last_err.unwrap_or_else(|| {
                corrupt(format!("{}: no usable checkpoint", dir.display()))
            })));
        };

        // Replay every intact frame at or past the cursor, in order,
        // stopping at a sequence gap (nothing after a gap can be trusted).
        let wals = list_numbered(&dir, "wal-", ".log")?;
        let mut frames: Vec<(u64, UpdateBatch)> = Vec::new();
        for (_, path) in &wals {
            let scan = wal::replay(path)
                .map_err(|e| tag(io::Error::new(e.kind(), format!("{}: {e}", path.display()))))?;
            frames.extend(scan.batches);
        }
        frames.sort_by_key(|(seq, _)| *seq);
        let mut replayable = Vec::new();
        let mut expect = ckpt.next_wal_seq;
        for (seq, batch) in frames {
            if seq < expect {
                continue; // already inside the checkpoint
            }
            if seq != expect {
                break; // gap: a vetoed append preceded the crash
            }
            replayable.push((seq, batch));
            expect += 1;
        }

        // Reopen the newest segment for appending (truncating any torn
        // tail); `expect` is where the durable history actually ends.
        let wal = match wals.last() {
            Some((start, path)) => {
                let mut w = Wal::open_append(path, *start).map_err(tag)?;
                if w.next_seq() > expect {
                    // The tail of this segment sits after a gap; a fresh
                    // segment at the true cursor supersedes it.
                    w = Wal::create(wal_path(&dir, expect), expect).map_err(tag)?;
                }
                w
            }
            None => Wal::create(wal_path(&dir, expect), expect).map_err(tag)?,
        };
        let last_checkpoint_seq = ckpt.next_wal_seq;
        Ok((
            Durability {
                dir,
                wal,
                last_checkpoint_seq,
                recorder: Recorder::disabled(),
            },
            ckpt,
            replayable,
        ))
    }
}

/// Encode + write one checkpoint file: temp file, fsync, atomic rename.
/// Passes the `"checkpoint.write"` fault site; an injected short write
/// tears the file at its *final* path, modelling a crash inside a
/// non-atomic writer, which recovery must survive via fallback.
fn write_checkpoint_file(dir: &Path, ckpt: &Checkpoint) -> io::Result<PathBuf> {
    let bytes = encode_checkpoint(ckpt)?;
    let path = ckpt_path(dir, ckpt.next_wal_seq);
    match faults::intercept("checkpoint.write") {
        faults::Intercept::Proceed => {}
        faults::Intercept::Delay(ms) => faults::apply_delay(ms),
        faults::Intercept::Error => return Err(faults::injected("checkpoint.write")),
        faults::Intercept::ShortWrite(k) => {
            let k = k.min(bytes.len());
            let mut f = fs::File::create(&path)?;
            f.write_all(&bytes[..k])?;
            f.sync_data()?;
            return Err(faults::injected("checkpoint.write"));
        }
    }
    let tmp = path.with_extension("gac.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_stream::update::{into_batches, rmat_edge_stream, Update};
    use std::sync::Mutex;

    static LOCK: Mutex<()> = Mutex::new(());

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ga_durability_tests").join(name);
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_checkpoint() -> Checkpoint {
        let mut graph = DynamicGraph::new(6);
        graph.insert_edge(0, 1, 1.5, 3);
        graph.insert_edge(1, 2, 2.5, 4);
        graph.delete_edge(0, 1, 5);
        let mut props = PropertyStore::new(6);
        props.set("score", 2, 0.75);
        props.set("label", 0, "seed");
        Checkpoint {
            graph,
            props,
            flow: FlowStats {
                ingest: IngestStats {
                    updates_applied: 40,
                    updates_quarantined: 2,
                    events_observed: 7,
                    ..IngestStats::default()
                },
                snapshots: SnapshotStats {
                    rebuilds: 3,
                    rows_reused: 11,
                    mem_bytes: 1234,
                },
                durability: DurabilityStats {
                    retries: 4,
                    ..DurabilityStats::default()
                },
                overload: OverloadStats {
                    updates_shed: 17,
                    deadline_partials: 2,
                    ..OverloadStats::default()
                },
                ..FlowStats::default()
            },
            stream: StreamStats {
                edges_inserted: 2,
                edges_deleted: 1,
                batches: 5,
                updates_quarantined: 2,
                ..StreamStats::default()
            },
            symmetrize: false,
            vertex_limit: 1 << 20,
            last_batch_time: 5,
            next_wal_seq: 6,
        }
    }

    #[test]
    fn checkpoint_codec_round_trip() {
        let c = sample_checkpoint();
        let bytes = encode_checkpoint(&c).unwrap();
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(c, back);
    }

    /// Re-encode `c` exactly as the version-1 (flat 25-field) writer
    /// did, byte for byte, so the legacy decode path is pinned against
    /// the historical layout rather than against this build's encoder.
    fn encode_checkpoint_v1(c: &Checkpoint) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&1u16.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved
        out.push(c.symmetrize as u8);
        out.extend_from_slice(&c.vertex_limit.to_le_bytes());
        out.extend_from_slice(&c.last_batch_time.to_le_bytes());
        out.extend_from_slice(&c.next_wal_seq.to_le_bytes());
        let mut graph_buf = Vec::new();
        gio::write_dynamic(&c.graph, &mut graph_buf).unwrap();
        out.extend_from_slice(&(graph_buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&graph_buf);
        let mut props_buf = Vec::new();
        gio::write_props(&c.props, &mut props_buf).unwrap();
        out.extend_from_slice(&(props_buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&props_buf);
        let (i, a) = (&c.flow.ingest, &c.flow.analytics);
        let (sn, d, o) = (&c.flow.snapshots, &c.flow.durability, &c.flow.overload);
        let flat = [
            i.records_ingested,
            i.entities_created,
            a.batch_runs,
            a.seeds_selected,
            a.subgraphs_extracted,
            a.vertices_extracted,
            a.edges_extracted,
            a.props_written_back,
            a.globals_produced,
            a.alerts_raised,
            i.updates_applied,
            i.updates_quarantined,
            i.events_observed,
            i.triggers_fired,
            a.kernel_cpu_ops,
            a.kernel_mem_bytes,
            a.kernel_edges_touched,
            sn.rebuilds,
            sn.rows_reused,
            sn.mem_bytes,
            o.updates_shed,
            o.deadline_partials,
            o.analytics_skipped,
            d.retries,
            d.breaker_trips,
        ];
        push_group(&mut out, &flat);
        push_stream_stats(&mut out, &c.stream);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    #[test]
    fn legacy_v1_checkpoint_decodes_into_grouped_stats() {
        let c = sample_checkpoint();
        let v1 = encode_checkpoint_v1(&c);
        let v2 = encode_checkpoint(&c).unwrap();
        assert_ne!(v1, v2, "v2 must actually change the wire format");
        let back = decode_checkpoint(&v1).unwrap();
        assert_eq!(back, c, "v1 flat fields must land in the right groups");
        assert_eq!(back.flow.ingest.updates_applied, 40);
        assert_eq!(back.flow.snapshots.mem_bytes, 1234);
        assert_eq!(back.flow.durability.retries, 4);
        assert_eq!(back.flow.overload.updates_shed, 17);
    }

    #[test]
    fn checkpoint_codec_rejects_any_truncation_or_bitflip() {
        let bytes = encode_checkpoint(&sample_checkpoint()).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode_checkpoint(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        for i in (0..bytes.len()).step_by(17) {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x40;
            assert!(decode_checkpoint(&flipped).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn create_then_recover_with_wal_suffix() {
        let _g = LOCK.lock().unwrap();
        faults::clear_all();
        let dir = tmpdir("basic");
        let init = Checkpoint {
            graph: DynamicGraph::new(4),
            props: PropertyStore::new(4),
            flow: FlowStats::default(),
            stream: StreamStats::default(),
            symmetrize: true,
            vertex_limit: 1 << 20,
            last_batch_time: 0,
            next_wal_seq: 1,
        };
        let mut d = Durability::create(&dir, &init).unwrap();
        // Double-create is refused.
        assert!(Durability::create(&dir, &init).is_err());
        let batches = into_batches(rmat_edge_stream(4, 30, 0.1, 3), 10, 1);
        for b in &batches {
            d.append(b).unwrap();
        }
        drop(d);
        let (d2, ckpt, replay) = Durability::recover(&dir).unwrap();
        assert_eq!(ckpt, init);
        assert_eq!(replay.len(), 3);
        assert_eq!(replay[0].0, 1);
        assert_eq!(replay[0].1.updates, batches[0].updates);
        assert_eq!(d2.next_wal_seq(), 4);
    }

    #[test]
    fn torn_checkpoint_falls_back_to_previous() {
        let _g = LOCK.lock().unwrap();
        faults::clear_all();
        let dir = tmpdir("torn_ckpt");
        let mut c = sample_checkpoint();
        c.next_wal_seq = 1;
        let mut d = Durability::create(&dir, &c).unwrap();
        let batch = UpdateBatch {
            time: 9,
            updates: vec![Update::EdgeInsert {
                src: 0,
                dst: 3,
                weight: 1.0,
            }],
        };
        d.append(&batch).unwrap();
        // Second checkpoint is torn at the final path.
        faults::arm("checkpoint.write", faults::FaultMode::ShortWrite(40));
        let mut c2 = c.clone();
        c2.next_wal_seq = 2;
        assert!(d.checkpoint(&c2).is_err());
        faults::clear_all();
        drop(d);
        // Recovery skips the torn file, lands on checkpoint 1, and the
        // WAL suffix still has the batch.
        let (_, ckpt, replay) = Durability::recover(&dir).unwrap();
        assert_eq!(ckpt.next_wal_seq, 1);
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].1.updates, batch.updates);
    }

    #[test]
    fn retention_keeps_fallback_replayable() {
        let _g = LOCK.lock().unwrap();
        faults::clear_all();
        let dir = tmpdir("retention");
        let mut c = sample_checkpoint();
        c.next_wal_seq = 1;
        let mut d = Durability::create(&dir, &c).unwrap();
        let batches = into_batches(rmat_edge_stream(4, 40, 0.0, 5), 10, 10);
        for (i, b) in batches.iter().enumerate() {
            d.append(b).unwrap();
            let mut ci = c.clone();
            ci.next_wal_seq = i as u64 + 2;
            d.checkpoint(&ci).unwrap();
        }
        let ckpts = list_numbered(&dir, "ckpt-", ".gac").unwrap();
        assert_eq!(ckpts.len(), CHECKPOINTS_RETAINED);
        // The newest checkpoint fails to load -> fallback to the older
        // one, whose replay frames must still exist.
        faults::arm("checkpoint.load", faults::FaultMode::FailOnce);
        let (_, ckpt, replay) = Durability::recover(&dir).unwrap();
        faults::clear_all();
        assert_eq!(ckpt.next_wal_seq, batches.len() as u64);
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].1.updates, batches.last().unwrap().updates);
    }
}
