//! # ga-core — the paper's primary contribution
//!
//! Four pieces, one per headline artifact of Kogge's *"Graph Analytics:
//! Complexity, Scalability, and Architectures"* (IPDPSW 2017):
//!
//! * [`taxonomy`] — **Fig. 1**: the machine-readable registry of graph
//!   kernels × kernel classes × benchmark suites × output classes, with
//!   batch/streaming annotations, rendered as the paper's table and
//!   cross-linked to the implementing modules in this workspace.
//! * [`flow`] — **Fig. 2**: the canonical batch + streaming processing
//!   flow — persistent property graph, dedup ingest, selection criteria,
//!   seeds, subgraph extraction with projection, batch analytics,
//!   property write-back, alerts, and streaming triggers — with the
//!   explicit instrumentation the paper's conclusion calls for ("a
//!   reference implementation, with explicit instrumentation, of a
//!   combined benchmark").
//! * [`calibrate`] — the conclusion's proposal: turn the flow engine's
//!   measured `FlowStats` into a demand table the model can price.
//! * [`durability`] + [`faults`] — crash-consistency for the flow
//!   engine: write-ahead logging, CRC-checked checkpoints, recovery
//!   with torn-tail tolerance, and the deterministic fault-injection
//!   matrix the crash-recovery suite drives.
//! * [`dedup`] + [`nora`] — the motivating application (§III–IV): a
//!   synthetic stand-in for the LexisNexis insurance NORA pipeline —
//!   record dedup/linkage, the person–address graph, the "shared an
//!   address 2+ times, especially with a shared last name" relationship
//!   search, batch ("weekly boil") and streaming (live quote) forms.
//! * [`serve`] — the concurrent query-serving front end: classed,
//!   quota'd [`serve::QueryClient`]s run [`ga_stream::Query`]s against
//!   the epoch snapshots the flow engine publishes, with per-class
//!   latency digests (the §V-B "tens of microseconds" point-query
//!   workload, made concurrent).
//! * [`sharded`] — scale-out: the property graph hash-partitioned
//!   across N shard-local flow engines with ghost (halo) edges,
//!   scatter-gather batch analytics whose merged results are
//!   bit-identical for any shard count, shard-local recovery, and a
//!   measured cross-shard traffic model (the §V network-bound
//!   scale-out argument, made testable).
//! * [`model`] — **Figs. 3 & 6**: the four-resource (CPU, memory, disk,
//!   network) parameterized performance model of the 9-step NORA
//!   pipeline, with the paper's system configurations (2012 baseline,
//!   per-resource upgrades, Lightweight, X-Caliber two-level memory,
//!   3D-stack-only, Emu 1/2/3) and bounding-resource evaluation.

#![warn(missing_docs)]

pub mod calibrate;
pub mod dedup;
pub mod durability;
pub mod faults;
pub mod flow;
pub mod model;
pub mod nora;
pub mod retry;
pub mod serve;
pub mod sharded;
pub mod taxonomy;
