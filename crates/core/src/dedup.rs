//! Record deduplication / linkage — the ingest stage of Fig. 2.
//!
//! §III: "these graphs are initially created via some large batch
//! processing dedup processes that 'clean up' multiple data sets by
//! checking spelling, removing duplicates (*post-process deduping*),
//! identifying faulty or missing values... In a streaming form called
//! *in-line deduping*, once established, updates will be from streams of
//! incoming data."
//!
//! Implemented as the classic blocking + pairwise-similarity + union
//! pipeline (Christen 2012; Elmagarmid 2007 — the paper's refs \[15\],
//! \[17\]):
//!
//! 1. **generate** noisy person records with planted duplicates
//!    ([`generate_records`] keeps ground truth for scoring),
//! 2. **block** on a phonetic-ish key so only plausible pairs compare,
//! 3. **match** pairs by weighted field similarity (normalized
//!    Levenshtein),
//! 4. **merge** matches with union-find → entity clusters
//!    ([`dedup_batch`]),
//! 5. or, for streaming arrivals, match one record against its block's
//!    cluster representatives ([`InlineDeduper`]).

use ga_kernels::UnionFind;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// One raw (possibly duplicated, possibly corrupted) input record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawRecord {
    /// Record id (position in the input).
    pub id: u32,
    /// Given name.
    pub first: String,
    /// Family name.
    pub last: String,
    /// Street address string.
    pub address: String,
    /// Birth year.
    pub birth_year: u16,
    /// Ground-truth entity this record refers to (not used by the
    /// deduper; only for scoring).
    pub truth_entity: u32,
}

const FIRST_NAMES: &[&str] = &[
    "james",
    "mary",
    "robert",
    "patricia",
    "john",
    "jennifer",
    "michael",
    "linda",
    "david",
    "elizabeth",
    "william",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "karen",
];
const LAST_NAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
];
const STREETS: &[&str] = &[
    "oak st",
    "maple ave",
    "cedar ln",
    "pine rd",
    "elm dr",
    "birch ct",
    "walnut blvd",
    "chestnut way",
    "spruce ter",
    "willow pl",
];

/// Generate `num_records` noisy records describing `num_entities`
/// distinct people: each extra record duplicates a random entity with
/// typo probability `typo_rate` per field.
pub fn generate_records(
    num_entities: usize,
    num_records: usize,
    typo_rate: f64,
    seed: u64,
) -> Vec<RawRecord> {
    assert!(num_records >= num_entities);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Each true entity has clean field values.
    let entities: Vec<(String, String, String, u16)> = (0..num_entities)
        .map(|i| {
            (
                FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_string(),
                LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())].to_string(),
                format!(
                    "{} {} #{i}",
                    rng.gen_range(1..999),
                    STREETS[rng.gen_range(0..STREETS.len())]
                ),
                1930 + rng.gen_range(0..70) as u16,
            )
        })
        .collect();
    let mut records = Vec::with_capacity(num_records);
    for id in 0..num_records {
        // First pass covers every entity once; extras duplicate randomly.
        let e = if id < num_entities {
            id
        } else {
            rng.gen_range(0..num_entities)
        };
        let (f, l, a, y) = &entities[e];
        let mut corrupt = |s: &str| -> String {
            if rng.gen::<f64>() < typo_rate {
                typo(s, &mut rng)
            } else {
                s.to_string()
            }
        };
        records.push(RawRecord {
            id: id as u32,
            first: corrupt(f),
            last: corrupt(l),
            address: corrupt(a),
            birth_year: *y,
            truth_entity: e as u32,
        });
    }
    records
}

fn typo(s: &str, rng: &mut impl Rng) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_string();
    }
    match rng.gen_range(0..3) {
        0 => {
            // transpose two adjacent characters
            let i = rng.gen_range(0..chars.len() - 1);
            chars.swap(i, i + 1);
        }
        1 => {
            // drop a character
            let i = rng.gen_range(0..chars.len());
            chars.remove(i);
        }
        _ => {
            // duplicate a character
            let i = rng.gen_range(0..chars.len());
            let c = chars[i];
            chars.insert(i, c);
        }
    }
    chars.into_iter().collect()
}

/// Normalized Levenshtein similarity in [0, 1].
pub fn similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let (la, lb) = (a.chars().count(), b.chars().count());
    if la == 0 || lb == 0 {
        return 0.0;
    }
    let bv: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=lb).collect();
    let mut cur = vec![0usize; lb + 1];
    for (i, ca) in a.chars().enumerate() {
        cur[0] = i + 1;
        for j in 0..lb {
            let cost = usize::from(ca != bv[j]);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    1.0 - prev[lb] as f64 / la.max(lb) as f64
}

/// Blocking key: first two letters of the last name + birth decade.
/// Cheap, high-recall: typo'd duplicates usually share it.
pub fn block_key(r: &RawRecord) -> String {
    let prefix: String = r.last.chars().take(2).collect();
    format!("{}:{}", prefix, r.birth_year / 10)
}

/// Weighted field similarity of two records.
pub fn record_similarity(a: &RawRecord, b: &RawRecord) -> f64 {
    0.3 * similarity(&a.first, &b.first)
        + 0.3 * similarity(&a.last, &b.last)
        + 0.3 * similarity(&a.address, &b.address)
        + 0.1 * f64::from(a.birth_year == b.birth_year)
}

/// Result of a dedup pass.
#[derive(Clone, Debug)]
pub struct DedupResult {
    /// `entity_of[record_id]` = dense entity id.
    pub entity_of: Vec<u32>,
    /// Number of entities found.
    pub num_entities: usize,
    /// Pairwise comparisons performed (instrumentation — this is the
    /// compute demand the NORA model's "dedup/link" step prices).
    pub comparisons: usize,
}

impl DedupResult {
    /// Pairwise precision/recall against ground truth.
    pub fn score(&self, records: &[RawRecord]) -> (f64, f64) {
        let n = records.len();
        let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
        for i in 0..n {
            for j in (i + 1)..n {
                let same_found = self.entity_of[i] == self.entity_of[j];
                let same_truth = records[i].truth_entity == records[j].truth_entity;
                match (same_found, same_truth) {
                    (true, true) => tp += 1,
                    (true, false) => fp += 1,
                    (false, true) => fn_ += 1,
                    _ => {}
                }
            }
        }
        let precision = if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        (precision, recall)
    }
}

/// Post-process (batch) dedup: block, compare within blocks, union
/// matches above `threshold`.
pub fn dedup_batch(records: &[RawRecord], threshold: f64) -> DedupResult {
    let mut blocks: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        blocks.entry(block_key(r)).or_default().push(i);
    }
    let mut uf = UnionFind::new(records.len());
    let mut comparisons = 0;
    for members in blocks.values() {
        for (x, &i) in members.iter().enumerate() {
            for &j in &members[x + 1..] {
                comparisons += 1;
                if record_similarity(&records[i], &records[j]) >= threshold {
                    uf.union(i as u32, j as u32);
                }
            }
        }
    }
    let labels = uf.labels();
    // Densify entity ids.
    let mut dense: HashMap<u32, u32> = HashMap::new();
    let mut entity_of = Vec::with_capacity(records.len());
    for l in labels {
        let next = dense.len() as u32;
        entity_of.push(*dense.entry(l).or_insert(next));
    }
    DedupResult {
        num_entities: dense.len(),
        entity_of,
        comparisons,
    }
}

/// In-line (streaming) deduper: each arriving record is compared to the
/// representatives of its block and either joins an existing entity or
/// founds a new one.
pub struct InlineDeduper {
    threshold: f64,
    /// block key -> list of (entity id, representative record).
    blocks: HashMap<String, Vec<(u32, RawRecord)>>,
    next_entity: u32,
    /// Comparisons performed (instrumentation).
    pub comparisons: usize,
}

impl InlineDeduper {
    /// Deduper with the given match threshold.
    pub fn new(threshold: f64) -> Self {
        InlineDeduper {
            threshold,
            blocks: HashMap::new(),
            next_entity: 0,
            comparisons: 0,
        }
    }

    /// Entities founded so far.
    pub fn num_entities(&self) -> usize {
        self.next_entity as usize
    }

    /// Process one arriving record; returns its entity id.
    pub fn ingest(&mut self, r: &RawRecord) -> u32 {
        let key = block_key(r);
        let bucket = self.blocks.entry(key).or_default();
        let mut best: Option<(u32, f64)> = None;
        for (entity, repr) in bucket.iter() {
            self.comparisons += 1;
            let s = record_similarity(r, repr);
            if s >= self.threshold && best.is_none_or(|(_, bs)| s > bs) {
                best = Some((*entity, s));
            }
        }
        match best {
            Some((entity, _)) => entity,
            None => {
                let entity = self.next_entity;
                self.next_entity += 1;
                bucket.push((entity, r.clone()));
                entity
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similarity_basics() {
        assert_eq!(similarity("smith", "smith"), 1.0);
        assert!(similarity("smith", "smyth") >= 0.8);
        assert!(similarity("smith", "garcia") < 0.4);
        assert_eq!(similarity("", "abc"), 0.0);
    }

    #[test]
    fn generator_covers_entities_and_is_deterministic() {
        let a = generate_records(50, 200, 0.2, 1);
        let b = generate_records(50, 200, 0.2, 1);
        assert_eq!(a, b);
        let mut seen: Vec<u32> = a.iter().map(|r| r.truth_entity).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 50);
    }

    #[test]
    fn batch_dedup_recovers_entities() {
        let records = generate_records(60, 300, 0.15, 7);
        let result = dedup_batch(&records, 0.78);
        let (precision, recall) = result.score(&records);
        assert!(precision > 0.95, "precision {precision}");
        assert!(recall > 0.8, "recall {recall}");
        // Entity count in the right ballpark.
        assert!(
            (40..=90).contains(&result.num_entities),
            "entities {}",
            result.num_entities
        );
        assert!(result.comparisons > 0);
    }

    #[test]
    fn clean_duplicates_merge_exactly() {
        // No typos: dedup should find exactly the true entities.
        let records = generate_records(30, 120, 0.0, 3);
        let result = dedup_batch(&records, 0.9);
        let (precision, recall) = result.score(&records);
        assert!(precision > 0.98, "precision {precision}");
        assert_eq!(recall, 1.0);
    }

    #[test]
    fn blocking_limits_comparisons() {
        let records = generate_records(100, 400, 0.1, 5);
        let result = dedup_batch(&records, 0.8);
        let all_pairs = 400 * 399 / 2;
        assert!(
            result.comparisons < all_pairs / 3,
            "blocking didn't prune: {} of {all_pairs}",
            result.comparisons
        );
    }

    #[test]
    fn inline_matches_batch_entity_count_approximately() {
        let records = generate_records(40, 200, 0.1, 9);
        let batch = dedup_batch(&records, 0.78);
        let mut inline = InlineDeduper::new(0.78);
        for r in &records {
            inline.ingest(r);
        }
        let (b, i) = (batch.num_entities as f64, inline.num_entities() as f64);
        assert!((i - b).abs() / b < 0.35, "inline {i} vs batch {b} entities");
    }

    #[test]
    fn inline_duplicate_joins_existing_entity() {
        let mut d = InlineDeduper::new(0.8);
        let r1 = RawRecord {
            id: 0,
            first: "james".into(),
            last: "smith".into(),
            address: "12 oak st".into(),
            birth_year: 1960,
            truth_entity: 0,
        };
        let mut r2 = r1.clone();
        r2.id = 1;
        r2.first = "jmaes".into(); // transposition typo
        let e1 = d.ingest(&r1);
        let e2 = d.ingest(&r2);
        assert_eq!(e1, e2);
        let r3 = RawRecord {
            id: 2,
            first: "linda".into(),
            last: "smithers".into(),
            address: "99 pine rd".into(),
            birth_year: 1965,
            truth_entity: 1,
        };
        assert_ne!(d.ingest(&r3), e1);
    }
}
