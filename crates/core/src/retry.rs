//! Retry with capped exponential backoff, deterministic seeded jitter,
//! and a circuit breaker for the durability path.
//!
//! The paper's flow (Fig. 2) assumes storage that occasionally hiccups:
//! a WAL append or checkpoint write can fail transiently without the
//! analytics pipeline being wrong — only *late*. The right response is
//! bounded retry, and when the fault turns out not to be transient, a
//! breaker that converts "fail every batch forever" into one explicit
//! mode change (durability suspended, alert raised) instead of an
//! unbounded error stream.
//!
//! Jitter is *seeded*, not sampled from the OS: `delay(attempt)` is a
//! pure function of `(policy, attempt)`, so two runs with the same seed
//! wait exactly as long — the crash-recovery matrix stays reproducible
//! even with retries in the loop.

use std::time::Duration;

/// Capped exponential backoff with deterministic jitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail immediately).
    pub max_retries: u32,
    /// Delay floor: every delay is at least this.
    pub base: Duration,
    /// Delay ceiling: every delay is at most this.
    pub cap: Duration,
    /// Jitter seed; same seed → same delay sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
            seed: 0,
        }
    }
}

/// SplitMix64 — tiny, seedable, and good enough for jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// A policy that never retries (the PR 2 fail-fast behaviour).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// A policy retrying `max_retries` times with the default 1→50 ms
    /// window and the given jitter seed.
    pub fn retries(max_retries: u32, seed: u64) -> Self {
        RetryPolicy {
            max_retries,
            seed,
            ..RetryPolicy::default()
        }
    }

    /// Deterministic jittered delay before retry number `attempt`
    /// (0-based). Always within `[base, cap]`:
    ///
    /// ```text
    /// exp(attempt)  = min(cap, base * 2^attempt)
    /// delay(attempt) = base + (exp - base) * frac
    /// ```
    ///
    /// where `frac ∈ [0, 1]` comes from `splitmix64(seed ^ attempt)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let base = self.base.min(self.cap);
        let cap = self.cap.max(self.base);
        let exp_nanos = (base.as_nanos() as u64)
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(cap.as_nanos() as u64);
        let span = exp_nanos - base.as_nanos() as u64;
        // 53 random bits → an f64 fraction in [0, 1).
        let frac = (splitmix64(self.seed ^ attempt as u64) >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_nanos(base.as_nanos() as u64 + (span as f64 * frac) as u64)
    }
}

/// Consecutive-failure circuit breaker.
///
/// Counts *exhausted-retry* failures (not individual attempts). After
/// `threshold` consecutive failures the breaker trips open; a success
/// while still closed resets the count. The owner decides what "open"
/// means — the flow engine suspends durable writes and raises an alert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitBreaker {
    threshold: u32,
    consecutive_failures: u32,
    open: bool,
}

impl CircuitBreaker {
    /// Closed breaker tripping after `threshold` consecutive failures
    /// (min 1).
    pub fn new(threshold: u32) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            consecutive_failures: 0,
            open: false,
        }
    }

    /// True once tripped.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Record an exhausted-retry failure; returns `true` exactly when
    /// this failure trips the breaker open.
    pub fn record_failure(&mut self) -> bool {
        if self.open {
            return false;
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.threshold {
            self.open = true;
            return true;
        }
        false
    }

    /// Record a success: resets the failure streak (no effect once
    /// open — reopening is an explicit operator action via
    /// [`Self::reset`]).
    pub fn record_success(&mut self) {
        if !self.open {
            self.consecutive_failures = 0;
        }
    }

    /// Close the breaker and clear the streak (operator "the disk is
    /// back" action).
    pub fn reset(&mut self) {
        self.open = false;
        self.consecutive_failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_stay_within_base_and_cap() {
        for seed in 0..50u64 {
            let p = RetryPolicy {
                max_retries: 10,
                base: Duration::from_millis(2),
                cap: Duration::from_millis(40),
                seed,
            };
            for attempt in 0..12 {
                let d = p.delay(attempt);
                assert!(d >= p.base, "seed {seed} attempt {attempt}: {d:?}");
                assert!(d <= p.cap, "seed {seed} attempt {attempt}: {d:?}");
            }
        }
    }

    #[test]
    fn delays_are_deterministic_per_seed() {
        let p = RetryPolicy::retries(5, 42);
        let a: Vec<Duration> = (0..6).map(|i| p.delay(i)).collect();
        let b: Vec<Duration> = (0..6).map(|i| p.delay(i)).collect();
        assert_eq!(a, b);
        let q = RetryPolicy::retries(5, 43);
        assert_ne!(a, (0..6).map(|i| q.delay(i)).collect::<Vec<_>>());
    }

    #[test]
    fn exponential_envelope_grows_until_cap() {
        let p = RetryPolicy {
            max_retries: 10,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(64),
            seed: 0,
        };
        // The envelope upper bound min(cap, base * 2^a) is monotone; at
        // a = 6 and beyond it is pinned at the cap, so huge attempt
        // numbers (and shift overflow) are safe.
        assert!(p.delay(64) <= p.cap);
        assert!(p.delay(u32::MAX) <= p.cap);
    }

    #[test]
    fn degenerate_window_collapses_to_base() {
        let p = RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(5),
            seed: 9,
        };
        for a in 0..5 {
            assert_eq!(p.delay(a), Duration::from_millis(5));
        }
    }

    #[test]
    fn breaker_trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        b.record_success(); // streak broken
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure()); // third consecutive → trips, once
        assert!(b.is_open());
        assert!(!b.record_failure()); // already open: no re-trip
        b.record_success(); // no effect while open
        assert!(b.is_open());
        b.reset();
        assert!(!b.is_open());
        assert!(!b.record_failure());
    }
}
