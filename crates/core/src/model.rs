//! The four-resource parameterized performance model (Figs. 3 & 6).
//!
//! §IV: "a model of the multi-step algorithm was built to estimate four
//! different system parameters as a function of problem size: required
//! compute cycles, disk bandwidth, network bandwidth, and memory access
//! rate." Each pipeline step demands some amount of each resource; a
//! system configuration supplies aggregate rates; per step "the highest
//! bar represents the bounding execution time for that step. The total
//! time is computed from these peaks."
//!
//! The demand table below is calibrated so the paper's qualitative
//! findings hold (and the quantitative ones land close — the paper's
//! own numbers come from an unpublished 2013 model, so shape is the
//! reproduction target):
//!
//! * on the 2012 baseline, **disk and network are the tall poles**;
//! * upgrading the **processor platform alone** (cores + clock + the
//!   memory system that comes with a new socket) gives ~1.35–1.45×;
//! * upgrading **everything but the processor** gives **over 3×** —
//!   far more than the product of the individual upgrades;
//! * upgrading **everything** gives **~8–13×**;
//! * **Lightweight** (ARM, 2 racks) lands near baseline performance in
//!   1/5 the hardware, with compute binding ≥4 of the 9 steps;
//! * **X-Caliber** (two-level memory, 3 racks) lands near baseline;
//! * **3D-stack-only** (1 rack) lands at ~100–300×;
//! * **Emu3** lands at tens-of-× the best conventional upgrade.

/// The four modeled resources.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Instruction processing rate.
    Cpu,
    /// Memory access bandwidth.
    Memory,
    /// Disk (or near-memory NVM) bandwidth.
    Disk,
    /// Network injection bandwidth.
    Network,
}

impl Resource {
    /// All four, in display order.
    pub const ALL: [Resource; 4] = [
        Resource::Cpu,
        Resource::Memory,
        Resource::Disk,
        Resource::Network,
    ];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Resource::Cpu => "cpu",
            Resource::Memory => "mem",
            Resource::Disk => "disk",
            Resource::Network => "net",
        }
    }
}

/// One pipeline step's total demand, expressed in resource units for
/// the reference problem size (ops for CPU, bytes for the rest).
#[derive(Clone, Copy, Debug)]
pub struct StepDemand {
    /// Step name.
    pub name: &'static str,
    /// CPU operations.
    pub cpu_ops: f64,
    /// Memory bytes touched.
    pub mem_bytes: f64,
    /// Disk bytes moved.
    pub disk_bytes: f64,
    /// Network bytes injected.
    pub net_bytes: f64,
}

impl StepDemand {
    /// Demand of one resource.
    pub fn of(&self, r: Resource) -> f64 {
        match r {
            Resource::Cpu => self.cpu_ops,
            Resource::Memory => self.mem_bytes,
            Resource::Disk => self.disk_bytes,
            Resource::Network => self.net_bytes,
        }
    }

    /// Scale all demands by a problem-size factor.
    pub fn scaled(&self, factor: f64) -> StepDemand {
        StepDemand {
            name: self.name,
            cpu_ops: self.cpu_ops * factor,
            mem_bytes: self.mem_bytes * factor,
            disk_bytes: self.disk_bytes * factor,
            net_bytes: self.net_bytes * factor,
        }
    }
}

/// A system configuration: per-node resource rates × node count, plus
/// efficiency factors for irregular access (the lever the §V machines
/// pull: migrating threads and streaming sparse pipelines waste far
/// fewer of their raw bytes than cache-line/packet-header machines).
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Display name.
    pub name: &'static str,
    /// Rack count (the x-axis of Fig. 6).
    pub racks: f64,
    /// Nodes per rack.
    pub nodes_per_rack: f64,
    /// Per-node CPU rate (ops/s).
    pub cpu_ops_per_node: f64,
    /// Per-node memory bandwidth (B/s).
    pub mem_bw_per_node: f64,
    /// Per-node disk bandwidth (B/s).
    pub disk_bw_per_node: f64,
    /// Per-node network injection bandwidth (B/s).
    pub net_bw_per_node: f64,
    /// Effective instruction-throughput multiplier on irregular graph
    /// work, relative to the conventional baseline. Conventional cores
    /// stall on memory for pointer-chasing codes (the baseline's
    /// delivered rate already embeds that); architectures that hide all
    /// memory latency with massive hardware multithreading (Emu's 256
    /// threads per nodelet, PIM stacks) deliver a large multiple of a
    /// stalled core's effective rate.
    pub irregular_cpu_eff: f64,
    /// Useful fraction of memory bandwidth on irregular access,
    /// *relative to the cache-line baseline* (which is defined as 1.0).
    /// Word-granular machines (PIM stacks, nodelet channels) exceed 1
    /// because the baseline wastes most of each 64-byte line on random
    /// 8-byte accesses.
    pub irregular_mem_eff: f64,
    /// Useful fraction of network bandwidth on fine-grained
    /// communication, relative to the request/response baseline
    /// (migrating threads ≈ 2× from one-way packets).
    pub irregular_net_eff: f64,
}

impl SystemConfig {
    /// Aggregate effective rate of a resource.
    pub fn rate(&self, r: Resource) -> f64 {
        let nodes = self.racks * self.nodes_per_rack;
        match r {
            Resource::Cpu => self.cpu_ops_per_node * self.irregular_cpu_eff * nodes,
            Resource::Memory => self.mem_bw_per_node * self.irregular_mem_eff * nodes,
            Resource::Disk => self.disk_bw_per_node * nodes,
            Resource::Network => self.net_bw_per_node * self.irregular_net_eff * nodes,
        }
    }

    /// Copy with a different rack count (Fig. 6's size sweep).
    pub fn with_racks(&self, racks: f64) -> SystemConfig {
        SystemConfig {
            racks,
            ..self.clone()
        }
    }
}

/// Per-step evaluation result.
#[derive(Clone, Debug)]
pub struct StepTime {
    /// Step name.
    pub name: &'static str,
    /// Seconds each resource would need, in [`Resource::ALL`] order.
    pub resource_seconds: [f64; 4],
    /// The bounding resource.
    pub bounding: Resource,
    /// The step's execution time (the peak).
    pub seconds: f64,
}

/// Whole-pipeline evaluation.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Configuration name.
    pub config: &'static str,
    /// Per-step results.
    pub steps: Vec<StepTime>,
    /// Sum of step peaks.
    pub total_seconds: f64,
}

impl Evaluation {
    /// Steps bounded by `r`.
    pub fn steps_bound_by(&self, r: Resource) -> usize {
        self.steps.iter().filter(|s| s.bounding == r).count()
    }

    /// Total seconds attributable to steps bounded by `r`.
    pub fn seconds_bound_by(&self, r: Resource) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.bounding == r)
            .map(|s| s.seconds)
            .sum()
    }

    /// Performance relative to another evaluation (their time / ours).
    pub fn speedup_over(&self, other: &Evaluation) -> f64 {
        other.total_seconds / self.total_seconds
    }
}

/// Evaluate a demand table on a configuration.
pub fn evaluate(config: &SystemConfig, steps: &[StepDemand]) -> Evaluation {
    let step_times: Vec<StepTime> = steps
        .iter()
        .map(|d| {
            let mut rs = [0.0f64; 4];
            let mut bounding = Resource::Cpu;
            let mut peak = 0.0;
            for (i, r) in Resource::ALL.iter().enumerate() {
                rs[i] = d.of(*r) / config.rate(*r);
                if rs[i] > peak {
                    peak = rs[i];
                    bounding = *r;
                }
            }
            StepTime {
                name: d.name,
                resource_seconds: rs,
                bounding,
                seconds: peak,
            }
        })
        .collect();
    let total = step_times.iter().map(|s| s.seconds).sum();
    Evaluation {
        config: config.name,
        steps: step_times,
        total_seconds: total,
    }
}

// ---------------------------------------------------------------------
// The NORA pipeline demand table.
//
// Calibrated in *hours on the 2012 baseline* (400 blades): each entry
// below was chosen as hours-per-resource, then converted to absolute
// units via the baseline aggregate rates, so `evaluate(baseline2012())`
// reproduces the planned per-step bar chart exactly. The "weekly boil"
// lands at ~83 hours — a weekend-plus, matching §III's "once a week this
// data set is boiled (over the weekend)".
// ---------------------------------------------------------------------

const HOUR: f64 = 3600.0;
// Baseline aggregate rates (400 nodes; see `baseline2012`).
const BASE_CPU: f64 = 28.8e9 * 400.0;
const BASE_MEM: f64 = 50e9 * 400.0;
const BASE_DISK: f64 = 0.16e9 * 400.0;
const BASE_NET: f64 = 0.1e9 * 400.0;

const fn step(name: &'static str, cpu_h: f64, mem_h: f64, disk_h: f64, net_h: f64) -> StepDemand {
    StepDemand {
        name,
        cpu_ops: cpu_h * HOUR * BASE_CPU,
        mem_bytes: mem_h * HOUR * BASE_MEM,
        disk_bytes: disk_h * HOUR * BASE_DISK,
        net_bytes: net_h * HOUR * BASE_NET,
    }
}

/// The 9-step NORA pipeline at a `factor`× problem size — "estimate
/// four different system parameters **as a function of problem size**"
/// (§IV). The NORA relationship search grows super-linearly with the
/// record count (candidate pairs per address grow quadratically in
/// address occupancy), which the exponent captures; the data-movement
/// steps scale linearly.
pub fn nora_steps_scaled(factor: f64) -> Vec<StepDemand> {
    assert!(factor > 0.0);
    nora_steps()
        .into_iter()
        .map(|s| {
            if s.name.contains("NORA") {
                // Super-linear relationship mining: ~N^1.3 empirically
                // for skewed address-sharing distributions.
                StepDemand {
                    cpu_ops: s.cpu_ops * factor.powf(1.3),
                    mem_bytes: s.mem_bytes * factor.powf(1.3),
                    ..s.scaled(1.0)
                }
            } else {
                s.scaled(factor)
            }
        })
        .collect()
}

/// The 9-step NORA pipeline (ingest → clean → shuffle → link → join →
/// graph build → NORA search → index → export), with per-step demands
/// in baseline-hours of each resource.
pub fn nora_steps() -> Vec<StepDemand> {
    vec![
        //                         cpu   mem   disk  net
        step("1 ingest raw data ", 0.5, 1.0, 11.0, 6.0),
        step("2 clean / spell   ", 6.5, 0.5, 0.5, 0.2),
        step("3 shuffle / sort  ", 1.0, 2.8, 1.0, 14.0),
        step("4 dedup / link    ", 7.0, 1.0, 0.5, 0.3),
        step("5 join / merge    ", 0.5, 2.8, 15.0, 3.0),
        step("6 graph build     ", 1.5, 8.0, 1.0, 3.0),
        step("7 NORA search     ", 7.5, 2.0, 0.5, 0.3),
        step("8 index build     ", 2.2, 1.0, 9.0, 1.0),
        step("9 export / boil   ", 0.3, 0.5, 4.0, 9.5),
    ]
}

// ---------------------------------------------------------------------
// System configurations (§IV and §V).
// ---------------------------------------------------------------------

/// The 2012 baseline: 10 racks × 40 dual-socket 6-core 2.4 GHz blades,
/// 0.16 GB/s disks, 0.1 GB/s network ports.
pub fn baseline2012() -> SystemConfig {
    SystemConfig {
        name: "Baseline 2012 (10 racks)",
        racks: 10.0,
        nodes_per_rack: 40.0,
        cpu_ops_per_node: 28.8e9, // 12 cores x 2.4 GHz x 1 op/cycle
        mem_bw_per_node: 50e9,
        disk_bw_per_node: 0.16e9,
        net_bw_per_node: 0.1e9,
        irregular_cpu_eff: 1.0,
        irregular_mem_eff: 1.0,
        irregular_net_eff: 1.0,
    }
}

/// Upgrade only the processor platform: 24 cores @ 3 GHz with wider
/// issue (10× ops) and the 3× memory bandwidth a new socket brings.
pub fn cpu_upgrade() -> SystemConfig {
    SystemConfig {
        name: "CPU platform upgrade",
        cpu_ops_per_node: 288e9, // 24 cores x 3 GHz x 4-wide
        mem_bw_per_node: 150e9,
        ..baseline2012()
    }
}

/// Upgrade only memory DIMMs (3×).
pub fn mem_upgrade() -> SystemConfig {
    SystemConfig {
        name: "Memory upgrade only",
        mem_bw_per_node: 150e9,
        ..baseline2012()
    }
}

/// Upgrade only storage to RAM-disk class (3 GB/s).
pub fn disk_upgrade() -> SystemConfig {
    SystemConfig {
        name: "Disk upgrade only (RAMdisk)",
        disk_bw_per_node: 3e9,
        ..baseline2012()
    }
}

/// Upgrade only the network to InfiniBand (24 GB/s injection).
pub fn net_upgrade() -> SystemConfig {
    SystemConfig {
        name: "Network upgrade only (IB)",
        net_bw_per_node: 24e9,
        ..baseline2012()
    }
}

/// Everything except the processor: memory, RAM-disk, InfiniBand.
pub fn all_but_cpu() -> SystemConfig {
    SystemConfig {
        name: "All but CPU",
        mem_bw_per_node: 150e9,
        disk_bw_per_node: 3e9,
        net_bw_per_node: 24e9,
        ..baseline2012()
    }
}

/// Every upgrade at once (the paper's 8×-class configuration).
pub fn all_upgrades() -> SystemConfig {
    SystemConfig {
        name: "All upgrades",
        cpu_ops_per_node: 288e9,
        mem_bw_per_node: 150e9,
        disk_bw_per_node: 3e9,
        net_bw_per_node: 24e9,
        ..baseline2012()
    }
}

/// Lightweight (Moonshot-class ARM): 2 racks of 180 dense low-power
/// nodes; weak cores, flash storage, decent fabric.
pub fn lightweight() -> SystemConfig {
    SystemConfig {
        name: "Lightweight ARM (2 racks)",
        racks: 2.0,
        nodes_per_rack: 180.0,
        cpu_ops_per_node: 11e9, // 8 ARM cores x ~1.4 GHz
        mem_bw_per_node: 25.6e9,
        disk_bw_per_node: 0.4e9,
        net_bw_per_node: 1e9,
        irregular_cpu_eff: 1.0,
        irregular_mem_eff: 1.0,
        irregular_net_eff: 1.0,
    }
}

/// X-Caliber-style two-level memory (3 racks): 3D stacks close-in, so
/// huge memory and near-memory NVM bandwidth; moderate cores.
pub fn xcaliber() -> SystemConfig {
    SystemConfig {
        name: "X-Caliber 2-level memory (3 racks)",
        racks: 3.0,
        nodes_per_rack: 40.0,
        cpu_ops_per_node: 43e9,
        mem_bw_per_node: 600e9,
        disk_bw_per_node: 2e9, // near-memory NVM
        net_bw_per_node: 2.4e9,
        irregular_cpu_eff: 1.0,
        irregular_mem_eff: 1.0,
        irregular_net_eff: 1.0,
    }
}

/// The "sea of memory stacks" (1 rack): all processing at the base of
/// 3D stacks, DRAM + NVM in-package, no separate CPUs or NICs.
pub fn stack_only_3d() -> SystemConfig {
    SystemConfig {
        name: "3D stack-only (1 rack)",
        racks: 1.0,
        nodes_per_rack: 2000.0, // stacks, not blades
        cpu_ops_per_node: 100e9,
        mem_bw_per_node: 320e9,
        disk_bw_per_node: 100e9, // in-stack NVM
        net_bw_per_node: 50e9,   // stack-to-stack links
        irregular_cpu_eff: 8.0,  // near-memory cores never stall on DRAM
        irregular_mem_eff: 4.0,  // word-granular access: no cache-line waste
        irregular_net_eff: 1.0,
    }
}

/// Emu generation 1: the FPGA-based rack-scale design of §V-B.
pub fn emu1() -> SystemConfig {
    SystemConfig {
        name: "Emu1 (FPGA, 1 rack)",
        racks: 1.0,
        nodes_per_rack: 64.0, // nodes of 8 nodelets
        cpu_ops_per_node: 10e9,
        mem_bw_per_node: 80e9,
        disk_bw_per_node: 1e9,
        net_bw_per_node: 10e9,
        irregular_cpu_eff: 20.0, // 256 threads/nodelet hide all latency
        irregular_mem_eff: 4.0,  // word-granular nodelet channels
        irregular_net_eff: 2.0,  // migration: one-way packets, no req/resp
    }
}

/// Emu generation 2: ASIC node (≈10× the FPGA clock/width).
pub fn emu2() -> SystemConfig {
    SystemConfig {
        name: "Emu2 (ASIC, 1 rack)",
        cpu_ops_per_node: 100e9,
        mem_bw_per_node: 200e9,
        disk_bw_per_node: 4e9,
        net_bw_per_node: 40e9,
        ..emu1()
    }
}

/// Emu generation 3: each node a 3D memory stack with dozens of
/// nodelets in-package.
pub fn emu3() -> SystemConfig {
    SystemConfig {
        name: "Emu3 (3D stack, 1 rack)",
        nodes_per_rack: 1024.0, // stacks, dozens of nodelets each
        cpu_ops_per_node: 250e9,
        mem_bw_per_node: 800e9,
        disk_bw_per_node: 50e9,
        net_bw_per_node: 50e9,
        ..emu1()
    }
}

/// Every configuration of Figs. 3 & 6, in presentation order.
pub fn all_configs() -> Vec<SystemConfig> {
    vec![
        baseline2012(),
        cpu_upgrade(),
        mem_upgrade(),
        disk_upgrade(),
        net_upgrade(),
        all_but_cpu(),
        all_upgrades(),
        lightweight(),
        xcaliber(),
        stack_only_3d(),
        emu1(),
        emu2(),
        emu3(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(c: SystemConfig) -> Evaluation {
        evaluate(&c, &nora_steps())
    }

    #[test]
    fn baseline_boils_over_a_long_weekend() {
        let e = eval(baseline2012());
        let hours = e.total_seconds / 3600.0;
        assert!((60.0..110.0).contains(&hours), "boil {hours} h");
    }

    #[test]
    fn baseline_tall_poles_are_disk_and_network() {
        let e = eval(baseline2012());
        let disk = e.seconds_bound_by(Resource::Disk);
        let net = e.seconds_bound_by(Resource::Network);
        let cpu = e.seconds_bound_by(Resource::Cpu);
        let mem = e.seconds_bound_by(Resource::Memory);
        assert!(disk > cpu, "disk {disk} vs cpu {cpu}");
        assert!(
            disk + net > cpu + mem,
            "io {} vs compute {}",
            disk + net,
            cpu + mem
        );
    }

    #[test]
    fn cpu_upgrade_gives_about_45_percent() {
        let s = eval(cpu_upgrade()).speedup_over(&eval(baseline2012()));
        assert!((1.25..1.6).contains(&s), "cpu-only speedup {s}");
    }

    #[test]
    fn all_but_cpu_exceeds_3x_and_product_of_individuals() {
        let base = eval(baseline2012());
        let all_but = eval(all_but_cpu()).speedup_over(&base);
        assert!(all_but > 3.0, "all-but-cpu {all_but}");
        let product = eval(mem_upgrade()).speedup_over(&base)
            * eval(disk_upgrade()).speedup_over(&base)
            * eval(net_upgrade()).speedup_over(&base);
        assert!(
            all_but > product,
            "all-but {all_but} vs product of individuals {product}"
        );
    }

    #[test]
    fn all_upgrades_around_8x() {
        let s = eval(all_upgrades()).speedup_over(&eval(baseline2012()));
        assert!((6.0..14.0).contains(&s), "all-upgrades {s}");
    }

    #[test]
    fn lightweight_near_baseline_in_fifth_the_racks() {
        let lw = lightweight();
        assert_eq!(lw.racks, 2.0);
        let s = eval(lw).speedup_over(&eval(baseline2012()));
        assert!((0.6..1.4).contains(&s), "lightweight {s}");
    }

    #[test]
    fn lightweight_compute_dominates_many_steps() {
        let e = eval(lightweight());
        let cpu_steps = e.steps_bound_by(Resource::Cpu);
        assert!(cpu_steps >= 4, "cpu binds only {cpu_steps} of 9 steps");
    }

    #[test]
    fn xcaliber_near_baseline_in_three_racks() {
        let s = eval(xcaliber()).speedup_over(&eval(baseline2012()));
        assert!((0.7..1.8).contains(&s), "xcaliber {s}");
    }

    #[test]
    fn stack_only_lands_in_the_hundreds() {
        let s = eval(stack_only_3d()).speedup_over(&eval(baseline2012()));
        assert!((100.0..320.0).contains(&s), "3D stack {s}");
    }

    #[test]
    fn emu_generations_monotone_and_emu3_tens_of_x_over_best_conventional() {
        let base = eval(baseline2012());
        let best_conv = eval(all_upgrades());
        let e1 = eval(emu1()).speedup_over(&base);
        let e2 = eval(emu2()).speedup_over(&base);
        let e3 = eval(emu3()).speedup_over(&base);
        assert!(
            e1 < e2 && e2 < e3,
            "generations not monotone: {e1} {e2} {e3}"
        );
        let vs_best = eval(emu3()).speedup_over(&best_conv);
        assert!(
            (20.0..90.0).contains(&vs_best),
            "Emu3 vs best conventional: {vs_best}"
        );
    }

    #[test]
    fn racks_scale_rates_linearly() {
        let b = baseline2012();
        let double = b.with_racks(20.0);
        for r in Resource::ALL {
            assert!((double.rate(r) / b.rate(r) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scaled_demand() {
        let s = nora_steps()[0].scaled(2.0);
        assert_eq!(s.cpu_ops, nora_steps()[0].cpu_ops * 2.0);
    }

    #[test]
    fn problem_size_scaling_shifts_bottlenecks() {
        let small = evaluate(&baseline2012(), &nora_steps_scaled(1.0));
        let big = evaluate(&baseline2012(), &nora_steps_scaled(8.0));
        // More than linear growth overall: the NORA step grows ~8^1.3.
        assert!(big.total_seconds > 8.0 * small.total_seconds);
        // At large scale the relationship search's share increases.
        let share = |e: &Evaluation| {
            e.steps
                .iter()
                .find(|s| s.name.contains("NORA"))
                .unwrap()
                .seconds
                / e.total_seconds
        };
        assert!(share(&big) > share(&small));
    }

    #[test]
    fn scaling_at_one_is_identity() {
        let a = evaluate(&baseline2012(), &nora_steps());
        let b = evaluate(&baseline2012(), &nora_steps_scaled(1.0));
        assert!((a.total_seconds - b.total_seconds).abs() < 1e-6);
    }

    #[test]
    fn evaluation_bookkeeping_consistent() {
        let e = eval(baseline2012());
        let by_resource: f64 = Resource::ALL.iter().map(|&r| e.seconds_bound_by(r)).sum();
        assert!((by_resource - e.total_seconds).abs() < 1e-6);
        assert_eq!(
            Resource::ALL
                .iter()
                .map(|&r| e.steps_bound_by(r))
                .sum::<usize>(),
            9
        );
    }
}
