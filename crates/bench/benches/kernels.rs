//! Criterion benches for the batch kernel suite (Fig. 1 rows) on
//! Graph500-style R-MAT inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ga_graph::{gen, CsrBuilder, CsrGraph};
use ga_kernels::{bc, bfs, cc, jaccard, kcore, pagerank, sssp, triangles, KernelCtx};
use std::hint::black_box;

fn rmat_graph(scale: u32, deg: usize) -> CsrGraph {
    let edges = gen::rmat(scale, deg << scale, gen::RmatParams::GRAPH500, 42);
    CsrBuilder::new(1 << scale)
        .edges(edges.iter().copied())
        .symmetrize(true)
        .dedup(true)
        .drop_self_loops(true)
        .reverse(true)
        .build()
}

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs");
    for scale in [12u32, 14] {
        let g = rmat_graph(scale, 16);
        group.bench_with_input(BenchmarkId::new("top_down", scale), &g, |b, g| {
            b.iter(|| bfs::bfs(black_box(g), 0))
        });
        group.bench_with_input(BenchmarkId::new("direction_opt", scale), &g, |b, g| {
            b.iter(|| bfs::bfs_direction_optimizing(black_box(g), 0, 15))
        });
    }
    group.finish();
}

fn bench_sssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("sssp");
    let scale = 12u32;
    let n = 1usize << scale;
    let edges = gen::with_random_weights(
        &gen::rmat(scale, 16 << scale, gen::RmatParams::GRAPH500, 7),
        0.1,
        2.0,
        8,
    );
    let g = CsrGraph::from_weighted_edges(n, &edges);
    group.bench_function("dijkstra", |b| b.iter(|| sssp::dijkstra(black_box(&g), 0)));
    group.bench_function("delta_stepping", |b| {
        b.iter(|| sssp::delta_stepping(black_box(&g), 0, 0.5))
    });
    group.finish();
}

fn bench_cc(c: &mut Criterion) {
    let mut group = c.benchmark_group("connected_components");
    let g = rmat_graph(14, 16);
    group.bench_function("union_find", |b| {
        b.iter(|| cc::wcc_union_find(black_box(&g)))
    });
    group.bench_function("label_prop", |b| {
        b.iter(|| cc::wcc_label_prop(black_box(&g)))
    });
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("pagerank");
    let g = rmat_graph(13, 16);
    group.bench_function("pull_power", |b| {
        b.iter(|| pagerank::pagerank(black_box(&g), 0.85, 1e-6, 50))
    });
    group.bench_function("delta_push", |b| {
        b.iter(|| pagerank::pagerank_delta(black_box(&g), 0.85, 1e-4))
    });
    group.finish();
}

fn bench_triangles(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangles");
    for scale in [10u32, 12] {
        let g = rmat_graph(scale, 16);
        group.bench_with_input(BenchmarkId::new("count_global", scale), &g, |b, g| {
            b.iter(|| triangles::count_global(black_box(g)))
        });
    }
    group.finish();
}

fn bench_bc(c: &mut Criterion) {
    let mut group = c.benchmark_group("betweenness");
    group.sample_size(10);
    let g = rmat_graph(10, 16);
    group.bench_function("brandes_exact", |b| b.iter(|| bc::brandes(black_box(&g))));
    group.bench_function("sampled_64", |b| {
        b.iter(|| bc::sampled(black_box(&g), 64, 1))
    });
    group.finish();
}

fn bench_jaccard(c: &mut Criterion) {
    let mut group = c.benchmark_group("jaccard");
    let g = rmat_graph(12, 8);
    group.bench_function("all_pairs_tau0.3", |b| {
        b.iter(|| jaccard::all_pairs_above(black_box(&g), 0.3))
    });
    group.bench_function("for_vertex", |b| {
        b.iter(|| jaccard::for_vertex(black_box(&g), 7, 0.1))
    });
    group.finish();
}

/// Serial vs parallel engine on the same input — the speedup points the
/// issue's acceptance criteria read. Scale defaults to 18 (Graph500
/// "toy" class); override with `GA_BENCH_SCALE` (CI smoke uses 10).
fn bench_serial_vs_parallel(c: &mut Criterion) {
    let scale: u32 = std::env::var("GA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(18);
    let g = rmat_graph(scale, 16);
    let wedges = gen::with_random_weights(
        &gen::rmat(scale, 16 << scale, gen::RmatParams::GRAPH500, 7),
        0.1,
        2.0,
        8,
    );
    let wg = CsrGraph::from_weighted_edges(1usize << scale, &wedges);
    let (ser, par) = (KernelCtx::serial(), KernelCtx::parallel());

    let mut group = c.benchmark_group("serial_vs_parallel");
    group.sample_size(10);
    for (mode, ctx) in [("serial", &ser), ("parallel", &par)] {
        group.bench_function(BenchmarkId::new("bfs", mode), |b| {
            b.iter(|| bfs::bfs_with(black_box(&g), 0, ctx))
        });
        group.bench_function(BenchmarkId::new("pagerank", mode), |b| {
            b.iter(|| pagerank::pagerank_with(black_box(&g), 0.85, 1e-6, 20, ctx))
        });
        group.bench_function(BenchmarkId::new("cc", mode), |b| {
            b.iter(|| cc::wcc_with(black_box(&g), ctx))
        });
        group.bench_function(BenchmarkId::new("triangles", mode), |b| {
            b.iter(|| triangles::count_global_with(black_box(&g), ctx))
        });
        group.bench_function(BenchmarkId::new("sssp", mode), |b| {
            b.iter(|| sssp::sssp_with(black_box(&wg), 0, 0.5, ctx))
        });
    }
    group.finish();
}

fn bench_kcore(c: &mut Criterion) {
    let g = rmat_graph(14, 16);
    c.bench_function("kcore_peel_s14", |b| {
        b.iter(|| kcore::core_numbers(black_box(&g)))
    });
}

criterion_group!(
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_bfs, bench_sssp, bench_cc, bench_pagerank, bench_triangles, bench_bc, bench_jaccard, bench_kcore, bench_serial_vs_parallel
);
criterion_main!(benches);
