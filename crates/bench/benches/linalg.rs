//! Criterion benches for the GraphBLAS-style substrate: SpMV, SpGEMM,
//! and the matrix-language kernels vs their direct counterparts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ga_graph::{gen, CsrGraph};
use ga_linalg::algos;
use ga_linalg::ops::{spgemm, spmv};
use ga_linalg::semiring::PlusTimes;
use ga_linalg::{CooMatrix, CsrMatrix};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn random_sparse(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n as u32 {
        for _ in 0..nnz_per_row {
            coo.push(r, rng.gen_range(0..n) as u32, 1.0);
        }
    }
    coo.to_csr(|a, b| a + b)
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    for n in [1usize << 12, 1 << 14] {
        let a = random_sparse(n, 16, 1);
        let x = vec![1.0f64; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, x), |b, (a, x)| {
            b.iter(|| spmv(PlusTimes, black_box(a), black_box(x)))
        });
    }
    group.finish();
}

fn bench_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm");
    group.sample_size(10);
    for &(n, nnz) in &[(2048usize, 8usize), (4096, 8), (4096, 16)] {
        let a = random_sparse(n, nnz, 2);
        let b_m = random_sparse(n, nnz, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{nnz}")),
            &(a, b_m),
            |bch, (a, b_m)| bch.iter(|| spgemm(PlusTimes, black_box(a), black_box(b_m))),
        );
    }
    group.finish();
}

fn bench_matrix_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_vs_direct");
    let scale = 12u32;
    let edges = gen::rmat(scale, 16 << scale, gen::RmatParams::GRAPH500, 4);
    let g = CsrGraph::from_edges_undirected(1 << scale, &edges);
    group.bench_function("bfs_matrix", |b| {
        b.iter(|| algos::bfs_levels(black_box(&g), 0))
    });
    group.bench_function("bfs_direct", |b| {
        b.iter(|| ga_kernels::bfs::bfs(black_box(&g), 0))
    });
    group.sample_size(10);
    group.bench_function("triangles_matrix", |b| {
        b.iter(|| algos::triangle_count(black_box(&g)))
    });
    group.bench_function("triangles_direct", |b| {
        b.iter(|| ga_kernels::triangles::count_global(black_box(&g)))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_spmv, bench_spgemm, bench_matrix_vs_direct
);
criterion_main!(benches);
