//! Criterion benches for the streaming side: update ingestion through
//! incremental monitors, Firehose detector throughput, and experiment
//! E7 — the per-query latency of streaming Jaccard (the paper's §V-B
//! "10s of microseconds" claim, here measured on a real CPU).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ga_stream::engine::StreamEngine;
use ga_stream::firehose::{FixedKeyDetector, TwoLevelDetector, UnboundedKeyDetector};
use ga_stream::jaccard_stream::JaccardQueryEngine;
use ga_stream::tri_inc::IncrementalTriangles;
use ga_stream::update::{firehose_stream, into_batches, rmat_edge_stream, two_level_stream};
use std::hint::black_box;

fn bench_update_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_ingest");
    let updates = rmat_edge_stream(14, 50_000, 0.05, 3);
    group.throughput(Throughput::Elements(updates.len() as u64));
    group.bench_function("plain_apply", |b| {
        b.iter_batched(
            || (StreamEngine::new(1 << 14), updates.clone()),
            |(mut e, ups)| {
                for batch in into_batches(ups, 1000, 0) {
                    e.apply_batch(&batch);
                }
                black_box(e.stats())
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("with_triangle_monitor", |b| {
        b.iter_batched(
            || {
                let mut e = StreamEngine::new(1 << 14);
                e.register(Box::new(IncrementalTriangles::new()));
                (e, updates.clone())
            },
            |(mut e, ups)| {
                for batch in into_batches(ups, 1000, 0) {
                    e.apply_batch(&batch);
                }
                black_box(e.stats())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// E7: single streaming Jaccard query latency on a live RMAT-16 graph.
fn bench_jaccard_query_latency(c: &mut Criterion) {
    let mut engine = StreamEngine::new(1 << 16);
    for batch in into_batches(rmat_edge_stream(16, 400_000, 0.0, 9), 10_000, 0) {
        engine.apply_batch(&batch);
    }
    let g = engine.graph();
    // Mid-degree query targets (hubs are the slow tail).
    let targets: Vec<u32> = (0..g.num_vertices() as u32)
        .filter(|&v| (8..=64).contains(&g.degree(v)))
        .take(64)
        .collect();
    assert!(!targets.is_empty());
    let mut q = JaccardQueryEngine::new(0.1);
    let mut i = 0;
    c.bench_function("jaccard_query_rmat16", |b| {
        b.iter(|| {
            let v = targets[i % targets.len()];
            i += 1;
            black_box(q.query(engine.graph(), v))
        })
    });
}

fn bench_firehose(c: &mut Criterion) {
    let mut group = c.benchmark_group("firehose");
    let packets = firehose_stream(10_000, 100_000, 0.1, 0.9, 0.05, 1);
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("fixed_key", |b| {
        b.iter_batched(
            || (FixedKeyDetector::new(), Vec::new()),
            |(mut det, mut out)| {
                for (i, p) in packets.iter().enumerate() {
                    det.ingest(p, i as u64, &mut out);
                }
                black_box(out.len())
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("unbounded_key_cap4k", |b| {
        b.iter_batched(
            || (UnboundedKeyDetector::new(4000), Vec::new()),
            |(mut det, mut out)| {
                for (i, p) in packets.iter().enumerate() {
                    det.ingest(p, i as u64, &mut out);
                }
                black_box(out.len())
            },
            BatchSize::SmallInput,
        )
    });
    let two_level = two_level_stream(500, 5, 100_000, 2);
    group.bench_function("two_level", |b| {
        b.iter_batched(
            || (TwoLevelDetector::new(25), Vec::new()),
            |(mut det, mut out)| {
                for (i, p) in two_level.iter().enumerate() {
                    det.ingest(p, i as u64, &mut out);
                }
                black_box(out.len())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_update_ingest, bench_jaccard_query_latency, bench_firehose
);
criterion_main!(benches);
