//! Criterion benches for the architecture simulators themselves (the
//! simulators must be fast enough to sweep) plus the NORA model.

use criterion::{criterion_group, criterion_main, Criterion};
use ga_archsim::emu::{gups, pointer_chase, EmuConfig, ExecModel};
use ga_archsim::sparse::{simulate_pipeline, spgemm_work, PipelineNode};
use ga_core::model::{all_configs, evaluate, nora_steps};
use ga_linalg::CooMatrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_emu_sim(c: &mut Criterion) {
    let cfg = EmuConfig::chick();
    c.bench_function("emu_pointer_chase_100k", |b| {
        b.iter(|| pointer_chase(black_box(&cfg), ExecModel::Migrating, 100_000, 1))
    });
    c.bench_function("emu_gups_100k", |b| {
        b.iter(|| {
            gups(
                black_box(&cfg),
                ExecModel::Migrating,
                1 << 20,
                100_000,
                1024,
                1,
            )
        })
    });
}

fn bench_sparse_sim(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let n = 4096;
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n as u32 {
        for _ in 0..8 {
            coo.push(r, rng.gen_range(0..n) as u32, 1.0);
        }
    }
    let a = coo.to_csr(|x, y| x + y);
    let node = PipelineNode::fpga_prototype();
    c.bench_function("sparse_spgemm_work_4k", |b| {
        b.iter(|| {
            let w = spgemm_work(black_box(&a), black_box(&a));
            simulate_pipeline(&w, &node)
        })
    });
}

fn bench_nora_model(c: &mut Criterion) {
    let steps = nora_steps();
    let configs = all_configs();
    c.bench_function("nora_model_all_configs", |b| {
        b.iter(|| {
            configs
                .iter()
                .map(|cfg| evaluate(black_box(cfg), black_box(&steps)).total_seconds)
                .sum::<f64>()
        })
    });
}

criterion_group!(
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_emu_sim, bench_sparse_sim, bench_nora_model
);
criterion_main!(benches);
