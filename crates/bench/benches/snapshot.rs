//! Criterion benches for the incremental snapshot pipeline (E12).
//!
//! Two questions, matching the issue's acceptance criteria:
//!
//! * `snapshot_full` — is the row-wise freeze (counting-sort offsets +
//!   per-row sorts) at least as fast as the legacy tuple-materializing
//!   global-sort `CsrBuilder` path on a full rebuild?
//! * `snapshot_delta` — how much does the dirty-row delta rebuild save
//!   at 0.1% / 1% / 10% dirty rows on an R-MAT stream? (The ≥5x-at-≤1%
//!   criterion; `bench_snapshot` emits the machine-readable numbers.)
//!
//! Scale defaults to 16; override with `GA_BENCH_SCALE` (CI smoke uses
//! 10).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ga_graph::gen;
use ga_graph::snapshot::{freeze, SnapshotCache};
use ga_graph::{DynamicGraph, Parallelism};
use std::hint::black_box;

fn scale() -> u32 {
    std::env::var("GA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

fn rmat_dynamic(scale: u32, edges_per_v: usize, seed: u64) -> DynamicGraph {
    let n = 1usize << scale;
    let edges = gen::rmat(scale, edges_per_v * n, gen::RmatParams::GRAPH500, seed);
    let mut g = DynamicGraph::new(n);
    for (i, &(u, v)) in edges.iter().enumerate() {
        g.insert_edge(u, v, 1.0, i as u64);
    }
    g
}

/// Dirty roughly `frac` of the rows by refreshing one edge per chosen
/// row (timestamps move, content stays sorted-compatible).
fn dirty_rows(g: &mut DynamicGraph, frac: f64, ts: u64) -> usize {
    let n = g.num_vertices();
    let k = ((n as f64 * frac) as usize).max(1);
    let stride = (n / k).max(1);
    let mut touched = 0;
    for u in (0..n).step_by(stride).take(k) {
        let u = u as u32;
        g.insert_edge(u, (u + 1) % n as u32, 2.0, ts);
        touched += 1;
    }
    touched
}

fn bench_full_freeze(c: &mut Criterion) {
    let g = rmat_dynamic(scale(), 8, 3);
    let mut group = c.benchmark_group("snapshot_full");
    group.throughput(Throughput::Elements(g.num_live_edges() as u64));
    group.bench_function("legacy_global_sort", |b| {
        b.iter(|| black_box(g.snapshot_legacy()))
    });
    group.bench_function("rowwise_serial", |b| {
        b.iter(|| black_box(freeze(&g, Parallelism::Serial)))
    });
    group.bench_function("rowwise_parallel", |b| {
        b.iter(|| black_box(freeze(&g, Parallelism::Parallel)))
    });
    group.finish();
}

fn bench_delta_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_delta");
    for (label, frac) in [
        ("dirty_0.1pct", 0.001),
        ("dirty_1pct", 0.01),
        ("dirty_10pct", 0.1),
    ] {
        // A warm cache over the base graph, then `frac` of rows dirtied:
        // every iteration clones the warm cache and pays only the delta.
        let mut g = rmat_dynamic(scale(), 8, 3);
        let mut cache = SnapshotCache::new();
        cache.snapshot(&g, Parallelism::Auto);
        dirty_rows(&mut g, frac, u64::MAX);
        group.bench_function(label, |b| {
            b.iter_batched(
                || cache.clone(),
                |mut cache| black_box(cache.snapshot(&g, Parallelism::Auto)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_full_freeze, bench_delta_rebuild
);
criterion_main!(benches);
