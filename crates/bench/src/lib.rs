//! # ga-bench — the reproduction harness
//!
//! One binary per figure of the paper (see DESIGN.md §4 for the
//! experiment index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig1_taxonomy` | Fig. 1, the kernel/benchmark spectrum table |
//! | `fig2_flow` | Fig. 2, the combined batch+streaming reference run with instrumentation |
//! | `fig3_nora_model` | Fig. 3, per-step resource bars for every configuration |
//! | `fig4_sparse` | Fig. 4 / §V-A, sparse pipeline vs cache node SpGEMM sweep |
//! | `fig5_emu` | Fig. 5 / §V-B, migrating threads vs remote access |
//! | `fig6_size_perf` | Fig. 6, size (racks) vs performance for all systems |
//!
//! plus Criterion benches (`kernels`, `streaming`, `linalg`, `archsim`)
//! for wall-clock numbers on this machine.

#![warn(missing_docs)]

/// Format a floating value with engineering-style suffixes.
pub fn eng(x: f64) -> String {
    let ax = x.abs();
    if ax >= 1e12 {
        format!("{:.2}T", x / 1e12)
    } else if ax >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if ax >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if ax >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.3}")
    }
}

/// Render a simple ASCII bar of `value` against `max` (width 40).
pub fn bar(value: f64, max: f64) -> String {
    let width = 40.0;
    let n = if max > 0.0 {
        ((value / max) * width).round() as usize
    } else {
        0
    };
    "#".repeat(n.min(60))
}

/// Print a header line.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_suffixes() {
        assert_eq!(eng(1234.0), "1.23k");
        assert_eq!(eng(2.5e9), "2.50G");
        assert_eq!(eng(0.5), "0.500");
        assert_eq!(eng(3.7e12), "3.70T");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0, 1.0).len(), 40);
        assert_eq!(bar(0.5, 1.0).len(), 20);
        assert_eq!(bar(0.0, 1.0).len(), 0);
        assert_eq!(bar(1.0, 0.0).len(), 0);
    }
}
