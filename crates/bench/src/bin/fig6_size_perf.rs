//! Regenerate Fig. 6: "Size-Performance Comparison for the NORA
//! problem" — performance (relative to the 2012 baseline) against
//! system size in racks, for the conventional configurations and the
//! three Emu generations.
//!
//! ```sh
//! cargo run -p ga-bench --bin fig6_size_perf
//! ```

use ga_bench::header;
use ga_core::model::{
    all_upgrades, baseline2012, emu1, emu2, emu3, evaluate, lightweight, nora_steps, stack_only_3d,
    xcaliber,
};

fn main() {
    let steps = nora_steps();
    let base = evaluate(&baseline2012(), &steps);

    header("Fig. 6 — Size-Performance Comparison for the NORA problem");
    println!(
        "{:<38} {:>6} {:>12} {:>14}",
        "configuration", "racks", "perf (x)", "perf/rack (x)"
    );
    let configs = vec![
        baseline2012(),
        all_upgrades(),
        lightweight(),
        xcaliber(),
        stack_only_3d(),
        emu1(),
        emu2(),
        emu3(),
    ];
    for cfg in &configs {
        let e = evaluate(cfg, &steps);
        let s = e.speedup_over(&base);
        println!(
            "{:<38} {:>6.0} {:>12.2} {:>14.2}",
            cfg.name,
            cfg.racks,
            s,
            s / cfg.racks
        );
    }

    header("Rack sweep (the Fig. 6 curves)");
    print!("{:<38}", "racks:");
    let rack_points = [1.0, 2.0, 4.0, 8.0, 10.0];
    for r in rack_points {
        print!(" {r:>8.0}");
    }
    println!();
    for cfg in &configs {
        print!("{:<38}", cfg.name);
        for r in rack_points {
            let e = evaluate(&cfg.with_racks(r), &steps);
            print!(" {:>8.2}", e.speedup_over(&base));
        }
        println!();
    }

    header("Headline ratio (paper §V-B)");
    let best_conv = evaluate(&all_upgrades(), &steps);
    let e3 = evaluate(&emu3(), &steps);
    println!(
        "Emu3 (1 rack) vs best upgraded cluster (10 racks): {:.1}x   (paper: 'up to 60X ... in 1/10th the hardware')",
        e3.speedup_over(&best_conv)
    );
}
