//! Regenerate Fig. 4 / §V-A: the sparse linear-algebra pipeline
//! processor vs a conventional cache-hierarchy node on SpGEMM, swept
//! over matrix size and density, plus multi-node scaling.
//!
//! Shape claims checked: the pipeline node holds "perhaps more than an
//! order of magnitude performance advantage over a node for a Cray
//! XT4" on very sparse operands; the advantage shrinks as density (and
//! cache hit rate) rises; ASIC projections add another order of
//! magnitude; perf/W is even more lopsided.
//!
//! ```sh
//! cargo run --release -p ga-bench --bin fig4_sparse
//! ```

use ga_archsim::sparse::{
    simulate_cache, simulate_pipeline, simulate_pipeline_multinode, spgemm_work, CacheNode,
    PipelineNode,
};
use ga_bench::{eng, header};
use ga_linalg::CooMatrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_sparse(n: usize, nnz_per_row: usize, seed: u64) -> ga_linalg::CsrMatrix<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n as u32 {
        for _ in 0..nnz_per_row {
            coo.push(r, rng.gen_range(0..n) as u32, 1.0);
        }
    }
    coo.to_csr(|a, b| a + b)
}

fn main() {
    header("Fig. 4 / §V-A — sparse pipeline processor vs cache node (SpGEMM)");
    let fpga = PipelineNode::fpga_prototype();
    let asic = PipelineNode::asic_projection();

    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>12} {:>9} {:>9} {:>10}",
        "n",
        "nnz/row",
        "FPGA MACs/s",
        "XT4 MACs/s",
        "ASIC MACs/s",
        "FPGA/XT4",
        "ASIC/XT4",
        "useful-B%"
    );
    for &(n, nnz) in &[
        (4096usize, 8usize),
        (16384, 8),
        (65536, 8),
        (262144, 8),
        (262144, 4),
        (262144, 16),
        (524288, 8),
    ] {
        let a = random_sparse(n, nnz, 1);
        let b = random_sparse(n, nnz, 2);
        let w = spgemm_work(&a, &b);
        // The cache node's hit rate collapses once B no longer fits in
        // the 2 MB last-level cache: random row gathers touch all of B.
        let b_bytes = b.nnz() as f64 * 8.0;
        let mut cache = CacheNode::xt4();
        cache.hit_rate = (2e6 / b_bytes).min(0.95);
        let p = simulate_pipeline(&w, &fpga);
        let c = simulate_cache(&w, &cache);
        let s = simulate_pipeline(&w, &asic);
        println!(
            "{:<8} {:>8} {:>12} {:>12} {:>12} {:>8.1}x {:>8.1}x {:>9.1}%",
            n,
            nnz,
            eng(p.macs_per_sec),
            eng(c.macs_per_sec),
            eng(s.macs_per_sec),
            p.macs_per_sec / c.macs_per_sec,
            s.macs_per_sec / c.macs_per_sec,
            c.useful_byte_fraction * 100.0
        );
    }

    header("Performance per watt (MACs/J)");
    let a = random_sparse(16384, 8, 3);
    let b = random_sparse(16384, 8, 4);
    let w = spgemm_work(&a, &b);
    let mut cache = CacheNode::xt4();
    cache.hit_rate = 0.05;
    let p = simulate_pipeline(&w, &fpga);
    let c = simulate_cache(&w, &cache);
    let s = simulate_pipeline(&w, &asic);
    println!("FPGA pipeline: {}/J", eng(p.macs_per_joule));
    println!("XT4 node:      {}/J", eng(c.macs_per_joule));
    println!("ASIC proj.:    {}/J", eng(s.macs_per_joule));
    println!(
        "FPGA/XT4 perf/W = {:.1}x, ASIC/XT4 = {:.1}x  (paper: 'even more striking')",
        p.macs_per_joule / c.macs_per_joule,
        s.macs_per_joule / c.macs_per_joule
    );

    header("Multi-node scaling (3-D mesh, 1 GB/s links)");
    println!("{:>6} {:>14} {:>10}", "nodes", "agg MACs/s", "efficiency");
    let (r1, _) = simulate_pipeline_multinode(&w, &fpga, 1, 1e9);
    for &nodes in &[1usize, 2, 4, 8, 16, 32, 64] {
        let (r, _) = simulate_pipeline_multinode(&w, &fpga, nodes, 1e9);
        println!(
            "{:>6} {:>14} {:>9.0}%",
            nodes,
            eng(r.macs_per_sec),
            r.macs_per_sec / (r1.macs_per_sec * nodes as f64) * 100.0
        );
    }
}
