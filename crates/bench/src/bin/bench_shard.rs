//! E15 driver: the sharded scale-out scaling curve.
//!
//! For shard counts 1/2/4/8 over two stream shapes (skewed R-MAT and
//! flat uniform), the driver routes the same update stream through an
//! N-shard [`ShardedFlow`], runs the scatter-gather kernels (PageRank,
//! BFS, connected components), and records:
//!
//! * **agreement** — merged kernel outputs must be *bit-identical* to
//!   the 1-shard ground truth (any divergence aborts with a non-zero
//!   exit, which is what CI's `--assert-agreement` invocation relies
//!   on);
//! * **cross-shard traffic** — bytes per kernel under the wire model
//!   (ghost updates × 13 B at ingest, 8 B per cross-shard rank pull,
//!   4 B per exchanged frontier candidate, 8 B per forest pair);
//! * **balance-limited speedup** — total work over max per-shard work,
//!   the upper bound a perfectly overlapped deployment could reach
//!   (shards here execute serially in one process, so *measured* wall
//!   time shows replication overhead instead — both are reported);
//! * wall clock per phase.
//!
//! Results land in `BENCH_shard.json`. This is the paper's §V
//! scale-out argument made measurable: cross-shard (network) bytes per
//! kernel grow with shard count while per-shard work shrinks, so
//! injection bandwidth — not per-node compute — bounds the curve.
//!
//! ```sh
//! cargo run --release -p ga-bench --bin bench_shard
//! # smoke (CI): GA_BENCH_SMOKE=1 GA_BENCH_SCALE=12 ... -- --assert-agreement
//! ```

use ga_bench::{eng, header};
use ga_core::sharded::{CrossShardTraffic, ShardedFlow};
use ga_stream::update::{into_batches, rmat_edge_stream, uniform_edge_stream, UpdateBatch};
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("GA_BENCH_SMOKE").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--smoke")
}

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const DAMPING: f64 = 0.85;
const TOL: f64 = 1e-9;
const MAX_ITERS: usize = 50;

struct ShardPoint {
    shards: usize,
    ingest_ms: f64,
    pagerank_ms: f64,
    bfs_ms: f64,
    cc_ms: f64,
    ghost_updates: u64,
    ghost_fraction: f64,
    traffic: CrossShardTraffic,
    ingest_balance_speedup: f64,
    kernel_balance_speedup: f64,
    agrees: bool,
}

struct GroundTruth {
    rank: Vec<f64>,
    depth: Vec<u32>,
    cc_label: Vec<u32>,
    cc_count: usize,
}

fn run_point(
    shards: usize,
    batches: &[UpdateBatch],
    num_vertices: usize,
    total_updates: usize,
    truth: Option<&GroundTruth>,
) -> (ShardPoint, GroundTruth) {
    let mut flow = ShardedFlow::builder(shards)
        .build(num_vertices)
        .expect("in-memory fleet");

    let t0 = Instant::now();
    for b in batches {
        flow.process_batch(b).expect("non-durable ingest");
    }
    let ingest_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let pr = flow.pagerank(DAMPING, TOL, MAX_ITERS);
    let pagerank_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    let depth = flow.bfs(0);
    let bfs_ms = t2.elapsed().as_secs_f64() * 1e3;

    let t3 = Instant::now();
    let cc = flow.components();
    let cc_ms = t3.elapsed().as_secs_f64() * 1e3;

    // Balance-limited ideal speedups: total work / max per-shard work.
    let applied: Vec<usize> = flow
        .shards()
        .iter()
        .map(|s| s.stats().ingest.updates_applied)
        .collect();
    let edges: Vec<usize> = flow
        .shards()
        .iter()
        .map(|s| s.graph().num_live_edges())
        .collect();
    let balance = |per: &[usize]| {
        let total: usize = per.iter().sum();
        let max = per.iter().copied().max().unwrap_or(0).max(1);
        total as f64 / max as f64
    };

    let mine = GroundTruth {
        rank: pr.rank,
        depth,
        cc_label: cc.label,
        cc_count: cc.count,
    };
    // Bit-identical agreement with the 1-shard ground truth: exact
    // f64 equality for ranks, exact integers for depths and labels.
    let agrees = truth.is_none_or(|t| {
        t.rank == mine.rank
            && t.depth == mine.depth
            && t.cc_label == mine.cc_label
            && t.cc_count == mine.cc_count
    });

    let point = ShardPoint {
        shards,
        ingest_ms,
        pagerank_ms,
        bfs_ms,
        cc_ms,
        ghost_updates: flow.ghost_updates(),
        ghost_fraction: flow.ghost_updates() as f64 / total_updates.max(1) as f64,
        traffic: flow.traffic(),
        ingest_balance_speedup: balance(&applied),
        kernel_balance_speedup: balance(&edges),
        agrees,
    };
    (point, mine)
}

fn sweep(
    name: &str,
    batches: &[UpdateBatch],
    num_vertices: usize,
    total: usize,
) -> Vec<ShardPoint> {
    header(&format!("E15 — {name}: shard sweep {SHARD_COUNTS:?}"));
    let mut truth: Option<GroundTruth> = None;
    let mut points = Vec::new();
    for shards in SHARD_COUNTS {
        let (p, result) = run_point(shards, batches, num_vertices, total, truth.as_ref());
        if truth.is_none() {
            truth = Some(result);
        }
        println!(
            "{:2} shards: ingest {:8.1} ms, PR {:7.1} ms, BFS {:6.1} ms, CC {:6.1} ms | \
             ghosts {:>8} ({:4.1}%) | xshard {:>9} B | balance {:4.2}x/{:4.2}x | {}",
            p.shards,
            p.ingest_ms,
            p.pagerank_ms,
            p.bfs_ms,
            p.cc_ms,
            p.ghost_updates,
            p.ghost_fraction * 100.0,
            eng(p.traffic.total() as f64),
            p.ingest_balance_speedup,
            p.kernel_balance_speedup,
            if p.agrees {
                "bit-identical"
            } else {
                "DIVERGED"
            },
        );
        points.push(p);
    }
    points
}

fn json_points(points: &[ShardPoint]) -> String {
    let mut j = String::new();
    for (i, p) in points.iter().enumerate() {
        let t = &p.traffic;
        j.push_str(&format!(
            "      {{\"shards\": {}, \"ingest_ms\": {:.2}, \"pagerank_ms\": {:.2}, \
             \"bfs_ms\": {:.2}, \"cc_ms\": {:.2}, \"ghost_updates\": {}, \
             \"ghost_fraction\": {:.4}, \"ingest_balance_speedup\": {:.3}, \
             \"kernel_balance_speedup\": {:.3}, \"agrees_with_single_shard\": {}, \
             \"cross_shard_bytes\": {{\"ingest\": {}, \"pagerank\": {}, \"bfs\": {}, \
             \"components\": {}, \"total\": {}}}}}{}\n",
            p.shards,
            p.ingest_ms,
            p.pagerank_ms,
            p.bfs_ms,
            p.cc_ms,
            p.ghost_updates,
            p.ghost_fraction,
            p.ingest_balance_speedup,
            p.kernel_balance_speedup,
            p.agrees,
            t.ingest_bytes,
            t.pagerank_bytes,
            t.bfs_bytes,
            t.components_bytes,
            t.total(),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    j
}

fn main() {
    let smoke = smoke();
    let scale: u32 = std::env::var("GA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 12 } else { 13 });
    let total_updates = 12usize << scale.min(14);
    let batch_len = 512;
    let num_vertices = 1usize << scale;

    header(&format!(
        "E15 — sharded scale-out, scale {scale} ({num_vertices} vertices), \
         {total_updates} updates, batches of {batch_len}"
    ));

    let rmat = sweep(
        "R-MAT (skewed)",
        &into_batches(
            rmat_edge_stream(scale, total_updates, 0.15, 42),
            batch_len,
            1,
        ),
        num_vertices,
        total_updates,
    );
    let uniform = sweep(
        "uniform (flat)",
        &into_batches(
            uniform_edge_stream(scale, total_updates, 0.15, 42),
            batch_len,
            1,
        ),
        num_vertices,
        total_updates,
    );

    // Hand-rolled JSON (no serde in the dependency budget).
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!("  \"scale\": {scale},\n"));
    j.push_str(&format!("  \"num_vertices\": {num_vertices},\n"));
    j.push_str(&format!("  \"total_updates\": {total_updates},\n"));
    j.push_str(&format!("  \"batch_len\": {batch_len},\n"));
    j.push_str(&format!("  \"smoke\": {smoke},\n"));
    j.push_str(&format!("  \"shard_counts\": {SHARD_COUNTS:?},\n"));
    j.push_str("  \"wire_model\": {\"update_bytes\": 13, \"rank_bytes\": 8, \"frontier_bytes\": 4, \"forest_pair_bytes\": 8},\n");
    j.push_str("  \"graphs\": {\n");
    j.push_str("    \"rmat\": [\n");
    j.push_str(&json_points(&rmat));
    j.push_str("    ],\n");
    j.push_str("    \"uniform\": [\n");
    j.push_str(&json_points(&uniform));
    j.push_str("    ]\n");
    j.push_str("  }\n");
    j.push_str("}\n");
    std::fs::write("BENCH_shard.json", &j).expect("write BENCH_shard.json");
    println!("\nwrote BENCH_shard.json");

    // Agreement is the whole point of the protocol: divergence is
    // always fatal (CI passes --assert-agreement to make the intent
    // explicit on the command line, but the gate is unconditional).
    let diverged: Vec<String> = rmat
        .iter()
        .map(|p| ("rmat", p))
        .chain(uniform.iter().map(|p| ("uniform", p)))
        .filter(|(_, p)| !p.agrees)
        .map(|(g, p)| format!("{g}/{} shards", p.shards))
        .collect();
    if !diverged.is_empty() {
        eprintln!("DIVERGENCE from 1-shard ground truth: {diverged:?}");
        std::process::exit(1);
    }
    println!("all shard counts bit-identical to 1-shard ground truth");
}
