//! E12 driver: measure the snapshot pipeline and emit a machine-readable
//! `BENCH_snapshot.json` so later PRs have a perf trajectory to compare
//! against.
//!
//! Times three things on an R-MAT graph (default scale 16, 8 edges per
//! vertex):
//!
//! * `legacy_full_ms` — the old tuple-materializing global-sort freeze,
//! * `rowwise_full_ms` — the row-wise counting-sort freeze (serial and
//!   parallel),
//! * `delta_ms` at 0.1% / 1% / 10% dirty rows — the cached rebuild.
//!
//! The acceptance criteria this file certifies: row-wise full freeze no
//! slower than legacy, and delta ≥5x faster than a full legacy rebuild
//! at ≤1% dirty rows.
//!
//! ```sh
//! cargo run --release -p ga-bench --bin bench_snapshot
//! # smoke (CI): GA_BENCH_SMOKE=1 shrinks to scale 12, 3 reps
//! ```

use ga_bench::header;
use ga_graph::gen;
use ga_graph::snapshot::{freeze, SnapshotCache};
use ga_graph::{DynamicGraph, Parallelism};
use std::hint::black_box;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("GA_BENCH_SMOKE").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--smoke")
}

fn rmat_dynamic(scale: u32, edges_per_v: usize, seed: u64) -> DynamicGraph {
    let n = 1usize << scale;
    let edges = gen::rmat(scale, edges_per_v * n, gen::RmatParams::GRAPH500, seed);
    let mut g = DynamicGraph::new(n);
    for (i, &(u, v)) in edges.iter().enumerate() {
        g.insert_edge(u, v, 1.0, i as u64);
    }
    g
}

/// Median wall time (ms) of `reps` runs of `f`.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn dirty_rows(g: &mut DynamicGraph, frac: f64, ts: u64) -> usize {
    let n = g.num_vertices();
    let k = ((n as f64 * frac) as usize).max(1);
    let stride = (n / k).max(1);
    let mut touched = 0;
    for u in (0..n).step_by(stride).take(k) {
        let u = u as u32;
        g.insert_edge(u, (u + 1) % n as u32, 2.0, ts);
        touched += 1;
    }
    touched
}

struct DeltaPoint {
    label: &'static str,
    frac: f64,
    rows_dirty: usize,
    ms: f64,
    speedup_vs_legacy_full: f64,
}

fn main() {
    let smoke = smoke();
    let scale: u32 = std::env::var("GA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 12 } else { 16 });
    let reps = if smoke { 3 } else { 7 };
    let edges_per_v = 8;

    header(&format!(
        "E12 — snapshot pipeline, R-MAT scale {scale} ({} edges/vertex), median of {reps}",
        edges_per_v
    ));
    let g = rmat_dynamic(scale, edges_per_v, 3);
    let (n, m) = (g.num_vertices(), g.num_live_edges());
    println!("graph: {n} vertices, {m} live directed edges");

    let legacy_ms = time_ms(reps, || g.snapshot_legacy());
    let rowwise_serial_ms = time_ms(reps, || freeze(&g, Parallelism::Serial));
    let rowwise_parallel_ms = time_ms(reps, || freeze(&g, Parallelism::Parallel));
    println!("full freeze:  legacy {legacy_ms:9.3} ms");
    println!(
        "              rowwise serial {rowwise_serial_ms:9.3} ms  ({:.2}x)",
        legacy_ms / rowwise_serial_ms
    );
    println!(
        "              rowwise parallel {rowwise_parallel_ms:7.3} ms  ({:.2}x)",
        legacy_ms / rowwise_parallel_ms
    );

    let mut deltas: Vec<DeltaPoint> = Vec::new();
    for (label, frac) in [
        ("dirty_0.1pct", 0.001),
        ("dirty_1pct", 0.01),
        ("dirty_10pct", 0.1),
    ] {
        let mut gd = rmat_dynamic(scale, edges_per_v, 3);
        let mut cache = SnapshotCache::new();
        cache.snapshot(&gd, Parallelism::Auto);
        let rows_dirty = dirty_rows(&mut gd, frac, u64::MAX);
        let ms = time_ms(reps, || {
            let mut c = cache.clone();
            c.snapshot(&gd, Parallelism::Auto)
        });
        let speedup = legacy_ms / ms;
        println!(
            "delta {label:>12}: {rows_dirty:7} rows dirty, {ms:9.3} ms  ({speedup:.1}x vs legacy full)"
        );
        deltas.push(DeltaPoint {
            label,
            frac,
            rows_dirty,
            ms,
            speedup_vs_legacy_full: speedup,
        });
    }

    // Hand-rolled JSON (no serde in the dependency budget).
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!("  \"scale\": {scale},\n"));
    j.push_str(&format!("  \"vertices\": {n},\n"));
    j.push_str(&format!("  \"edges\": {m},\n"));
    j.push_str(&format!("  \"smoke\": {smoke},\n"));
    j.push_str(&format!("  \"reps\": {reps},\n"));
    j.push_str(&format!("  \"legacy_full_ms\": {legacy_ms:.4},\n"));
    j.push_str(&format!(
        "  \"rowwise_full_serial_ms\": {rowwise_serial_ms:.4},\n"
    ));
    j.push_str(&format!(
        "  \"rowwise_full_parallel_ms\": {rowwise_parallel_ms:.4},\n"
    ));
    j.push_str("  \"delta\": [\n");
    for (i, d) in deltas.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"label\": \"{}\", \"dirty_fraction\": {}, \"rows_dirty\": {}, \"ms\": {:.4}, \"speedup_vs_legacy_full\": {:.2}}}{}\n",
            d.label,
            d.frac,
            d.rows_dirty,
            d.ms,
            d.speedup_vs_legacy_full,
            if i + 1 < deltas.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    let rowwise_ok = rowwise_serial_ms <= legacy_ms * 1.05 || rowwise_parallel_ms <= legacy_ms;
    let delta_ok = deltas
        .iter()
        .filter(|d| d.frac <= 0.01)
        .all(|d| d.speedup_vs_legacy_full >= 5.0);
    j.push_str(&format!(
        "  \"rowwise_no_slower_than_legacy\": {rowwise_ok},\n"
    ));
    j.push_str(&format!("  \"delta_5x_at_1pct\": {delta_ok}\n"));
    j.push_str("}\n");

    std::fs::write("BENCH_snapshot.json", &j).expect("write BENCH_snapshot.json");
    println!("\nwrote BENCH_snapshot.json");
    if !(rowwise_ok && delta_ok) {
        println!("WARNING: acceptance thresholds not met on this host (see JSON)");
    }
}
