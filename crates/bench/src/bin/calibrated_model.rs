//! The paper's conclusion, executed: run the instrumented combined
//! benchmark (Fig. 2), **calibrate** the four-resource model from its
//! measured counters, and re-price every system configuration of
//! Figs. 3/6 against the *measured* demand table — next to the
//! hand-calibrated one, so the sensitivity of the architectural ranking
//! to the workload mix is visible.
//!
//! ```sh
//! cargo run --release -p ga-bench --bin calibrated_model
//! # measured mode: price configs from recorded ga-obs span totals
//! calibrated_model --measured              # instrument this run
//! calibrated_model --measured metrics.jsonl # consume a recorded trace
//! ```

use ga_bench::header;
use ga_core::calibrate::{
    calibrate_with_comparisons, measured_demands, measured_vs_projected_table,
    projected_step_demands, CostCoefficients, MeasuredRun,
};
use ga_core::dedup::{dedup_batch, generate_records};
use ga_core::flow::{FlowEngine, SelectionCriteria, TriangleAnalytic};
use ga_core::model::{
    all_but_cpu, all_upgrades, baseline2012, cpu_upgrade, emu3, evaluate, lightweight, nora_steps,
    stack_only_3d, xcaliber,
};
use ga_core::nora::{relationships, NoraParams, NoraWorld};
use ga_graph::ExtractOptions;
use ga_obs::{MetricsSnapshot, Recorder, Step};
use ga_stream::jaccard_stream::JaccardMonitor;
use ga_stream::update::{into_batches, rmat_edge_stream};
use ga_stream::EventKind;
use std::time::Instant;

/// `--measured [PATH]`: price configurations from recorded span totals.
/// With a PATH, the trace is read from a `ga-obs/v1` JSON-lines file
/// (last line wins); without one, this very run is instrumented.
struct Args {
    measured: bool,
    trace: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        measured: false,
        trace: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--measured" => {
                args.measured = true;
                if it.peek().is_some_and(|n| !n.starts_with("--")) {
                    args.trace = it.next();
                }
            }
            other => {
                eprintln!("unknown flag {other}; flags: --measured [PATH]");
                std::process::exit(2);
            }
        }
    }
    args
}

fn load_trace(path: &str) -> MetricsSnapshot {
    let text = std::fs::read_to_string(path).expect("read metrics JSONL");
    let line = text
        .lines()
        .rfind(|l| !l.trim().is_empty())
        .expect("metrics file has no snapshot lines");
    MetricsSnapshot::from_json(line).expect("parse ga-obs snapshot")
}

fn main() {
    let args = parse_args();
    header("Step 1 — run the instrumented combined benchmark");
    let records = generate_records(2_000, 10_000, 0.15, 11);
    let t_dedup = Instant::now();
    let dedup = dedup_batch(&records, 0.78);
    let dedup_nanos = t_dedup.elapsed().as_nanos() as u64;

    let mut flow = FlowEngine::builder()
        .extract(ExtractOptions {
            max_vertices: 512,
            ..ExtractOptions::default()
        })
        .recorder(Recorder::enabled())
        .build(1 << 12)
        .expect("in-memory engine");
    flow.note_ingest(records.len(), dedup.num_entities);
    // The dedup pass ran outside the engine: charge its measured wall
    // time and modeled traffic to the `dedup` span by hand.
    flow.recorder().record(
        Step::Dedup,
        dedup_nanos,
        [
            dedup.comparisons as u64 * 2_000,
            dedup.comparisons as u64 * 256,
            records.len() as u64 * 2_048,
            0,
        ],
    );
    let tri = flow.register_analytic(Box::new(TriangleAnalytic {
        alert_transitivity: 0.4,
    }));
    flow.register_monitor(Box::new(JaccardMonitor::new(0.95)));
    let budget = std::cell::Cell::new(25usize);
    for batch in into_batches(rmat_edge_stream(12, 40_000, 0.05, 23), 1_000, 0) {
        flow.process_stream(
            &batch,
            |ev| match ev.kind {
                EventKind::PairThreshold { a, b, .. } if budget.get() > 0 => {
                    budget.set(budget.get() - 1);
                    Some(vec![a, b])
                }
                _ => None,
            },
            Some(tri),
        );
    }
    flow.run_batch(&SelectionCriteria::TopKDegree { k: 4 }, tri);

    // The NORA relationship search's own counters.
    let world = NoraWorld::generate(NoraParams::default(), 7);
    let graph = world.build_graph();
    let (_, nora_stats) = relationships(&world, &graph, 2);

    let run = MeasuredRun {
        flow: flow.stats(),
        nora: nora_stats,
        serve: Default::default(),
    };
    println!("measured: {:?}", run.flow);
    println!("          {:?}", run.nora);

    header("Step 2 — calibrate the demand table from the counters");
    let steps = calibrate_with_comparisons(&run, dedup.comparisons, &CostCoefficients::default());
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12}",
        "step", "cpu ops", "mem B", "disk B", "net B"
    );
    for s in &steps {
        println!(
            "{:<20} {:>12} {:>12} {:>12} {:>12}",
            s.name.trim(),
            ga_bench::eng(s.cpu_ops),
            ga_bench::eng(s.mem_bytes),
            ga_bench::eng(s.disk_bytes),
            ga_bench::eng(s.net_bytes)
        );
    }

    header("Step 3 — price every configuration on measured vs hand-calibrated demands");
    let hand = nora_steps();
    let base_meas = evaluate(&baseline2012(), &steps);
    let base_hand = evaluate(&baseline2012(), &hand);
    println!(
        "{:<38} {:>14} {:>14}",
        "configuration", "measured (x)", "hand-cal (x)"
    );
    for cfg in [
        baseline2012(),
        cpu_upgrade(),
        all_but_cpu(),
        all_upgrades(),
        lightweight(),
        xcaliber(),
        stack_only_3d(),
        emu3(),
    ] {
        let m = evaluate(&cfg, &steps).speedup_over(&base_meas);
        let h = evaluate(&cfg, &hand).speedup_over(&base_hand);
        println!("{:<38} {:>14.2} {:>14.2}", cfg.name, m, h);
    }
    println!(
        "\nThe *ordering* of architectures should be stable across the two\n\
         columns even though the measured workload (a laptop-scale run) has\n\
         a different resource mix than the 2013 production pipeline."
    );

    if args.measured {
        header("Step 4 — measured vs projected, per NORA step (ga-obs spans)");
        let snap = match args.trace.as_deref() {
            Some(path) => {
                println!("trace: {path}");
                load_trace(path)
            }
            None => {
                println!("trace: this run's recorder");
                flow.metrics()
            }
        };
        let measured = measured_demands(&snap);
        let projected = projected_step_demands(&run.flow, &CostCoefficients::default());
        let configs = [baseline2012(), all_upgrades(), lightweight(), emu3()];
        print!(
            "{}",
            measured_vs_projected_table(&measured, &projected, &configs, ga_bench::eng)
        );
    }
}
