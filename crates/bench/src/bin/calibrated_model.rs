//! The paper's conclusion, executed: run the instrumented combined
//! benchmark (Fig. 2), **calibrate** the four-resource model from its
//! measured counters, and re-price every system configuration of
//! Figs. 3/6 against the *measured* demand table — next to the
//! hand-calibrated one, so the sensitivity of the architectural ranking
//! to the workload mix is visible.
//!
//! ```sh
//! cargo run --release -p ga-bench --bin calibrated_model
//! ```

use ga_bench::header;
use ga_core::calibrate::{calibrate_with_comparisons, CostCoefficients, MeasuredRun};
use ga_core::dedup::{dedup_batch, generate_records};
use ga_core::flow::{FlowEngine, SelectionCriteria, TriangleAnalytic};
use ga_core::model::{
    all_but_cpu, all_upgrades, baseline2012, cpu_upgrade, emu3, evaluate, lightweight, nora_steps,
    stack_only_3d, xcaliber,
};
use ga_core::nora::{relationships, NoraParams, NoraWorld};
use ga_stream::jaccard_stream::JaccardMonitor;
use ga_stream::update::{into_batches, rmat_edge_stream};
use ga_stream::EventKind;

fn main() {
    header("Step 1 — run the instrumented combined benchmark");
    let records = generate_records(2_000, 10_000, 0.15, 11);
    let dedup = dedup_batch(&records, 0.78);

    let mut flow = FlowEngine::new(1 << 12);
    flow.note_ingest(records.len(), dedup.num_entities);
    flow.extract.max_vertices = 512;
    let tri = flow.register_analytic(Box::new(TriangleAnalytic {
        alert_transitivity: 0.4,
    }));
    flow.register_monitor(Box::new(JaccardMonitor::new(0.95)));
    let budget = std::cell::Cell::new(25usize);
    for batch in into_batches(rmat_edge_stream(12, 40_000, 0.05, 23), 1_000, 0) {
        flow.process_stream(
            &batch,
            |ev| match ev.kind {
                EventKind::PairThreshold { a, b, .. } if budget.get() > 0 => {
                    budget.set(budget.get() - 1);
                    Some(vec![a, b])
                }
                _ => None,
            },
            Some(tri),
        );
    }
    flow.run_batch(&SelectionCriteria::TopKDegree { k: 4 }, tri);

    // The NORA relationship search's own counters.
    let world = NoraWorld::generate(NoraParams::default(), 7);
    let graph = world.build_graph();
    let (_, nora_stats) = relationships(&world, &graph, 2);

    let run = MeasuredRun {
        flow: flow.stats(),
        nora: nora_stats,
    };
    println!("measured: {:?}", run.flow);
    println!("          {:?}", run.nora);

    header("Step 2 — calibrate the demand table from the counters");
    let steps = calibrate_with_comparisons(&run, dedup.comparisons, &CostCoefficients::default());
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12}",
        "step", "cpu ops", "mem B", "disk B", "net B"
    );
    for s in &steps {
        println!(
            "{:<20} {:>12} {:>12} {:>12} {:>12}",
            s.name.trim(),
            ga_bench::eng(s.cpu_ops),
            ga_bench::eng(s.mem_bytes),
            ga_bench::eng(s.disk_bytes),
            ga_bench::eng(s.net_bytes)
        );
    }

    header("Step 3 — price every configuration on measured vs hand-calibrated demands");
    let hand = nora_steps();
    let base_meas = evaluate(&baseline2012(), &steps);
    let base_hand = evaluate(&baseline2012(), &hand);
    println!(
        "{:<38} {:>14} {:>14}",
        "configuration", "measured (x)", "hand-cal (x)"
    );
    for cfg in [
        baseline2012(),
        cpu_upgrade(),
        all_but_cpu(),
        all_upgrades(),
        lightweight(),
        xcaliber(),
        stack_only_3d(),
        emu3(),
    ] {
        let m = evaluate(&cfg, &steps).speedup_over(&base_meas);
        let h = evaluate(&cfg, &hand).speedup_over(&base_hand);
        println!("{:<38} {:>14.2} {:>14.2}", cfg.name, m, h);
    }
    println!(
        "\nThe *ordering* of architectures should be stable across the two\n\
         columns even though the measured workload (a laptop-scale run) has\n\
         a different resource mix than the 2013 production pipeline."
    );
}
