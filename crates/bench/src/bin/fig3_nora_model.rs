//! Regenerate Fig. 3: "Performance Modeling of NORA Problem" — for each
//! system configuration, a per-step bar group showing the time each of
//! the four resources would need, with the peak marked as the bounding
//! resource, plus total time and speedup vs the 2012 baseline.
//!
//! ```sh
//! cargo run -p ga-bench --bin fig3_nora_model
//! ```

use ga_bench::{bar, header};
use ga_core::model::{
    all_but_cpu, all_upgrades, baseline2012, cpu_upgrade, disk_upgrade, evaluate, lightweight,
    mem_upgrade, net_upgrade, nora_steps, stack_only_3d, xcaliber, Resource,
};

fn main() {
    let steps = nora_steps();
    let base = evaluate(&baseline2012(), &steps);

    let configs = vec![
        baseline2012(),
        cpu_upgrade(),
        mem_upgrade(),
        disk_upgrade(),
        net_upgrade(),
        all_but_cpu(),
        all_upgrades(),
        lightweight(),
        xcaliber(),
        stack_only_3d(),
    ];

    header("Fig. 3 — Performance Modeling of the NORA Problem");
    for cfg in &configs {
        let e = evaluate(cfg, &steps);
        println!(
            "\n--- {} ---  total {:.1} h, speedup vs baseline {:.2}x",
            cfg.name,
            e.total_seconds / 3600.0,
            e.speedup_over(&base)
        );
        // The per-step bars: one line per resource per step, peak marked.
        let max = e
            .steps
            .iter()
            .flat_map(|s| s.resource_seconds.iter().copied())
            .fold(0.0, f64::max);
        for s in &e.steps {
            println!("  {}", s.name.trim());
            for (i, r) in Resource::ALL.iter().enumerate() {
                let t = s.resource_seconds[i];
                let mark = if *r == s.bounding { "<- bound" } else { "" };
                println!(
                    "    {:<4} {:>8.2} h |{:<40}| {}",
                    r.label(),
                    t / 3600.0,
                    bar(t, max),
                    mark
                );
            }
        }
        // Resource attribution summary.
        print!("  bound-by:");
        for r in Resource::ALL {
            print!(
                " {}={} steps ({:.1} h)",
                r.label(),
                e.steps_bound_by(r),
                e.seconds_bound_by(r) / 3600.0
            );
        }
        println!();
    }

    header("Headline ratios (paper §IV)");
    let ratio = |cfg: &ga_core::model::SystemConfig| evaluate(cfg, &steps).speedup_over(&base);
    println!(
        "cpu-platform upgrade alone:   {:.2}x   (paper: ~1.45x, 'only a 45% increase')",
        ratio(&cpu_upgrade())
    );
    let product = ratio(&mem_upgrade()) * ratio(&disk_upgrade()) * ratio(&net_upgrade());
    println!(
        "all-but-cpu:                  {:.2}x   (paper: 'over a 3X growth'; product of individual upgrades = {:.2}x)",
        ratio(&all_but_cpu()),
        product
    );
    println!(
        "all upgrades:                 {:.2}x   (paper: '8X growth')",
        ratio(&all_upgrades())
    );
    println!(
        "lightweight (2 racks):        {:.2}x   (paper: 'near equal performance in 1/5th the hardware')",
        ratio(&lightweight())
    );
    println!(
        "x-caliber (3 racks):          {:.2}x   (paper: 'equal performance in only 3 racks')",
        ratio(&xcaliber())
    );
    println!(
        "3D stack-only (1 rack):       {:.0}x    (paper: 'possibly up to 200X performance in 1/10th the hardware')",
        ratio(&stack_only_3d())
    );
}
