//! E16 driver: shard failover and online rebuild under a mid-stream
//! kill.
//!
//! For shard counts 2/4 and both rebuild sources (checkpoint + WAL
//! replay on a durable fleet; replica copy on an in-memory fleet), the
//! driver kills one shard halfway through a replicated ingest, keeps
//! streaming through the outage, rebuilds the shard online, and
//! records:
//!
//! * **update loss** — must be zero: while the shard is dead its
//!   ring-successor replica absorbs its share (in-memory) or the
//!   backlog queues for redelivery (durable). Any loss aborts with a
//!   non-zero exit, which is what CI's `--assert-zero-loss` invocation
//!   relies on;
//! * **degraded window** — how many batches the fleet served in the
//!   typed-degraded state, and whether merged state was *still*
//!   bit-identical to an unkilled reference during the outage (replica
//!   rows are slot-exact copies, so it must be);
//! * **recovery time** — wall-clock millis for
//!   [`ShardedFlow::rebuild_shard`], plus redelivered backlog size;
//! * **bit-identity after rebuild** — merged graph, properties, and
//!   BFS depths against the unkilled reference.
//!
//! Results land in `BENCH_failover.json`.
//!
//! ```sh
//! cargo run --release -p ga-bench --bin bench_failover
//! # smoke (CI): GA_BENCH_SMOKE=1 ... -- --assert-zero-loss
//! ```

use ga_bench::header;
use ga_core::flow::FlowEngine;
use ga_core::sharded::{RebuildSource, ShardedFlow};
use ga_stream::update::{into_batches, rmat_edge_stream, UpdateBatch};
use std::path::PathBuf;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("GA_BENCH_SMOKE").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--smoke")
}

const SHARD_COUNTS: [usize; 2] = [2, 4];

struct FailoverPoint {
    shards: usize,
    source: &'static str,
    kill_after_batches: usize,
    degraded_batches: usize,
    rebuild_ms: f64,
    redelivered_batches: usize,
    redelivered_updates: usize,
    replication_bytes: u64,
    lost_updates: u64,
    exact_during_outage: bool,
    exact_after_rebuild: bool,
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("ga_bench_failover")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run_point(
    shards: usize,
    durable: bool,
    batches: &[UpdateBatch],
    num_vertices: usize,
) -> FailoverPoint {
    let base = durable.then(|| tmpdir(&format!("wal-{shards}")));
    let mut cfg = ShardedFlow::builder(shards).replicate(true);
    if let Some(b) = &base {
        cfg = cfg.durability_base(b);
    }
    let mut fleet = cfg.build(num_vertices).expect("fleet");
    let mut reference = FlowEngine::new(num_vertices);

    let victim = shards / 2;
    let mid = batches.len() / 2;
    for b in &batches[..mid] {
        fleet.process_batch(b).expect("pre-kill ingest");
        reference.process_stream(b, |_| None, None);
    }
    if durable {
        // Give WAL replay a checkpoint prefix to restart from.
        fleet.checkpoint().expect("checkpoint");
    }
    fleet.kill_shard(victim, "bench kill");
    for b in &batches[mid..] {
        fleet.process_batch(b).expect("ingest through outage");
        reference.process_stream(b, |_| None, None);
    }

    // On the durable fleet the dead shard's backlog is queued, so the
    // merged view mid-outage trails by the queued share; the in-memory
    // replica path must already be exact.
    let exact_during_outage =
        fleet.merged_graph() == *reference.graph() && fleet.merged_props() == *reference.props();

    let t0 = Instant::now();
    let report = fleet.rebuild_shard(victim).expect("rebuild");
    let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;
    let want = if durable {
        RebuildSource::WalReplay
    } else {
        RebuildSource::Replica
    };
    assert_eq!(report.source, want, "rebuild took the wrong source");

    let exact_after_rebuild = fleet.supervisor().all_healthy()
        && fleet.merged_graph() == *reference.graph()
        && fleet.merged_props() == *reference.props()
        && fleet.bfs(0) == ga_kernels::bfs::bfs_depths(&reference.graph().snapshot(), 0);

    if let Some(b) = &base {
        std::fs::remove_dir_all(b).ok();
    }
    FailoverPoint {
        shards,
        source: report.source.name(),
        kill_after_batches: mid,
        degraded_batches: batches.len() - mid,
        rebuild_ms,
        redelivered_batches: report.redelivered_batches,
        redelivered_updates: report.redelivered_updates,
        replication_bytes: fleet.traffic().replication_bytes,
        lost_updates: fleet.lost_updates(),
        exact_during_outage,
        exact_after_rebuild,
    }
}

fn main() {
    let smoke = smoke();
    let scale: u32 = std::env::var("GA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 10 } else { 12 });
    let num_vertices = 1usize << scale;
    let total_updates = 8usize << scale.min(14);
    let batch_len = 256;
    let batches = into_batches(
        rmat_edge_stream(scale, total_updates, 0.15, 42),
        batch_len,
        1,
    );

    header(&format!(
        "E16 — shard failover, scale {scale} ({num_vertices} vertices), \
         {total_updates} updates, batches of {batch_len}, kill mid-stream"
    ));

    let mut points = Vec::new();
    for shards in SHARD_COUNTS {
        for durable in [false, true] {
            let p = run_point(shards, durable, &batches, num_vertices);
            println!(
                "{:2} shards, {:12}: degraded {:3} batches | rebuild {:7.2} ms \
                 ({} batches / {} updates redelivered) | lost {} | \
                 outage {} | rebuilt {}",
                p.shards,
                p.source,
                p.degraded_batches,
                p.rebuild_ms,
                p.redelivered_batches,
                p.redelivered_updates,
                p.lost_updates,
                if p.exact_during_outage {
                    "bit-identical"
                } else {
                    "trailing"
                },
                if p.exact_after_rebuild {
                    "bit-identical"
                } else {
                    "DIVERGED"
                },
            );
            points.push(p);
        }
    }

    // Hand-rolled JSON (no serde in the dependency budget).
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!("  \"scale\": {scale},\n"));
    j.push_str(&format!("  \"num_vertices\": {num_vertices},\n"));
    j.push_str(&format!("  \"total_updates\": {total_updates},\n"));
    j.push_str(&format!("  \"batch_len\": {batch_len},\n"));
    j.push_str(&format!("  \"smoke\": {smoke},\n"));
    j.push_str(&format!("  \"shard_counts\": {SHARD_COUNTS:?},\n"));
    j.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"shards\": {}, \"source\": \"{}\", \"kill_after_batches\": {}, \
             \"degraded_batches\": {}, \"rebuild_ms\": {:.3}, \
             \"redelivered_batches\": {}, \"redelivered_updates\": {}, \
             \"replication_bytes\": {}, \"lost_updates\": {}, \
             \"exact_during_outage\": {}, \"exact_after_rebuild\": {}}}{}\n",
            p.shards,
            p.source,
            p.kill_after_batches,
            p.degraded_batches,
            p.rebuild_ms,
            p.redelivered_batches,
            p.redelivered_updates,
            p.replication_bytes,
            p.lost_updates,
            p.exact_during_outage,
            p.exact_after_rebuild,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    j.push_str("  ]\n");
    j.push_str("}\n");
    std::fs::write("BENCH_failover.json", &j).expect("write BENCH_failover.json");
    println!("\nwrote BENCH_failover.json");

    // Zero loss and post-rebuild bit-identity are the whole point of
    // the protocol: any violation is fatal (CI passes
    // --assert-zero-loss to make the intent explicit on the command
    // line, but the gate is unconditional).
    let bad: Vec<String> = points
        .iter()
        .filter(|p| p.lost_updates != 0 || !p.exact_after_rebuild)
        .map(|p| {
            format!(
                "{} shards/{} (lost {}, exact {})",
                p.shards, p.source, p.lost_updates, p.exact_after_rebuild
            )
        })
        .collect();
    if !bad.is_empty() {
        eprintln!("FAILOVER GATE VIOLATED: {bad:?}");
        std::process::exit(1);
    }
    println!("zero update loss; every rebuild bit-identical to the unkilled reference");
}
