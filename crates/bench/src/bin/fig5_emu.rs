//! Regenerate Fig. 5 / §V-B: the Emu migrating-thread machine vs the
//! conventional remote-access model on four irregular workloads.
//!
//! Shape claims checked: pointer-chasing with atomic updates consumes
//! "half or less the bandwidth and latency" under migration; GUPS-style
//! random updates get a large throughput win from fire-and-forget
//! single-op threads; streaming Jaccard queries answer in tens of
//! microseconds.
//!
//! ```sh
//! cargo run --release -p ga-bench --bin fig5_emu
//! ```

use ga_archsim::emu::{bfs_expand, gups, jaccard_query, pointer_chase, EmuConfig, ExecModel};
use ga_bench::{eng, header};
use ga_graph::{gen, CsrGraph};

fn main() {
    let cfg = EmuConfig::chick();
    header("Fig. 5 / §V-B — Emu migrating threads vs remote access");
    println!(
        "machine: {} nodes x {} nodelets x {} GCs x {} threads = {} contexts",
        cfg.nodes,
        cfg.nodelets_per_node,
        cfg.gcs_per_nodelet,
        cfg.threads_per_gc,
        cfg.total_threads()
    );

    // ---- pointer chase -------------------------------------------
    header("pointer-chase with atomic updates (1M elements, serial chain)");
    let mig = pointer_chase(&cfg, ExecModel::Migrating, 1 << 20, 7);
    let rem = pointer_chase(&cfg, ExecModel::RemoteAccess, 1 << 20, 7);
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>12}",
        "model", "messages", "bytes", "latency/op ns", "wall"
    );
    for (name, r) in [("migrating", &mig), ("remote", &rem)] {
        println!(
            "{:<12} {:>12} {:>12} {:>14.1} {:>10.2}ms",
            name,
            r.messages,
            eng(r.bytes as f64),
            r.latency_per_op_ns(),
            r.wall_ns / 1e6
        );
    }
    println!(
        "migration / remote: bytes {:.2}x, latency {:.2}x   (paper: 'half or less')",
        mig.bytes as f64 / rem.bytes as f64,
        mig.total_latency_ns / rem.total_latency_ns
    );

    // ---- GUPS ------------------------------------------------------
    header("GUPS random update (2^20 table, 1M updates, 1024 threads)");
    let mig = gups(&cfg, ExecModel::Migrating, 1 << 20, 1 << 20, 1024, 3);
    let rem = gups(&cfg, ExecModel::RemoteAccess, 1 << 20, 1 << 20, 1024, 3);
    println!(
        "migrating: {} updates/s   remote: {} updates/s   ratio {:.1}x",
        eng(mig.ops_per_sec()),
        eng(rem.ops_per_sec()),
        mig.ops_per_sec() / rem.ops_per_sec()
    );

    // ---- BFS -------------------------------------------------------
    header("BFS frontier expansion (RMAT scale 14, 16 edges/vertex)");
    let edges = gen::rmat(14, 16 << 14, gen::RmatParams::GRAPH500, 5);
    let g = CsrGraph::from_edges_undirected(1 << 14, &edges);
    let mig = bfs_expand(&cfg, ExecModel::Migrating, &g, 0);
    let rem = bfs_expand(&cfg, ExecModel::RemoteAccess, &g, 0);
    println!(
        "migrating: {} bytes, wall {:.2} ms   remote: {} bytes, wall {:.2} ms   byte ratio {:.2}x",
        eng(mig.bytes as f64),
        mig.wall_ns / 1e6,
        eng(rem.bytes as f64),
        rem.wall_ns / 1e6,
        mig.bytes as f64 / rem.bytes as f64
    );

    // ---- streaming Jaccard queries ---------------------------------
    header("streaming Jaccard queries (RMAT scale 16)");
    let edges = gen::rmat(16, 16 << 16, gen::RmatParams::GRAPH500, 9);
    let g = CsrGraph::from_edges_undirected(1 << 16, &edges);
    println!(
        "{:<10} {:>8} {:>16} {:>16}",
        "vertex", "degree", "migrating (us)", "remote (us)"
    );
    let mut count = 0;
    let mut sum_mig = 0.0;
    for v in 0..g.num_vertices() as u32 {
        let d = g.degree(v);
        if (8..=64).contains(&d) && count < 8 {
            let mig = jaccard_query(&cfg, ExecModel::Migrating, &g, v);
            let rem = jaccard_query(&cfg, ExecModel::RemoteAccess, &g, v);
            println!(
                "{:<10} {:>8} {:>16.1} {:>16.1}",
                v,
                d,
                mig.wall_ns / 1e3,
                rem.wall_ns / 1e3
            );
            sum_mig += mig.wall_ns / 1e3;
            count += 1;
        }
    }
    println!(
        "mean migrating query latency: {:.1} us   (paper: 'individual response times in the 10s of microseconds')",
        sum_mig / count as f64
    );
}
