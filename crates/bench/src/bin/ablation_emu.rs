//! Ablation study for the migrating-thread advantage (DESIGN.md's
//! design-choice ablations): how the Fig. 5 result depends on
//! (a) thread-state packet size, (b) inter-node hop latency, and
//! (c) the number of memory references per list element.
//!
//! The paper's "half or less the bandwidth and latency" claim is an
//! architectural consequence, not a constant: it holds while
//! `state_bytes < refs_per_element × (req + resp)` and inverts when
//! thread state outweighs the round trips it replaces. This binary maps
//! that boundary.
//!
//! ```sh
//! cargo run --release -p ga-bench --bin ablation_emu
//! ```

use ga_archsim::emu::{pointer_chase, EmuConfig, ExecModel};
use ga_bench::header;

fn ratios(cfg: &EmuConfig, len: usize) -> (f64, f64) {
    let mig = pointer_chase(cfg, ExecModel::Migrating, len, 7);
    let rem = pointer_chase(cfg, ExecModel::RemoteAccess, len, 7);
    (
        mig.bytes as f64 / rem.bytes as f64,
        mig.total_latency_ns / rem.total_latency_ns,
    )
}

fn main() {
    let len = 100_000;

    header("Ablation A — thread-state packet size (pointer-chase, bytes & latency vs remote)");
    println!(
        "{:>12} {:>12} {:>14}",
        "state bytes", "byte ratio", "latency ratio"
    );
    for state in [32u64, 48, 72, 96, 144, 216, 324] {
        let mut cfg = EmuConfig::chick();
        cfg.thread_state_bytes = state;
        let (b, l) = ratios(&cfg, len);
        let marker = if b <= 0.5 { "  <= half" } else { "" };
        println!("{state:>12} {b:>12.3} {l:>14.3}{marker}");
    }
    println!(
        "(the claim inverts once a migration carries more bytes than the round trips it replaces)"
    );

    header("Ablation B — inter-node hop latency");
    println!(
        "{:>12} {:>12} {:>14}",
        "hop ns", "byte ratio", "latency ratio"
    );
    for hop in [100.0f64, 200.0, 400.0, 800.0, 1600.0] {
        let mut cfg = EmuConfig::chick();
        cfg.inter_node_hop_ns = hop;
        let (b, l) = ratios(&cfg, len);
        println!("{hop:>12} {b:>12.3} {l:>14.3}");
    }
    println!("(byte ratio is latency-independent; the latency advantage grows with hop cost: one one-way trip vs three round trips)");

    header("Ablation C — references per element (locality after migration)");
    // Model by shrinking the window: with r references per element the
    // remote model pays r round trips and migration pays one move. We
    // approximate r=1 by a chase over 1-word elements: rebuild via a
    // custom loop using the public ThreadSim API.
    use ga_archsim::emu::ThreadSim;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    println!(
        "{:>14} {:>12} {:>14}",
        "refs/element", "byte ratio", "latency ratio"
    );
    for refs in [1usize, 2, 3, 5, 8] {
        let cfg = EmuConfig::chick();
        let mut order: Vec<u64> = (0..20_000u64).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let run = |model| {
            let mut sim = ThreadSim::new(&cfg, model, 0);
            for &slot in &order {
                let base = slot * 8;
                for k in 0..refs {
                    sim.access(base + k as u64);
                }
            }
            sim.finish(1)
        };
        let mig = run(ExecModel::Migrating);
        let rem = run(ExecModel::RemoteAccess);
        println!(
            "{refs:>14} {:>12.3} {:>14.3}",
            mig.bytes as f64 / rem.bytes as f64,
            mig.total_latency_ns / rem.total_latency_ns
        );
    }
    println!("(one reference per element: migration ≈ a one-way remote read — the advantage comes from amortizing the move over multiple local references)");
}
