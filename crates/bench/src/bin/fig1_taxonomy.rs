//! Regenerate Fig. 1: "The Spectrum of Existing kernels".
//!
//! ```sh
//! cargo run -p ga-bench --bin fig1_taxonomy
//! ```

use ga_core::taxonomy;

fn main() {
    ga_bench::header("Fig. 1 — The Spectrum of Existing Kernels");
    print!("{}", taxonomy::render_figure1());

    let all = taxonomy::registry();
    let streaming = taxonomy::streaming_kernels();
    println!();
    println!("kernels:            {}", all.len());
    println!("with streaming use: {}", streaming.len());
    println!(
        "implemented here:   {}",
        all.iter().filter(|k| !k.impl_path.is_empty()).count()
    );
    println!(
        "with variants:      {}",
        all.iter().filter(|k| !k.variants.is_empty()).count()
    );
    println!();
    println!("Take-away (paper §II): no one kernel is universal, and");
    println!("streaming and batch kernel sets differ significantly.");
}
