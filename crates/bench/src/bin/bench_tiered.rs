//! E18 driver: the tiered larger-than-RAM segment store under shrinking
//! RAM budgets.
//!
//! One R-MAT graph is spilled through [`TieredCsr`] at 100%, 50%, and
//! 25% of its decoded row working set. At each budget the driver runs
//! BFS and PageRank over the tier and records:
//!
//! * **miss rate** — demand misses over total row-segment lookups, the
//!   knob the paper's E3 regime turns: at 100% the tier behaves like
//!   RAM, at 25% most of the graph pages in from disk mid-kernel;
//! * **scrub throughput** — bytes CRC-verified per second by a full
//!   [`TieredCsr::scrub`] pass;
//! * **repair latency** — wall-clock for detect + quarantine +
//!   [`TieredCsr::repair_from`] after a byte of one segment is rotted
//!   on disk;
//! * **zero loss** — after repair, BFS over the tier must be
//!   bit-identical to the in-RAM run with no `lost_rows`/`lost_segments`
//!   (`--assert-zero-loss` turns any violation into a non-zero exit,
//!   which is what CI relies on);
//! * **projected vs measured disk** — a tiered `FlowEngine` batch is
//!   priced through `ga_core::calibrate`: the tier's spill and demand
//!   reads must show up as disk demand on the Snapshot and Extraction
//!   rows of the measured-vs-projected table, in agreement.
//!
//! Results land in `BENCH_tiered.json`.
//!
//! ```sh
//! cargo run --release -p ga-bench --bin bench_tiered
//! # smoke (CI): GA_BENCH_SMOKE=1 ... -- --assert-zero-loss
//! ```

use ga_bench::{eng, header};
use ga_core::calibrate::{measured_demands, projected_step_demands, CostCoefficients};
use ga_core::flow::{FlowEngine, PageRankAnalytic, SelectionCriteria};
use ga_graph::tier::{TierConfig, TieredCsr};
use ga_graph::{gen, CsrBuilder, CsrGraph};
use ga_kernels::{bfs, pagerank};
use ga_obs::Recorder;
use ga_stream::update::{into_batches, rmat_edge_stream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("GA_BENCH_SMOKE").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--smoke")
}

const BUDGET_PCTS: [u64; 3] = [100, 50, 25];

struct BudgetPoint {
    budget_pct: u64,
    ram_budget_bytes: u64,
    miss_rate: f64,
    cache_hits: u64,
    cache_misses: u64,
    read_bytes: u64,
    evictions: u64,
    prefetches: u64,
    bfs_ms: f64,
    pagerank_ms: f64,
    scrub_mb_per_s: f64,
    scrub_bytes: u64,
    repair_ms: f64,
    repaired: usize,
    zero_loss: bool,
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("ga_bench_tiered")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run_budget_point(g: &Arc<CsrGraph>, working_set: u64, pct: u64) -> BudgetPoint {
    let dir = tmpdir(&format!("pct-{pct}"));
    let budget = working_set * pct / 100;
    let cfg = TierConfig::new(&dir)
        .segment_rows(512)
        .ram_budget(budget)
        .keep_pin(false);
    let tier = TieredCsr::spill(g, cfg).expect("spill");

    let t0 = Instant::now();
    let b_tier = bfs::bfs(&tier, 0);
    let bfs_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let _ = pagerank::pagerank(&tier, 0.85, 1e-7, 10);
    let pagerank_ms = t0.elapsed().as_secs_f64() * 1e3;
    let kernel_stats = tier.stats();

    // Scrub throughput over the whole store.
    let t0 = Instant::now();
    let clean = tier.scrub();
    let scrub_s = t0.elapsed().as_secs_f64();
    assert!(clean.corrupt.is_empty(), "clean store scrubbed dirty");
    let scrub_mb_per_s = clean.bytes as f64 / 1e6 / scrub_s.max(1e-9);

    // Rot one byte of one segment on disk; time detect + repair.
    let victim = std::fs::read_dir(&dir)
        .expect("read tier dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "gas"))
        .expect("no segments spilled");
    let mut bytes = std::fs::read(&victim).expect("read segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&victim, &bytes).expect("rot segment");

    let t0 = Instant::now();
    let rot = tier.scrub();
    let repair = tier.repair_from(Some(g));
    let repair_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(rot.corrupt.len(), 1, "rot not detected");

    // Post-repair the tier must serve the exact graph again.
    let b_ram = bfs::bfs(&**g, 0);
    let b_after = bfs::bfs(&tier, 0);
    let s = tier.stats();
    let zero_loss = repair.repaired.len() == 1
        && repair.unrepairable.is_empty()
        && s.lost_rows == 0
        && s.lost_segments == 0
        && b_tier.depth == b_ram.depth
        && b_after.depth == b_ram.depth;

    std::fs::remove_dir_all(&dir).ok();
    let lookups = kernel_stats.cache_hits + kernel_stats.cache_misses;
    BudgetPoint {
        budget_pct: pct,
        ram_budget_bytes: budget,
        miss_rate: kernel_stats.cache_misses as f64 / lookups.max(1) as f64,
        cache_hits: kernel_stats.cache_hits,
        cache_misses: kernel_stats.cache_misses,
        read_bytes: kernel_stats.read_bytes,
        evictions: kernel_stats.evictions,
        prefetches: kernel_stats.prefetches,
        bfs_ms,
        pagerank_ms,
        scrub_mb_per_s,
        scrub_bytes: clean.bytes,
        repair_ms,
        repaired: repair.repaired.len(),
        zero_loss,
    }
}

struct ModelRow {
    step: &'static str,
    measured_disk: f64,
    projected_disk: f64,
}

/// Price a tiered engine batch through the calibration path: the tier's
/// disk traffic must appear on the Snapshot (spill) and Extraction
/// (demand reads) rows of both the measured spans and the projected
/// counters.
fn run_model_comparison(scale: u32) -> Vec<ModelRow> {
    let dir = tmpdir("model");
    let cfg = TierConfig::new(&dir).segment_rows(64).ram_budget(8 << 10);
    let mut e = FlowEngine::builder()
        .recorder(Recorder::enabled())
        .tiered(cfg)
        .build(1 << scale)
        .expect("engine");
    let idx = e.register_analytic(Box::new(PageRankAnalytic { damping: 0.85 }));
    for b in into_batches(rmat_edge_stream(scale, 6 << scale, 0.1, 42), 256, 1) {
        e.process_stream(&b, |_| None, None);
    }
    let _ = e.run_batch(&SelectionCriteria::TopKDegree { k: 16 }, idx);
    let measured = measured_demands(&e.metrics());
    let projected = projected_step_demands(&e.stats(), &CostCoefficients::default());
    std::fs::remove_dir_all(&dir).ok();
    ["snapshot", "extraction"]
        .iter()
        .map(|step| {
            let m = measured
                .iter()
                .find(|d| d.name == *step)
                .expect("measured row");
            let p = projected
                .iter()
                .find(|d| d.name == *step)
                .expect("projected row");
            ModelRow {
                step,
                measured_disk: m.disk_bytes,
                projected_disk: p.disk_bytes,
            }
        })
        .collect()
}

fn main() {
    let smoke = smoke();
    let assert_zero_loss = std::env::args().any(|a| a == "--assert-zero-loss");
    let scale: u32 = std::env::var("GA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 12 } else { 16 });
    let num_vertices = 1usize << scale;
    let edges = gen::rmat(scale, 8 << scale, gen::RmatParams::GRAPH500, 42);
    let g = Arc::new(
        CsrBuilder::new(num_vertices)
            .edges(edges.iter().copied())
            .symmetrize(true)
            .dedup(true)
            .drop_self_loops(true)
            .reverse(true)
            .build(),
    );
    let probe_dir = tmpdir("probe");
    let probe = TieredCsr::spill(&g, TierConfig::new(&probe_dir).segment_rows(512)).expect("probe");
    let working_set = probe.working_set_bytes();
    drop(probe);
    std::fs::remove_dir_all(&probe_dir).ok();

    header(&format!(
        "E18 — tiered segment store, scale {scale} ({num_vertices} vertices, {} edges), \
         working set {}B",
        g.num_edges(),
        eng(working_set as f64),
    ));

    let mut points = Vec::new();
    let mut all_zero_loss = true;
    for pct in BUDGET_PCTS {
        let p = run_budget_point(&g, working_set, pct);
        println!(
            "{:3}% RAM ({}B): miss rate {:5.1}% ({} hits / {} misses) | \
             read {}B, {} evictions, {} prefetches | bfs {:7.2} ms, pagerank {:7.2} ms | \
             scrub {:7.1} MB/s | repair {:6.2} ms | {}",
            p.budget_pct,
            eng(p.ram_budget_bytes as f64),
            p.miss_rate * 100.0,
            p.cache_hits,
            p.cache_misses,
            eng(p.read_bytes as f64),
            p.evictions,
            p.prefetches,
            p.bfs_ms,
            p.pagerank_ms,
            p.scrub_mb_per_s,
            p.repair_ms,
            if p.zero_loss { "zero loss" } else { "LOSS" },
        );
        all_zero_loss &= p.zero_loss;
        points.push(p);
    }

    header("cost model — tier IO as disk demand (measured vs projected)");
    let model = run_model_comparison(scale.min(10));
    let mut model_disk_seen = true;
    for r in &model {
        println!(
            "{:11} disk: measured {}B, projected {}B",
            r.step,
            eng(r.measured_disk),
            eng(r.projected_disk),
        );
        model_disk_seen &= r.measured_disk > 0.0 && r.projected_disk > 0.0;
    }

    // Hand-rolled JSON (no serde in the dependency budget).
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!("  \"scale\": {scale},\n"));
    j.push_str(&format!("  \"num_vertices\": {num_vertices},\n"));
    j.push_str(&format!("  \"num_edges\": {},\n", g.num_edges()));
    j.push_str(&format!("  \"working_set_bytes\": {working_set},\n"));
    j.push_str(&format!("  \"smoke\": {smoke},\n"));
    j.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"budget_pct\": {}, \"ram_budget_bytes\": {}, \"miss_rate\": {:.4}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"read_bytes\": {}, \
             \"evictions\": {}, \"prefetches\": {}, \"bfs_ms\": {:.3}, \
             \"pagerank_ms\": {:.3}, \"scrub_mb_per_s\": {:.1}, \"scrub_bytes\": {}, \
             \"repair_ms\": {:.3}, \"repaired\": {}, \"zero_loss\": {}}}{}\n",
            p.budget_pct,
            p.ram_budget_bytes,
            p.miss_rate,
            p.cache_hits,
            p.cache_misses,
            p.read_bytes,
            p.evictions,
            p.prefetches,
            p.bfs_ms,
            p.pagerank_ms,
            p.scrub_mb_per_s,
            p.scrub_bytes,
            p.repair_ms,
            p.repaired,
            p.zero_loss,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"model\": [\n");
    for (i, r) in model.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"step\": \"{}\", \"measured_disk_bytes\": {:.0}, \
             \"projected_disk_bytes\": {:.0}}}{}\n",
            r.step,
            r.measured_disk,
            r.projected_disk,
            if i + 1 == model.len() { "" } else { "," },
        ));
    }
    j.push_str("  ]\n");
    j.push_str("}\n");
    std::fs::write("BENCH_tiered.json", &j).expect("write BENCH_tiered.json");
    println!("\nwrote BENCH_tiered.json");

    if assert_zero_loss {
        if !all_zero_loss {
            eprintln!("FAIL: a budget point lost data or diverged after repair");
            std::process::exit(1);
        }
        if !model_disk_seen {
            eprintln!("FAIL: tier IO did not appear as disk demand in the cost model");
            std::process::exit(1);
        }
        println!("zero-loss assertion held at every budget");
    }
}
