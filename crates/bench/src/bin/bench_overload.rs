//! E13 driver: overload behaviour under increasing firehose rates.
//!
//! For each rate multiplier (offered batches per pumped batch) the
//! driver pushes the same R-MAT update stream through the admission
//! front-end, pumps at unit rate, then drains — and records what the
//! engine gave up to stay standing: shed fraction per priority class,
//! degradation-ladder counters, peak queue depth, and throughput.
//! Results land in `BENCH_overload.json`.
//!
//! The acceptance criteria this file certifies: queue depth never
//! exceeds the admission capacity and no high-priority update is lost,
//! at any rate.
//!
//! ```sh
//! cargo run --release -p ga-bench --bin bench_overload
//! # smoke (CI): GA_BENCH_SMOKE=1 shrinks the stream
//! ```

use ga_bench::header;
use ga_core::flow::{DegradationLevel, FlowEngine, OverloadConfig, PageRankAnalytic};
use ga_graph::dynamic::ApplyResult;
use ga_graph::DynamicGraph;
use ga_stream::admission::{AdmissionConfig, Priority};
use ga_stream::update::{rmat_edge_stream, UpdateBatch};
use ga_stream::{Event, EventKind, Monitor, Update};
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("GA_BENCH_SMOKE").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--smoke")
}

/// One O(1) event per batch end — drives the trigger at a fixed rate so
/// the analytic cost is per-batch, not per-update.
struct Pulse;

impl Monitor for Pulse {
    fn name(&self) -> &'static str {
        "pulse"
    }
    fn on_update(
        &mut self,
        _g: &DynamicGraph,
        _u: &Update,
        _r: ApplyResult,
        _t: u64,
        _out: &mut Vec<Event>,
    ) {
    }
    fn on_batch_end(&mut self, _g: &DynamicGraph, time: u64, out: &mut Vec<Event>) {
        out.push(Event {
            time,
            source: "pulse",
            kind: EventKind::GlobalValue {
                metric: "pulse",
                value: 1.0,
            },
        });
    }
}

const CFG: AdmissionConfig = AdmissionConfig {
    capacity: 8192,
    normal_watermark: 6144,
    bulk_watermark: 4096,
};

struct RatePoint {
    multiplier: usize,
    wall_ms: f64,
    max_depth: usize,
    shed_fraction: f64,
    bulk_loss_rate: f64,
    normal_loss_rate: f64,
    high_lost: usize,
    deadline_partials: usize,
    analytics_skipped: usize,
    batch_runs: usize,
    updates_applied: usize,
    final_level: &'static str,
}

fn run_rate(multiplier: usize, batches: &[(Priority, UpdateBatch)], scale: u32) -> RatePoint {
    let mut e = FlowEngine::builder()
        .admission(CFG)
        .overload(OverloadConfig {
            partial_at: CFG.bulk_watermark / 2,
            seeds_only_at: CFG.bulk_watermark,
            shed_at: CFG.normal_watermark,
            ..OverloadConfig::default()
        })
        .build(1usize << scale)
        .expect("in-memory engine");
    e.register_monitor(Box::new(Pulse));
    let idx = e.register_analytic(Box::new(PageRankAnalytic { damping: 0.85 }));
    let trigger = |ev: &Event| match ev.kind {
        EventKind::GlobalValue {
            metric: "pulse", ..
        } => Some(vec![0]),
        _ => None,
    };

    let t0 = Instant::now();
    let mut max_depth = 0;
    for round in batches.chunks(multiplier) {
        for (class, batch) in round {
            e.offer(*class, batch.clone());
        }
        max_depth = max_depth.max(e.queue_depth());
        assert!(e.queue_depth() <= CFG.capacity, "capacity bound violated");
        e.pump(1, trigger, Some(idx)).unwrap();
    }
    while e.queue_depth() > 0 {
        e.pump(64, trigger, Some(idx)).unwrap();
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let adm = e.admission_stats();
    let stats = e.stats();
    let offered: usize = adm.offered.iter().sum();
    let loss_rate = |p: Priority| adm.lost(p) as f64 / adm.offered[p.idx()].max(1) as f64;
    assert_eq!(
        adm.lost(Priority::High),
        0,
        "high-priority loss at {multiplier}x"
    );
    assert_eq!(e.degradation_level(), DegradationLevel::Full);
    RatePoint {
        multiplier,
        wall_ms,
        max_depth,
        shed_fraction: stats.overload.updates_shed as f64 / offered as f64,
        bulk_loss_rate: loss_rate(Priority::Bulk),
        normal_loss_rate: loss_rate(Priority::Normal),
        high_lost: adm.lost(Priority::High),
        deadline_partials: stats.overload.deadline_partials,
        analytics_skipped: stats.overload.analytics_skipped,
        batch_runs: stats.analytics.batch_runs,
        updates_applied: stats.ingest.updates_applied,
        final_level: e.degradation_level().name(),
    }
}

fn main() {
    let smoke = smoke();
    let scale: u32 = if smoke { 11 } else { 13 };
    let total_updates = if smoke { 20_000 } else { 100_000 };
    let batch_len = 50;

    header(&format!(
        "E13 — overload ladder, R-MAT scale {scale}, {total_updates} updates in batches of {batch_len}"
    ));

    // Constant batch time: priority reordering must not create
    // artificial staleness quarantine.
    let updates = rmat_edge_stream(scale, total_updates, 0.1, 17);
    let batches: Vec<(Priority, UpdateBatch)> = updates
        .chunks(batch_len)
        .enumerate()
        .map(|(i, chunk)| {
            // 10% high / 30% bulk / 60% normal: the lossless guarantee
            // for high only holds while high traffic itself fits in
            // capacity + drain — keep its share inside that envelope
            // even at the 16x point.
            let class = match i % 10 {
                0 => Priority::High,
                1 | 4 | 6 => Priority::Bulk,
                _ => Priority::Normal,
            };
            (
                class,
                UpdateBatch {
                    time: 1,
                    updates: chunk.to_vec(),
                },
            )
        })
        .collect();

    let mut points = Vec::new();
    for multiplier in [1usize, 2, 4, 8, 16] {
        let p = run_rate(multiplier, &batches, scale);
        println!(
            "{:3}x: {:9.1} ms, peak depth {:5}, shed {:5.1}% (bulk {:5.1}% / normal {:5.1}%), \
             partials {:4}, skipped {:4}, runs {:4}, level {}",
            p.multiplier,
            p.wall_ms,
            p.max_depth,
            p.shed_fraction * 100.0,
            p.bulk_loss_rate * 100.0,
            p.normal_loss_rate * 100.0,
            p.deadline_partials,
            p.analytics_skipped,
            p.batch_runs,
            p.final_level,
        );
        points.push(p);
    }

    // Hand-rolled JSON (no serde in the dependency budget).
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!("  \"scale\": {scale},\n"));
    j.push_str(&format!("  \"total_updates\": {total_updates},\n"));
    j.push_str(&format!("  \"batch_len\": {batch_len},\n"));
    j.push_str(&format!("  \"smoke\": {smoke},\n"));
    j.push_str(&format!("  \"capacity\": {},\n", CFG.capacity));
    j.push_str("  \"rates\": [\n");
    for (i, p) in points.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"multiplier\": {}, \"wall_ms\": {:.2}, \"max_depth\": {}, \
             \"shed_fraction\": {:.4}, \"bulk_loss_rate\": {:.4}, \"normal_loss_rate\": {:.4}, \
             \"high_lost\": {}, \"deadline_partials\": {}, \"analytics_skipped\": {}, \
             \"batch_runs\": {}, \"updates_applied\": {}, \"final_level\": \"{}\"}}{}\n",
            p.multiplier,
            p.wall_ms,
            p.max_depth,
            p.shed_fraction,
            p.bulk_loss_rate,
            p.normal_loss_rate,
            p.high_lost,
            p.deadline_partials,
            p.analytics_skipped,
            p.batch_runs,
            p.updates_applied,
            p.final_level,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    let bounded = points.iter().all(|p| p.max_depth <= CFG.capacity);
    let no_high_loss = points.iter().all(|p| p.high_lost == 0);
    let sheds_under_pressure = points.iter().any(|p| p.shed_fraction > 0.0);
    j.push_str(&format!("  \"depth_bounded_by_capacity\": {bounded},\n"));
    j.push_str(&format!("  \"no_high_priority_loss\": {no_high_loss},\n"));
    j.push_str(&format!(
        "  \"sheds_under_pressure\": {sheds_under_pressure}\n"
    ));
    j.push_str("}\n");

    std::fs::write("BENCH_overload.json", &j).expect("write BENCH_overload.json");
    println!("\nwrote BENCH_overload.json");
}
