//! Regenerate Fig. 2 as a running system: the combined batch +
//! streaming reference benchmark with explicit instrumentation — the
//! artifact the paper's conclusion calls for.
//!
//! Pipeline exercised:
//! 1. bulk ingest: noisy records → batch dedup → persistent entity graph
//! 2. batch path: top-degree seeds → subgraph extraction → PageRank +
//!    triangle analytics → property write-back
//! 3. streaming path: R-MAT update stream through incremental monitors
//!    (triangles, components, Jaccard) with threshold triggers that
//!    launch extraction + a batch analytic
//! 4. print the FlowStats instrumentation record
//!
//! ```sh
//! cargo run --release -p ga-bench --bin fig2_flow
//! ```
//!
//! Durability demo (WAL + checkpoints + crash/recovery):
//!
//! ```sh
//! # Run with durability on, crash partway through the stream:
//! fig2_flow --checkpoint-dir /tmp/fig2 --crash-after 20
//! # Pick up where the crash left off (checkpoint + WAL replay):
//! fig2_flow --checkpoint-dir /tmp/fig2 --recover
//! ```
//!
//! Observability export (`ga-obs` JSON-lines, one snapshot per line):
//!
//! ```sh
//! fig2_flow --metrics-out metrics.jsonl
//! ```

use ga_bench::header;
use ga_core::dedup::{dedup_batch, generate_records};
use ga_core::flow::{
    ComponentsAnalytic, FlowEngine, PageRankAnalytic, SelectionCriteria, TriangleAnalytic,
};
use ga_graph::ExtractOptions;
use ga_obs::{Recorder, Step};
use ga_stream::jaccard_stream::JaccardMonitor;
use ga_stream::tri_inc::IncrementalTriangles;
use ga_stream::update::{into_batches, rmat_edge_stream};
use ga_stream::EventKind;
use std::time::Instant;

/// `--checkpoint-dir DIR [--crash-after N] [--recover]`, parsed by hand
/// (no CLI dependency in this workspace).
struct Args {
    checkpoint_dir: Option<String>,
    crash_after: Option<usize>,
    recover: bool,
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        checkpoint_dir: None,
        crash_after: None,
        recover: false,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--checkpoint-dir" => args.checkpoint_dir = it.next(),
            "--crash-after" => {
                args.crash_after = it.next().and_then(|v| v.parse().ok());
            }
            "--recover" => args.recover = true,
            "--metrics-out" => args.metrics_out = it.next(),
            other => {
                eprintln!(
                    "unknown flag {other}; flags: --checkpoint-dir DIR --crash-after N \
                     --recover --metrics-out PATH"
                );
                std::process::exit(2);
            }
        }
    }
    if (args.crash_after.is_some() || args.recover) && args.checkpoint_dir.is_none() {
        eprintln!("--crash-after/--recover require --checkpoint-dir");
        std::process::exit(2);
    }
    args
}

fn main() {
    let args = parse_args();
    let t0 = Instant::now();
    header("Fig. 2 — Canonical Graph Processing Flow (reference run)");

    // ---- 1. Bulk dedup ingest ------------------------------------
    let records = generate_records(2_000, 10_000, 0.15, 11);
    let t_dedup = Instant::now();
    let dedup = dedup_batch(&records, 0.78);
    let (precision, recall) = dedup.score(&records);
    println!(
        "dedup: {} records -> {} entities ({} comparisons, P={precision:.3} R={recall:.3}) in {:?}",
        records.len(),
        dedup.num_entities,
        dedup.comparisons,
        t_dedup.elapsed()
    );

    // Persistent graph: entities as vertices, record co-occurrence in
    // the same block linking them is approximated here with an R-MAT
    // relation stream below; the NORA example exercises the true
    // person-address build.
    let n = 1usize << 12;
    let mut resume_from = 0usize;
    // One config describes the whole run: extraction limits plus an
    // *enabled* recorder so every NORA step leaves a span behind.
    let config = FlowEngine::builder()
        .extract(ExtractOptions {
            depth: 2,
            max_vertices: 1024,
            ..ExtractOptions::default()
        })
        .recorder(Recorder::enabled());
    let mut flow = if args.recover {
        let dir = args.checkpoint_dir.as_deref().unwrap();
        let flow = config.recover(dir).expect("recover from checkpoint dir");
        // WAL frame i (1-based) carries stream batch i-1.
        resume_from = (flow.next_wal_seq().unwrap() - 1) as usize;
        println!(
            "recovered from {dir}: {} updates already applied, {} quarantined; resuming at stream batch {resume_from}",
            flow.stats().ingest.updates_applied,
            flow.stats().ingest.updates_quarantined,
        );
        flow
    } else {
        let config = match args.checkpoint_dir.as_deref() {
            Some(dir) => {
                println!("durability on: WAL + checkpoints under {dir}");
                config.durability_dir(dir)
            }
            None => config,
        };
        let mut flow = config.build(n).expect("build flow engine");
        flow.note_ingest(records.len(), dedup.num_entities);
        flow
    };
    // The dedup pass ran before the engine existed; charge its measured
    // wall time and modeled resource traffic to the `dedup` span so the
    // exported snapshot covers the full Fig. 2 flow.
    flow.recorder().record(
        Step::Dedup,
        t_dedup.elapsed().as_nanos() as u64,
        [
            dedup.comparisons as u64 * 2_000,
            dedup.comparisons as u64 * 256,
            records.len() as u64 * 2_048,
            0,
        ],
    );

    let pr = flow.register_analytic(Box::new(PageRankAnalytic { damping: 0.85 }));
    let tri = flow.register_analytic(Box::new(TriangleAnalytic {
        alert_transitivity: 0.4,
    }));
    let comp = flow.register_analytic(Box::new(ComponentsAnalytic));
    flow.register_monitor(Box::new(IncrementalTriangles::new()));
    flow.register_monitor(Box::new(JaccardMonitor::new(0.95)));

    // ---- 2. Streaming path with triggers --------------------------
    // The trigger budget models the paper's staged design: the cheap
    // local test fires often; the expensive extraction + batch analytic
    // is rationed.
    let stream = rmat_edge_stream(12, 60_000, 0.05, 23);
    let t_stream = Instant::now();
    let mut triggered_runs = 0;
    let mut processed_this_run = 0usize;
    let budget = std::cell::Cell::new(50usize);
    for (i, batch) in into_batches(stream, 1_000, 0).into_iter().enumerate() {
        if i < resume_from {
            continue; // already durable and replayed by recovery
        }
        if Some(processed_this_run) == args.crash_after {
            println!("simulated crash after {processed_this_run} batches; recover with --recover");
            std::process::exit(1);
        }
        let trigger = |ev: &ga_stream::Event| match ev.kind {
            EventKind::PairThreshold { a, b, .. } if budget.get() > 0 => {
                budget.set(budget.get() - 1);
                Some(vec![a, b])
            }
            _ => None,
        };
        let reports = if flow.is_durable() {
            flow.process_stream_durable(&batch, trigger, Some(tri))
                .expect("durable ingest")
        } else {
            flow.process_stream(&batch, trigger, Some(tri))
        };
        triggered_runs += reports.len();
        processed_this_run += 1;
        if flow.is_durable() && processed_this_run.is_multiple_of(10) {
            flow.checkpoint().expect("checkpoint");
        }
    }
    if flow.is_durable() {
        let path = flow.checkpoint().expect("final checkpoint");
        println!("final checkpoint: {}", path.display());
    }
    println!(
        "streaming: {} updates applied, {} triggered analytic runs in {:?}",
        flow.stats().ingest.updates_applied,
        triggered_runs,
        t_stream.elapsed()
    );

    // ---- 3. Batch path on the accumulated persistent graph --------
    let t_batch = Instant::now();
    let r1 = flow.run_batch(&SelectionCriteria::TopKDegree { k: 4 }, pr);
    println!(
        "batch pagerank: seeds {:?}, subgraph {}v/{}e, globals {:?}",
        r1.seeds, r1.subgraph_size.0, r1.subgraph_size.1, r1.globals
    );
    let r2 = flow.run_batch(
        &SelectionCriteria::TopKProperty {
            name: "pagerank".into(),
            k: 2,
        },
        comp,
    );
    println!(
        "batch components: seeds {:?}, subgraph {}v/{}e, components {}",
        r2.seeds, r2.subgraph_size.0, r2.subgraph_size.1, r2.globals[0].1
    );
    println!("batch path in {:?}", t_batch.elapsed());

    // ---- 4. The instrumentation record ----------------------------
    header("FlowStats (the calibration counters)");
    let s = flow.stats();
    println!("ingest:");
    println!("  records_ingested      {}", s.ingest.records_ingested);
    println!("  entities_created      {}", s.ingest.entities_created);
    println!("  updates_applied       {}", s.ingest.updates_applied);
    println!("  updates_quarantined   {}", s.ingest.updates_quarantined);
    println!("  events_observed       {}", s.ingest.events_observed);
    println!("  triggers_fired        {}", s.ingest.triggers_fired);
    println!("analytics:");
    println!("  batch_runs            {}", s.analytics.batch_runs);
    println!("  seeds_selected        {}", s.analytics.seeds_selected);
    println!(
        "  subgraphs_extracted   {}",
        s.analytics.subgraphs_extracted
    );
    println!("  vertices_extracted    {}", s.analytics.vertices_extracted);
    println!("  edges_extracted       {}", s.analytics.edges_extracted);
    println!("  props_written_back    {}", s.analytics.props_written_back);
    println!("  globals_produced      {}", s.analytics.globals_produced);
    println!("  alerts_raised         {}", s.analytics.alerts_raised);
    println!("  kernel_cpu_ops        {}", s.analytics.kernel_cpu_ops);
    println!("  kernel_mem_bytes      {}", s.analytics.kernel_mem_bytes);
    println!(
        "  kernel_edges_touched  {}",
        s.analytics.kernel_edges_touched
    );
    println!("snapshots:");
    println!("  rebuilds              {}", s.snapshots.rebuilds);
    println!("  rows_reused           {}", s.snapshots.rows_reused);
    println!("  mem_bytes             {}", s.snapshots.mem_bytes);
    println!("overload:");
    println!("  updates_shed          {}", s.overload.updates_shed);
    println!("  deadline_partials     {}", s.overload.deadline_partials);
    println!("  analytics_skipped     {}", s.overload.analytics_skipped);
    println!("durability:");
    println!("  retries               {}", s.durability.retries);
    println!("  breaker_trips         {}", s.durability.breaker_trips);

    // ---- 5. The observability export ------------------------------
    let snap = flow.metrics();
    header("ga-obs spans (measured four-resource totals per NORA step)");
    println!(
        "{:<16} {:>8} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "step", "count", "cpu_ops", "mem_bytes", "disk_bytes", "net_bytes", "wall_ms"
    );
    for m in &snap.steps {
        if m.count == 0 {
            continue;
        }
        println!(
            "{:<16} {:>8} {:>14} {:>14} {:>12} {:>12} {:>10.2}",
            m.step.name(),
            m.count,
            m.cpu_ops,
            m.mem_bytes,
            m.disk_bytes,
            m.net_bytes,
            m.wall_nanos as f64 / 1e6,
        );
    }
    println!(
        "steps covered: {} / {}; journal events: {}",
        snap.steps_covered(),
        Step::ALL.len(),
        snap.events.len()
    );
    if let Some(path) = args.metrics_out.as_deref() {
        let mut line = snap.to_json();
        line.push('\n');
        std::fs::write(path, line).expect("write metrics JSONL");
        println!("wrote {path} ({} schema)", ga_obs::SCHEMA);
    }
    println!("\ntotal wall time {:?}", t0.elapsed());
}
