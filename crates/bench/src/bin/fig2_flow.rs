//! Regenerate Fig. 2 as a running system: the combined batch +
//! streaming reference benchmark with explicit instrumentation — the
//! artifact the paper's conclusion calls for.
//!
//! Pipeline exercised:
//! 1. bulk ingest: noisy records → batch dedup → persistent entity graph
//! 2. batch path: top-degree seeds → subgraph extraction → PageRank +
//!    triangle analytics → property write-back
//! 3. streaming path: R-MAT update stream through incremental monitors
//!    (triangles, components, Jaccard) with threshold triggers that
//!    launch extraction + a batch analytic
//! 4. print the FlowStats instrumentation record
//!
//! ```sh
//! cargo run --release -p ga-bench --bin fig2_flow
//! ```

use ga_bench::header;
use ga_core::dedup::{dedup_batch, generate_records};
use ga_core::flow::{
    ComponentsAnalytic, FlowEngine, PageRankAnalytic, SelectionCriteria, TriangleAnalytic,
};
use ga_stream::jaccard_stream::JaccardMonitor;
use ga_stream::tri_inc::IncrementalTriangles;
use ga_stream::update::{into_batches, rmat_edge_stream};
use ga_stream::EventKind;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    header("Fig. 2 — Canonical Graph Processing Flow (reference run)");

    // ---- 1. Bulk dedup ingest ------------------------------------
    let records = generate_records(2_000, 10_000, 0.15, 11);
    let t_dedup = Instant::now();
    let dedup = dedup_batch(&records, 0.78);
    let (precision, recall) = dedup.score(&records);
    println!(
        "dedup: {} records -> {} entities ({} comparisons, P={precision:.3} R={recall:.3}) in {:?}",
        records.len(),
        dedup.num_entities,
        dedup.comparisons,
        t_dedup.elapsed()
    );

    // Persistent graph: entities as vertices, record co-occurrence in
    // the same block linking them is approximated here with an R-MAT
    // relation stream below; the NORA example exercises the true
    // person-address build.
    let n = 1usize << 12;
    let mut flow = FlowEngine::new(n);
    flow.note_ingest(records.len(), dedup.num_entities);
    flow.extract.depth = 2;
    flow.extract.max_vertices = 1024;

    let pr = flow.register_analytic(Box::new(PageRankAnalytic { damping: 0.85 }));
    let tri = flow.register_analytic(Box::new(TriangleAnalytic {
        alert_transitivity: 0.4,
    }));
    let comp = flow.register_analytic(Box::new(ComponentsAnalytic));
    flow.register_monitor(Box::new(IncrementalTriangles::new()));
    flow.register_monitor(Box::new(JaccardMonitor::new(0.95)));

    // ---- 2. Streaming path with triggers --------------------------
    // The trigger budget models the paper's staged design: the cheap
    // local test fires often; the expensive extraction + batch analytic
    // is rationed.
    let stream = rmat_edge_stream(12, 60_000, 0.05, 23);
    let t_stream = Instant::now();
    let mut triggered_runs = 0;
    let budget = std::cell::Cell::new(50usize);
    for batch in into_batches(stream, 1_000, 0) {
        let reports = flow.process_stream(
            &batch,
            |ev| match ev.kind {
                EventKind::PairThreshold { a, b, .. } if budget.get() > 0 => {
                    budget.set(budget.get() - 1);
                    Some(vec![a, b])
                }
                _ => None,
            },
            Some(tri),
        );
        triggered_runs += reports.len();
    }
    println!(
        "streaming: {} updates applied, {} triggered analytic runs in {:?}",
        flow.stats().updates_applied,
        triggered_runs,
        t_stream.elapsed()
    );

    // ---- 3. Batch path on the accumulated persistent graph --------
    let t_batch = Instant::now();
    let r1 = flow.run_batch(&SelectionCriteria::TopKDegree { k: 4 }, pr);
    println!(
        "batch pagerank: seeds {:?}, subgraph {}v/{}e, globals {:?}",
        r1.seeds, r1.subgraph_size.0, r1.subgraph_size.1, r1.globals
    );
    let r2 = flow.run_batch(
        &SelectionCriteria::TopKProperty {
            name: "pagerank".into(),
            k: 2,
        },
        comp,
    );
    println!(
        "batch components: seeds {:?}, subgraph {}v/{}e, components {}",
        r2.seeds, r2.subgraph_size.0, r2.subgraph_size.1, r2.globals[0].1
    );
    println!("batch path in {:?}", t_batch.elapsed());

    // ---- 4. The instrumentation record ----------------------------
    header("FlowStats (the calibration counters)");
    let s = flow.stats();
    println!("records_ingested      {}", s.records_ingested);
    println!("entities_created      {}", s.entities_created);
    println!("updates_applied       {}", s.updates_applied);
    println!("events_observed       {}", s.events_observed);
    println!("triggers_fired        {}", s.triggers_fired);
    println!("batch_runs            {}", s.batch_runs);
    println!("seeds_selected        {}", s.seeds_selected);
    println!("subgraphs_extracted   {}", s.subgraphs_extracted);
    println!("vertices_extracted    {}", s.vertices_extracted);
    println!("edges_extracted       {}", s.edges_extracted);
    println!("props_written_back    {}", s.props_written_back);
    println!("globals_produced      {}", s.globals_produced);
    println!("alerts_raised         {}", s.alerts_raised);
    println!("kernel_cpu_ops        {}", s.kernel_cpu_ops);
    println!("kernel_mem_bytes      {}", s.kernel_mem_bytes);
    println!("kernel_edges_touched  {}", s.kernel_edges_touched);
    println!("\ntotal wall time {:?}", t0.elapsed());
}
