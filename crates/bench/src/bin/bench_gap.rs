//! E17 driver: the GAP-parity kernel pass.
//!
//! For the five GAP Benchmark Suite kernels (BFS, PageRank, SSSP,
//! connected components, triangle counting) over two graph shapes
//! (skewed R-MAT and flat uniform), the driver runs each kernel on the
//! plain `CsrGraph` and on the delta-varint [`CompressedCsr`], plus
//! pull-mode PageRank against its cache-blocked variant at forced
//! equal iteration counts, and records:
//!
//! * **agreement** — every kernel must return *bit-identical* results
//!   on both adjacency representations, and blocked PageRank must
//!   match pull PageRank exactly (any divergence aborts with a
//!   non-zero exit, which is what CI's `--assert-agreement`
//!   invocation relies on);
//! * **compression** — encoded adjacency bytes vs the plain 4 B/edge
//!   layout; at scale ≥ 13 the R-MAT ratio is gated at ≥ 2×;
//! * **wall clock** — best-of-N trials per kernel per representation;
//!   at scale ≥ 13 blocked PageRank is gated to beat pull.
//!
//! Results land in `BENCH_gap.json`.
//!
//! ```sh
//! cargo run --release -p ga-bench --bin bench_gap
//! # smoke (CI): GA_BENCH_SMOKE=1 GA_BENCH_SCALE=12 ... -- --assert-agreement
//! ```

use ga_bench::{eng, header};
use ga_graph::gen::{self, RmatParams};
use ga_graph::{CompressedCsr, CsrBuilder, CsrGraph, VertexId};
use ga_kernels::{bfs, cc, pagerank, sssp, triangles, KernelCtx};
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("GA_BENCH_SMOKE").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--smoke")
}

const DAMPING: f64 = 0.85;
/// Equal-iteration PageRank comparison: tol 0 forces every sweep.
const PR_ITERS: usize = 20;

struct KernelPoint {
    kernel: &'static str,
    plain_ms: f64,
    compressed_ms: f64,
    agrees: bool,
}

struct ShapePoint {
    shape: &'static str,
    plain_adj_bytes: u64,
    compressed_adj_bytes: u64,
    ratio: f64,
    kernels: Vec<KernelPoint>,
    pr_pull_ms: f64,
    pr_blocked_ms: f64,
    pr_blocked_agrees: bool,
}

/// Best-of-`trials` wall time for `f`, keeping the last result.
fn time_best<T>(trials: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..trials {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.unwrap())
}

fn run_shape(
    shape: &'static str,
    edges: &[(VertexId, VertexId)],
    num_vertices: usize,
    trials: usize,
) -> ShapePoint {
    // One graph serves all five kernels: undirected simple weighted
    // CSR with a reverse index (triangles need simple+undirected, pull
    // PageRank needs reverse, SSSP needs weights).
    let weighted = gen::with_random_weights(edges, 0.05, 1.0, 7);
    let g: CsrGraph = CsrBuilder::new(num_vertices)
        .weighted_edges(weighted)
        .symmetrize(true)
        .dedup(true)
        .drop_self_loops(true)
        .reverse(true)
        .build();
    let c = CompressedCsr::from_csr(&g);
    let src: VertexId = (0..num_vertices as VertexId)
        .max_by_key(|&v| g.degree(v))
        .unwrap_or(0);
    let ctx = KernelCtx::parallel();

    header(&format!(
        "{shape}: {} vertices, {} directed edges, src {src}",
        g.num_vertices(),
        g.num_edges()
    ));

    let mut kernels = Vec::new();
    let mut push = |kernel: &'static str, plain_ms: f64, compressed_ms: f64, agrees: bool| {
        println!(
            "{kernel:>4}: plain {plain_ms:8.2} ms, compressed {compressed_ms:8.2} ms ({:+5.1}%) | {}",
            (compressed_ms / plain_ms - 1.0) * 100.0,
            if agrees { "bit-identical" } else { "DIVERGED" },
        );
        kernels.push(KernelPoint {
            kernel,
            plain_ms,
            compressed_ms,
            agrees,
        });
    };

    let (bp_ms, bp) = time_best(trials, || bfs::bfs_with(&g, src, &ctx));
    let (bc_ms, bc) = time_best(trials, || bfs::bfs_with(&c, src, &ctx));
    push("bfs", bp_ms, bc_ms, bp.depth == bc.depth);

    // The three PageRank variants are interleaved within each trial so
    // slow minutes on a shared machine hit all of them equally.
    let (mut pp_ms, mut pc_ms, mut blk_ms) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let (mut pp, mut pc, mut blk) = (None, None, None);
    for _ in 0..trials {
        let t = Instant::now();
        pp = Some(pagerank::pagerank_with(&g, DAMPING, 0.0, PR_ITERS, &ctx));
        pp_ms = pp_ms.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        pc = Some(pagerank::pagerank_with(&c, DAMPING, 0.0, PR_ITERS, &ctx));
        pc_ms = pc_ms.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        blk = Some(pagerank::pagerank_blocked_with(
            &g, DAMPING, 0.0, PR_ITERS, &ctx,
        ));
        blk_ms = blk_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let (pp, pc, blk) = (pp.unwrap(), pc.unwrap(), blk.unwrap());
    push("pr", pp_ms, pc_ms, pp.rank == pc.rank);

    let (sp_ms, sp) = time_best(trials, || sssp::sssp_auto_with(&g, src, &ctx));
    let (sc_ms, sc) = time_best(trials, || sssp::sssp_auto_with(&c, src, &ctx));
    push(
        "sssp",
        sp_ms,
        sc_ms,
        sp.dist == sc.dist && sp.parent == sc.parent,
    );

    let (cp_ms, cp) = time_best(trials, || cc::wcc_with(&g, &ctx));
    let (ccm_ms, ccm) = time_best(trials, || cc::wcc_with(&c, &ctx));
    push(
        "cc",
        cp_ms,
        ccm_ms,
        cp.label == ccm.label && cp.count == ccm.count,
    );

    let (tp_ms, tp) = time_best(trials, || triangles::count_global_with(&g, &ctx));
    let (tc_ms, tc) = time_best(trials, || triangles::count_global_with(&c, &ctx));
    push("tc", tp_ms, tc_ms, tp == tc);

    // Pull vs cache-blocked PageRank at forced equal iterations.
    let pr_blocked_agrees = blk.rank == pp.rank && blk.work == pp.work;
    println!(
        "  pr: pull  {pp_ms:8.2} ms, blocked    {blk_ms:8.2} ms ({:+5.1}%) | {}",
        (blk_ms / pp_ms - 1.0) * 100.0,
        if pr_blocked_agrees {
            "bit-identical"
        } else {
            "DIVERGED"
        },
    );

    let plain_adj_bytes = c.plain_adjacency_bytes();
    let compressed_adj_bytes = c.adjacency_bytes();
    let ratio = plain_adj_bytes as f64 / compressed_adj_bytes as f64;
    println!(
        "adjacency: plain {} B, compressed {} B — {ratio:.2}x smaller",
        eng(plain_adj_bytes as f64),
        eng(compressed_adj_bytes as f64),
    );

    ShapePoint {
        shape,
        plain_adj_bytes,
        compressed_adj_bytes,
        ratio,
        kernels,
        pr_pull_ms: pp_ms,
        pr_blocked_ms: blk_ms,
        pr_blocked_agrees,
    }
}

fn json_shape(p: &ShapePoint) -> String {
    let mut j = String::new();
    j.push_str(&format!("    \"{}\": {{\n", p.shape));
    j.push_str(&format!(
        "      \"plain_adj_bytes\": {}, \"compressed_adj_bytes\": {}, \"compression_ratio\": {:.3},\n",
        p.plain_adj_bytes, p.compressed_adj_bytes, p.ratio
    ));
    j.push_str(&format!(
        "      \"pagerank_pull_ms\": {:.2}, \"pagerank_blocked_ms\": {:.2}, \"blocked_agrees\": {},\n",
        p.pr_pull_ms, p.pr_blocked_ms, p.pr_blocked_agrees
    ));
    j.push_str("      \"kernels\": [\n");
    for (i, k) in p.kernels.iter().enumerate() {
        j.push_str(&format!(
            "        {{\"kernel\": \"{}\", \"plain_ms\": {:.2}, \"compressed_ms\": {:.2}, \"agrees\": {}}}{}\n",
            k.kernel,
            k.plain_ms,
            k.compressed_ms,
            k.agrees,
            if i + 1 == p.kernels.len() { "" } else { "," },
        ));
    }
    j.push_str("      ]\n");
    j.push_str("    }");
    j
}

fn main() {
    let smoke = smoke();
    // Full runs default to scale 18: the f64 contribution array (2 MiB)
    // plus rank vectors decisively outgrow this host's 2 MiB L2, which
    // is the regime cache blocking exists for — at scale 16 the whole
    // pull working set is nearly L2-resident and the blocked-vs-pull
    // margin drowns in co-tenant noise.
    let scale: u32 = std::env::var("GA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 12 } else { 18 });
    let trials: usize = std::env::var("GA_BENCH_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 });
    let num_vertices = 1usize << scale;
    let num_edges = 16 * num_vertices;

    header(&format!(
        "E17 — GAP-parity kernel pass, scale {scale} ({num_vertices} vertices, \
         {num_edges} generated edges), best of {trials} trial(s)"
    ));

    let rmat = run_shape(
        "rmat",
        &gen::rmat(scale, num_edges, RmatParams::GRAPH500, 42),
        num_vertices,
        trials,
    );
    let uniform = run_shape(
        "uniform",
        &gen::erdos_renyi(num_vertices, num_edges, 42),
        num_vertices,
        trials,
    );

    // Hand-rolled JSON (no serde in the dependency budget).
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!("  \"scale\": {scale},\n"));
    j.push_str(&format!("  \"num_vertices\": {num_vertices},\n"));
    j.push_str(&format!("  \"generated_edges\": {num_edges},\n"));
    j.push_str(&format!("  \"trials\": {trials},\n"));
    j.push_str(&format!("  \"smoke\": {smoke},\n"));
    j.push_str(&format!(
        "  \"pagerank\": {{\"damping\": {DAMPING}, \"iterations\": {PR_ITERS}}},\n"
    ));
    j.push_str("  \"graphs\": {\n");
    j.push_str(&json_shape(&rmat));
    j.push_str(",\n");
    j.push_str(&json_shape(&uniform));
    j.push_str("\n  }\n");
    j.push_str("}\n");
    std::fs::write("BENCH_gap.json", &j).expect("write BENCH_gap.json");
    println!("\nwrote BENCH_gap.json");

    // Agreement is the whole point of the representation swap:
    // divergence is always fatal (CI passes --assert-agreement to make
    // the intent explicit on the command line, but the gate is
    // unconditional).
    let mut diverged: Vec<String> = Vec::new();
    for p in [&rmat, &uniform] {
        for k in &p.kernels {
            if !k.agrees {
                diverged.push(format!("{}/{}", p.shape, k.kernel));
            }
        }
        if !p.pr_blocked_agrees {
            diverged.push(format!("{}/pr-blocked", p.shape));
        }
    }
    if !diverged.is_empty() {
        eprintln!("DIVERGENCE between adjacency representations: {diverged:?}");
        std::process::exit(1);
    }
    println!("all kernels bit-identical across plain, compressed, and blocked paths");

    // Performance gates only bind at GAP-meaningful sizes; the CI
    // smoke at scale 12 checks agreement alone.
    if scale >= 13 {
        if rmat.ratio < 2.0 {
            eprintln!(
                "compression gate: R-MAT adjacency ratio {:.2}x < 2.0x",
                rmat.ratio
            );
            std::process::exit(1);
        }
        if rmat.pr_blocked_ms >= rmat.pr_pull_ms {
            eprintln!(
                "blocked-PageRank gate: blocked {:.2} ms not faster than pull {:.2} ms on R-MAT",
                rmat.pr_blocked_ms, rmat.pr_pull_ms
            );
            std::process::exit(1);
        }
        println!(
            "gates passed: R-MAT compression {:.2}x >= 2x, blocked PR {:.2} ms < pull {:.2} ms",
            rmat.ratio, rmat.pr_blocked_ms, rmat.pr_pull_ms
        );
    }
}
