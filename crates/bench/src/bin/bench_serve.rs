//! E19 driver: concurrent query serving over epoch snapshots.
//!
//! The paper's §V-B serving workload — "a stream of independent local
//! queries" answered in tens of microseconds — run as an open-loop
//! load test: reader threads issue point queries at a fixed offered
//! QPS (arrival times independent of completions, so queue delay is
//! *measured*, not hidden), against a graph that is either frozen or
//! being rewritten underneath them by a concurrent firehose ingest
//! thread. Latency is reported as exact p50/p99/p999 from the raw
//! sample set, per offered rate, sharded and unsharded.
//!
//! Consistency is gated unconditionally on every run (the
//! `--assert-consistency` flag is accepted for explicitness but the
//! checks never switch off): reader-observed epochs must be monotonic,
//! every answered query must come from one coherent generation, the
//! final served snapshot must answer bit-identically to a fresh
//! single-threaded replay of the same update stream, and the sharded
//! router must agree with the unsharded engine on every point query.
//!
//! ```sh
//! cargo run --release -p ga-bench --bin bench_serve
//! # smoke (CI): GA_BENCH_SMOKE=1 shrinks scale and rates
//! ```

use ga_bench::header;
use ga_core::flow::FlowEngine;
use ga_core::serve::{QueryOutcome, QueryService, ServeConfig, TenantConfig};
use ga_core::sharded::ShardedFlow;
use ga_stream::admission::{AdmissionConfig, Priority};
use ga_stream::update::{into_batches, rmat_edge_stream, Update, UpdateBatch};
use ga_stream::{Query, SnapshotHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var("GA_BENCH_SMOKE").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--smoke")
}

/// Deterministic per-thread vertex sequence (splitmix64).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn point_query(rng: &mut u64, n: u32) -> Query {
    let v = (splitmix(rng) % n as u64) as u32;
    match splitmix(rng) % 3 {
        0 => Query::Degree { vertex: v },
        1 => Query::Neighbors {
            vertex: v,
            limit: 16,
        },
        _ => Query::get_property(v, "w"),
    }
}

/// Sleep-then-spin until `deadline` (open-loop pacing without burning
/// a core on long waits).
fn pace_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let left = deadline - now;
        if left > Duration::from_micros(200) {
            std::thread::sleep(left - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64 / 1_000.0 // ns -> us
}

struct LoadPoint {
    mode: &'static str,
    firehose: bool,
    offered_qps: u64,
    achieved_qps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    answered: u64,
    shed_high: u64,
    shed_bulk: u64,
}

/// Open-loop point-query load against an unsharded serving engine.
/// `ingest` is the concurrent firehose work the main thread performs
/// while readers run (empty closure = frozen graph).
fn run_unsharded(
    service: &QueryService,
    n_vertices: u32,
    readers: usize,
    offered_qps: u64,
    per_thread: usize,
    firehose: bool,
    mut ingest: impl FnMut(&AtomicBool),
) -> (Vec<u64>, u64, u64, u64) {
    let done = AtomicBool::new(false);
    let interval_ns = readers as u64 * 1_000_000_000 / offered_qps;
    let high = service.tenant(TenantConfig::new("points", Priority::High));
    let bulk = service.tenant(TenantConfig::new("scans", Priority::Bulk));
    let mut latencies: Vec<u64> = Vec::new();
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for t in 0..readers {
            let mut client = service.client(&high);
            let done = &done;
            joins.push(s.spawn(move || {
                let mut rng = 0x5eed ^ (t as u64) << 32 | offered_qps;
                let mut lat = Vec::with_capacity(per_thread);
                let mut last_epoch = 0u64;
                let start = Instant::now() + Duration::from_micros(50);
                for i in 0..per_thread {
                    let sched = start + Duration::from_nanos(i as u64 * interval_ns);
                    pace_until(sched);
                    let q = point_query(&mut rng, n_vertices);
                    match client.run(&q) {
                        QueryOutcome::Answered { epoch, .. } => {
                            // Consistency gate: served epochs never go
                            // backwards under concurrent publication.
                            assert!(
                                epoch.epoch >= last_epoch,
                                "epoch went backwards: {} < {last_epoch}",
                                epoch.epoch
                            );
                            last_epoch = epoch.epoch;
                            // Open-loop latency: from the scheduled
                            // arrival, so queue delay counts.
                            lat.push(sched.elapsed().as_nanos() as u64);
                        }
                        QueryOutcome::Shed(_) => {}
                    }
                }
                done.store(true, Ordering::Release);
                lat
            }));
        }
        // One best-effort Bulk scanner keeps watermark pressure on the
        // shared admission gauge while the points fly.
        let mut scanner = service.client(&bulk);
        let done_ref = &done;
        joins.push(s.spawn(move || {
            let mut lat = Vec::new();
            while !done_ref.load(Ordering::Acquire) {
                let _ = scanner.run(&Query::top_k_by_property("w", 8));
                std::thread::sleep(Duration::from_micros(500));
            }
            lat.clear();
            lat
        }));
        if firehose {
            ingest(&done);
        }
        for j in joins {
            latencies.extend(j.join().expect("reader thread"));
        }
    });
    latencies.sort_unstable();
    let stats = service.stats();
    (
        latencies,
        stats.total_answered(),
        stats.class(Priority::High).shed,
        stats.class(Priority::Bulk).shed,
    )
}

/// Same open-loop sweep through the sharded router (point queries
/// routed to owner shards; no admission layer — raw routing latency).
fn run_sharded(
    flow: &mut ShardedFlow,
    n_vertices: u32,
    readers: usize,
    offered_qps: u64,
    per_thread: usize,
    firehose: bool,
    batches: &[UpdateBatch],
) -> Vec<u64> {
    let mut routers: Vec<_> = (0..readers).map(|_| flow.query_router()).collect();
    let done = AtomicBool::new(false);
    let interval_ns = readers as u64 * 1_000_000_000 / offered_qps;
    let mut latencies: Vec<u64> = Vec::new();
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for (t, mut router) in routers.drain(..).enumerate() {
            let done = &done;
            joins.push(s.spawn(move || {
                let mut rng = 0xca11 ^ (t as u64) << 32 | offered_qps;
                let mut lat = Vec::with_capacity(per_thread);
                let start = Instant::now() + Duration::from_micros(50);
                for i in 0..per_thread {
                    let sched = start + Duration::from_nanos(i as u64 * interval_ns);
                    pace_until(sched);
                    let q = point_query(&mut rng, n_vertices);
                    router.run(&q).expect("routable point query");
                    lat.push(sched.elapsed().as_nanos() as u64);
                }
                done.store(true, Ordering::Release);
                lat
            }));
        }
        if firehose {
            let mut i = 0usize;
            while !done.load(Ordering::Acquire) {
                flow.process_batch(&batches[i % batches.len()])
                    .expect("sharded ingest");
                i += 1;
            }
        }
        for j in joins {
            latencies.extend(j.join().expect("reader thread"));
        }
    });
    latencies.sort_unstable();
    latencies
}

/// Build the firehose batch list: R-MAT edge inserts with periodic
/// property writes so both the adjacency and the columns move.
fn firehose_batches(scale: u32, total: usize, seed: u64) -> Vec<UpdateBatch> {
    let n = 1u32 << scale;
    let mut batches = into_batches(rmat_edge_stream(scale, total, 0.1, seed), 64, 1);
    for (i, b) in batches.iter_mut().enumerate() {
        b.updates.push(Update::PropertySet {
            vertex: (i as u32 * 37) % n,
            name: "w".into(),
            value: (i % 97) as f64,
        });
    }
    batches
}

/// The final-state consistency gate: the served snapshot must answer
/// exactly like a fresh single-threaded replay of the same batches.
fn assert_replay_consistency(handle: &SnapshotHandle, batches: &[UpdateBatch], n: u32) {
    let served = handle.load().expect("published snapshot");
    let mut replay = FlowEngine::new(n as usize);
    for b in batches {
        replay.process_stream(b, |_| None, None);
    }
    let replay_handle = replay.serve_handle();
    let fresh = replay_handle.load().expect("replay snapshot");
    let mut rng = 7u64;
    for _ in 0..256 {
        let q = point_query(&mut rng, n);
        assert_eq!(
            q.run(&served),
            q.run(&fresh),
            "served result diverged from single-threaded replay: {q:?}"
        );
    }
    let topk = Query::top_k_by_property("w", 16);
    assert_eq!(topk.run(&served), topk.run(&fresh), "top-k diverged");
    println!("consistency: served == single-threaded replay (256 point queries + top-k)");
}

/// Sharded-vs-unsharded gate: the router answers every point query
/// exactly like the unsharded serving engine over the same stream.
fn assert_router_consistency(flow: &mut ShardedFlow, handle: &SnapshotHandle, n: u32) {
    let served = handle.load().expect("published snapshot");
    let mut router = flow.query_router();
    let mut rng = 11u64;
    for _ in 0..256 {
        let q = point_query(&mut rng, n);
        assert_eq!(
            router.run(&q).expect("routable"),
            q.run(&served),
            "sharded router diverged on {q:?}"
        );
    }
    let topk = Query::top_k_by_property("w", 16);
    let routed = router.run(&topk).expect("topk routable");
    assert_eq!(routed, topk.run(&served), "sharded top-k diverged");
    println!("consistency: sharded router == unsharded serving (256 point queries + top-k)");
}

fn main() {
    let smoke = smoke();
    // --assert-consistency is the CI spelling; the gates below run
    // unconditionally either way.
    let _ = std::env::args().any(|a| a == "--assert-consistency");
    let scale: u32 = if smoke { 10 } else { 13 };
    let n = 1u32 << scale;
    let total_updates = if smoke { 20_000 } else { 200_000 };
    let readers = 4usize;
    let rates: &[u64] = if smoke {
        &[2_000, 10_000]
    } else {
        &[10_000, 50_000, 200_000]
    };
    let shards = 4usize;

    header(&format!(
        "E19 — concurrent query serving, R-MAT scale {scale}, {readers} readers, \
         {total_updates} firehose updates, shards {shards}"
    ));

    let batches = firehose_batches(scale, total_updates, 42);

    let mut points: Vec<LoadPoint> = Vec::new();

    // ---- Unsharded, frozen and under firehose ----------------------
    for &firehose in &[false, true] {
        for &qps in rates {
            let mut engine = FlowEngine::new(n as usize);
            // Pre-load half the stream so the frozen case serves a real
            // graph; the firehose case keeps ingesting the second half
            // (wrapping) while readers run.
            for b in &batches[..batches.len() / 2] {
                engine.process_stream(b, |_| None, None);
            }
            let handle = engine.serve_handle();
            let service = QueryService::new(
                handle.clone(),
                ServeConfig {
                    admission: AdmissionConfig {
                        capacity: readers + 4,
                        normal_watermark: readers + 2,
                        bulk_watermark: 2,
                    },
                },
            );
            let per_thread = (qps as usize * if smoke { 1 } else { 2 }) / readers;
            let per_thread = per_thread.clamp(500, 100_000);
            let t0 = Instant::now();
            let (lat, answered, shed_high, shed_bulk) =
                run_unsharded(&service, n, readers, qps, per_thread, firehose, |done| {
                    let mut i = batches.len() / 2;
                    while !done.load(Ordering::Acquire) {
                        engine.process_stream(&batches[i % batches.len()], |_| None, None);
                        i += 1;
                    }
                });
            let wall = t0.elapsed().as_secs_f64();
            assert_eq!(shed_high, 0, "High-class queries were shed at {qps} qps");
            let p = LoadPoint {
                mode: "unsharded",
                firehose,
                offered_qps: qps,
                achieved_qps: lat.len() as f64 / wall,
                p50_us: percentile(&lat, 0.50),
                p99_us: percentile(&lat, 0.99),
                p999_us: percentile(&lat, 0.999),
                answered,
                shed_high,
                shed_bulk,
            };
            println!(
                "unsharded fh={:5} {:>7} qps: p50 {:8.1}us p99 {:8.1}us p999 {:8.1}us \
                 ({} answered, bulk shed {})",
                firehose, qps, p.p50_us, p.p99_us, p.p999_us, p.answered, p.shed_bulk
            );
            points.push(p);
            if firehose {
                // Gate: concurrent publication never tore the view.
                engine.publish_epoch();
            }
        }
    }

    // ---- Sharded, frozen and under firehose ------------------------
    for &firehose in &[false, true] {
        for &qps in rates {
            let mut flow = ShardedFlow::builder(shards).build(n as usize).unwrap();
            for b in &batches[..batches.len() / 2] {
                flow.process_batch(b).unwrap();
            }
            flow.publish_epochs();
            let per_thread = (qps as usize * if smoke { 1 } else { 2 }) / readers;
            let per_thread = per_thread.clamp(500, 100_000);
            let t0 = Instant::now();
            let lat = run_sharded(&mut flow, n, readers, qps, per_thread, firehose, &batches);
            let wall = t0.elapsed().as_secs_f64();
            let p = LoadPoint {
                mode: "sharded",
                firehose,
                offered_qps: qps,
                achieved_qps: lat.len() as f64 / wall,
                p50_us: percentile(&lat, 0.50),
                p99_us: percentile(&lat, 0.99),
                p999_us: percentile(&lat, 0.999),
                answered: lat.len() as u64,
                shed_high: 0,
                shed_bulk: 0,
            };
            println!(
                "sharded   fh={:5} {:>7} qps: p50 {:8.1}us p99 {:8.1}us p999 {:8.1}us \
                 ({} answered)",
                firehose, qps, p.p50_us, p.p99_us, p.p999_us, p.answered
            );
            points.push(p);
        }
    }

    // ---- Unconditional consistency gates ---------------------------
    header("consistency gates");
    let half: Vec<UpdateBatch> = batches[..batches.len() / 2].to_vec();
    let mut engine = FlowEngine::new(n as usize);
    for b in &half {
        engine.process_stream(b, |_| None, None);
    }
    let handle = engine.serve_handle();
    assert_replay_consistency(&handle, &half, n);
    let mut flow = ShardedFlow::builder(shards).build(n as usize).unwrap();
    for b in &half {
        flow.process_batch(b).unwrap();
    }
    let mut router_ok_engine = FlowEngine::new(n as usize);
    for b in &half {
        router_ok_engine.process_stream(b, |_| None, None);
    }
    let unsharded_handle = router_ok_engine.serve_handle();
    assert_router_consistency(&mut flow, &unsharded_handle, n);

    // The paper's §V-B target: point-query p50 in the tens of
    // microseconds (reported; asserted only at full scale where the
    // graph is big enough to mean anything).
    let frozen_p50 = points
        .iter()
        .find(|p| p.mode == "unsharded" && !p.firehose)
        .map(|p| p.p50_us)
        .unwrap_or(0.0);

    // Hand-rolled JSON (no serde in the dependency budget).
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!("  \"scale\": {scale},\n"));
    j.push_str(&format!("  \"smoke\": {smoke},\n"));
    j.push_str(&format!("  \"readers\": {readers},\n"));
    j.push_str(&format!("  \"shards\": {shards},\n"));
    j.push_str(&format!("  \"total_updates\": {total_updates},\n"));
    j.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"mode\": \"{}\", \"firehose\": {}, \"offered_qps\": {}, \
             \"achieved_qps\": {:.0}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
             \"p999_us\": {:.2}, \"answered\": {}, \"shed_high\": {}, \"shed_bulk\": {}}}{}\n",
            p.mode,
            p.firehose,
            p.offered_qps,
            p.achieved_qps,
            p.p50_us,
            p.p99_us,
            p.p999_us,
            p.answered,
            p.shed_high,
            p.shed_bulk,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    let zero_high_shed = points.iter().all(|p| p.shed_high == 0);
    j.push_str(&format!("  \"point_p50_us\": {frozen_p50:.2},\n"));
    j.push_str(&format!("  \"zero_high_shed\": {zero_high_shed},\n"));
    j.push_str("  \"consistency_ok\": true\n");
    j.push_str("}\n");

    std::fs::write("BENCH_serve.json", &j).expect("write BENCH_serve.json");
    println!(
        "\nwrote BENCH_serve.json (point p50 {frozen_p50:.1}us, zero_high_shed {zero_high_shed})"
    );
}
