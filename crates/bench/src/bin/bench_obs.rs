//! Observability overhead driver: the same Fig. 2-style flow run twice,
//! once with the `ga-obs` recorder disabled (the default) and once
//! enabled, timed back to back. Emits `BENCH_obs.json` with the
//! per-mode wall times, the relative overhead, and the span coverage
//! the enabled run produced.
//!
//! The acceptance criteria this file certifies: the enabled recorder
//! costs < 5% wall time on the flow smoke, and the disabled recorder is
//! indistinguishable from the pre-instrumentation engine (it is a
//! branch-predicted no-op: spans never touch their atomics).
//!
//! ```sh
//! cargo run --release -p ga-bench --bin bench_obs
//! # smoke (CI): GA_BENCH_SMOKE=1 shrinks the stream
//! # CI gate: --assert-overhead fails the process if overhead >= 5%
//! ```

use ga_bench::header;
use ga_core::flow::{FlowEngine, PageRankAnalytic, SelectionCriteria};
use ga_obs::{MetricsSnapshot, Recorder, Step};
use ga_stream::jaccard_stream::JaccardMonitor;
use ga_stream::update::{into_batches, rmat_edge_stream, UpdateBatch};
use ga_stream::EventKind;
use std::hint::black_box;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("GA_BENCH_SMOKE").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--smoke")
}

/// One full flow pass: stream + triggered analytics + two batch runs.
/// Returns the final snapshot so the enabled run's coverage is checked.
fn run_flow(recorder: Recorder, batches: &[UpdateBatch]) -> MetricsSnapshot {
    let mut flow = FlowEngine::builder()
        .recorder(recorder)
        .build(1 << 12)
        .expect("in-memory engine");
    let pr = flow.register_analytic(Box::new(PageRankAnalytic { damping: 0.85 }));
    flow.register_monitor(Box::new(JaccardMonitor::new(0.95)));
    let budget = std::cell::Cell::new(10usize);
    for batch in batches {
        flow.process_stream(
            batch,
            |ev| match ev.kind {
                EventKind::PairThreshold { a, b, .. } if budget.get() > 0 => {
                    budget.set(budget.get() - 1);
                    Some(vec![a, b])
                }
                _ => None,
            },
            Some(pr),
        );
    }
    flow.run_batch(&SelectionCriteria::TopKDegree { k: 4 }, pr);
    flow.run_batch(&SelectionCriteria::TopKDegree { k: 2 }, pr);
    flow.metrics()
}

/// Median wall time (ms) of `reps` runs of `f`.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let smoke = smoke();
    let assert_overhead = std::env::args().any(|a| a == "--assert-overhead");
    let updates = if smoke { 20_000 } else { 80_000 };
    let reps = if smoke { 5 } else { 9 };
    header(&format!(
        "ga-obs overhead — flow smoke, {updates} updates, median of {reps}"
    ));

    let batches = into_batches(rmat_edge_stream(12, updates, 0.05, 23), 1_000, 0);

    // Interleave-free A/B: warm both paths once, then time each.
    run_flow(Recorder::disabled(), &batches);
    run_flow(Recorder::enabled(), &batches);
    let disabled_ms = time_ms(reps, || run_flow(Recorder::disabled(), &batches));
    let enabled_ms = time_ms(reps, || run_flow(Recorder::enabled(), &batches));
    let overhead = enabled_ms / disabled_ms - 1.0;

    let snap = run_flow(Recorder::enabled(), &batches);
    let covered = snap.steps_covered();
    println!("disabled: {disabled_ms:9.2} ms");
    println!(
        "enabled:  {enabled_ms:9.2} ms  ({:+.2}% overhead)",
        overhead * 100.0
    );
    println!(
        "coverage: {covered}/{} steps, {} journal events",
        Step::ALL.len(),
        snap.events.len()
    );
    for m in &snap.steps {
        if m.count == 0 {
            continue;
        }
        println!(
            "  {:<16} {:>8} spans, {:>12} cpu ops, {:>12} mem B",
            m.step.name(),
            m.count,
            m.cpu_ops,
            m.mem_bytes
        );
    }

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!("  \"updates\": {updates},\n"));
    j.push_str(&format!("  \"reps\": {reps},\n"));
    j.push_str(&format!("  \"smoke\": {smoke},\n"));
    j.push_str(&format!("  \"disabled_ms\": {disabled_ms:.3},\n"));
    j.push_str(&format!("  \"enabled_ms\": {enabled_ms:.3},\n"));
    j.push_str(&format!("  \"overhead_fraction\": {overhead:.5},\n"));
    j.push_str(&format!("  \"steps_covered\": {covered},\n"));
    j.push_str(&format!("  \"journal_events\": {}\n", snap.events.len()));
    j.push_str("}\n");
    std::fs::write("BENCH_obs.json", &j).expect("write BENCH_obs.json");
    println!("\nwrote BENCH_obs.json");

    // The flow spans at least: ingest, selection, extraction,
    // batch-analytic, write-back, snapshot — durability steps need a
    // durable engine and are exercised by fig2_flow/tests instead.
    assert!(covered >= 5, "span coverage collapsed: {covered} steps");
    if assert_overhead {
        assert!(
            overhead < 0.05,
            "instrumentation overhead {:.2}% >= 5%",
            overhead * 100.0
        );
        println!("overhead gate passed (< 5%)");
    }
}
