//! The adjacency abstraction the batch kernels are generic over.
//!
//! [`CsrGraph`] hands out neighbor *slices*; [`CompressedCsr`] hands out
//! streaming varint *decoders*. [`Adjacency`] unifies them behind
//! generic associated iterator types so a kernel written once runs
//! zero-cost over either representation — plain slices monomorphize to
//! the same code as before, compressed rows decode inline without
//! materializing.
//!
//! The trait also carries the bandwidth-accounting hooks
//! ([`Adjacency::row_bytes`] / [`Adjacency::in_row_bytes`]): kernels
//! book the bytes a row scan *actually* streamed, so `OpCounters`
//! mem-bytes (and everything downstream — calibrate step 7, ga-obs
//! spans) reflect the compressed savings instead of pricing every entry
//! at 4 raw bytes.

use crate::compress::{CompressedCsr, RowDecoder, WeightedRowDecoder};
use crate::csr::CsrGraph;
use crate::{VertexId, Weight};

/// Read-only adjacency access, generic over row representation.
///
/// Contract (shared with `CsrGraph`): rows are sorted by target,
/// `weighted_neighbors` yields weight 1.0 on unweighted graphs, and the
/// in-neighbor methods panic unless [`Adjacency::has_reverse`].
pub trait Adjacency: Sync {
    /// Iterator over one row's sorted targets.
    type Neighbors<'a>: Iterator<Item = VertexId> + 'a
    where
        Self: 'a;
    /// Iterator over one row's `(target, weight)` pairs.
    type WeightedNeighbors<'a>: Iterator<Item = (VertexId, Weight)> + 'a
    where
        Self: 'a;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;
    /// Number of directed edges stored.
    fn num_edges(&self) -> usize;
    /// Out-degree of `v`.
    fn degree(&self, v: VertexId) -> usize;
    /// Sorted out-neighbors of `v`.
    fn neighbors(&self, v: VertexId) -> Self::Neighbors<'_>;
    /// `(neighbor, weight)` pairs for `v` (1.0 when unweighted).
    fn weighted_neighbors(&self, v: VertexId) -> Self::WeightedNeighbors<'_>;
    /// Whether the graph carries edge weights.
    fn is_weighted(&self) -> bool;
    /// Whether an in-neighbor index is available.
    fn has_reverse(&self) -> bool;
    /// In-degree of `v` (panics without a reverse index).
    fn in_degree(&self, v: VertexId) -> usize;
    /// Sorted in-neighbors of `v` (panics without a reverse index).
    fn in_neighbors(&self, v: VertexId) -> Self::Neighbors<'_>;

    /// Bytes streamed by one scan of `v`'s out-row. Plain CSR: 4 bytes
    /// per target; compressed: the row's exact encoded length.
    #[inline]
    fn row_bytes(&self, v: VertexId) -> u64 {
        4 * self.degree(v) as u64
    }

    /// Bytes streamed by one scan of `v`'s in-row.
    #[inline]
    fn in_row_bytes(&self, v: VertexId) -> u64 {
        4 * self.in_degree(v) as u64
    }

    /// Total adjacency bytes held (forward + reverse rows).
    #[inline]
    fn adjacency_bytes(&self) -> u64 {
        let m = self.num_edges() as u64;
        4 * if self.has_reverse() { 2 * m } else { m }
    }
}

impl Adjacency for CsrGraph {
    type Neighbors<'a> = std::iter::Copied<std::slice::Iter<'a, VertexId>>;
    type WeightedNeighbors<'a> = CsrWeightedIter<'a>;

    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> Self::Neighbors<'_> {
        CsrGraph::neighbors(self, v).iter().copied()
    }

    #[inline]
    fn weighted_neighbors(&self, v: VertexId) -> Self::WeightedNeighbors<'_> {
        CsrWeightedIter {
            targets: CsrGraph::neighbors(self, v).iter(),
            weights: self.edge_weights(v),
            idx: 0,
        }
    }

    #[inline]
    fn is_weighted(&self) -> bool {
        CsrGraph::is_weighted(self)
    }

    #[inline]
    fn has_reverse(&self) -> bool {
        CsrGraph::has_reverse(self)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        CsrGraph::in_degree(self, v)
    }

    #[inline]
    fn in_neighbors(&self, v: VertexId) -> Self::Neighbors<'_> {
        CsrGraph::in_neighbors(self, v).iter().copied()
    }
}

/// `(target, weight)` iterator over a plain CSR row — a named type so it
/// can be an associated type on [`Adjacency`].
#[derive(Clone, Debug)]
pub struct CsrWeightedIter<'a> {
    targets: std::slice::Iter<'a, VertexId>,
    weights: Option<&'a [Weight]>,
    idx: usize,
}

impl Iterator for CsrWeightedIter<'_> {
    type Item = (VertexId, Weight);

    #[inline]
    fn next(&mut self) -> Option<(VertexId, Weight)> {
        let &t = self.targets.next()?;
        let w = self.weights.map_or(1.0, |w| w[self.idx]);
        self.idx += 1;
        Some((t, w))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.targets.size_hint()
    }
}

impl ExactSizeIterator for CsrWeightedIter<'_> {}

impl Adjacency for CompressedCsr {
    type Neighbors<'a> = RowDecoder<'a>;
    type WeightedNeighbors<'a> = WeightedRowDecoder<'a>;

    #[inline]
    fn num_vertices(&self) -> usize {
        CompressedCsr::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CompressedCsr::num_edges(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CompressedCsr::degree(self, v)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> Self::Neighbors<'_> {
        CompressedCsr::neighbors(self, v)
    }

    #[inline]
    fn weighted_neighbors(&self, v: VertexId) -> Self::WeightedNeighbors<'_> {
        CompressedCsr::weighted_neighbors(self, v)
    }

    #[inline]
    fn is_weighted(&self) -> bool {
        CompressedCsr::is_weighted(self)
    }

    #[inline]
    fn has_reverse(&self) -> bool {
        CompressedCsr::has_reverse(self)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        CompressedCsr::in_degree(self, v)
    }

    #[inline]
    fn in_neighbors(&self, v: VertexId) -> Self::Neighbors<'_> {
        CompressedCsr::in_neighbors(self, v)
    }

    #[inline]
    fn row_bytes(&self, v: VertexId) -> u64 {
        CompressedCsr::row_bytes(self, v)
    }

    #[inline]
    fn in_row_bytes(&self, v: VertexId) -> u64 {
        CompressedCsr::in_row_bytes(self, v)
    }

    #[inline]
    fn adjacency_bytes(&self) -> u64 {
        CompressedCsr::adjacency_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sees_same_rows<G: Adjacency>(g: &G, plain: &CsrGraph) {
        assert_eq!(g.num_vertices(), plain.num_vertices());
        assert_eq!(g.num_edges(), plain.num_edges());
        for v in plain.vertices() {
            let row: Vec<VertexId> = g.neighbors(v).collect();
            assert_eq!(row, plain.neighbors(v));
            let wrow: Vec<(VertexId, Weight)> = g.weighted_neighbors(v).collect();
            assert_eq!(wrow.len(), g.degree(v));
        }
    }

    #[test]
    fn both_impls_agree_with_plain_rows() {
        let g = crate::csr::CsrBuilder::new(6)
            .weighted_edges([(0, 1, 2.0), (0, 5, 1.0), (1, 3, 4.0), (5, 0, 0.5)])
            .reverse(true)
            .build();
        sees_same_rows(&g, &g);
        let c = CompressedCsr::from_csr(&g);
        sees_same_rows(&c, &g);
        // Plain pricing is 4 bytes/entry; compressed rows are smaller.
        let plain_bytes: u64 = g.vertices().map(|v| Adjacency::row_bytes(&g, v)).sum();
        let comp_bytes: u64 = g.vertices().map(|v| Adjacency::row_bytes(&c, v)).sum();
        assert_eq!(plain_bytes, 4 * g.num_edges() as u64);
        assert!(comp_bytes < plain_bytes);
    }
}
