//! Graph I/O: whitespace edge lists and compact binary codecs.
//!
//! Three hand-rolled little-endian formats (no serialization
//! dependency), each `magic + version`-tagged and rejecting corrupt
//! input with a descriptive [`io::Error`] instead of panicking or
//! over-allocating from untrusted lengths:
//!
//! * `GAG1` — immutable [`CsrGraph`] snapshots (offsets, targets,
//!   optional weights),
//! * `GAD1` — full [`DynamicGraph`] state *including tombstones and
//!   timestamps*, slot-exact so a checkpointed graph restores
//!   bit-identical to the original,
//! * `GAP1` — [`PropertyStore`] columns (u64/f64/string, with presence
//!   masks).
//!
//! `GAD1` + `GAP1` are the section codecs underneath the flow engine's
//! checkpoint files; [`crc32`] is the shared integrity checksum for
//! those files and the write-ahead log.

use crate::dynamic::EdgeRecord;
use crate::props::Column;
use crate::{CsrBuilder, CsrGraph, DynamicGraph, PropertyStore, Timestamp, VertexId, Weight};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GAG1";
const MAGIC_DYNAMIC: &[u8; 4] = b"GAD1";
const MAGIC_PROPS: &[u8; 4] = b"GAP1";

/// Current `GAG1` codec version. Version 2 added the explicit version
/// field itself (version-less seed files are rejected).
const CSR_VERSION: u16 = 2;
/// Current `GAD1` codec version.
const DYNAMIC_VERSION: u16 = 1;
/// Current `GAP1` codec version.
const PROPS_VERSION: u16 = 1;

/// Upper bound on any element count read from an untrusted header. A
/// corrupt length field must not turn into a multi-terabyte allocation.
const MAX_ELEMS: u64 = 1 << 32;

// ---------------------------------------------------------------------
// CRC32 (IEEE, reflected) — integrity checksum for checkpoints + WAL.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3) of `data` — the frame/file checksum used by the
/// WAL and checkpoint formats.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Incremental [`crc32`]: feed chunks as they are produced and finish
/// at the end, without buffering the whole payload. The tier's segment
/// writer checksums header + payload sections as it streams them;
/// `Crc32::new().update(a).update(b).finish()` equals
/// `crc32(&[a, b].concat())` exactly.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher (equivalent to having hashed zero bytes).
    pub fn new() -> Crc32 {
        Crc32 { state: !0u32 }
    }

    /// Absorb one chunk.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        let mut c = self.state;
        for &b in data {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
        self
    }

    /// The checksum of everything absorbed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

// ---------------------------------------------------------------------
// Plain-text edge lists.
// ---------------------------------------------------------------------

/// Parse a whitespace/comment edge list: one `src dst [weight]` per
/// line, `#` comments, blank lines ignored. Vertex count is
/// `max(id) + 1` unless `num_vertices` is given.
pub fn read_edge_list(r: impl Read, num_vertices: Option<usize>) -> io::Result<CsrGraph> {
    let reader = BufReader::new(r);
    let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::new();
    let mut weighted = false;
    let mut max_id: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> io::Result<u64> {
            tok.ok_or_else(|| bad_line(lineno, what))?
                .parse::<u64>()
                .map_err(|_| bad_line(lineno, what))
        };
        let u = parse(it.next(), "missing/invalid src")?;
        let v = parse(it.next(), "missing/invalid dst")?;
        if u >= VertexId::MAX as u64 || v >= VertexId::MAX as u64 {
            return Err(bad_line(lineno, "vertex id exceeds u32 range"));
        }
        let w = match it.next() {
            Some(tok) => {
                weighted = true;
                tok.parse::<Weight>()
                    .map_err(|_| bad_line(lineno, "invalid weight"))?
            }
            None => 1.0,
        };
        max_id = max_id.max(u).max(v);
        edges.push((u as VertexId, v as VertexId, w));
    }
    let n = num_vertices.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    let b = CsrBuilder::new(n);
    let g = if weighted {
        b.weighted_edges(edges).build()
    } else {
        b.edges(edges.into_iter().map(|(u, v, _)| (u, v))).build()
    };
    Ok(g)
}

fn bad_line(lineno: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("edge list line {}: {what}", lineno + 1),
    )
}

fn corrupt(format: &str, what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{format}: {what}"))
}

/// Write a graph as an edge list (weights included when present).
pub fn write_edge_list(g: &CsrGraph, w: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(
        out,
        "# {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    if g.is_weighted() {
        for (u, v, wt) in g.weighted_edges() {
            writeln!(out, "{u} {v} {wt}")?;
        }
    } else {
        for (u, v) in g.edges() {
            writeln!(out, "{u} {v}")?;
        }
    }
    out.flush()
}

// ---------------------------------------------------------------------
// GAG1: CSR snapshots.
// ---------------------------------------------------------------------

/// Serialize a CSR snapshot to the compact binary format.
pub fn write_binary(g: &CsrGraph, w: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    out.write_all(MAGIC)?;
    out.write_all(&CSR_VERSION.to_le_bytes())?;
    let flags: u16 = if g.is_weighted() { 1 } else { 0 };
    out.write_all(&flags.to_le_bytes())?;
    out.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    out.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for &off in g.raw_offsets() {
        out.write_all(&off.to_le_bytes())?;
    }
    for &t in g.raw_targets() {
        out.write_all(&t.to_le_bytes())?;
    }
    if g.is_weighted() {
        for u in g.vertices() {
            for w in g.edge_weights(u).unwrap_or(&[]) {
                out.write_all(&w.to_le_bytes())?;
            }
        }
    }
    out.flush()
}

fn read_magic(r: &mut impl Read, expect: &[u8; 4], format: &str) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|_| corrupt(format, "truncated before magic"))?;
    if &magic != expect {
        return Err(corrupt(
            format,
            format!(
                "bad magic {:?} (expected {:?})",
                String::from_utf8_lossy(&magic),
                String::from_utf8_lossy(expect)
            ),
        ));
    }
    Ok(())
}

fn read_version(r: &mut impl Read, expect: u16, format: &str) -> io::Result<()> {
    let v = read_u16(r).map_err(|_| corrupt(format, "truncated in version field"))?;
    if v != expect {
        return Err(corrupt(
            format,
            format!("unsupported version {v} (this build reads version {expect})"),
        ));
    }
    Ok(())
}

fn checked_count(count: u64, what: &str, format: &str) -> io::Result<usize> {
    if count > MAX_ELEMS {
        return Err(corrupt(
            format,
            format!("{what} count {count} exceeds sanity bound {MAX_ELEMS}"),
        ));
    }
    Ok(count as usize)
}

/// Deserialize a CSR snapshot written by [`write_binary`].
pub fn read_binary(r: impl Read) -> io::Result<CsrGraph> {
    const F: &str = "GAG1";
    let mut input = BufReader::new(r);
    read_magic(&mut input, MAGIC, F)?;
    read_version(&mut input, CSR_VERSION, F)?;
    let flags = read_u16(&mut input).map_err(|_| corrupt(F, "truncated in flags field"))?;
    if flags & !1 != 0 {
        return Err(corrupt(F, format!("unknown flag bits {flags:#x}")));
    }
    let n = checked_count(
        read_u64(&mut input).map_err(|_| corrupt(F, "truncated in vertex count"))?,
        "vertex",
        F,
    )?;
    let m = checked_count(
        read_u64(&mut input).map_err(|_| corrupt(F, "truncated in edge count"))?,
        "edge",
        F,
    )?;
    let mut offsets = Vec::new();
    for i in 0..=n {
        let off =
            read_u64(&mut input).map_err(|_| corrupt(F, format!("truncated in offset {i}")))?;
        if let Some(&prev) = offsets.last() {
            if off < prev {
                return Err(corrupt(
                    F,
                    format!("offsets not monotone at vertex {i} ({off} < {prev})"),
                ));
            }
        }
        offsets.push(off);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&(m as u64)) {
        return Err(corrupt(
            F,
            format!(
                "offset range [{:?}..{:?}] does not span 0..{m}",
                offsets.first(),
                offsets.last()
            ),
        ));
    }
    let mut targets: Vec<VertexId> = Vec::new();
    for i in 0..m {
        let t = read_u32(&mut input).map_err(|_| corrupt(F, format!("truncated in target {i}")))?;
        if t as usize >= n {
            return Err(corrupt(
                F,
                format!("target {t} at slot {i} out of range (n = {n})"),
            ));
        }
        targets.push(t as VertexId);
    }
    let weighted = flags & 1 != 0;
    let mut weights = Vec::new();
    if weighted {
        for i in 0..m {
            weights.push(
                read_f32(&mut input).map_err(|_| corrupt(F, format!("truncated in weight {i}")))?,
            );
        }
    }
    let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::with_capacity(m.min(1 << 20));
    for u in 0..n {
        for i in offsets[u] as usize..offsets[u + 1] as usize {
            let w = if weighted { weights[i] } else { 1.0 };
            edges.push((u as VertexId, targets[i], w));
        }
    }
    let b = CsrBuilder::new(n);
    Ok(if weighted {
        b.weighted_edges(edges).build()
    } else {
        b.edges(edges.into_iter().map(|(u, v, _)| (u, v))).build()
    })
}

/// Convenience: write binary snapshot to a file path.
pub fn save(g: &CsrGraph, path: impl AsRef<Path>) -> io::Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Convenience: read binary snapshot from a file path.
pub fn load(path: impl AsRef<Path>) -> io::Result<CsrGraph> {
    read_binary(std::fs::File::open(path)?)
}

// ---------------------------------------------------------------------
// GAD1: DynamicGraph checkpoints (tombstones + timestamps included).
// ---------------------------------------------------------------------

/// Serialize the *complete* dynamic graph state — every adjacency slot
/// in order, tombstones included — so that
/// `read_dynamic(write_dynamic(g)) == g` holds structurally (slot
/// layout, weights, timestamps, deletion flags, counters).
pub fn write_dynamic(g: &DynamicGraph, w: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    out.write_all(MAGIC_DYNAMIC)?;
    out.write_all(&DYNAMIC_VERSION.to_le_bytes())?;
    out.write_all(&0u16.to_le_bytes())?; // reserved
    out.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    out.write_all(&g.last_update().to_le_bytes())?;
    for row in g.raw_rows() {
        out.write_all(&(row.len() as u64).to_le_bytes())?;
        for rec in row {
            out.write_all(&rec.dst.to_le_bytes())?;
            out.write_all(&rec.weight.to_le_bytes())?;
            out.write_all(&rec.timestamp.to_le_bytes())?;
            out.write_all(&[rec.deleted as u8])?;
        }
    }
    out.flush()
}

/// Deserialize a dynamic graph written by [`write_dynamic`].
pub fn read_dynamic(r: impl Read) -> io::Result<DynamicGraph> {
    const F: &str = "GAD1";
    let mut input = BufReader::new(r);
    read_magic(&mut input, MAGIC_DYNAMIC, F)?;
    read_version(&mut input, DYNAMIC_VERSION, F)?;
    let _reserved = read_u16(&mut input).map_err(|_| corrupt(F, "truncated in header"))?;
    let n = checked_count(
        read_u64(&mut input).map_err(|_| corrupt(F, "truncated in vertex count"))?,
        "vertex",
        F,
    )?;
    let last_update: Timestamp =
        read_u64(&mut input).map_err(|_| corrupt(F, "truncated in last_update"))?;
    let mut adj: Vec<Vec<EdgeRecord>> = Vec::with_capacity(n.min(1 << 20));
    for u in 0..n {
        let len = checked_count(
            read_u64(&mut input).map_err(|_| corrupt(F, format!("truncated in row {u} length")))?,
            "row",
            F,
        )?;
        let mut row = Vec::with_capacity(len.min(1 << 16));
        for s in 0..len {
            let dst = read_u32(&mut input)
                .map_err(|_| corrupt(F, format!("truncated in row {u} slot {s}")))?;
            if dst as usize >= n {
                return Err(corrupt(
                    F,
                    format!("row {u} slot {s}: target {dst} out of range (n = {n})"),
                ));
            }
            let weight = read_f32(&mut input)
                .map_err(|_| corrupt(F, format!("truncated in row {u} slot {s} weight")))?;
            let timestamp = read_u64(&mut input)
                .map_err(|_| corrupt(F, format!("truncated in row {u} slot {s} timestamp")))?;
            let mut flag = [0u8; 1];
            input
                .read_exact(&mut flag)
                .map_err(|_| corrupt(F, format!("truncated in row {u} slot {s} flags")))?;
            if flag[0] > 1 {
                return Err(corrupt(
                    F,
                    format!("row {u} slot {s}: invalid deletion flag {}", flag[0]),
                ));
            }
            row.push(EdgeRecord {
                dst,
                weight,
                timestamp,
                deleted: flag[0] == 1,
            });
        }
        adj.push(row);
    }
    Ok(DynamicGraph::from_raw_parts(adj, last_update))
}

// ---------------------------------------------------------------------
// GAP1: PropertyStore checkpoints.
// ---------------------------------------------------------------------

const COL_TAG_U64: u8 = 0;
const COL_TAG_F64: u8 = 1;
const COL_TAG_STR: u8 = 2;

/// Serialize every property column (names, types, presence masks,
/// values).
pub fn write_props(p: &PropertyStore, w: impl Write) -> io::Result<()> {
    const F: &str = "GAP1";
    let mut out = BufWriter::new(w);
    out.write_all(MAGIC_PROPS)?;
    out.write_all(&PROPS_VERSION.to_le_bytes())?;
    out.write_all(&0u16.to_le_bytes())?; // reserved
    out.write_all(&(p.num_vertices() as u64).to_le_bytes())?;
    out.write_all(&(p.columns.len() as u32).to_le_bytes())?;
    for (name, col) in &p.columns {
        if name.len() > u16::MAX as usize {
            return Err(corrupt(F, format!("column name longer than {}", u16::MAX)));
        }
        out.write_all(&(name.len() as u16).to_le_bytes())?;
        out.write_all(name.as_bytes())?;
        match col {
            Column::U64(vals) => {
                out.write_all(&[COL_TAG_U64])?;
                for v in vals {
                    match v {
                        Some(x) => {
                            out.write_all(&[1])?;
                            out.write_all(&x.to_le_bytes())?;
                        }
                        None => out.write_all(&[0])?,
                    }
                }
            }
            Column::F64(vals) => {
                out.write_all(&[COL_TAG_F64])?;
                for v in vals {
                    match v {
                        Some(x) => {
                            out.write_all(&[1])?;
                            out.write_all(&x.to_le_bytes())?;
                        }
                        None => out.write_all(&[0])?,
                    }
                }
            }
            Column::Str(vals) => {
                out.write_all(&[COL_TAG_STR])?;
                for v in vals {
                    match v {
                        Some(s) => {
                            out.write_all(&[1])?;
                            out.write_all(&(s.len() as u32).to_le_bytes())?;
                            out.write_all(s.as_bytes())?;
                        }
                        None => out.write_all(&[0])?,
                    }
                }
            }
        }
    }
    out.flush()
}

/// Deserialize a property store written by [`write_props`].
pub fn read_props(r: impl Read) -> io::Result<PropertyStore> {
    const F: &str = "GAP1";
    let mut input = BufReader::new(r);
    read_magic(&mut input, MAGIC_PROPS, F)?;
    read_version(&mut input, PROPS_VERSION, F)?;
    let _reserved = read_u16(&mut input).map_err(|_| corrupt(F, "truncated in header"))?;
    let n = checked_count(
        read_u64(&mut input).map_err(|_| corrupt(F, "truncated in vertex count"))?,
        "vertex",
        F,
    )?;
    let ncols = read_u32(&mut input).map_err(|_| corrupt(F, "truncated in column count"))?;
    let ncols = checked_count(ncols as u64, "column", F)?;
    let mut columns: BTreeMap<String, Column> = BTreeMap::new();
    fn presence(input: &mut impl Read, what: &str) -> io::Result<bool> {
        let mut b = [0u8; 1];
        input
            .read_exact(&mut b)
            .map_err(|_| corrupt("GAP1", format!("truncated in {what} presence byte")))?;
        match b[0] {
            0 => Ok(false),
            1 => Ok(true),
            x => Err(corrupt(
                "GAP1",
                format!("{what}: invalid presence byte {x}"),
            )),
        }
    }
    for c in 0..ncols {
        let name_len = read_u16(&mut input)
            .map_err(|_| corrupt(F, format!("truncated in column {c} name length")))?
            as usize;
        let mut name_bytes = vec![0u8; name_len];
        input
            .read_exact(&mut name_bytes)
            .map_err(|_| corrupt(F, format!("truncated in column {c} name")))?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| corrupt(F, format!("column {c} name is not UTF-8")))?;
        let mut tag = [0u8; 1];
        input
            .read_exact(&mut tag)
            .map_err(|_| corrupt(F, format!("truncated in column {name:?} type tag")))?;
        let col = match tag[0] {
            COL_TAG_U64 => {
                let mut vals = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    vals.push(if presence(&mut input, &name)? {
                        Some(read_u64(&mut input).map_err(|_| {
                            corrupt(F, format!("truncated in column {name:?} value"))
                        })?)
                    } else {
                        None
                    });
                }
                Column::U64(vals)
            }
            COL_TAG_F64 => {
                let mut vals = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    vals.push(if presence(&mut input, &name)? {
                        Some(read_f64(&mut input).map_err(|_| {
                            corrupt(F, format!("truncated in column {name:?} value"))
                        })?)
                    } else {
                        None
                    });
                }
                Column::F64(vals)
            }
            COL_TAG_STR => {
                let mut vals = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    vals.push(if presence(&mut input, &name)? {
                        let len = checked_count(
                            read_u32(&mut input).map_err(|_| {
                                corrupt(F, format!("truncated in column {name:?} string length"))
                            })? as u64,
                            "string",
                            F,
                        )?;
                        let mut bytes = vec![0u8; len];
                        input.read_exact(&mut bytes).map_err(|_| {
                            corrupt(F, format!("truncated in column {name:?} string"))
                        })?;
                        Some(String::from_utf8(bytes).map_err(|_| {
                            corrupt(F, format!("column {name:?} string is not UTF-8"))
                        })?)
                    } else {
                        None
                    });
                }
                Column::Str(vals)
            }
            x => return Err(corrupt(F, format!("column {name:?}: unknown type tag {x}"))),
        };
        columns.insert(name, col);
    }
    Ok(PropertyStore::from_raw_parts(n, columns))
}

fn read_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_incremental_matches_one_shot() {
        assert_eq!(Crc32::new().finish(), crc32(b""));
        let mut h = Crc32::new();
        h.update(b"123").update(b"").update(b"456789");
        assert_eq!(h.finish(), 0xCBF4_3926);
        // Any chunking of any payload agrees with the one-shot hash.
        let data: Vec<u8> = (0..=255u8).cycle().take(1031).collect();
        for split in [0, 1, 7, 512, 1030, 1031] {
            let mut h = Crc32::new();
            h.update(&data[..split]).update(&data[split..]);
            assert_eq!(h.finish(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn edge_list_round_trip() {
        let g = CsrGraph::from_edges(5, &gen::star(5));
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(5)).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn edge_list_weighted_round_trip() {
        let g = CsrGraph::from_weighted_edges(3, &[(0, 1, 2.5), (1, 2, 1.25)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], None).unwrap();
        assert!(g2.is_weighted());
        assert_eq!(g2.edge_weight(0, 1), Some(2.5));
    }

    #[test]
    fn edge_list_comments_and_blanks() {
        let text = "# a comment\n\n0 1\n 1 2 \n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("0 x".as_bytes(), None).is_err());
        assert!(read_edge_list("0".as_bytes(), None).is_err());
        assert!(read_edge_list("0 1 zzz".as_bytes(), None).is_err());
        assert!(read_edge_list("0 99999999999".as_bytes(), None).is_err());
    }

    #[test]
    fn binary_round_trip_unweighted() {
        let edges = gen::rmat(8, 2000, gen::RmatParams::GRAPH500, 3);
        let g = CsrGraph::from_edges(256, &edges);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
        assert!(!g2.is_weighted());
    }

    #[test]
    fn binary_round_trip_weighted() {
        let edges = gen::with_random_weights(&gen::ring(50), 0.5, 2.0, 4);
        let g = CsrGraph::from_weighted_edges(50, &edges);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert!(g2.is_weighted());
        for v in g.vertices() {
            assert_eq!(g.edge_weights(v), g2.edge_weights(v));
        }
    }

    #[test]
    fn binary_rejects_bad_magic() {
        assert!(read_binary(&b"NOPE"[..]).is_err());
        assert!(read_binary(&b"GA"[..]).is_err());
        let err = read_binary(&b"GAD1"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn binary_rejects_wrong_version() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf[4] = 99; // version low byte
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("unsupported version"), "{err}");
    }

    #[test]
    fn binary_rejects_truncation_in_every_section() {
        let g = CsrGraph::from_weighted_edges(4, &[(0, 1, 1.5), (1, 2, 2.5), (2, 3, 3.5)]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Sanity: the full buffer parses.
        assert!(read_binary(&buf[..]).is_ok());
        // Every proper prefix must error out cleanly (no panic, no
        // partial graph): magic, version, flags, counts, offsets,
        // targets, weights.
        for cut in 0..buf.len() {
            let err = read_binary(&buf[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes parsed");
        }
    }

    #[test]
    fn binary_rejects_corrupt_structure() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();

        // Absurd vertex count: must reject, not allocate.
        let mut huge = buf.clone();
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_binary(&huge[..])
            .unwrap_err()
            .to_string()
            .contains("sanity bound"));

        // Non-monotone offsets.
        let mut bad_off = buf.clone();
        let off0 = 24; // magic(4) + version(2) + flags(2) + n(8) + m(8)
        bad_off[off0..off0 + 8].copy_from_slice(&9u64.to_le_bytes());
        assert!(read_binary(&bad_off[..]).is_err());

        // Target out of range.
        let mut bad_target = buf.clone();
        let toff = 24 + 4 * 8; // offsets are (n + 1) = 4 u64s
        bad_target[toff..toff + 4].copy_from_slice(&77u32.to_le_bytes());
        assert!(read_binary(&bad_target[..])
            .unwrap_err()
            .to_string()
            .contains("out of range"));
    }

    #[test]
    fn file_save_load() {
        let dir = std::env::temp_dir().join("ga_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("g.bin");
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        save(&g, &p).unwrap();
        let g2 = load(&p).unwrap();
        assert_eq!(g2.num_edges(), 2);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn dynamic_round_trip_preserves_tombstones_and_timestamps() {
        let mut g = DynamicGraph::new(5);
        g.insert_edge(0, 1, 1.5, 10);
        g.insert_edge(0, 2, 2.5, 11);
        g.insert_edge(3, 4, 0.5, 12);
        g.delete_edge(0, 1, 13);
        g.insert_edge(1, 0, 9.0, 14);
        let mut buf = Vec::new();
        write_dynamic(&g, &mut buf).unwrap();
        let g2 = read_dynamic(&buf[..]).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g2.num_tombstones(), 1);
        assert_eq!(g2.last_update(), 14);
        assert_eq!(g2.edge(0, 2).unwrap().timestamp, 11);
    }

    #[test]
    fn dynamic_rejects_truncation_at_every_byte() {
        let mut g = DynamicGraph::new(3);
        g.insert_edge(0, 1, 1.0, 1);
        g.delete_edge(0, 1, 2);
        g.insert_edge(2, 0, 3.0, 3);
        let mut buf = Vec::new();
        write_dynamic(&g, &mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(read_dynamic(&buf[..cut]).is_err(), "prefix {cut} parsed");
        }
    }

    #[test]
    fn dynamic_rejects_bad_target_and_flag() {
        let mut g = DynamicGraph::new(2);
        g.insert_edge(0, 1, 1.0, 1);
        let mut buf = Vec::new();
        write_dynamic(&g, &mut buf).unwrap();
        // Record layout after header(8) + n(8) + last_update(8) +
        // row0 len(8): dst u32 | weight f32 | ts u64 | flag u8.
        let rec = 8 + 8 + 8 + 8;
        let mut bad_dst = buf.clone();
        bad_dst[rec..rec + 4].copy_from_slice(&9u32.to_le_bytes());
        assert!(read_dynamic(&bad_dst[..])
            .unwrap_err()
            .to_string()
            .contains("out of range"));
        let mut bad_flag = buf.clone();
        bad_flag[rec + 16] = 7;
        assert!(read_dynamic(&bad_flag[..])
            .unwrap_err()
            .to_string()
            .contains("flag"));
    }

    #[test]
    fn props_round_trip_all_types() {
        let mut p = PropertyStore::new(4);
        p.set("deg", 0, 7u64);
        p.set("deg", 3, 9u64);
        p.set("rank", 1, 0.25);
        p.set("label", 2, "hub");
        let mut buf = Vec::new();
        write_props(&p, &mut buf).unwrap();
        let p2 = read_props(&buf[..]).unwrap();
        assert_eq!(p, p2);
        assert_eq!(p2.get_f64("deg", 3), Some(9.0));
        assert_eq!(
            p2.get("label", 2),
            Some(crate::PropValue::Str("hub".into()))
        );
        assert_eq!(p2.get("rank", 0), None);
    }

    #[test]
    fn props_rejects_truncation_at_every_byte() {
        let mut p = PropertyStore::new(3);
        p.set("a", 0, 1u64);
        p.set("b", 1, 2.0);
        p.set("c", 2, "x");
        let mut buf = Vec::new();
        write_props(&p, &mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(read_props(&buf[..cut]).is_err(), "prefix {cut} parsed");
        }
    }

    #[test]
    fn props_rejects_unknown_tag_and_bad_presence() {
        let mut p = PropertyStore::new(1);
        p.set("a", 0, 1u64);
        let mut buf = Vec::new();
        write_props(&p, &mut buf).unwrap();
        // header(8) + n(8) + ncols(4) + name len(2) + "a"(1) => tag at 23.
        let mut bad_tag = buf.clone();
        bad_tag[23] = 42;
        assert!(read_props(&bad_tag[..])
            .unwrap_err()
            .to_string()
            .contains("type tag"));
        let mut bad_presence = buf.clone();
        bad_presence[24] = 3;
        assert!(read_props(&bad_presence[..])
            .unwrap_err()
            .to_string()
            .contains("presence"));
    }
}
