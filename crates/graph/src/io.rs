//! Graph I/O: whitespace edge lists and a compact binary snapshot.
//!
//! The binary format is a hand-rolled little-endian codec (magic,
//! version, counts, offsets, targets, optional weights) so the workspace
//! needs no serialization dependency.

use crate::{CsrBuilder, CsrGraph, VertexId, Weight};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GAG1";

/// Parse a whitespace/comment edge list: one `src dst [weight]` per
/// line, `#` comments, blank lines ignored. Vertex count is
/// `max(id) + 1` unless `num_vertices` is given.
pub fn read_edge_list(r: impl Read, num_vertices: Option<usize>) -> io::Result<CsrGraph> {
    let reader = BufReader::new(r);
    let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::new();
    let mut weighted = false;
    let mut max_id: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> io::Result<u64> {
            tok.ok_or_else(|| bad_line(lineno, what))?
                .parse::<u64>()
                .map_err(|_| bad_line(lineno, what))
        };
        let u = parse(it.next(), "missing/invalid src")?;
        let v = parse(it.next(), "missing/invalid dst")?;
        let w = match it.next() {
            Some(tok) => {
                weighted = true;
                tok.parse::<Weight>()
                    .map_err(|_| bad_line(lineno, "invalid weight"))?
            }
            None => 1.0,
        };
        max_id = max_id.max(u).max(v);
        edges.push((u as VertexId, v as VertexId, w));
    }
    let n = num_vertices.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    let b = CsrBuilder::new(n);
    let g = if weighted {
        b.weighted_edges(edges).build()
    } else {
        b.edges(edges.into_iter().map(|(u, v, _)| (u, v))).build()
    };
    Ok(g)
}

fn bad_line(lineno: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("edge list line {}: {what}", lineno + 1),
    )
}

/// Write a graph as an edge list (weights included when present).
pub fn write_edge_list(g: &CsrGraph, w: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(
        out,
        "# {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    if g.is_weighted() {
        for (u, v, wt) in g.weighted_edges() {
            writeln!(out, "{u} {v} {wt}")?;
        }
    } else {
        for (u, v) in g.edges() {
            writeln!(out, "{u} {v}")?;
        }
    }
    out.flush()
}

/// Serialize a CSR snapshot to the compact binary format.
pub fn write_binary(g: &CsrGraph, w: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    out.write_all(MAGIC)?;
    let flags: u32 = if g.is_weighted() { 1 } else { 0 };
    out.write_all(&flags.to_le_bytes())?;
    out.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    out.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for &off in g.raw_offsets() {
        out.write_all(&off.to_le_bytes())?;
    }
    for &t in g.raw_targets() {
        out.write_all(&t.to_le_bytes())?;
    }
    if g.is_weighted() {
        for u in g.vertices() {
            for w in g.edge_weights(u).unwrap() {
                out.write_all(&w.to_le_bytes())?;
            }
        }
    }
    out.flush()
}

/// Deserialize a CSR snapshot written by [`write_binary`].
pub fn read_binary(r: impl Read) -> io::Result<CsrGraph> {
    let mut input = BufReader::new(r);
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let flags = read_u32(&mut input)?;
    let n = read_u64(&mut input)? as usize;
    let m = read_u64(&mut input)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut input)?);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&(m as u64)) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad offsets"));
    }
    let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::with_capacity(m);
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        targets.push(read_u32(&mut input)? as VertexId);
    }
    let weighted = flags & 1 != 0;
    let mut weights = Vec::new();
    if weighted {
        for _ in 0..m {
            weights.push(read_f32(&mut input)?);
        }
    }
    for u in 0..n {
        for i in offsets[u] as usize..offsets[u + 1] as usize {
            let w = if weighted { weights[i] } else { 1.0 };
            edges.push((u as VertexId, targets[i], w));
        }
    }
    let b = CsrBuilder::new(n);
    Ok(if weighted {
        b.weighted_edges(edges).build()
    } else {
        b.edges(edges.into_iter().map(|(u, v, _)| (u, v))).build()
    })
}

/// Convenience: write binary snapshot to a file path.
pub fn save(g: &CsrGraph, path: impl AsRef<Path>) -> io::Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Convenience: read binary snapshot from a file path.
pub fn load(path: impl AsRef<Path>) -> io::Result<CsrGraph> {
    read_binary(std::fs::File::open(path)?)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_list_round_trip() {
        let g = CsrGraph::from_edges(5, &gen::star(5));
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(5)).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn edge_list_weighted_round_trip() {
        let g = CsrGraph::from_weighted_edges(3, &[(0, 1, 2.5), (1, 2, 1.25)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], None).unwrap();
        assert!(g2.is_weighted());
        assert_eq!(g2.edge_weight(0, 1), Some(2.5));
    }

    #[test]
    fn edge_list_comments_and_blanks() {
        let text = "# a comment\n\n0 1\n 1 2 \n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("0 x".as_bytes(), None).is_err());
        assert!(read_edge_list("0".as_bytes(), None).is_err());
        assert!(read_edge_list("0 1 zzz".as_bytes(), None).is_err());
    }

    #[test]
    fn binary_round_trip_unweighted() {
        let edges = gen::rmat(8, 2000, gen::RmatParams::GRAPH500, 3);
        let g = CsrGraph::from_edges(256, &edges);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
        assert!(!g2.is_weighted());
    }

    #[test]
    fn binary_round_trip_weighted() {
        let edges = gen::with_random_weights(&gen::ring(50), 0.5, 2.0, 4);
        let g = CsrGraph::from_weighted_edges(50, &edges);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert!(g2.is_weighted());
        for v in g.vertices() {
            assert_eq!(g.edge_weights(v), g2.edge_weights(v));
        }
    }

    #[test]
    fn binary_rejects_bad_magic() {
        assert!(read_binary(&b"NOPE"[..]).is_err());
        assert!(read_binary(&b"GA"[..]).is_err());
    }

    #[test]
    fn file_save_load() {
        let dir = std::env::temp_dir().join("ga_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("g.bin");
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        save(&g, &p).unwrap();
        let g2 = load(&p).unwrap();
        assert_eq!(g2.num_edges(), 2);
        std::fs::remove_file(p).ok();
    }
}
