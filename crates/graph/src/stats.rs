//! Whole-graph statistics.
//!
//! The paper's §I lists "properties of the graph as a whole (such as the
//! diameter...)" among analytic outputs; these helpers compute the global
//! metrics the flow engine and benchmarks report.

use crate::{CsrGraph, VertexId};
use rayon::prelude::*;
use std::collections::VecDeque;

/// Summary statistics of a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub num_vertices: usize,
    /// Directed edge count.
    pub num_edges: usize,
    /// Vertices with no out-edges.
    pub num_sinks: usize,
    /// Minimum out-degree.
    pub min_degree: usize,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Mean out-degree.
    pub mean_degree: f64,
}

/// Compute the degree summary (parallel over vertices).
pub fn degree_stats(g: &CsrGraph) -> GraphStats {
    let n = g.num_vertices();
    if n == 0 {
        return GraphStats {
            num_vertices: 0,
            num_edges: 0,
            num_sinks: 0,
            min_degree: 0,
            max_degree: 0,
            mean_degree: 0.0,
        };
    }
    let (min_d, max_d, sinks) = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            let d = g.degree(v);
            (d, d, usize::from(d == 0))
        })
        .reduce(
            || (usize::MAX, 0, 0),
            |a, b| (a.0.min(b.0), a.1.max(b.1), a.2 + b.2),
        );
    GraphStats {
        num_vertices: n,
        num_edges: g.num_edges(),
        num_sinks: sinks,
        min_degree: min_d,
        max_degree: max_d,
        mean_degree: g.num_edges() as f64 / n as f64,
    }
}

/// Eccentricity of `src`: max BFS depth over reachable vertices, and the
/// farthest vertex. Returns `(farthest, depth)`.
pub fn eccentricity(g: &CsrGraph, src: VertexId) -> (VertexId, usize) {
    let n = g.num_vertices();
    let mut depth = vec![u32::MAX; n];
    let mut q = VecDeque::new();
    depth[src as usize] = 0;
    q.push_back(src);
    let mut far = (src, 0usize);
    while let Some(u) = q.pop_front() {
        let d = depth[u as usize] as usize;
        if d > far.1 {
            far = (u, d);
        }
        for &v in g.neighbors(u) {
            if depth[v as usize] == u32::MAX {
                depth[v as usize] = depth[u as usize] + 1;
                q.push_back(v);
            }
        }
    }
    far
}

/// Double-sweep lower bound on the diameter: BFS from `start`, then BFS
/// again from the farthest vertex found. Exact on trees, a good lower
/// bound in general — the cheap "diameter" estimate real pipelines use.
pub fn approx_diameter(g: &CsrGraph, start: VertexId) -> usize {
    let (far, _) = eccentricity(g, start);
    let (_, d) = eccentricity(g, far);
    d
}

/// Log2-bucketed out-degree distribution: `dist[i]` = vertices with
/// degree in `[2^i, 2^(i+1))`; `dist[0]` counts degrees 0 and 1.
pub fn degree_distribution_log2(g: &CsrGraph) -> Vec<usize> {
    let mut dist = Vec::new();
    for v in g.vertices() {
        let d = g.degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize - 1
        };
        if bucket >= dist.len() {
            dist.resize(bucket + 1, 0);
        }
        dist[bucket] += 1;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_on_star() {
        let g = CsrGraph::from_edges(5, &gen::star(5));
        let s = degree_stats(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.num_sinks, 4);
        assert!((s.mean_degree - 0.8).abs() < 1e-12);
    }

    #[test]
    fn stats_empty() {
        let g = CsrGraph::from_edges(0, &[]);
        let s = degree_stats(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.max_degree, 0);
    }

    #[test]
    fn eccentricity_on_path() {
        let g = CsrGraph::from_edges_undirected(6, &gen::path(6));
        let (far, d) = eccentricity(&g, 0);
        assert_eq!((far, d), (5, 5));
        let (_, d_mid) = eccentricity(&g, 3);
        assert_eq!(d_mid, 3);
    }

    #[test]
    fn approx_diameter_exact_on_path() {
        let g = CsrGraph::from_edges_undirected(9, &gen::path(9));
        // Start from the middle; double sweep still finds 8.
        assert_eq!(approx_diameter(&g, 4), 8);
    }

    #[test]
    fn degree_distribution_buckets() {
        // star(9): center degree 8 -> bucket 3; leaves degree 0 -> bucket 0
        let g = CsrGraph::from_edges(9, &gen::star(9));
        let dist = degree_distribution_log2(&g);
        assert_eq!(dist[0], 8);
        assert_eq!(dist[3], 1);
        assert_eq!(dist.iter().sum::<usize>(), 9);
    }
}
