//! Tiered larger-than-RAM storage: cold CSR rows and property columns
//! spill to CRC-framed disk segments behind a budgeted page cache.
//!
//! The paper's NORA boil works a 4–7 TB set and finds "disk is the
//! tall pole" (E3); ROADMAP item 3 asks for that regime to be
//! *representable* here: a graph whose row data does not fit the
//! configured RAM budget, served through a cache whose misses are real
//! disk reads, priced through the calibration model, and whose IO
//! misbehavior is first-class in the fault matrix.
//!
//! Three layers:
//!
//! * **`GAS1` segment codec** — one CRC-framed file per segment
//!   (`magic | version | kind | id | payload len | payload | crc32`),
//!   sharing the [`crate::io::crc32`] checksum with the WAL and
//!   checkpoint formats. Every decode error is *detected*: truncation,
//!   bit flips, and torn writes all fail the frame check instead of
//!   silently decoding.
//! * **[`SegmentStore`]** — the directory of segment files plus a
//!   `quarantine/` subdirectory corrupt segments are moved to. All IO
//!   passes the seeded fault registry at the `segment.write`,
//!   `segment.read`, and `segment.scrub` sites (scope-compatible, so a
//!   sharded fleet can fault one member's tier), including the slow-IO
//!   [`crate::faults::FaultMode::Delay`] mode.
//! * **[`TieredCsr`]** — an [`Adjacency`] implementation over spilled
//!   row segments: a RAM-budgeted LRU page cache, IO-cost-budgeted
//!   sequential prefetch, CRC-verified reads that quarantine corrupt
//!   segments, a background [`TieredCsr::scrub`] pass that detects bit
//!   rot proactively, [`TieredCsr::repair_from`] that restores
//!   quarantined/missing segments from a source of truth (resident
//!   copy, or the checkpoint+WAL-recovered graph the flow hands in) —
//!   with honest refusal and counted loss when no source exists — and
//!   a consecutive-failure circuit breaker that degrades to
//!   pinned-in-RAM operation when the device keeps failing.
//!
//! All five batch kernels run bit-identically over a `TieredCsr`
//! because rows decode to exactly the source CSR's sorted target
//! slices; the representation changes, the bits do not.

use crate::faults::{self, Intercept};
use crate::io::{crc32, Crc32};
use crate::{Adjacency, CsrGraph, PropertyStore, VertexId, Weight};
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Magic tag of the `GAS1` segment file format.
pub const MAGIC_SEGMENT: &[u8; 4] = b"GAS1";
/// Current `GAS1` codec version.
const SEGMENT_VERSION: u16 = 1;
/// Upper bound on any payload length read from an untrusted header.
const MAX_PAYLOAD: u64 = 1 << 32;

/// What a segment file holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SegmentKind {
    /// A contiguous range of forward CSR rows.
    Rows,
    /// A contiguous range of reverse (in-edge) CSR rows.
    RevRows,
    /// One property column (GAP1-encoded single-column store).
    PropColumn,
}

impl SegmentKind {
    fn tag(self) -> u8 {
        match self {
            SegmentKind::Rows => 0,
            SegmentKind::RevRows => 1,
            SegmentKind::PropColumn => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<SegmentKind> {
        match tag {
            0 => Some(SegmentKind::Rows),
            1 => Some(SegmentKind::RevRows),
            2 => Some(SegmentKind::PropColumn),
            _ => None,
        }
    }

    /// File-name prefix for this kind (`rows-000042.gas`).
    pub fn prefix(self) -> &'static str {
        match self {
            SegmentKind::Rows => "rows",
            SegmentKind::RevRows => "rev",
            SegmentKind::PropColumn => "prop",
        }
    }
}

/// Identity of one segment: kind plus index within the kind.
pub type SegmentId = (SegmentKind, u64);

// ---------------------------------------------------------------------
// GAS1 codec.
// ---------------------------------------------------------------------

/// Frame `payload` as a `GAS1` segment file image. The CRC covers the
/// header *and* the payload, so a flipped kind/id/length byte is as
/// detectable as a flipped payload byte.
pub fn encode_segment(kind: SegmentKind, id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(MAGIC_SEGMENT);
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out.push(kind.tag());
    out.push(0); // reserved
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let mut h = Crc32::new();
    h.update(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

fn corrupt(what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("GAS1: {what}"))
}

/// Decode a `GAS1` segment file image into `(kind, id, payload)`.
/// Every corruption — truncation at any byte, any single-bit flip, a
/// torn tail — is detected and reported as `InvalidData`; a corrupt
/// segment never silently decodes.
pub fn decode_segment(bytes: &[u8]) -> io::Result<(SegmentKind, u64, Vec<u8>)> {
    const HEADER: usize = 4 + 2 + 1 + 1 + 8 + 8;
    if bytes.len() < HEADER + 4 {
        return Err(corrupt("truncated header"));
    }
    if &bytes[0..4] != MAGIC_SEGMENT {
        return Err(corrupt("bad magic"));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SEGMENT_VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let kind = SegmentKind::from_tag(bytes[6]).ok_or_else(|| corrupt("unknown segment kind"))?;
    if bytes[7] != 0 {
        return Err(corrupt("nonzero reserved byte"));
    }
    let id = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(corrupt(format!("payload length {len} exceeds bound")));
    }
    let expect = HEADER + len as usize + 4;
    if bytes.len() != expect {
        return Err(corrupt(format!(
            "length mismatch: file {} bytes, frame says {expect}",
            bytes.len()
        )));
    }
    let stored = u32::from_le_bytes(bytes[expect - 4..].try_into().unwrap());
    let computed = crc32(&bytes[..expect - 4]);
    if stored != computed {
        return Err(corrupt(format!(
            "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    Ok((kind, id, bytes[HEADER..expect - 4].to_vec()))
}

// ---------------------------------------------------------------------
// Row-range payload codec.
// ---------------------------------------------------------------------

/// Decoded rows of one segment, resident in the page cache.
#[derive(Clone, Debug)]
struct ResidentSeg {
    /// First vertex of the range.
    start: VertexId,
    /// Relative offsets, `count + 1` entries; row `r` of the range is
    /// `targets[offsets[r]..offsets[r + 1]]`.
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Option<Vec<Weight>>,
    /// Decoded bytes this segment charges against the RAM budget.
    bytes: u64,
    /// LRU clock stamp of the last access.
    last_used: u64,
    /// True when this segment has no good on-disk copy (its spill
    /// failed): it must not be evicted, or the rows would be lost.
    no_disk_copy: bool,
}

impl ResidentSeg {
    fn decoded_bytes(offsets: &[u64], targets: &[VertexId], weights: &Option<Vec<Weight>>) -> u64 {
        (offsets.len() * 8 + targets.len() * 4 + weights.as_ref().map_or(0, |w| w.len() * 4)) as u64
    }
}

/// Encode rows `[start, start + count)` of `csr` (forward or reverse)
/// as a segment payload.
fn encode_rows_payload(csr: &CsrGraph, rev: bool, start: VertexId, count: u32) -> Vec<u8> {
    let weighted = !rev && csr.is_weighted();
    let mut offsets: Vec<u64> = Vec::with_capacity(count as usize + 1);
    let mut total: u64 = 0;
    offsets.push(0);
    for r in 0..count {
        let v = start + r;
        let deg = if rev { csr.in_degree(v) } else { csr.degree(v) };
        total += deg as u64;
        offsets.push(total);
    }
    let mut out = Vec::with_capacity(16 + offsets.len() * 8 + total as usize * 4);
    out.extend_from_slice(&start.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.push(u8::from(weighted));
    out.extend_from_slice(&[0u8; 3]);
    for &o in &offsets {
        out.extend_from_slice(&o.to_le_bytes());
    }
    for r in 0..count {
        let v = start + r;
        let row = if rev {
            csr.in_neighbors(v)
        } else {
            csr.neighbors(v)
        };
        for &t in row {
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
    if weighted {
        for r in 0..count {
            for w in csr.edge_weights(start + r).unwrap_or(&[]) {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
    out
}

/// Re-encode a resident segment's rows (repair from the in-RAM copy).
fn encode_resident_payload(seg: &ResidentSeg) -> Vec<u8> {
    let count = (seg.offsets.len() - 1) as u32;
    let weighted = seg.weights.is_some();
    let mut out = Vec::with_capacity(16 + seg.offsets.len() * 8 + seg.targets.len() * 4);
    out.extend_from_slice(&seg.start.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.push(u8::from(weighted));
    out.extend_from_slice(&[0u8; 3]);
    for &o in &seg.offsets {
        out.extend_from_slice(&o.to_le_bytes());
    }
    for &t in &seg.targets {
        out.extend_from_slice(&t.to_le_bytes());
    }
    if let Some(w) = &seg.weights {
        for x in w {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out
}

fn decode_rows_payload(payload: &[u8]) -> io::Result<ResidentSeg> {
    if payload.len() < 12 {
        return Err(corrupt("row payload truncated"));
    }
    let start = VertexId::from_le_bytes(payload[0..4].try_into().unwrap());
    let count = u32::from_le_bytes(payload[4..8].try_into().unwrap());
    let weighted = payload[8] != 0;
    let off_base = 12;
    let n_off = count as usize + 1;
    let tgt_base = off_base + n_off * 8;
    if payload.len() < tgt_base {
        return Err(corrupt("row payload shorter than offsets"));
    }
    let mut offsets = Vec::with_capacity(n_off);
    for i in 0..n_off {
        let a = off_base + i * 8;
        offsets.push(u64::from_le_bytes(payload[a..a + 8].try_into().unwrap()));
    }
    let m = *offsets.last().unwrap();
    if m > MAX_PAYLOAD {
        return Err(corrupt("row payload edge count exceeds bound"));
    }
    let m = m as usize;
    let expect = tgt_base + m * 4 + if weighted { m * 4 } else { 0 };
    if payload.len() != expect {
        return Err(corrupt("row payload length mismatch"));
    }
    let mut targets = Vec::with_capacity(m);
    for i in 0..m {
        let a = tgt_base + i * 4;
        targets.push(VertexId::from_le_bytes(
            payload[a..a + 4].try_into().unwrap(),
        ));
    }
    let weights = weighted.then(|| {
        let w_base = tgt_base + m * 4;
        (0..m)
            .map(|i| {
                let a = w_base + i * 4;
                Weight::from_le_bytes(payload[a..a + 4].try_into().unwrap())
            })
            .collect::<Vec<Weight>>()
    });
    let bytes = ResidentSeg::decoded_bytes(&offsets, &targets, &weights);
    Ok(ResidentSeg {
        start,
        offsets,
        targets,
        weights,
        bytes,
        last_used: 0,
        no_disk_copy: false,
    })
}

// ---------------------------------------------------------------------
// Segment store: the on-disk directory, with fault sites.
// ---------------------------------------------------------------------

/// Outcome of one store IO: how many bytes moved and whether an
/// injected [`Intercept::Delay`] slowed it.
#[derive(Clone, Copy, Debug, Default)]
pub struct IoOutcome {
    /// Bytes written or read.
    pub bytes: u64,
    /// True when a slow-IO fault delayed the operation.
    pub slowed: bool,
}

/// Why a segment read failed — callers treat the arms differently:
/// transient IO errors are retried, corrupt segments are already
/// quarantined and need repair, missing segments need repair outright.
#[derive(Debug)]
pub enum SegmentReadError {
    /// The read itself failed (injected or real IO error); the on-disk
    /// bytes were not judged.
    Io(io::Error),
    /// The frame failed validation; the file has been moved to
    /// `quarantine/`.
    Corrupt(io::Error),
    /// No file for this segment (never written, or quarantined by an
    /// earlier read).
    Missing,
}

/// A directory of `GAS1` segment files plus its `quarantine/` corner.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
}

impl SegmentStore {
    /// Open (creating if needed) a segment directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SegmentStore> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("quarantine"))?;
        Ok(SegmentStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of segment `(kind, id)`.
    pub fn segment_path(&self, kind: SegmentKind, id: u64) -> PathBuf {
        self.dir.join(format!("{}-{id:06}.gas", kind.prefix()))
    }

    fn quarantine_path(&self, kind: SegmentKind, id: u64) -> PathBuf {
        self.dir
            .join("quarantine")
            .join(format!("{}-{id:06}.gas", kind.prefix()))
    }

    /// Write one segment through the `segment.write` fault site. An
    /// injected short write tears the file at its final path exactly as
    /// a crash mid-write would; the torn frame fails CRC on read.
    pub fn write(&self, kind: SegmentKind, id: u64, payload: &[u8]) -> io::Result<IoOutcome> {
        let frame = encode_segment(kind, id, payload);
        let path = self.segment_path(kind, id);
        let mut slowed = false;
        match faults::intercept("segment.write") {
            Intercept::Proceed => {}
            Intercept::Delay(ms) => {
                faults::apply_delay(ms);
                slowed = true;
            }
            Intercept::Error => return Err(faults::injected("segment.write")),
            Intercept::ShortWrite(k) => {
                let k = k.min(frame.len());
                let mut f = fs::File::create(&path)?;
                f.write_all(&frame[..k])?;
                f.sync_data()?;
                return Err(faults::injected("segment.write"));
            }
        }
        let mut f = fs::File::create(&path)?;
        f.write_all(&frame)?;
        f.sync_data()?;
        Ok(IoOutcome {
            bytes: frame.len() as u64,
            slowed,
        })
    }

    /// Read and validate one segment through the `segment.read` fault
    /// site. A frame that fails validation is moved to `quarantine/`
    /// before the error is returned — it is never silently decoded and
    /// never re-read as good data.
    pub fn read(
        &self,
        kind: SegmentKind,
        id: u64,
    ) -> Result<(Vec<u8>, IoOutcome), SegmentReadError> {
        let mut slowed = false;
        match faults::intercept("segment.read") {
            Intercept::Proceed => {}
            Intercept::Delay(ms) => {
                faults::apply_delay(ms);
                slowed = true;
            }
            // A short "write" makes no sense on the read path; both
            // injected arms are read errors.
            Intercept::Error | Intercept::ShortWrite(_) => {
                return Err(SegmentReadError::Io(faults::injected("segment.read")))
            }
        }
        let path = self.segment_path(kind, id);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(SegmentReadError::Missing),
            Err(e) => return Err(SegmentReadError::Io(e)),
        };
        match decode_segment(&bytes) {
            Ok((got_kind, got_id, payload)) if got_kind == kind && got_id == id => Ok((
                payload,
                IoOutcome {
                    bytes: bytes.len() as u64,
                    slowed,
                },
            )),
            Ok((got_kind, got_id, _)) => {
                let e = corrupt(format!(
                    "segment identity mismatch: file says {:?}/{got_id}, expected {kind:?}/{id}",
                    got_kind
                ));
                let _ = self.quarantine(kind, id);
                Err(SegmentReadError::Corrupt(e))
            }
            Err(e) => {
                let _ = self.quarantine(kind, id);
                Err(SegmentReadError::Corrupt(e))
            }
        }
    }

    /// Move a segment file into `quarantine/` (idempotent; missing
    /// files are fine).
    pub fn quarantine(&self, kind: SegmentKind, id: u64) -> io::Result<()> {
        let from = self.segment_path(kind, id);
        match fs::rename(&from, self.quarantine_path(kind, id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// True when segment `(kind, id)` has a (possibly corrupt) file at
    /// its live path.
    pub fn exists(&self, kind: SegmentKind, id: u64) -> bool {
        self.segment_path(kind, id).exists()
    }

    /// Indexes of all live segments of `kind`, sorted.
    pub fn list(&self, kind: SegmentKind) -> io::Result<Vec<u64>> {
        let mut ids = Vec::new();
        let prefix = format!("{}-", kind.prefix());
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(rest) = name.strip_prefix(&prefix) {
                if let Some(idx) = rest.strip_suffix(".gas") {
                    if let Ok(id) = idx.parse::<u64>() {
                        ids.push(id);
                    }
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Remove all live segment files of `kind` (fresh respill).
    pub fn clear(&self, kind: SegmentKind) -> io::Result<()> {
        for id in self.list(kind)? {
            fs::remove_file(self.segment_path(kind, id))?;
        }
        Ok(())
    }

    /// Scrub one segment through the `segment.scrub` fault site: read
    /// its live file and validate the frame without decoding rows into
    /// the cache. Corrupt frames are quarantined. Returns
    /// `Ok(Some(outcome))` for a healthy segment, `Ok(None)` when the
    /// file is missing, and the read/validation error otherwise.
    pub fn scrub_one(
        &self,
        kind: SegmentKind,
        id: u64,
    ) -> Result<Option<IoOutcome>, SegmentReadError> {
        let mut slowed = false;
        match faults::intercept("segment.scrub") {
            Intercept::Proceed => {}
            Intercept::Delay(ms) => {
                faults::apply_delay(ms);
                slowed = true;
            }
            Intercept::Error | Intercept::ShortWrite(_) => {
                return Err(SegmentReadError::Io(faults::injected("segment.scrub")))
            }
        }
        let path = self.segment_path(kind, id);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(SegmentReadError::Io(e)),
        };
        match decode_segment(&bytes) {
            Ok((got_kind, got_id, _)) if got_kind == kind && got_id == id => Ok(Some(IoOutcome {
                bytes: bytes.len() as u64,
                slowed,
            })),
            Ok(_) | Err(_) => {
                let _ = self.quarantine(kind, id);
                Err(SegmentReadError::Corrupt(corrupt(format!(
                    "scrub found corrupt segment {}/{id}",
                    kind.prefix()
                ))))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Tier configuration + counters.
// ---------------------------------------------------------------------

/// Knobs for a [`TieredCsr`]. Built with struct-update syntax over
/// [`TierConfig::new`] or the builder-style `with_*` methods.
#[derive(Clone, Debug)]
pub struct TierConfig {
    /// Directory segments spill to.
    pub dir: PathBuf,
    /// RAM budget for resident decoded row data. The per-vertex degree
    /// index (8 bytes/vertex, the tier's "page table") is accounted
    /// separately and not evictable.
    pub ram_budget_bytes: u64,
    /// Rows per segment.
    pub segment_rows: usize,
    /// IO-cost budget per window ([`TieredCsr::begin_io_window`]):
    /// prefetch only spends budget left over after demand misses, so a
    /// tight budget degrades to demand paging instead of thrashing.
    pub io_budget_bytes: u64,
    /// Prefetch the next sequential segment after a demand miss when
    /// the IO budget allows.
    pub prefetch: bool,
    /// Extra attempts after a failed segment read.
    pub read_retries: u32,
    /// Extra attempts after a failed segment write.
    pub write_retries: u32,
    /// Consecutive unrecovered IO failures before the breaker trips
    /// and the tier degrades to pinned-in-RAM operation.
    pub breaker_threshold: u32,
    /// Keep the source snapshot `Arc` as the pinned-in-RAM fallback.
    /// Without it, a tripped breaker (or an unrepairable segment) can
    /// only count the loss honestly.
    pub keep_pin: bool,
}

impl TierConfig {
    /// Defaults: 64 MiB RAM budget, 1024-row segments, unlimited IO
    /// budget, prefetch on, 2 read/write retries, breaker at 4.
    pub fn new(dir: impl Into<PathBuf>) -> TierConfig {
        TierConfig {
            dir: dir.into(),
            ram_budget_bytes: 64 << 20,
            segment_rows: 1024,
            io_budget_bytes: u64::MAX,
            prefetch: true,
            read_retries: 2,
            write_retries: 2,
            breaker_threshold: 4,
            keep_pin: true,
        }
    }

    /// Set the resident RAM budget.
    pub fn ram_budget(mut self, bytes: u64) -> Self {
        self.ram_budget_bytes = bytes;
        self
    }

    /// Set rows per segment.
    pub fn segment_rows(mut self, rows: usize) -> Self {
        self.segment_rows = rows.max(1);
        self
    }

    /// Set the per-window IO budget.
    pub fn io_budget(mut self, bytes: u64) -> Self {
        self.io_budget_bytes = bytes;
        self
    }

    /// Enable/disable sequential prefetch.
    pub fn prefetch(mut self, on: bool) -> Self {
        self.prefetch = on;
        self
    }

    /// Set read/write retry budgets.
    pub fn retries(mut self, read: u32, write: u32) -> Self {
        self.read_retries = read;
        self.write_retries = write;
        self
    }

    /// Set the consecutive-failure breaker threshold.
    pub fn breaker_threshold(mut self, n: u32) -> Self {
        self.breaker_threshold = n.max(1);
        self
    }

    /// Keep (or drop) the pinned-in-RAM fallback snapshot.
    pub fn keep_pin(mut self, on: bool) -> Self {
        self.keep_pin = on;
        self
    }
}

/// Tier IO counters — merged into `FlowStats`, persisted in GAC1 v3
/// checkpoints, and priced through the calibration model's disk rows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Segments spilled (written) to disk.
    pub spilled_segments: u64,
    /// Encoded bytes written by spills and repairs.
    pub spilled_bytes: u64,
    /// Row reads served from the resident cache.
    pub cache_hits: u64,
    /// Row reads that had to fetch a segment from disk.
    pub cache_misses: u64,
    /// Encoded bytes read from disk (misses + prefetch).
    pub read_bytes: u64,
    /// Sequential prefetches issued.
    pub prefetches: u64,
    /// Prefetches skipped because the IO window budget was exhausted.
    pub prefetch_denied: u64,
    /// Segments evicted to stay inside the RAM budget.
    pub evictions: u64,
    /// Segments that failed frame validation and were quarantined.
    pub corrupt_segments: u64,
    /// Segments verified by scrub passes.
    pub scrubbed_segments: u64,
    /// Bytes read by scrub passes.
    pub scrub_bytes: u64,
    /// Scrub reads that errored without judging the on-disk bytes.
    pub scrub_errors: u64,
    /// Quarantined/missing segments restored from a good source.
    pub repaired_segments: u64,
    /// Segments lost for good: no disk copy, no resident copy, no
    /// repair source — counted, never papered over.
    pub lost_segments: u64,
    /// Row reads served empty because the segment was unavailable and
    /// no pin existed (the read-path honesty counter).
    pub lost_rows: u64,
    /// IOs slowed by an injected [`faults::FaultMode::Delay`].
    pub slow_ios: u64,
    /// Row reads served from the pinned-in-RAM snapshot after IO
    /// failures or a tripped breaker.
    pub pinned_fallbacks: u64,
    /// Times the consecutive-failure breaker tripped to pinned mode.
    pub breaker_trips: u64,
    /// Segment writes that failed after retries (segment kept resident).
    pub write_failures: u64,
    /// Segment reads that failed after retries (transient IO, not
    /// corruption).
    pub read_failures: u64,
}

impl TierStats {
    /// Fold another stats block into this one (sharded merge).
    pub fn merge(&mut self, o: &TierStats) {
        self.spilled_segments += o.spilled_segments;
        self.spilled_bytes += o.spilled_bytes;
        self.cache_hits += o.cache_hits;
        self.cache_misses += o.cache_misses;
        self.read_bytes += o.read_bytes;
        self.prefetches += o.prefetches;
        self.prefetch_denied += o.prefetch_denied;
        self.evictions += o.evictions;
        self.corrupt_segments += o.corrupt_segments;
        self.scrubbed_segments += o.scrubbed_segments;
        self.scrub_bytes += o.scrub_bytes;
        self.scrub_errors += o.scrub_errors;
        self.repaired_segments += o.repaired_segments;
        self.lost_segments += o.lost_segments;
        self.lost_rows += o.lost_rows;
        self.slow_ios += o.slow_ios;
        self.pinned_fallbacks += o.pinned_fallbacks;
        self.breaker_trips += o.breaker_trips;
        self.write_failures += o.write_failures;
        self.read_failures += o.read_failures;
    }

    /// Total disk bytes this tier moved (spill, demand/prefetch reads,
    /// scrub) — the quantity the calibration model prices as disk
    /// demand.
    pub fn disk_bytes(&self) -> u64 {
        self.spilled_bytes + self.read_bytes + self.scrub_bytes
    }
}

/// Report of one [`TieredCsr::scrub`] pass.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// Segments whose frames validated.
    pub clean: u64,
    /// Bytes read and checksummed.
    pub bytes: u64,
    /// Segments found corrupt and quarantined.
    pub corrupt: Vec<SegmentId>,
    /// Segments already missing from disk (quarantined earlier or
    /// never spilled).
    pub missing: Vec<SegmentId>,
    /// Scrub reads that errored (device trouble, not a verdict on the
    /// bytes — the segment stays live).
    pub errors: u64,
}

/// Report of one [`TieredCsr::repair_from`] pass.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// Segments rewritten from a good source.
    pub repaired: Vec<SegmentId>,
    /// Segments with no source left — honest refusal, counted in
    /// [`TierStats::lost_segments`].
    pub unrepairable: Vec<SegmentId>,
    /// Encoded bytes rewritten.
    pub bytes: u64,
}

// ---------------------------------------------------------------------
// TieredCsr: the budgeted page-cache tier.
// ---------------------------------------------------------------------

struct TierState {
    resident: HashMap<(bool, usize), ResidentSeg>,
    resident_bytes: u64,
    clock: u64,
    io_window_spent: u64,
    consecutive_failures: u32,
    pinned_mode: bool,
    quarantined: Vec<SegmentId>,
    stats: TierStats,
}

/// An [`Adjacency`] served from CRC-framed disk segments behind a
/// RAM-budgeted page cache. See the module docs for the full contract;
/// the short version: rows decode bit-identical to the source CSR,
/// corruption is detected and quarantined rather than decoded, repair
/// restores from a source of truth or refuses honestly, and a device
/// that keeps failing trips a breaker into pinned-in-RAM operation.
pub struct TieredCsr {
    store: SegmentStore,
    config: TierConfig,
    num_vertices: usize,
    num_edges: usize,
    weighted: bool,
    has_reverse: bool,
    /// Per-vertex out-degrees (the RAM-resident index).
    degrees: Vec<u32>,
    /// Per-vertex in-degrees when the source has a reverse index.
    in_degrees: Vec<u32>,
    num_fwd_segs: usize,
    num_rev_segs: usize,
    /// Encoded on-disk size per forward/reverse segment (prefetch
    /// pricing).
    fwd_seg_bytes: Vec<u64>,
    rev_seg_bytes: Vec<u64>,
    /// Pinned-in-RAM fallback (see [`TierConfig::keep_pin`]).
    pin: Option<Arc<CsrGraph>>,
    state: Mutex<TierState>,
}

impl std::fmt::Debug for TieredCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredCsr")
            .field("num_vertices", &self.num_vertices)
            .field("num_edges", &self.num_edges)
            .field("segments", &(self.num_fwd_segs + self.num_rev_segs))
            .field("dir", &self.config.dir)
            .finish()
    }
}

impl TieredCsr {
    /// Spill `snap` into segments under `config.dir` and return the
    /// tier over them. The cache starts cold (nothing resident). A
    /// segment whose write keeps failing after retries stays resident
    /// and non-evictable — the rows are never abandoned to a disk that
    /// did not accept them — and counts toward the breaker.
    pub fn spill(snap: &Arc<CsrGraph>, config: TierConfig) -> io::Result<TieredCsr> {
        let store = SegmentStore::open(&config.dir)?;
        store.clear(SegmentKind::Rows)?;
        store.clear(SegmentKind::RevRows)?;
        let n = snap.num_vertices();
        let seg_rows = config.segment_rows.max(1);
        let num_fwd_segs = n.div_ceil(seg_rows);
        let num_rev_segs = if snap.has_reverse() { num_fwd_segs } else { 0 };
        let mut tier = TieredCsr {
            store,
            num_vertices: n,
            num_edges: snap.num_edges(),
            weighted: snap.is_weighted(),
            has_reverse: snap.has_reverse(),
            degrees: (0..n).map(|v| snap.degree(v as VertexId) as u32).collect(),
            in_degrees: if snap.has_reverse() {
                (0..n)
                    .map(|v| snap.in_degree(v as VertexId) as u32)
                    .collect()
            } else {
                Vec::new()
            },
            num_fwd_segs,
            num_rev_segs,
            fwd_seg_bytes: vec![0; num_fwd_segs],
            rev_seg_bytes: vec![0; num_rev_segs],
            pin: config.keep_pin.then(|| Arc::clone(snap)),
            config,
            state: Mutex::new(TierState {
                resident: HashMap::new(),
                resident_bytes: 0,
                clock: 0,
                io_window_spent: 0,
                consecutive_failures: 0,
                pinned_mode: false,
                quarantined: Vec::new(),
                stats: TierStats::default(),
            }),
        };
        for seg in 0..num_fwd_segs {
            tier.spill_one(snap, false, seg)?;
        }
        for seg in 0..num_rev_segs {
            tier.spill_one(snap, true, seg)?;
        }
        Ok(tier)
    }

    fn seg_range(&self, seg: usize) -> (VertexId, u32) {
        let start = seg * self.config.segment_rows;
        let count = self.config.segment_rows.min(self.num_vertices - start);
        (start as VertexId, count as u32)
    }

    /// Spill one segment, retrying per config. On persistent failure
    /// the segment is kept resident (non-evictable) instead of lost.
    fn spill_one(&mut self, snap: &CsrGraph, rev: bool, seg: usize) -> io::Result<()> {
        let (start, count) = self.seg_range(seg);
        let payload = encode_rows_payload(snap, rev, start, count);
        let kind = if rev {
            SegmentKind::RevRows
        } else {
            SegmentKind::Rows
        };
        let state = self.state.get_mut().unwrap();
        let mut attempt = 0;
        loop {
            match self.store.write(kind, seg as u64, &payload) {
                Ok(out) => {
                    state.stats.spilled_segments += 1;
                    state.stats.spilled_bytes += out.bytes;
                    state.stats.slow_ios += u64::from(out.slowed);
                    state.consecutive_failures = 0;
                    if rev {
                        self.rev_seg_bytes[seg] = out.bytes;
                    } else {
                        self.fwd_seg_bytes[seg] = out.bytes;
                    }
                    return Ok(());
                }
                Err(e) if attempt < self.config.write_retries => {
                    let _ = e;
                    attempt += 1;
                }
                Err(_) => {
                    // Keep the rows resident; a disk that refused the
                    // write does not get to own the only copy.
                    state.stats.write_failures += 1;
                    state.consecutive_failures += 1;
                    if state.consecutive_failures >= self.config.breaker_threshold
                        && !state.pinned_mode
                    {
                        state.pinned_mode = true;
                        state.stats.breaker_trips += 1;
                    }
                    let mut decoded =
                        decode_rows_payload(&payload).expect("freshly encoded payload must decode");
                    decoded.no_disk_copy = true;
                    state.clock += 1;
                    decoded.last_used = state.clock;
                    state.resident_bytes += decoded.bytes;
                    state.resident.insert((rev, seg), decoded);
                    return Ok(());
                }
            }
        }
    }

    /// Number of vertices per segment.
    pub fn segment_rows(&self) -> usize {
        self.config.segment_rows
    }

    /// Forward + reverse segment count.
    pub fn num_segments(&self) -> usize {
        self.num_fwd_segs + self.num_rev_segs
    }

    /// Decoded bytes currently resident in the page cache.
    pub fn resident_bytes(&self) -> u64 {
        self.state.lock().unwrap().resident_bytes
    }

    /// The configured resident RAM budget.
    pub fn ram_budget_bytes(&self) -> u64 {
        self.config.ram_budget_bytes
    }

    /// Decoded bytes of the full row working set (what 100% RAM would
    /// hold): the basis benchmarks size their budgets against.
    pub fn working_set_bytes(&self) -> u64 {
        let m = self.num_edges as u64;
        let fwd = m * 4 + (self.num_vertices as u64 + self.num_fwd_segs as u64) * 8;
        let w = if self.weighted { m * 4 } else { 0 };
        let rev = if self.has_reverse { fwd } else { 0 };
        fwd + w + rev
    }

    /// True once the breaker has tripped to pinned-in-RAM operation.
    pub fn pinned_mode(&self) -> bool {
        self.state.lock().unwrap().pinned_mode
    }

    /// Currently quarantined segments (cleared by repair).
    pub fn quarantined(&self) -> Vec<SegmentId> {
        self.state.lock().unwrap().quarantined.clone()
    }

    /// Counters so far (cumulative; see [`TieredCsr::take_stats`]).
    pub fn stats(&self) -> TierStats {
        self.state.lock().unwrap().stats
    }

    /// Drain the counters (the flow folds them into `FlowStats` after
    /// each batch).
    pub fn take_stats(&self) -> TierStats {
        std::mem::take(&mut self.state.lock().unwrap().stats)
    }

    /// Start a fresh IO-cost window: demand misses and prefetches
    /// inside one window share [`TierConfig::io_budget_bytes`]; once
    /// spent, prefetch is denied (demand misses always proceed — the
    /// budget shapes speculation, not correctness).
    pub fn begin_io_window(&self) {
        self.state.lock().unwrap().io_window_spent = 0;
    }

    fn seg_of(&self, v: VertexId) -> usize {
        v as usize / self.config.segment_rows
    }

    /// Fetch a segment into the cache (caller holds the lock via
    /// `state`). Returns false when the segment could not be fetched.
    fn fetch_locked(&self, state: &mut TierState, rev: bool, seg: usize) -> bool {
        let kind = if rev {
            SegmentKind::RevRows
        } else {
            SegmentKind::Rows
        };
        let mut attempt = 0;
        loop {
            match self.store.read(kind, seg as u64) {
                Ok((payload, out)) => {
                    state.stats.read_bytes += out.bytes;
                    state.stats.slow_ios += u64::from(out.slowed);
                    state.io_window_spent = state.io_window_spent.saturating_add(out.bytes);
                    state.consecutive_failures = 0;
                    match decode_rows_payload(&payload) {
                        Ok(mut decoded) => {
                            state.clock += 1;
                            decoded.last_used = state.clock;
                            state.resident_bytes += decoded.bytes;
                            state.resident.insert((rev, seg), decoded);
                            self.evict_over_budget(state, (rev, seg));
                            return true;
                        }
                        Err(_) => {
                            // Frame CRC passed but the payload lied —
                            // treat as corrupt, same as the store would.
                            let _ = self.store.quarantine(kind, seg as u64);
                            state.stats.corrupt_segments += 1;
                            state.quarantined.push((kind, seg as u64));
                            return false;
                        }
                    }
                }
                Err(SegmentReadError::Io(_)) if attempt < self.config.read_retries => {
                    attempt += 1;
                }
                Err(SegmentReadError::Io(_)) => {
                    state.stats.read_failures += 1;
                    state.consecutive_failures += 1;
                    if state.consecutive_failures >= self.config.breaker_threshold
                        && !state.pinned_mode
                    {
                        state.pinned_mode = true;
                        state.stats.breaker_trips += 1;
                    }
                    return false;
                }
                Err(SegmentReadError::Corrupt(_)) => {
                    state.stats.corrupt_segments += 1;
                    state.quarantined.push((kind, seg as u64));
                    return false;
                }
                Err(SegmentReadError::Missing) => {
                    return false;
                }
            }
        }
    }

    /// Evict least-recently-used segments until resident bytes fit the
    /// budget. The just-inserted segment and segments without a disk
    /// copy are exempt (evicting either would break correctness).
    fn evict_over_budget(&self, state: &mut TierState, keep: (bool, usize)) {
        while state.resident_bytes > self.config.ram_budget_bytes {
            let victim = state
                .resident
                .iter()
                .filter(|(k, s)| **k != keep && !s.no_disk_copy)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    let seg = state.resident.remove(&k).unwrap();
                    state.resident_bytes -= seg.bytes;
                    state.stats.evictions += 1;
                }
                None => break, // nothing evictable: tolerate overage
            }
        }
    }

    /// Issue a budgeted sequential prefetch of `seg + 1` after a
    /// demand miss of `seg`.
    fn maybe_prefetch(&self, state: &mut TierState, rev: bool, seg: usize) {
        if !self.config.prefetch || state.pinned_mode {
            return;
        }
        let next = seg + 1;
        let count = if rev {
            self.num_rev_segs
        } else {
            self.num_fwd_segs
        };
        if next >= count || state.resident.contains_key(&(rev, next)) {
            return;
        }
        let price = if rev {
            self.rev_seg_bytes[next]
        } else {
            self.fwd_seg_bytes[next]
        };
        if state.io_window_spent.saturating_add(price) > self.config.io_budget_bytes {
            state.stats.prefetch_denied += 1;
            return;
        }
        if self.fetch_locked(state, rev, next) {
            state.stats.prefetches += 1;
        }
    }

    /// Run `f` on row `v` (forward or reverse): `(targets, weights)`.
    /// Falls back to the pin on IO failure, and to an empty row — with
    /// `lost_rows` counted — when no pin exists.
    fn with_row<R>(
        &self,
        v: VertexId,
        rev: bool,
        f: impl FnOnce(&[VertexId], Option<&[Weight]>) -> R,
    ) -> R {
        let seg = self.seg_of(v);
        let mut state = self.state.lock().unwrap();
        if state.pinned_mode {
            if let Some(pin) = &self.pin {
                state.stats.pinned_fallbacks += 1;
                let row = if rev {
                    pin.in_neighbors(v)
                } else {
                    pin.neighbors(v)
                };
                let w = if rev { None } else { pin.edge_weights(v) };
                return f(row, w);
            }
        }
        let mut missed = false;
        if !state.resident.contains_key(&(rev, seg)) {
            state.stats.cache_misses += 1;
            missed = true;
            if !self.fetch_locked(&mut state, rev, seg) {
                // Unfetchable (IO failure, corrupt, or missing): serve
                // from the pin when we have one, else count the loss.
                if let Some(pin) = &self.pin {
                    state.stats.pinned_fallbacks += 1;
                    let row = if rev {
                        pin.in_neighbors(v)
                    } else {
                        pin.neighbors(v)
                    };
                    let w = if rev { None } else { pin.edge_weights(v) };
                    return f(row, w);
                }
                state.stats.lost_rows += 1;
                return f(&[], None);
            }
        } else {
            state.stats.cache_hits += 1;
        }
        state.clock += 1;
        let clock = state.clock;
        let resident = state.resident.get_mut(&(rev, seg)).unwrap();
        resident.last_used = clock;
        let r = (v - resident.start) as usize;
        let (a, b) = (
            resident.offsets[r] as usize,
            resident.offsets[r + 1] as usize,
        );
        let out = f(
            &resident.targets[a..b],
            resident.weights.as_deref().map(|w| &w[a..b]),
        );
        if missed {
            // Prefetch only after the row has been served: under a
            // tight budget the speculative segment may evict this one.
            self.maybe_prefetch(&mut state, rev, seg);
        }
        out
    }

    /// Scrub every segment this tier owns: validate frames on disk,
    /// quarantine corruption, report missing files. Scrub never
    /// decodes a corrupt frame into served data — the failure mode is
    /// quarantine + repair, not a wrong answer.
    pub fn scrub(&self) -> ScrubReport {
        let mut report = ScrubReport::default();
        let mut state = self.state.lock().unwrap();
        let kinds = [
            (SegmentKind::Rows, self.num_fwd_segs),
            (SegmentKind::RevRows, self.num_rev_segs),
        ];
        for (kind, count) in kinds {
            for seg in 0..count {
                match self.store.scrub_one(kind, seg as u64) {
                    Ok(Some(out)) => {
                        report.clean += 1;
                        report.bytes += out.bytes;
                        state.stats.scrubbed_segments += 1;
                        state.stats.scrub_bytes += out.bytes;
                        state.stats.slow_ios += u64::from(out.slowed);
                    }
                    Ok(None) => report.missing.push((kind, seg as u64)),
                    Err(SegmentReadError::Corrupt(_)) => {
                        state.stats.corrupt_segments += 1;
                        state.quarantined.push((kind, seg as u64));
                        report.corrupt.push((kind, seg as u64));
                    }
                    Err(_) => {
                        // Device error, not a verdict on the bytes: the
                        // segment stays live, the error is counted.
                        state.stats.scrub_errors += 1;
                        report.errors += 1;
                    }
                }
            }
        }
        report
    }

    /// Restore every quarantined/missing segment. Source priority: the
    /// resident in-RAM copy (still good), then `source` (the
    /// checkpoint+WAL-recovered graph the flow hands in, or a replica
    /// reconstruction in the sharded fleet). With neither, the segment
    /// is reported unrepairable and counted lost — never fabricated.
    pub fn repair_from(&self, source: Option<&CsrGraph>) -> RepairReport {
        let mut report = RepairReport::default();
        let mut state = self.state.lock().unwrap();
        let kinds = [
            (SegmentKind::Rows, self.num_fwd_segs, false),
            (SegmentKind::RevRows, self.num_rev_segs, true),
        ];
        for (kind, count, rev) in kinds {
            for seg in 0..count {
                if self.store.exists(kind, seg as u64) {
                    continue;
                }
                let payload = if let Some(res) = state.resident.get(&(rev, seg)) {
                    Some(encode_resident_payload(res))
                } else if let Some(src) = source {
                    let (start, rows) = self.seg_range(seg);
                    Some(encode_rows_payload(src, rev, start, rows))
                } else {
                    self.pin.as_ref().map(|pin| {
                        let (start, rows) = self.seg_range(seg);
                        encode_rows_payload(pin, rev, start, rows)
                    })
                };
                match payload {
                    Some(payload) => {
                        let mut attempt = 0;
                        loop {
                            match self.store.write(kind, seg as u64, &payload) {
                                Ok(out) => {
                                    state.stats.repaired_segments += 1;
                                    state.stats.spilled_bytes += out.bytes;
                                    state.stats.slow_ios += u64::from(out.slowed);
                                    report.repaired.push((kind, seg as u64));
                                    report.bytes += out.bytes;
                                    // The rewritten copy is good again:
                                    // a resident twin may evict freely.
                                    if let Some(res) = state.resident.get_mut(&(rev, seg)) {
                                        res.no_disk_copy = false;
                                    }
                                    break;
                                }
                                Err(_) if attempt < self.config.write_retries => attempt += 1,
                                Err(_) => {
                                    state.stats.write_failures += 1;
                                    report.unrepairable.push((kind, seg as u64));
                                    break;
                                }
                            }
                        }
                    }
                    None => {
                        state.stats.lost_segments += 1;
                        report.unrepairable.push((kind, seg as u64));
                    }
                }
            }
        }
        state.quarantined.retain(|id| !report.repaired.contains(id));
        report
    }
}

impl Adjacency for TieredCsr {
    type Neighbors<'a> = std::vec::IntoIter<VertexId>;
    type WeightedNeighbors<'a> = std::vec::IntoIter<(VertexId, Weight)>;

    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.degrees[v as usize] as usize
    }

    fn neighbors(&self, v: VertexId) -> Self::Neighbors<'_> {
        self.with_row(v, false, |t, _| t.to_vec()).into_iter()
    }

    fn weighted_neighbors(&self, v: VertexId) -> Self::WeightedNeighbors<'_> {
        self.with_row(v, false, |t, w| match w {
            Some(w) => t.iter().copied().zip(w.iter().copied()).collect::<Vec<_>>(),
            None => t.iter().map(|&x| (x, 1.0)).collect(),
        })
        .into_iter()
    }

    fn is_weighted(&self) -> bool {
        self.weighted
    }

    fn has_reverse(&self) -> bool {
        self.has_reverse
    }

    fn in_degree(&self, v: VertexId) -> usize {
        assert!(self.has_reverse, "no reverse index");
        self.in_degrees[v as usize] as usize
    }

    fn in_neighbors(&self, v: VertexId) -> Self::Neighbors<'_> {
        assert!(self.has_reverse, "no reverse index");
        self.with_row(v, true, |t, _| t.to_vec()).into_iter()
    }
}

// ---------------------------------------------------------------------
// Property-column spill.
// ---------------------------------------------------------------------

/// Spill every property column of `props` as one `PropColumn` segment
/// each (GAP1 single-column payloads), column index = position in the
/// sorted name list. Returns `(segments, bytes, slow_ios)`; a write
/// that keeps failing after `retries` attempts returns the error and
/// the caller keeps serving the column from RAM (honest degradation,
/// no partial truth on disk).
pub fn spill_prop_columns(
    store: &SegmentStore,
    props: &PropertyStore,
    retries: u32,
) -> io::Result<(u64, u64, u64)> {
    store.clear(SegmentKind::PropColumn)?;
    let mut names = props.column_names();
    names.sort_unstable();
    let all: Vec<VertexId> = (0..props.num_vertices() as VertexId).collect();
    let (mut segs, mut bytes, mut slow) = (0u64, 0u64, 0u64);
    for (idx, name) in names.iter().enumerate() {
        let single = props.project(&all, &[name]);
        let mut payload = Vec::new();
        crate::io::write_props(&single, &mut payload)?;
        let mut attempt = 0;
        let out = loop {
            match store.write(SegmentKind::PropColumn, idx as u64, &payload) {
                Ok(out) => break out,
                Err(_) if attempt < retries => attempt += 1,
                Err(e) => return Err(e),
            }
        };
        segs += 1;
        bytes += out.bytes;
        slow += u64::from(out.slowed);
    }
    Ok((segs, bytes, slow))
}

/// Load every live `PropColumn` segment back into one store. Corrupt
/// segments are quarantined by the read and reported in the second
/// return value (by index) for repair; their columns are absent from
/// the result rather than silently wrong.
pub fn load_prop_columns(
    store: &SegmentStore,
    num_vertices: usize,
) -> io::Result<(PropertyStore, Vec<u64>)> {
    let mut merged = PropertyStore::new(num_vertices);
    let mut corrupt = Vec::new();
    let back_map: Vec<VertexId> = (0..num_vertices as VertexId).collect();
    for idx in store.list(SegmentKind::PropColumn)? {
        match store.read(SegmentKind::PropColumn, idx) {
            Ok((payload, _)) => {
                let single = crate::io::read_props(&payload[..])?;
                merged.write_back(&single, &back_map);
            }
            Err(SegmentReadError::Corrupt(_)) => corrupt.push(idx),
            Err(SegmentReadError::Missing) => corrupt.push(idx),
            Err(SegmentReadError::Io(e)) => return Err(e),
        }
    }
    Ok((merged, corrupt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultMode;
    use crate::gen;
    use std::sync::Mutex as StdMutex;

    // The fault registry is process-global; serialize fault tests.
    static LOCK: StdMutex<()> = StdMutex::new(());

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ga-tier-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample_graph() -> Arc<CsrGraph> {
        let edges = gen::rmat(8, 8 << 8, gen::RmatParams::GRAPH500, 7);
        Arc::new(CsrGraph::from_edges(1 << 8, &edges))
    }

    #[test]
    fn segment_codec_round_trips() {
        let payload = vec![7u8; 1000];
        let frame = encode_segment(SegmentKind::Rows, 42, &payload);
        let (kind, id, got) = decode_segment(&frame).unwrap();
        assert_eq!((kind, id), (SegmentKind::Rows, 42));
        assert_eq!(got, payload);
    }

    #[test]
    fn segment_codec_detects_bit_flips_and_truncation() {
        let frame = encode_segment(SegmentKind::PropColumn, 3, b"hello segment");
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert!(decode_segment(&bad).is_err(), "flip at byte {i} undetected");
        }
        for cut in 0..frame.len() {
            assert!(
                decode_segment(&frame[..cut]).is_err(),
                "cut at {cut} undetected"
            );
        }
    }

    #[test]
    fn tiered_rows_match_source_and_respect_budget() {
        let snap = sample_graph();
        let cfg = TierConfig::new(tmpdir("rows"))
            .segment_rows(32)
            .ram_budget(4 << 10)
            .keep_pin(false);
        let tier = TieredCsr::spill(&snap, cfg).unwrap();
        for v in snap.vertices() {
            let got: Vec<VertexId> = Adjacency::neighbors(&tier, v).collect();
            assert_eq!(got, snap.neighbors(v), "row {v}");
            assert!(tier.resident_bytes() <= tier.ram_budget_bytes());
        }
        let s = tier.stats();
        assert!(s.cache_misses > 0 && s.evictions > 0);
        assert_eq!(s.lost_rows, 0);
        let _ = fs::remove_dir_all(tier.store.dir());
    }

    #[test]
    fn scrub_detects_corruption_and_repair_restores() {
        let snap = sample_graph();
        let dir = tmpdir("scrub");
        let cfg = TierConfig::new(&dir).segment_rows(64).keep_pin(false);
        let tier = TieredCsr::spill(&snap, cfg).unwrap();
        // Rot one byte in segment 1 on disk.
        let path = tier.store.segment_path(SegmentKind::Rows, 1);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let report = tier.scrub();
        assert_eq!(report.corrupt, vec![(SegmentKind::Rows, 1)]);
        assert_eq!(tier.quarantined(), vec![(SegmentKind::Rows, 1)]);
        // Repair from the source graph; rows come back bit-identical.
        let rep = tier.repair_from(Some(&snap));
        assert_eq!(rep.repaired, vec![(SegmentKind::Rows, 1)]);
        assert!(rep.unrepairable.is_empty());
        assert!(tier.quarantined().is_empty());
        for v in snap.vertices() {
            let got: Vec<VertexId> = Adjacency::neighbors(&tier, v).collect();
            assert_eq!(got, snap.neighbors(v));
        }
        assert_eq!(tier.scrub().corrupt, vec![]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repair_without_source_refuses_and_counts_loss() {
        let snap = sample_graph();
        let dir = tmpdir("refuse");
        let cfg = TierConfig::new(&dir).segment_rows(64).keep_pin(false);
        let tier = TieredCsr::spill(&snap, cfg).unwrap();
        fs::remove_file(tier.store.segment_path(SegmentKind::Rows, 0)).unwrap();
        let rep = tier.repair_from(None);
        assert_eq!(rep.unrepairable, vec![(SegmentKind::Rows, 0)]);
        assert!(rep.repaired.is_empty());
        assert_eq!(tier.stats().lost_segments, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_faults_fall_back_to_pin_and_trip_breaker() {
        let _g = LOCK.lock().unwrap();
        faults::clear_all();
        let snap = sample_graph();
        let dir = tmpdir("breaker");
        let cfg = TierConfig::new(&dir)
            .segment_rows(64)
            .retries(0, 0)
            .breaker_threshold(2);
        let tier = TieredCsr::spill(&snap, cfg).unwrap();
        faults::arm("segment.read", FaultMode::FailEveryNth(1));
        for v in snap.vertices() {
            let got: Vec<VertexId> = Adjacency::neighbors(&tier, v).collect();
            assert_eq!(got, snap.neighbors(v), "pinned fallback must stay exact");
        }
        faults::clear_all();
        let s = tier.stats();
        assert!(s.pinned_fallbacks > 0);
        assert!(s.breaker_trips >= 1);
        assert!(tier.pinned_mode());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn delayed_io_is_counted_not_failed() {
        let _g = LOCK.lock().unwrap();
        faults::clear_all();
        let snap = sample_graph();
        let dir = tmpdir("delay");
        faults::arm("segment.write", FaultMode::Delay(0));
        let cfg = TierConfig::new(&dir).segment_rows(64).keep_pin(false);
        let tier = TieredCsr::spill(&snap, cfg).unwrap();
        faults::clear_all();
        let s = tier.stats();
        assert_eq!(s.slow_ios, s.spilled_segments);
        assert_eq!(s.write_failures, 0);
        for v in snap.vertices() {
            let got: Vec<VertexId> = Adjacency::neighbors(&tier, v).collect();
            assert_eq!(got, snap.neighbors(v));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_budget_denies_prefetch_but_not_demand() {
        let snap = sample_graph();
        let dir = tmpdir("budget");
        // A 1-byte IO window: every prefetch is denied, demand misses
        // still stream every row correctly.
        let cfg = TierConfig::new(&dir)
            .segment_rows(16)
            .io_budget(1)
            .keep_pin(false);
        let tier = TieredCsr::spill(&snap, cfg).unwrap();
        tier.begin_io_window();
        for v in snap.vertices() {
            let got: Vec<VertexId> = Adjacency::neighbors(&tier, v).collect();
            assert_eq!(got, snap.neighbors(v));
        }
        let s = tier.stats();
        assert_eq!(s.prefetches, 0);
        assert!(s.prefetch_denied > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prop_columns_round_trip_and_detect_corruption() {
        let dir = tmpdir("props");
        let store = SegmentStore::open(&dir).unwrap();
        let mut props = PropertyStore::new(8);
        props.set_column_f64("rank", &[0.5; 8]);
        props.set_column_u64("component", &[3; 8]);
        let (segs, bytes, _) = spill_prop_columns(&store, &props, 2).unwrap();
        assert_eq!(segs, 2);
        assert!(bytes > 0);
        let (loaded, corrupt) = load_prop_columns(&store, 8).unwrap();
        assert!(corrupt.is_empty());
        assert_eq!(loaded.get_f64("rank", 3), Some(0.5));
        assert_eq!(loaded.get("component", 0).map(|v| v.as_f64()), Some(3.0));
        // Rot one column; it must be reported, not half-loaded.
        let path = store.segment_path(SegmentKind::PropColumn, 0);
        let mut b = fs::read(&path).unwrap();
        let last = b.len() - 1;
        b[last] ^= 0xFF;
        fs::write(&path, &b).unwrap();
        let (loaded, corrupt) = load_prop_columns(&store, 8).unwrap();
        assert_eq!(corrupt, vec![0]);
        assert!(!loaded.has_column("component") || !loaded.has_column("rank"));
        let _ = fs::remove_dir_all(&dir);
    }
}
