//! Operation counters — the "explicit instrumentation" the paper's
//! conclusion asks a reference implementation to carry (§VI).
//!
//! [`OpCounters`] is a thread-safe tally of the three quantities the
//! NORA-style performance model prices: CPU operations executed, bytes
//! of memory traffic generated, and edges touched. Kernels flush
//! per-call totals (computed analytically from the work they actually
//! did, not per-edge atomics, so instrumentation costs O(1) per call),
//! and the processing-flow engine drains the tally into its run stats,
//! where model calibration picks it up.
//!
//! It generalizes the per-architecture `TrafficReport` accounting in
//! `ga-archsim`: that struct prices *simulated* interconnect traffic;
//! this one records what the *real* kernels did.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe operation tally, cheap to share by reference across a
/// parallel kernel invocation. All updates are relaxed atomics — the
/// counters are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct OpCounters {
    cpu_ops: AtomicU64,
    mem_bytes: AtomicU64,
    edges_touched: AtomicU64,
}

/// A point-in-time copy of an [`OpCounters`] tally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// CPU operations executed (arithmetic + compare, order of magnitude).
    pub cpu_ops: u64,
    /// Bytes of memory traffic generated.
    pub mem_bytes: u64,
    /// Edges examined (an edge relaxed or scanned twice counts twice).
    pub edges_touched: u64,
}

impl OpSnapshot {
    /// True iff every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == OpSnapshot::default()
    }

    /// Element-wise sum.
    pub fn merge(&self, other: &OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            cpu_ops: self.cpu_ops + other.cpu_ops,
            mem_bytes: self.mem_bytes + other.mem_bytes,
            edges_touched: self.edges_touched + other.edges_touched,
        }
    }
}

impl OpCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record CPU operations.
    pub fn add_cpu_ops(&self, n: u64) {
        self.cpu_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Record memory traffic.
    pub fn add_mem_bytes(&self, n: u64) {
        self.mem_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record edges examined.
    pub fn add_edges(&self, n: u64) {
        self.edges_touched.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one kernel call's totals in one shot.
    pub fn flush(&self, cpu_ops: u64, mem_bytes: u64, edges: u64) {
        self.add_cpu_ops(cpu_ops);
        self.add_mem_bytes(mem_bytes);
        self.add_edges(edges);
    }

    /// Copy the current tally.
    pub fn snapshot(&self) -> OpSnapshot {
        OpSnapshot {
            cpu_ops: self.cpu_ops.load(Ordering::Relaxed),
            mem_bytes: self.mem_bytes.load(Ordering::Relaxed),
            edges_touched: self.edges_touched.load(Ordering::Relaxed),
        }
    }

    /// Copy the current tally and reset it to zero (the drain the flow
    /// engine performs after each batch run).
    pub fn take(&self) -> OpSnapshot {
        OpSnapshot {
            cpu_ops: self.cpu_ops.swap(0, Ordering::Relaxed),
            mem_bytes: self.mem_bytes.swap(0, Ordering::Relaxed),
            edges_touched: self.edges_touched.swap(0, Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_and_snapshot() {
        let c = OpCounters::new();
        assert!(c.snapshot().is_zero());
        c.flush(10, 20, 30);
        c.add_edges(5);
        let s = c.snapshot();
        assert_eq!(s.cpu_ops, 10);
        assert_eq!(s.mem_bytes, 20);
        assert_eq!(s.edges_touched, 35);
    }

    #[test]
    fn take_drains() {
        let c = OpCounters::new();
        c.flush(1, 2, 3);
        let s = c.take();
        assert_eq!(s.edges_touched, 3);
        assert!(c.snapshot().is_zero());
    }

    #[test]
    fn merge_adds() {
        let a = OpSnapshot {
            cpu_ops: 1,
            mem_bytes: 2,
            edges_touched: 3,
        };
        let b = a.merge(&a);
        assert_eq!(b.cpu_ops, 2);
        assert_eq!(b.edges_touched, 6);
    }

    #[test]
    fn concurrent_updates_all_land() {
        let c = OpCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.add_cpu_ops(1);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().cpu_ops, 4000);
    }
}
