//! Immutable compressed-sparse-row graphs.
//!
//! `CsrGraph` is the snapshot format every batch kernel in the workspace
//! runs against: two flat arrays (`offsets`, `targets`) giving each
//! vertex an O(1) neighbor slice, plus optional parallel `weights` and an
//! optional reverse index for in-neighbors. This mirrors the layout the
//! paper's Fig. 4 architecture hardwires (CSR/CSC) and is the natural
//! "small but faster-access memory" target of the Fig. 2 subgraph-copy
//! step.

use crate::{Edge, VertexId, Weight, WeightedEdge};
use rayon::prelude::*;

/// Immutable directed graph in compressed-sparse-row form.
///
/// Construction sorts and (optionally) deduplicates edges; neighbor
/// slices are therefore sorted, which the intersection-based kernels
/// (triangles, Jaccard) rely on.
#[derive(Clone, Debug, Default)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Option<Vec<Weight>>,
    /// Reverse (in-edge) index, built on demand via [`CsrBuilder::reverse`].
    rev: Option<Box<ReverseIndex>>,
}

#[derive(Clone, Debug, Default)]
struct ReverseIndex {
    offsets: Vec<u64>,
    sources: Vec<VertexId>,
}

impl CsrGraph {
    /// Build an unweighted graph from a directed edge list, deduplicating
    /// parallel edges and dropping self-loops. The common case for the
    /// unweighted kernels.
    pub fn from_edges(num_vertices: usize, edges: &[Edge]) -> Self {
        CsrBuilder::new(num_vertices)
            .edges(edges.iter().copied())
            .dedup(true)
            .drop_self_loops(true)
            .build()
    }

    /// Build a weighted graph from a directed edge list. Parallel edges
    /// are kept (their weights may differ).
    pub fn from_weighted_edges(num_vertices: usize, edges: &[WeightedEdge]) -> Self {
        CsrBuilder::new(num_vertices)
            .weighted_edges(edges.iter().copied())
            .drop_self_loops(true)
            .build()
    }

    /// Build an undirected graph: each input edge is inserted in both
    /// directions, then deduplicated.
    pub fn from_edges_undirected(num_vertices: usize, edges: &[Edge]) -> Self {
        CsrBuilder::new(num_vertices)
            .edges(edges.iter().copied())
            .symmetrize(true)
            .dedup(true)
            .drop_self_loops(true)
            .build()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges stored.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Sorted out-neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Weights parallel to [`Self::neighbors`], if the graph is weighted.
    #[inline]
    pub fn edge_weights(&self, v: VertexId) -> Option<&[Weight]> {
        let w = self.weights.as_ref()?;
        let v = v as usize;
        Some(&w[self.offsets[v] as usize..self.offsets[v + 1] as usize])
    }

    /// `(neighbor, weight)` pairs for `v`; weight defaults to 1.0 on
    /// unweighted graphs so weighted kernels degrade gracefully.
    pub fn weighted_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let nbrs = self.neighbors(v);
        let ws = self.edge_weights(v);
        nbrs.iter().enumerate().map(move |(i, &u)| {
            let w = ws.map_or(1.0, |w| w[i]);
            (u, w)
        })
    }

    /// Whether the graph carries edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Whether a reverse (in-edge) index was built.
    #[inline]
    pub fn has_reverse(&self) -> bool {
        self.rev.is_some()
    }

    /// In-degree of `v`. Requires the reverse index.
    ///
    /// # Panics
    /// Panics if the graph was built without [`CsrBuilder::reverse`].
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        let r = self.rev.as_ref().expect("reverse index not built");
        let v = v as usize;
        (r.offsets[v + 1] - r.offsets[v]) as usize
    }

    /// Sorted in-neighbor slice of `v`. Requires the reverse index.
    ///
    /// # Panics
    /// Panics if the graph was built without [`CsrBuilder::reverse`].
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let r = self.rev.as_ref().expect("reverse index not built");
        let v = v as usize;
        &r.sources[r.offsets[v] as usize..r.offsets[v + 1] as usize]
    }

    /// True if the directed edge `u -> v` exists (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Weight of edge `u -> v`, if present (first match on multigraphs).
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let idx = self.neighbors(u).binary_search(&v).ok()?;
        Some(self.edge_weights(u).map_or(1.0, |w| w[idx]))
    }

    /// Iterate over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + Clone {
        0..self.num_vertices() as VertexId
    }

    /// Iterate over all directed edges as `(src, dst)`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterate over all directed edges as `(src, dst, weight)`.
    pub fn weighted_edges(&self) -> impl Iterator<Item = WeightedEdge> + '_ {
        self.vertices()
            .flat_map(move |u| self.weighted_neighbors(u).map(move |(v, w)| (u, v, w)))
    }

    /// The graph with every edge reversed (weights carried along).
    ///
    /// One O(V+E) counting-sort pass over the existing arrays — the same
    /// trick the reverse-index build uses — instead of round-tripping
    /// every edge through a fresh [`CsrBuilder`] global sort. Because
    /// `targets` is sorted by `(src, dst)`, emitting edges in storage
    /// order through per-destination cursors yields rows that are
    /// already sorted by new destination.
    pub fn transpose(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut offsets = vec![0u64; n + 1];
        for &v in &self.targets {
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; self.targets.len()];
        let mut weights = self.weights.as_ref().map(|w| vec![0.0 as Weight; w.len()]);
        for u in 0..n {
            let (s, e) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            for i in s..e {
                let v = self.targets[i] as usize;
                let c = cursor[v] as usize;
                targets[c] = u as VertexId;
                if let (Some(out), Some(src)) = (weights.as_mut(), self.weights.as_ref()) {
                    out[c] = src[i];
                }
                cursor[v] += 1;
            }
        }
        CsrGraph {
            offsets,
            targets,
            weights,
            rev: None,
        }
    }

    /// Raw offsets array (`num_vertices + 1` entries). Exposed for the
    /// linear-algebra crate, which shares this layout.
    #[inline]
    pub fn raw_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw targets array. Exposed for the linear-algebra crate.
    #[inline]
    pub fn raw_targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Raw weights array parallel to [`Self::raw_targets`], if weighted.
    /// Exposed for the snapshot pipeline's bit-identity checks.
    #[inline]
    pub fn raw_weights(&self) -> Option<&[Weight]> {
        self.weights.as_deref()
    }

    /// Assemble a graph directly from CSR arrays (no sort, no checks
    /// beyond shape) — the row-wise snapshot freeze produces these
    /// arrays itself. Callers must pass offsets of length
    /// `num_vertices + 1` with `offsets[n] == targets.len()` and rows
    /// sorted by target.
    pub(crate) fn from_parts(
        offsets: Vec<u64>,
        targets: Vec<VertexId>,
        weights: Option<Vec<Weight>>,
    ) -> CsrGraph {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        CsrGraph {
            offsets,
            targets,
            weights,
            rev: None,
        }
    }

    /// Disassemble into raw arrays — lets the snapshot cache recycle
    /// allocations from a retired snapshot.
    pub(crate) fn into_parts(self) -> (Vec<u64>, Vec<VertexId>, Option<Vec<Weight>>) {
        (self.offsets, self.targets, self.weights)
    }

    /// Attach a pre-built reverse index (offsets + sources in the same
    /// shape `CsrBuilder::reverse` produces). Used by the compressed
    /// adjacency round-trip, which decodes both directions itself.
    pub(crate) fn attach_reverse(&mut self, offsets: Vec<u64>, sources: Vec<VertexId>) {
        debug_assert_eq!(offsets.len(), self.offsets.len());
        debug_assert_eq!(*offsets.last().unwrap() as usize, sources.len());
        self.rev = Some(Box::new(ReverseIndex { offsets, sources }));
    }

    /// Total degree histogram: `hist[d]` = number of vertices with
    /// out-degree `d` (capped at `max_bucket`, overflow in last bucket).
    pub fn degree_histogram(&self, max_bucket: usize) -> Vec<usize> {
        let mut hist = vec![0usize; max_bucket + 1];
        for v in self.vertices() {
            let d = self.degree(v).min(max_bucket);
            hist[d] += 1;
        }
        hist
    }
}

/// Configurable CSR construction.
///
/// ```
/// use ga_graph::CsrBuilder;
/// let g = CsrBuilder::new(4)
///     .edges([(0, 1), (1, 2), (2, 3), (0, 1)])
///     .dedup(true)
///     .reverse(true)
///     .build();
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.in_neighbors(1), &[0]);
/// ```
#[derive(Clone, Debug)]
pub struct CsrBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    weights: Option<Vec<Weight>>,
    dedup: bool,
    symmetrize: bool,
    drop_self_loops: bool,
    reverse: bool,
}

impl CsrBuilder {
    /// Start a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        CsrBuilder {
            num_vertices,
            edges: Vec::new(),
            weights: None,
            dedup: false,
            symmetrize: false,
            drop_self_loops: false,
            reverse: false,
        }
    }

    /// Add unweighted edges. Mixing with weighted edges assigns weight 1.
    pub fn edges(mut self, it: impl IntoIterator<Item = Edge>) -> Self {
        for (u, v) in it {
            self.push(u, v, 1.0, false);
        }
        self
    }

    /// Add weighted edges; marks the resulting graph as weighted.
    pub fn weighted_edges(mut self, it: impl IntoIterator<Item = WeightedEdge>) -> Self {
        for (u, v, w) in it {
            self.push(u, v, w, true);
        }
        self
    }

    fn push(&mut self, u: VertexId, v: VertexId, w: Weight, weighted: bool) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u},{v}) out of range for {} vertices",
            self.num_vertices
        );
        if weighted && self.weights.is_none() {
            // Backfill weight-1 for edges added before the first weighted one.
            self.weights = Some(vec![1.0; self.edges.len()]);
        }
        self.edges.push((u, v));
        if let Some(ws) = &mut self.weights {
            ws.push(w);
        }
    }

    /// Remove duplicate `(src, dst)` pairs (first weight wins).
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Insert the reverse of every edge before building (undirected view).
    pub fn symmetrize(mut self, yes: bool) -> Self {
        self.symmetrize = yes;
        self
    }

    /// Drop `v -> v` edges.
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Also build the in-neighbor index.
    pub fn reverse(mut self, yes: bool) -> Self {
        self.reverse = yes;
        self
    }

    /// Finalize into a [`CsrGraph`]. Sorting is parallel for large edge
    /// lists.
    pub fn build(self) -> CsrGraph {
        let CsrBuilder {
            num_vertices,
            mut edges,
            weights,
            dedup,
            symmetrize,
            drop_self_loops,
            reverse,
        } = self;

        let mut weights = weights;
        if symmetrize {
            let n = edges.len();
            edges.reserve(n);
            for i in 0..n {
                let (u, v) = edges[i];
                edges.push((v, u));
            }
            if let Some(ws) = &mut weights {
                for i in 0..n {
                    let w = ws[i];
                    ws.push(w);
                }
            }
        }

        // Pair edges with weights so one sort handles both.
        let mut rows: Vec<(VertexId, VertexId, Weight)> = match &weights {
            Some(ws) => edges
                .iter()
                .zip(ws.iter())
                .map(|(&(u, v), &w)| (u, v, w))
                .collect(),
            None => edges.iter().map(|&(u, v)| (u, v, 1.0)).collect(),
        };
        if drop_self_loops {
            rows.retain(|&(u, v, _)| u != v);
        }
        if rows.len() > 1 << 14 {
            rows.par_sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        } else {
            rows.sort_unstable_by_key(|a| (a.0, a.1));
        }
        if dedup {
            rows.dedup_by_key(|&mut (u, v, _)| (u, v));
        }

        let mut offsets = vec![0u64; num_vertices + 1];
        for &(u, _, _) in &rows {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<VertexId> = rows.iter().map(|&(_, v, _)| v).collect();
        let out_weights = weights
            .is_some()
            .then(|| rows.iter().map(|&(_, _, w)| w).collect());

        let rev = reverse.then(|| {
            let mut roff = vec![0u64; num_vertices + 1];
            for &(_, v, _) in &rows {
                roff[v as usize + 1] += 1;
            }
            for i in 0..num_vertices {
                roff[i + 1] += roff[i];
            }
            let mut cursor = roff.clone();
            let mut sources = vec![0 as VertexId; rows.len()];
            for &(u, v, _) in &rows {
                let c = &mut cursor[v as usize];
                sources[*c as usize] = u;
                *c += 1;
            }
            // `rows` is sorted by (src, dst), so the counting pass above
            // emits each vertex's in-neighbors in source order already.
            Box::new(ReverseIndex {
                offsets: roff,
                sources,
            })
        });

        CsrGraph {
            offsets,
            targets,
            weights: out_weights,
            rev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn basic_shape() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[VertexId]);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(3, 1));
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[2]);
    }

    #[test]
    fn neighbors_sorted() {
        let g = CsrGraph::from_edges(5, &[(0, 4), (0, 1), (0, 3), (0, 2)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn undirected_symmetrizes() {
        let g = CsrGraph::from_edges_undirected(3, &[(0, 1), (1, 2)]);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 1));
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn weighted_graph() {
        let g = CsrGraph::from_weighted_edges(3, &[(0, 1, 2.5), (1, 2, 0.5)]);
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
        assert_eq!(g.edge_weight(1, 2), Some(0.5));
        assert_eq!(g.edge_weight(2, 0), None);
        let collected: Vec<_> = g.weighted_neighbors(0).collect();
        assert_eq!(collected, vec![(1, 2.5)]);
    }

    #[test]
    fn unweighted_defaults_weight_one() {
        let g = diamond();
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        let total: f32 = g.weighted_edges().map(|(_, _, w)| w).sum();
        assert_eq!(total, 4.0);
    }

    #[test]
    fn reverse_index() {
        let g = CsrBuilder::new(4)
            .edges([(0, 3), (1, 3), (2, 3), (3, 0)])
            .reverse(true)
            .build();
        assert_eq!(g.in_neighbors(3), &[0, 1, 2]);
        assert_eq!(g.in_degree(3), 3);
        assert_eq!(g.in_neighbors(0), &[3]);
        assert_eq!(g.in_degree(1), 0);
    }

    #[test]
    fn transpose_round_trip() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(1), &[0]);
        let tt = t.transpose();
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), tt.neighbors(v));
        }
    }

    #[test]
    fn transpose_keeps_weights() {
        let g = CsrGraph::from_weighted_edges(3, &[(0, 1, 7.0), (1, 2, 9.0)]);
        let t = g.transpose();
        assert_eq!(t.edge_weight(1, 0), Some(7.0));
        assert_eq!(t.edge_weight(2, 1), Some(9.0));
    }

    #[test]
    fn edges_iterator_matches_counts() {
        let g = diamond();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e.len(), g.num_edges());
        assert!(e.contains(&(0, 2)));
    }

    #[test]
    fn degree_histogram_counts() {
        let g = diamond();
        let h = g.degree_histogram(4);
        assert_eq!(h[0], 1); // vertex 3
        assert_eq!(h[1], 2); // vertices 1, 2
        assert_eq!(h[2], 1); // vertex 0
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = CsrGraph::from_edges(10, &[(0, 9)]);
        for v in 1..9 {
            assert_eq!(g.degree(v), 0);
        }
        assert_eq!(g.neighbors(0), &[9]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = CsrBuilder::new(2).edges([(0, 5)]).build();
    }

    #[test]
    fn mixed_weighted_backfill() {
        let g = CsrBuilder::new(3)
            .edges([(0, 1)])
            .weighted_edges([(1, 2, 3.0)])
            .build();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(1, 2), Some(3.0));
    }
}
