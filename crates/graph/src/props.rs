//! Vertex property storage.
//!
//! The paper stresses (§II, §III) that real graphs differ from academic
//! kernels in carrying "1000s of properties" per vertex, accumulated as
//! analysts run one-time analytics whose outputs are written back to the
//! persistent graph. [`PropertyStore`] models exactly that: an open-ended
//! set of *named, typed columns* over a vertex range, with a write-back
//! API the Fig. 2 flow engine uses, and projection support so subgraph
//! extraction can copy "only a small subset of the properties".

use crate::VertexId;
use std::collections::BTreeMap;

/// A single property value.
#[derive(Clone, Debug, PartialEq)]
pub enum PropValue {
    /// Unsigned integer property (counts, ids, flags).
    U64(u64),
    /// Floating-point property (scores, centralities).
    F64(f64),
    /// String property (names, labels).
    Str(String),
}

impl PropValue {
    /// Numeric view used by ordering helpers; strings order as NaN-free 0.
    pub fn as_f64(&self) -> f64 {
        match self {
            PropValue::U64(x) => *x as f64,
            PropValue::F64(x) => *x,
            PropValue::Str(_) => 0.0,
        }
    }
}

impl From<u64> for PropValue {
    fn from(x: u64) -> Self {
        PropValue::U64(x)
    }
}
impl From<f64> for PropValue {
    fn from(x: f64) -> Self {
        PropValue::F64(x)
    }
}
impl From<&str> for PropValue {
    fn from(x: &str) -> Self {
        PropValue::Str(x.to_string())
    }
}
impl From<String> for PropValue {
    fn from(x: String) -> Self {
        PropValue::Str(x)
    }
}

/// One typed column, stored densely with a presence mask.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Column {
    U64(Vec<Option<u64>>),
    F64(Vec<Option<f64>>),
    Str(Vec<Option<String>>),
}

impl Column {
    fn new_for(value: &PropValue, len: usize) -> Column {
        match value {
            PropValue::U64(_) => Column::U64(vec![None; len]),
            PropValue::F64(_) => Column::F64(vec![None; len]),
            PropValue::Str(_) => Column::Str(vec![None; len]),
        }
    }

    fn len(&self) -> usize {
        match self {
            Column::U64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    fn resize(&mut self, len: usize) {
        match self {
            Column::U64(v) => v.resize(len, None),
            Column::F64(v) => v.resize(len, None),
            Column::Str(v) => v.resize(len, None),
        }
    }

    fn set(&mut self, v: VertexId, value: PropValue) -> bool {
        let i = v as usize;
        match (self, value) {
            (Column::U64(col), PropValue::U64(x)) => {
                col[i] = Some(x);
                true
            }
            (Column::F64(col), PropValue::F64(x)) => {
                col[i] = Some(x);
                true
            }
            (Column::Str(col), PropValue::Str(x)) => {
                col[i] = Some(x);
                true
            }
            _ => false,
        }
    }

    fn get(&self, v: VertexId) -> Option<PropValue> {
        let i = v as usize;
        match self {
            Column::U64(col) => col.get(i)?.map(PropValue::U64),
            Column::F64(col) => col.get(i)?.map(PropValue::F64),
            Column::Str(col) => col.get(i)?.clone().map(PropValue::Str),
        }
    }

    fn count(&self) -> usize {
        match self {
            Column::U64(col) => col.iter().filter(|x| x.is_some()).count(),
            Column::F64(col) => col.iter().filter(|x| x.is_some()).count(),
            Column::Str(col) => col.iter().filter(|x| x.is_some()).count(),
        }
    }
}

/// Named, typed vertex property columns.
///
/// ```
/// use ga_graph::{PropertyStore, PropValue};
/// let mut props = PropertyStore::new(4);
/// props.set("pagerank", 0, 0.4);
/// props.set("pagerank", 3, 0.1);
/// props.set("label", 0, "hub");
/// assert_eq!(props.get("pagerank", 0), Some(PropValue::F64(0.4)));
/// assert_eq!(props.get("pagerank", 1), None);
/// let top = props.top_k_f64("pagerank", 1);
/// assert_eq!(top, vec![(0, 0.4)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PropertyStore {
    num_vertices: usize,
    pub(crate) columns: BTreeMap<String, Column>,
    /// Process-local mutation stamp: bumped on every successful write,
    /// never persisted (a recovered store restarts at 0). Snapshot
    /// publication pairs it with the CSR epoch so concurrent readers can
    /// prove graph and properties come from one consistent generation.
    version: u64,
}

/// Equality compares contents only — the process-local [`Self::version`]
/// stamp is excluded so checkpoint round-trips stay `==`.
impl PartialEq for PropertyStore {
    fn eq(&self, other: &Self) -> bool {
        self.num_vertices == other.num_vertices && self.columns == other.columns
    }
}

impl PropertyStore {
    /// Store over `num_vertices` vertices with no columns yet.
    pub fn new(num_vertices: usize) -> Self {
        PropertyStore {
            num_vertices,
            columns: BTreeMap::new(),
            version: 0,
        }
    }

    /// Number of vertices this store covers.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Process-local mutation stamp: moves on every successful write
    /// (`set`, bulk column writes, `grow`, `drop_column`, `write_back`)
    /// and is *not* persisted across checkpoints. Equal versions on the
    /// same store instance mean no column changed in between.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Grow the vertex range (new slots have no values). Shrinking is a
    /// no-op — the store never loses data to a stale smaller size.
    pub fn grow(&mut self, num_vertices: usize) {
        if num_vertices <= self.num_vertices {
            return;
        }
        self.num_vertices = num_vertices;
        self.version += 1;
        for col in self.columns.values_mut() {
            col.resize(num_vertices);
        }
    }

    /// Set `name[v] = value`, creating the column (typed by the first
    /// value written) on demand. Returns false on a type mismatch with an
    /// existing column or an out-of-range vertex — never panics, so a
    /// malformed streamed update can't take the ingest path down.
    pub fn set(&mut self, name: &str, v: VertexId, value: impl Into<PropValue>) -> bool {
        if (v as usize) >= self.num_vertices {
            return false;
        }
        let value = value.into();
        let n = self.num_vertices;
        let col = self
            .columns
            .entry(name.to_string())
            .or_insert_with(|| Column::new_for(&value, n));
        if col.len() < n {
            col.resize(n);
        }
        let ok = col.set(v, value);
        if ok {
            self.version += 1;
        }
        ok
    }

    /// Bulk write-back of an entire `f64` column (the common case: a
    /// batch analytic computing "a new property for each vertex").
    pub fn set_column_f64(&mut self, name: &str, values: &[f64]) {
        assert_eq!(values.len(), self.num_vertices);
        let col = Column::F64(values.iter().map(|&x| Some(x)).collect());
        self.columns.insert(name.to_string(), col);
        self.version += 1;
    }

    /// Bulk write-back of an entire `u64` column.
    pub fn set_column_u64(&mut self, name: &str, values: &[u64]) {
        assert_eq!(values.len(), self.num_vertices);
        let col = Column::U64(values.iter().map(|&x| Some(x)).collect());
        self.columns.insert(name.to_string(), col);
        self.version += 1;
    }

    /// Read `name[v]`.
    pub fn get(&self, name: &str, v: VertexId) -> Option<PropValue> {
        self.columns.get(name)?.get(v)
    }

    /// Read `name[v]` as f64 (numeric columns only).
    pub fn get_f64(&self, name: &str, v: VertexId) -> Option<f64> {
        match self.get(name, v)? {
            PropValue::F64(x) => Some(x),
            PropValue::U64(x) => Some(x as f64),
            PropValue::Str(_) => None,
        }
    }

    /// Does the column exist?
    pub fn has_column(&self, name: &str) -> bool {
        self.columns.contains_key(name)
    }

    /// All column names (sorted).
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.keys().map(|s| s.as_str()).collect()
    }

    /// Number of set values in a column.
    pub fn column_count(&self, name: &str) -> usize {
        self.columns.get(name).map_or(0, |c| c.count())
    }

    /// Drop a column, returning whether it existed.
    pub fn drop_column(&mut self, name: &str) -> bool {
        let removed = self.columns.remove(name).is_some();
        if removed {
            self.version += 1;
        }
        removed
    }

    /// The `k` vertices with the largest numeric value in `name`
    /// (descending; ties broken by vertex id). This is the "scan for the
    /// top-k vertices with the highest values of some properties" seed
    /// selection from §III.
    pub fn top_k_f64(&self, name: &str, k: usize) -> Vec<(VertexId, f64)> {
        let mut all: Vec<(VertexId, f64)> = (0..self.num_vertices as VertexId)
            .filter_map(|v| self.get_f64(name, v).map(|x| (v, x)))
            .collect();
        // total_cmp: a NaN smuggled into a column must not panic the
        // selection path (it gets a deterministic position instead).
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Vertices whose numeric value satisfies the predicate — the
    /// "search for all vertices with a particular property" operation.
    pub fn select_f64(&self, name: &str, pred: impl Fn(f64) -> bool) -> Vec<VertexId> {
        (0..self.num_vertices as VertexId)
            .filter(|&v| self.get_f64(name, v).is_some_and(&pred))
            .collect()
    }

    /// Copy the listed columns for the listed vertices into a fresh store
    /// indexed by position in `vertices` — the projection step of
    /// subgraph extraction (Fig. 2: "copy only a small subset of the
    /// properties").
    pub fn project(&self, vertices: &[VertexId], columns: &[&str]) -> PropertyStore {
        let mut out = PropertyStore::new(vertices.len());
        for &name in columns {
            if let Some(col) = self.columns.get(name) {
                for (new_id, &old_id) in vertices.iter().enumerate() {
                    if let Some(value) = col.get(old_id) {
                        out.set(name, new_id as VertexId, value);
                    }
                }
            }
        }
        out
    }

    /// Rebuild a store from checkpointed columns (the io codec's entry
    /// point).
    pub(crate) fn from_raw_parts(
        num_vertices: usize,
        columns: BTreeMap<String, Column>,
    ) -> PropertyStore {
        PropertyStore {
            num_vertices,
            columns,
            version: 0,
        }
    }

    /// Merge values from a projected store back into this one (inverse of
    /// [`Self::project`]): `back_map[new_id] = old_id`.
    pub fn write_back(&mut self, projected: &PropertyStore, back_map: &[VertexId]) {
        assert_eq!(projected.num_vertices, back_map.len());
        for name in projected.column_names().into_iter().map(str::to_string) {
            for (new_id, &old_id) in back_map.iter().enumerate() {
                if let Some(value) = projected.get(&name, new_id as VertexId) {
                    self.set(&name, old_id, value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_columns() {
        let mut p = PropertyStore::new(3);
        assert!(p.set("deg", 0, 5u64));
        assert!(p.set("score", 1, 0.5));
        assert!(p.set("name", 2, "alice"));
        assert_eq!(p.get("deg", 0), Some(PropValue::U64(5)));
        assert_eq!(p.get("score", 1), Some(PropValue::F64(0.5)));
        assert_eq!(p.get("name", 2), Some(PropValue::Str("alice".into())));
        assert_eq!(p.column_names(), vec!["deg", "name", "score"]);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut p = PropertyStore::new(2);
        p.set("deg", 0, 5u64);
        assert!(!p.set("deg", 1, 0.5));
        assert_eq!(p.get("deg", 1), None);
    }

    #[test]
    fn missing_values_are_none() {
        let mut p = PropertyStore::new(3);
        p.set("x", 1, 1.0);
        assert_eq!(p.get("x", 0), None);
        assert_eq!(p.get("y", 0), None);
        assert_eq!(p.column_count("x"), 1);
    }

    #[test]
    fn bulk_columns_and_topk() {
        let mut p = PropertyStore::new(5);
        p.set_column_f64("pr", &[0.1, 0.5, 0.3, 0.5, 0.0]);
        let top = p.top_k_f64("pr", 3);
        assert_eq!(top, vec![(1, 0.5), (3, 0.5), (2, 0.3)]);
        p.set_column_u64("deg", &[9, 0, 0, 0, 2]);
        assert_eq!(p.top_k_f64("deg", 1), vec![(0, 9.0)]);
    }

    #[test]
    fn select_predicate() {
        let mut p = PropertyStore::new(4);
        p.set_column_f64("pr", &[0.1, 0.9, 0.4, 0.8]);
        assert_eq!(p.select_f64("pr", |x| x > 0.5), vec![1, 3]);
        assert!(p.select_f64("missing", |_| true).is_empty());
    }

    #[test]
    fn grow_extends_columns() {
        let mut p = PropertyStore::new(2);
        p.set("x", 0, 1.0);
        p.grow(4);
        assert_eq!(p.num_vertices(), 4);
        assert!(p.set("x", 3, 4.0));
        assert_eq!(p.get_f64("x", 3), Some(4.0));
    }

    #[test]
    fn project_and_write_back() {
        let mut p = PropertyStore::new(6);
        p.set_column_f64("pr", &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5]);
        p.set("label", 4, "seed");

        // Extract vertices 4 and 2 (in that order), pr column only.
        let sub = p.project(&[4, 2], &["pr"]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.get_f64("pr", 0), Some(0.4));
        assert_eq!(sub.get_f64("pr", 1), Some(0.2));
        assert!(!sub.has_column("label"));

        // Analytic on the subgraph writes a new column; push it back.
        let mut sub = sub;
        sub.set_column_f64("bc", &[9.0, 7.0]);
        p.write_back(&sub, &[4, 2]);
        assert_eq!(p.get_f64("bc", 4), Some(9.0));
        assert_eq!(p.get_f64("bc", 2), Some(7.0));
        assert_eq!(p.get_f64("bc", 0), None);
        // write_back also refreshed pr values at the mapped slots
        assert_eq!(p.get_f64("pr", 4), Some(0.4));
    }

    #[test]
    fn drop_column_works() {
        let mut p = PropertyStore::new(2);
        p.set("x", 0, 1.0);
        assert!(p.drop_column("x"));
        assert!(!p.drop_column("x"));
        assert!(!p.has_column("x"));
    }

    #[test]
    fn out_of_range_set_is_rejected_not_fatal() {
        let mut p = PropertyStore::new(2);
        assert!(!p.set("x", 5, 1.0));
        assert!(!p.has_column("x") || p.get("x", 5).is_none());
        // Shrinking grow is ignored.
        p.set("x", 1, 1.0);
        p.grow(1);
        assert_eq!(p.num_vertices(), 2);
        assert_eq!(p.get_f64("x", 1), Some(1.0));
    }

    #[test]
    fn nan_in_column_does_not_panic_selection() {
        let mut p = PropertyStore::new(3);
        p.set_column_f64("x", &[0.5, f64::NAN, 0.9]);
        let top = p.top_k_f64("x", 3);
        assert_eq!(top.len(), 3);
        // The finite values keep their relative order.
        let finite: Vec<_> = top.iter().filter(|(_, x)| x.is_finite()).collect();
        assert_eq!(finite[0].0, 2);
        assert_eq!(finite[1].0, 0);
        assert_eq!(p.select_f64("x", |x| x > 0.4), vec![0, 2]);
    }

    #[test]
    fn version_moves_on_writes_only() {
        let mut p = PropertyStore::new(3);
        assert_eq!(p.version(), 0);
        assert!(p.set("x", 0, 1.0));
        let v1 = p.version();
        assert!(v1 > 0);
        // Reads and rejected writes leave the stamp alone.
        let _ = p.get("x", 0);
        assert!(!p.set("x", 9, 1.0));
        assert!(!p.set("x", 1, 5u64)); // type mismatch
        assert_eq!(p.version(), v1);
        p.set_column_f64("y", &[0.0, 1.0, 2.0]);
        assert!(p.version() > v1);
        let v2 = p.version();
        p.grow(2); // shrinking grow: no-op
        assert_eq!(p.version(), v2);
        p.grow(5);
        assert!(p.version() > v2);
        let v3 = p.version();
        assert!(p.drop_column("y"));
        assert!(p.version() > v3);
        let v4 = p.version();
        assert!(!p.drop_column("y"));
        assert_eq!(p.version(), v4);
        // Equality ignores the process-local stamp.
        let q = p.clone();
        assert_eq!(p, q);
    }

    #[test]
    fn u64_column_as_f64() {
        let mut p = PropertyStore::new(2);
        p.set("deg", 0, 7u64);
        assert_eq!(p.get_f64("deg", 0), Some(7.0));
    }
}
