//! Incremental snapshot pipeline: row-wise CSR freeze + dirty-row
//! delta rebuilds.
//!
//! The paper's Fig. 2 flow re-freezes the persistent dynamic graph into
//! a CSR snapshot every time a streaming threshold fires a batch
//! analytic, and its 4-resource model prices exactly this copy step as
//! memory-bandwidth-bound (the "copy subgraph into faster memory" cost
//! that dominates the X-Caliber/two-level-memory configurations). This
//! module makes that copy scale with the *delta* instead of the graph:
//!
//! * [`freeze`] / [`freeze_since`] — freeze a [`DynamicGraph`] row by
//!   row: offsets from a counting pass over per-row live counts, each
//!   row's neighbors sorted independently (rayon over disjoint row
//!   ranges behind the [`Parallelism`] knob). No `(u, v, w)` tuple
//!   vector is materialized and no global `O(E log E)` sort runs; the
//!   output is bit-identical to the legacy `CsrBuilder` path.
//! * [`SnapshotCache`] — serves repeat snapshots by memcpy-ing the
//!   previous CSR's clean-row slices and rebuilding only rows whose
//!   [`DynamicGraph::version`] generation moved, with retired snapshot
//!   arrays recycled as scratch instead of re-allocated. A trigger that
//!   dirties 0.1% of rows pays for 0.1% of the sorts.
//!
//! LDBC Graphalytics makes the same point from the benchmark side:
//! evolving-graph workloads are dominated by snapshot/rebuild overhead,
//! not the kernels themselves.

use crate::compress::CompressedCsr;
use crate::dynamic::EdgeRecord;
use crate::par::Parallelism;
use crate::{CsrGraph, DynamicGraph, Timestamp, VertexId, Weight};
use std::sync::Arc;

/// Row ranges below this many edges are filled sequentially inside one
/// rayon task; above it the range is split and both halves run
/// concurrently.
const PAR_LEAF_EDGES: usize = 8_192;

/// Freeze the live edges of `g` into a weighted [`CsrGraph`] row by
/// row. Bit-identical to `DynamicGraph::snapshot_legacy`.
pub fn freeze(g: &DynamicGraph, par: Parallelism) -> CsrGraph {
    freeze_where(g, par, |_| true)
}

/// Freeze only live edges with `timestamp >= since` — the temporal
/// window snapshot, on the same row-wise path.
pub fn freeze_since(g: &DynamicGraph, since: Timestamp, par: Parallelism) -> CsrGraph {
    freeze_where(g, par, move |r| r.timestamp >= since)
}

/// Row-wise freeze keeping live records that satisfy `keep`.
fn freeze_where(
    g: &DynamicGraph,
    par: Parallelism,
    keep: impl Fn(&EdgeRecord) -> bool + Sync,
) -> CsrGraph {
    let rows = g.raw_rows();
    let n = rows.len();
    let mut offsets = vec![0u64; n + 1];
    let parallel = par.use_parallel(g.num_live_edges());
    count_rows(&mut offsets, parallel, |u| {
        rows[u].iter().filter(|r| !r.deleted && keep(r)).count() as u64
    });
    prefix_sum(&mut offsets);
    let total = offsets[n] as usize;
    let mut targets = vec![0 as VertexId; total];
    let mut weights = vec![0.0 as Weight; total];
    fill_rows(
        &offsets,
        0,
        n,
        0,
        &mut targets,
        &mut weights,
        parallel,
        &|u, tgt, wts, buf| gather_row(&rows[u], &keep, tgt, wts, buf),
    );
    // The legacy builder only marks a graph weighted once it sees an
    // edge; match it bit-for-bit on the edgeless case.
    let weights = (total > 0).then_some(weights);
    CsrGraph::from_parts(offsets, targets, weights)
}

/// Fill `offsets[1..=n]` with per-row counts (`offsets[0]` stays 0).
fn count_rows(offsets: &mut [u64], parallel: bool, count: impl Fn(usize) -> u64 + Sync) {
    count_range(&mut offsets[1..], 0, parallel, &count);
}

/// Rows per leaf task of the parallel counting pass.
const COUNT_LEAF_ROWS: usize = 2_048;

/// Write `count(base + i)` into `slots[i]`, splitting large ranges via
/// `rayon::join` on disjoint sub-slices.
fn count_range(
    slots: &mut [u64],
    base: usize,
    parallel: bool,
    count: &(impl Fn(usize) -> u64 + Sync),
) {
    if !parallel || slots.len() <= COUNT_LEAF_ROWS {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = count(base + i);
        }
        return;
    }
    let mid = slots.len() / 2;
    let (a, b) = slots.split_at_mut(mid);
    rayon::join(
        || count_range(a, base, true, count),
        || count_range(b, base + mid, true, count),
    );
}

/// In-place exclusive prefix sum over `offsets` (counts in `1..`).
fn prefix_sum(offsets: &mut [u64]) {
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
}

/// Collect row `row`'s kept records into `(tgt, wts)`, sorted by
/// destination. `buf` is gather scratch reused across rows of one
/// sequential leaf. Rows hold at most one record per destination, so a
/// sort by destination alone is deterministic.
fn gather_row(
    row: &[EdgeRecord],
    keep: &(impl Fn(&EdgeRecord) -> bool + Sync),
    tgt: &mut [VertexId],
    wts: &mut [Weight],
    buf: &mut Vec<(VertexId, Weight)>,
) {
    buf.clear();
    buf.extend(
        row.iter()
            .filter(|r| !r.deleted && keep(r))
            .map(|r| (r.dst, r.weight)),
    );
    buf.sort_unstable_by_key(|&(d, _)| d);
    for (i, &(d, w)) in buf.iter().enumerate() {
        tgt[i] = d;
        wts[i] = w;
    }
}

/// Run `fill(u, targets_slice, weights_slice, scratch)` for every row in
/// `lo..hi`, handing each row exactly its slice of the output arrays.
/// `base` is the edge offset where `targets`/`weights` begin. Large
/// ranges split recursively via `rayon::join` on disjoint sub-slices, so
/// the parallelism is safe-Rust and allocation-free.
#[allow(clippy::too_many_arguments)]
fn fill_rows<F>(
    offsets: &[u64],
    lo: usize,
    hi: usize,
    base: u64,
    targets: &mut [VertexId],
    weights: &mut [Weight],
    parallel: bool,
    fill: &F,
) where
    F: Fn(usize, &mut [VertexId], &mut [Weight], &mut Vec<(VertexId, Weight)>) + Sync,
{
    let work = (offsets[hi] - offsets[lo]) as usize;
    if !parallel || hi - lo <= 1 || work <= PAR_LEAF_EDGES {
        let mut buf = Vec::new();
        for u in lo..hi {
            let s = (offsets[u] - base) as usize;
            let e = (offsets[u + 1] - base) as usize;
            let (tgt, wts) = (&mut targets[s..e], &mut weights[s..e]);
            fill(u, tgt, wts, &mut buf);
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let cut = (offsets[mid] - base) as usize;
    let (t1, t2) = targets.split_at_mut(cut);
    let (w1, w2) = weights.split_at_mut(cut);
    rayon::join(
        || fill_rows(offsets, lo, mid, base, t1, w1, true, fill),
        || fill_rows(offsets, mid, hi, offsets[mid], t2, w2, true, fill),
    );
}

/// Counters the cache keeps — drained into `FlowStats` by the flow
/// engine and priced by model calibration as the Fig. 2 copy step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Snapshot requests served (hits + rebuilds).
    pub snapshots_served: u64,
    /// Requests answered from the cached CSR without touching a row.
    pub cache_hits: u64,
    /// Rebuilds that had no previous snapshot to reuse (cold start or
    /// after [`SnapshotCache::invalidate`]).
    pub full_rebuilds: u64,
    /// Rebuilds that reused at least the clean rows of the previous
    /// snapshot.
    pub delta_rebuilds: u64,
    /// Rows whose slices were memcpy'd from the previous snapshot.
    pub rows_reused: u64,
    /// Rows re-gathered and re-sorted from the dynamic graph.
    pub rows_rebuilt: u64,
    /// Bytes written into snapshot arrays (offsets + targets + weights)
    /// across all rebuilds — the measured memory-bandwidth price of the
    /// copy step.
    pub mem_bytes: u64,
}

impl SnapshotStats {
    /// Element-wise sum.
    pub fn merge(&self, other: &SnapshotStats) -> SnapshotStats {
        SnapshotStats {
            snapshots_served: self.snapshots_served + other.snapshots_served,
            cache_hits: self.cache_hits + other.cache_hits,
            full_rebuilds: self.full_rebuilds + other.full_rebuilds,
            delta_rebuilds: self.delta_rebuilds + other.delta_rebuilds,
            rows_reused: self.rows_reused + other.rows_reused,
            rows_rebuilt: self.rows_rebuilt + other.rows_rebuilt,
            mem_bytes: self.mem_bytes + other.mem_bytes,
        }
    }

    /// Total rebuilds of either kind.
    pub fn rebuilds(&self) -> u64 {
        self.full_rebuilds + self.delta_rebuilds
    }
}

/// A retired snapshot's previous arrays, kept to recycle allocations.
type SparePartsPool = Option<(Vec<u64>, Vec<VertexId>, Vec<Weight>)>;

/// Identity stamp of one published snapshot generation.
///
/// `epoch` is the cache's monotonic rebuild counter: it moves exactly
/// when the cached CSR is rebuilt, and stays put across cache hits, so
/// two snapshots with equal epochs are the *same* frozen arrays (same
/// `Arc`). `graph_version` records the [`DynamicGraph::version`] the
/// snapshot reflects — the link back to the mutable store. Concurrent
/// readers use the pair to prove they never observe a torn or
/// mixed-generation view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapshotEpoch {
    /// Monotonic rebuild counter (1-based; 0 = never built).
    pub epoch: u64,
    /// [`DynamicGraph::version`] at freeze time.
    pub graph_version: u64,
}

/// Serves repeat [`DynamicGraph`] → [`CsrGraph`] freezes incrementally.
///
/// The cache remembers the CSR it produced last time together with the
/// graph version it observed. On the next request it memcpy's the
/// slices of every row whose generation counter did not move and
/// re-gathers only dirty rows — so a trigger-driven batch run whose
/// update batch touched 50 of a million rows re-sorts 50 rows. Retired
/// snapshot arrays are recycled as build buffers when no analytic still
/// holds the `Arc`.
///
/// ```
/// use ga_graph::snapshot::SnapshotCache;
/// use ga_graph::{DynamicGraph, Parallelism};
/// let mut g = DynamicGraph::new(3);
/// g.insert_edge(0, 1, 1.0, 1);
/// let mut cache = SnapshotCache::new();
/// let a = cache.snapshot(&g, Parallelism::Auto);
/// let b = cache.snapshot(&g, Parallelism::Auto); // unchanged -> hit
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// g.insert_edge(2, 0, 1.0, 2);
/// let c = cache.snapshot(&g, Parallelism::Auto); // row 2 rebuilt only
/// assert!(c.has_edge(2, 0));
/// assert_eq!(cache.stats().rows_reused, 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SnapshotCache {
    prev: Option<CachedSnapshot>,
    prev_compressed: Option<CachedCompressed>,
    spare: SparePartsPool,
    stats: SnapshotStats,
    /// Monotonic rebuild counter backing [`SnapshotEpoch::epoch`].
    epoch: u64,
}

#[derive(Clone, Debug)]
struct CachedSnapshot {
    csr: Arc<CsrGraph>,
    /// Graph version the snapshot reflects.
    version: u64,
    /// Vertex count at freeze time (rows at or past this are new).
    num_vertices: usize,
    /// Rebuild generation that produced this CSR.
    epoch: u64,
}

#[derive(Clone, Debug)]
struct CachedCompressed {
    csr: Arc<CompressedCsr>,
    version: u64,
    num_vertices: usize,
    epoch: u64,
}

impl SnapshotCache {
    /// An empty (cold) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter totals since construction (or the last
    /// [`Self::take_stats`]).
    pub fn stats(&self) -> SnapshotStats {
        self.stats
    }

    /// Drain the counters (copy then reset) — the flow engine calls
    /// this after each batch run to fold snapshot cost into `FlowStats`.
    pub fn take_stats(&mut self) -> SnapshotStats {
        std::mem::take(&mut self.stats)
    }

    /// Drop the cached snapshot; the next request is a full rebuild.
    pub fn invalidate(&mut self) {
        self.prev = None;
        self.prev_compressed = None;
        self.spare = None;
    }

    /// Serve a delta-varint compressed snapshot of `g` (see
    /// [`CompressedCsr`]). The plain CSR is produced (or delta-rebuilt)
    /// through [`Self::snapshot`] first — reusing the row-wise freeze
    /// path — then re-encoded; the compressed form is cached under the
    /// same `(version, vertex-count)` key, so repeat requests at an
    /// unchanged version cost nothing.
    pub fn compressed_snapshot(
        &mut self,
        g: &DynamicGraph,
        par: Parallelism,
    ) -> Arc<CompressedCsr> {
        self.compressed_snapshot_stamped(g, par).0
    }

    /// [`Self::compressed_snapshot`] plus the [`SnapshotEpoch`] that
    /// identifies the served generation.
    pub fn compressed_snapshot_stamped(
        &mut self,
        g: &DynamicGraph,
        par: Parallelism,
    ) -> (Arc<CompressedCsr>, SnapshotEpoch) {
        let version = g.version();
        let n = g.num_vertices();
        if let Some(prev) = &self.prev_compressed {
            if prev.version == version && prev.num_vertices == n {
                self.stats.snapshots_served += 1;
                self.stats.cache_hits += 1;
                let stamp = SnapshotEpoch {
                    epoch: prev.epoch,
                    graph_version: version,
                };
                return (Arc::clone(&prev.csr), stamp);
            }
        }
        let (csr, stamp) = self.snapshot_stamped(g, par);
        let compressed = Arc::new(CompressedCsr::from_csr(&csr));
        // The re-encode writes the compressed arrays once — bandwidth
        // the calibration prices alongside the plain copy step.
        self.stats.mem_bytes += compressed.mem_bytes();
        self.prev_compressed = Some(CachedCompressed {
            csr: Arc::clone(&compressed),
            version,
            num_vertices: n,
            epoch: stamp.epoch,
        });
        (compressed, stamp)
    }

    /// Serve a snapshot of `g`, reusing the previous CSR's clean rows.
    /// The returned graph is bit-identical to `g.snapshot()`.
    pub fn snapshot(&mut self, g: &DynamicGraph, par: Parallelism) -> Arc<CsrGraph> {
        self.snapshot_stamped(g, par).0
    }

    /// [`Self::snapshot`] plus the [`SnapshotEpoch`] identifying the
    /// served generation: the epoch moves exactly when the CSR is
    /// rebuilt and repeats across cache hits (same `Arc`, same stamp).
    pub fn snapshot_stamped(
        &mut self,
        g: &DynamicGraph,
        par: Parallelism,
    ) -> (Arc<CsrGraph>, SnapshotEpoch) {
        self.stats.snapshots_served += 1;
        let version = g.version();
        let n = g.num_vertices();
        if let Some(prev) = &self.prev {
            if prev.version == version && prev.num_vertices == n {
                self.stats.cache_hits += 1;
                let stamp = SnapshotEpoch {
                    epoch: prev.epoch,
                    graph_version: version,
                };
                return (Arc::clone(&prev.csr), stamp);
            }
        }
        let csr = Arc::new(self.rebuild(g, par));
        self.epoch += 1;
        let retired = self.prev.replace(CachedSnapshot {
            csr: Arc::clone(&csr),
            version,
            num_vertices: n,
            epoch: self.epoch,
        });
        // Recycle the retired arrays when no analytic still holds them.
        if let Some(old) = retired {
            if let Ok(old_csr) = Arc::try_unwrap(old.csr) {
                let (o, t, w) = old_csr.into_parts();
                self.spare = Some((o, t, w.unwrap_or_default()));
            }
        }
        let stamp = SnapshotEpoch {
            epoch: self.epoch,
            graph_version: version,
        };
        (csr, stamp)
    }

    /// The cache's current rebuild generation (0 = never built).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Build the new CSR, copying clean-row slices from the previous
    /// snapshot and re-gathering dirty rows from the dynamic graph.
    fn rebuild(&mut self, g: &DynamicGraph, par: Parallelism) -> CsrGraph {
        let rows = g.raw_rows();
        let n = rows.len();
        let prev = self.prev.as_ref();
        let (prev_version, prev_n) = prev.map_or((0, 0), |p| (p.version, p.num_vertices));
        // A row is dirty when its generation moved past the cached
        // version or it did not exist at the previous freeze.
        let dirty = move |g: &DynamicGraph, u: usize| {
            u >= prev_n || g.row_changed_since(u as VertexId, prev_version)
        };

        let (mut offsets, mut targets, mut weights) = match self.spare.take() {
            Some((mut o, mut t, mut w)) => {
                o.clear();
                t.clear();
                w.clear();
                (o, t, w)
            }
            None => (Vec::new(), Vec::new(), Vec::new()),
        };
        offsets.resize(n + 1, 0);
        let parallel = par.use_parallel(g.num_live_edges());
        match prev {
            Some(p) => {
                let pg = &p.csr;
                count_rows(&mut offsets, parallel, |u| {
                    if dirty(g, u) {
                        rows[u].iter().filter(|r| !r.deleted).count() as u64
                    } else {
                        pg.degree(u as VertexId) as u64
                    }
                });
            }
            None => count_rows(&mut offsets, parallel, |u| {
                rows[u].iter().filter(|r| !r.deleted).count() as u64
            }),
        }
        prefix_sum(&mut offsets);
        let total = offsets[n] as usize;
        targets.resize(total, 0);
        weights.resize(total, 0.0);

        let keep = |_: &EdgeRecord| true;
        match prev {
            Some(p) => {
                let pg = Arc::clone(&p.csr);
                let poff = pg.raw_offsets();
                let ptgt = pg.raw_targets();
                let pwts = pg.raw_weights().unwrap_or(&[]);
                fill_rows(
                    &offsets,
                    0,
                    n,
                    0,
                    &mut targets,
                    &mut weights,
                    parallel,
                    &|u, tgt, wts, buf| {
                        if dirty(g, u) {
                            gather_row(&rows[u], &keep, tgt, wts, buf);
                        } else {
                            let (s, e) = (poff[u] as usize, poff[u + 1] as usize);
                            tgt.copy_from_slice(&ptgt[s..e]);
                            wts.copy_from_slice(&pwts[s..e]);
                        }
                    },
                );
                let rebuilt = (0..n).filter(|&u| dirty(g, u)).count() as u64;
                self.stats.delta_rebuilds += 1;
                self.stats.rows_rebuilt += rebuilt;
                self.stats.rows_reused += n as u64 - rebuilt;
            }
            None => {
                fill_rows(
                    &offsets,
                    0,
                    n,
                    0,
                    &mut targets,
                    &mut weights,
                    parallel,
                    &|u, tgt, wts, buf| gather_row(&rows[u], &keep, tgt, wts, buf),
                );
                self.stats.full_rebuilds += 1;
                self.stats.rows_rebuilt += n as u64;
            }
        }
        self.stats.mem_bytes += (offsets.len() * std::mem::size_of::<u64>()
            + targets.len() * std::mem::size_of::<VertexId>()
            + weights.len() * std::mem::size_of::<Weight>()) as u64;
        let weights = (total > 0).then_some(weights);
        CsrGraph::from_parts(offsets, targets, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    /// Assert two CSR graphs are bit-identical (arrays, not semantics).
    fn assert_identical(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.raw_offsets(), b.raw_offsets(), "offsets differ");
        assert_eq!(a.raw_targets(), b.raw_targets(), "targets differ");
        assert_eq!(a.raw_weights(), b.raw_weights(), "weights differ");
    }

    fn rmat_dynamic(scale: u32, edges_per_v: usize, seed: u64) -> DynamicGraph {
        let n = 1usize << scale;
        let edges = gen::rmat(scale, edges_per_v * n, gen::RmatParams::GRAPH500, seed);
        let mut g = DynamicGraph::new(n);
        for (i, &(u, v)) in edges.iter().enumerate() {
            g.insert_edge(u, v, (i % 7) as Weight + 0.5, i as Timestamp);
        }
        g
    }

    #[test]
    fn rowwise_matches_legacy_on_rmat() {
        let g = rmat_dynamic(9, 8, 3);
        assert_identical(&freeze(&g, Parallelism::Serial), &g.snapshot_legacy());
        assert_identical(&freeze(&g, Parallelism::Parallel), &g.snapshot_legacy());
    }

    #[test]
    fn rowwise_matches_legacy_with_tombstones() {
        let mut g = rmat_dynamic(8, 6, 5);
        // Tombstone every third edge of every fourth row.
        for u in (0..g.num_vertices() as VertexId).step_by(4) {
            let nbrs: Vec<VertexId> = g.neighbor_ids(u).collect();
            for &v in nbrs.iter().step_by(3) {
                g.delete_edge(u, v, 1_000_000);
            }
        }
        assert_identical(&freeze(&g, Parallelism::Parallel), &g.snapshot_legacy());
    }

    #[test]
    fn since_window_matches_legacy() {
        let g = rmat_dynamic(8, 4, 11);
        let mid = g.last_update() / 2;
        assert_identical(
            &freeze_since(&g, mid, Parallelism::Serial),
            &g.snapshot_since_legacy(mid),
        );
        assert_identical(
            &freeze_since(&g, mid, Parallelism::Parallel),
            &g.snapshot_since_legacy(mid),
        );
    }

    #[test]
    fn empty_and_isolated() {
        let g = DynamicGraph::new(0);
        assert_identical(&freeze(&g, Parallelism::Serial), &g.snapshot_legacy());
        let g = DynamicGraph::new(17);
        assert_identical(&freeze(&g, Parallelism::Parallel), &g.snapshot_legacy());
    }

    #[test]
    fn cache_hit_returns_same_arc() {
        let g = rmat_dynamic(6, 4, 1);
        let mut c = SnapshotCache::new();
        let a = c.snapshot(&g, Parallelism::Serial);
        let b = c.snapshot(&g, Parallelism::Serial);
        assert!(Arc::ptr_eq(&a, &b));
        let s = c.stats();
        assert_eq!(s.snapshots_served, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.full_rebuilds, 1);
        assert_eq!(s.delta_rebuilds, 0);
    }

    #[test]
    fn delta_rebuild_touches_only_dirty_rows() {
        let mut g = rmat_dynamic(8, 8, 7);
        let n = g.num_vertices();
        let mut c = SnapshotCache::new();
        c.snapshot(&g, Parallelism::Serial);
        g.insert_edge(3, 9, 2.5, 999_999);
        g.delete_edge(
            5,
            *g.neighbor_ids(5).collect::<Vec<_>>().first().unwrap(),
            999_999,
        );
        let snap = c.snapshot(&g, Parallelism::Serial);
        assert_identical(&snap, &g.snapshot_legacy());
        let s = c.stats();
        assert_eq!(s.delta_rebuilds, 1);
        assert_eq!(s.rows_rebuilt as usize, n + 2); // full build + 2 dirty
        assert_eq!(s.rows_reused as usize, n - 2);
    }

    #[test]
    fn delta_handles_vertex_growth() {
        let mut g = rmat_dynamic(6, 4, 13);
        let mut c = SnapshotCache::new();
        c.snapshot(&g, Parallelism::Serial);
        // Insert an edge beyond the current vertex space.
        let far = (g.num_vertices() + 10) as VertexId;
        g.insert_edge(far, 0, 1.0, 77);
        let snap = c.snapshot(&g, Parallelism::Serial);
        assert_identical(&snap, &g.snapshot_legacy());
        assert!(snap.has_edge(far, 0));
    }

    #[test]
    fn delta_after_compact_stays_identical() {
        let mut g = rmat_dynamic(7, 6, 17);
        let mut c = SnapshotCache::new();
        c.snapshot(&g, Parallelism::Serial);
        for u in 0..32 {
            let nbrs: Vec<VertexId> = g.neighbor_ids(u).collect();
            if let Some(&v) = nbrs.first() {
                g.delete_edge(u, v, 500_000);
            }
        }
        g.compact();
        let snap = c.snapshot(&g, Parallelism::Parallel);
        assert_identical(&snap, &g.snapshot_legacy());
    }

    #[test]
    fn all_rows_dirty_still_identical() {
        let mut g = rmat_dynamic(7, 4, 19);
        let mut c = SnapshotCache::new();
        c.snapshot(&g, Parallelism::Serial);
        for u in 0..g.num_vertices() as VertexId {
            g.insert_edge(u, (u + 1) % g.num_vertices() as VertexId, 9.0, 600_000);
        }
        let snap = c.snapshot(&g, Parallelism::Parallel);
        assert_identical(&snap, &g.snapshot_legacy());
        assert_eq!(c.stats().rows_reused, 0);
    }

    #[test]
    fn retired_arrays_are_recycled() {
        let mut g = rmat_dynamic(6, 4, 23);
        let mut c = SnapshotCache::new();
        // First snapshot Arc is dropped immediately -> eligible for
        // recycling on the next rebuild.
        drop(c.snapshot(&g, Parallelism::Serial));
        g.insert_edge(0, 1, 1.5, 999);
        drop(c.snapshot(&g, Parallelism::Serial));
        assert!(c.spare.is_some() || c.prev.is_some());
        g.insert_edge(1, 2, 1.5, 1000);
        let snap = c.snapshot(&g, Parallelism::Serial);
        assert_identical(&snap, &g.snapshot_legacy());
    }

    #[test]
    fn compressed_snapshot_is_cached_and_exact() {
        let mut g = rmat_dynamic(7, 6, 37);
        let mut c = SnapshotCache::new();
        let a = c.compressed_snapshot(&g, Parallelism::Serial);
        let b = c.compressed_snapshot(&g, Parallelism::Serial);
        assert!(Arc::ptr_eq(&a, &b), "unchanged version served from cache");
        assert_identical(&a.to_csr(), &g.snapshot_legacy());
        g.insert_edge(1, 2, 3.0, 888_888);
        let d = c.compressed_snapshot(&g, Parallelism::Serial);
        assert!(!Arc::ptr_eq(&a, &d), "version bump must re-encode");
        assert_identical(&d.to_csr(), &g.snapshot_legacy());
        // Re-encoding went through the plain cache's delta path.
        assert_eq!(c.stats().delta_rebuilds, 1);
    }

    #[test]
    fn invalidate_forces_full_rebuild() {
        let g = rmat_dynamic(6, 4, 29);
        let mut c = SnapshotCache::new();
        c.snapshot(&g, Parallelism::Serial);
        c.invalidate();
        c.snapshot(&g, Parallelism::Serial);
        assert_eq!(c.stats().full_rebuilds, 2);
    }

    #[test]
    fn epochs_move_only_on_rebuild() {
        let mut g = rmat_dynamic(6, 4, 41);
        let mut c = SnapshotCache::new();
        let (a, ea) = c.snapshot_stamped(&g, Parallelism::Serial);
        let (b, eb) = c.snapshot_stamped(&g, Parallelism::Serial);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ea, eb, "cache hit repeats the stamp");
        assert_eq!(ea.epoch, 1);
        g.insert_edge(0, 1, 1.0, 999);
        let (_, ec) = c.snapshot_stamped(&g, Parallelism::Serial);
        assert!(ec.epoch > ea.epoch);
        assert!(ec.graph_version > ea.graph_version);
        // The compressed serve of the same version shares the stamp.
        let (_, ed) = c.compressed_snapshot_stamped(&g, Parallelism::Serial);
        assert_eq!(ed.epoch, ec.epoch);
        c.invalidate();
        let (_, ee) = c.snapshot_stamped(&g, Parallelism::Serial);
        assert!(ee.epoch > ed.epoch, "invalidate never rewinds the epoch");
        assert_eq!(c.epoch(), ee.epoch);
    }

    #[test]
    fn stats_drain() {
        let g = rmat_dynamic(5, 4, 31);
        let mut c = SnapshotCache::new();
        c.snapshot(&g, Parallelism::Serial);
        let s = c.take_stats();
        assert_eq!(s.rebuilds(), 1);
        assert!(s.mem_bytes > 0);
        assert_eq!(c.stats(), SnapshotStats::default());
        let merged = s.merge(&s);
        assert_eq!(merged.mem_bytes, 2 * s.mem_bytes);
    }
}
