//! Dual-representation vertex frontiers for the traversal kernels.
//!
//! BFS's direction-optimizing trick hinges on keeping the frontier in
//! *two* forms at once: a sparse insertion-ordered list (cheap to
//! iterate when the frontier is small) and a dense bitmap (O(1)
//! membership, cheap to scan when the frontier covers much of the
//! graph). [`Frontier`] packages that pair — with duplicate-free
//! insertion, density probes for representation switching, and a
//! degree-aware partitioner so parallel expansion splits by *edge* work
//! rather than vertex count — and is shared by BFS, the delta-stepping
//! SSSP bucket scans, and the label-propagation / Afforest CC kernels.

use crate::adjacency::Adjacency;
use crate::VertexId;

/// A set of vertices held as a bitmap plus a sparse list.
///
/// `insert` is duplicate-free (the bitmap is the authority), so kernels
/// that may discover a vertex through several edges — SSSP bucket
/// relaxations, changed-neighbor sets in label propagation — get
/// dedup for free instead of scanning a vertex once per discovery.
#[derive(Clone, Debug)]
pub struct Frontier {
    bits: Vec<u64>,
    sparse: Vec<VertexId>,
    num_vertices: usize,
}

impl Frontier {
    /// An empty frontier over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Frontier {
            bits: vec![0u64; num_vertices.div_ceil(64)],
            sparse: Vec::new(),
            num_vertices,
        }
    }

    /// Insert `v`; returns true if it was not already a member.
    #[inline]
    pub fn insert(&mut self, v: VertexId) -> bool {
        let (word, bit) = (v as usize / 64, v as usize % 64);
        let mask = 1u64 << bit;
        if self.bits[word] & mask != 0 {
            return false;
        }
        self.bits[word] |= mask;
        self.sparse.push(v);
        true
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.bits[v as usize / 64] & (1u64 << (v as usize % 64)) != 0
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.sparse.len()
    }

    /// True when no vertex is a member.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sparse.is_empty()
    }

    /// Vertex-count capacity (the `n` this frontier was built over).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Members in insertion order (the sparse representation).
    #[inline]
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, VertexId>> {
        self.sparse.iter().copied()
    }

    /// The sparse list itself, in insertion order.
    #[inline]
    pub fn as_slice(&self) -> &[VertexId] {
        &self.sparse
    }

    /// Members in ascending vertex order, scanned from the bitmap —
    /// the dense representation's iteration, O(n/64 + len).
    pub fn iter_ascending(&self) -> AscendingBits<'_> {
        AscendingBits {
            bits: &self.bits,
            word_idx: 0,
            current: self.bits.first().copied().unwrap_or(0),
        }
    }

    /// Fraction of all vertices in the frontier, for density-based
    /// representation switching (GAP's top-down/bottom-up test uses
    /// frontier *edges*; see [`Frontier::edge_sum`] for that).
    #[inline]
    pub fn density(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.sparse.len() as f64 / self.num_vertices as f64
        }
    }

    /// True when the frontier is dense enough that bitmap scans beat
    /// sparse iteration (more than 1/16 of all vertices present).
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.sparse.len() * 16 > self.num_vertices
    }

    /// Total out-degree of the members — the work a top-down expansion
    /// of this frontier would do, and the quantity GAP's
    /// direction-switching heuristic compares against `m / alpha`.
    pub fn edge_sum<G: Adjacency>(&self, g: &G) -> u64 {
        self.sparse.iter().map(|&v| g.degree(v) as u64).sum()
    }

    /// Split the sparse list into at most `max_chunks` contiguous ranges
    /// of roughly equal total degree, so parallel expansion partitions
    /// by edge work instead of vertex count (one hub vertex no longer
    /// serializes a whole chunk). Returns `(start, end)` index pairs
    /// into [`Frontier::as_slice`]; every member is covered exactly once
    /// and order is preserved.
    pub fn degree_chunks<G: Adjacency>(&self, g: &G, max_chunks: usize) -> Vec<(usize, usize)> {
        crate::par::degree_chunks(g, &self.sparse, max_chunks)
    }

    /// Remove all members. O(len): clears only the words the members
    /// touch, so sparse frontiers over huge graphs stay cheap.
    pub fn clear(&mut self) {
        if self.sparse.len() * 64 >= self.bits.len() {
            self.bits.fill(0);
        } else {
            for &v in &self.sparse {
                self.bits[v as usize / 64] = 0;
            }
        }
        self.sparse.clear();
    }
}

impl<'a> IntoIterator for &'a Frontier {
    type Item = VertexId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, VertexId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Ascending-order iterator over a frontier's bitmap.
#[derive(Clone, Debug)]
pub struct AscendingBits<'a> {
    bits: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for AscendingBits<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some((self.word_idx * 64) as VertexId + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bits.len() {
                return None;
            }
            self.current = self.bits[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    #[test]
    fn insert_dedups_and_tracks_order() {
        let mut f = Frontier::new(100);
        assert!(f.insert(7));
        assert!(f.insert(3));
        assert!(!f.insert(7));
        assert!(f.insert(64));
        assert_eq!(f.len(), 3);
        assert_eq!(f.as_slice(), &[7, 3, 64]);
        let asc: Vec<VertexId> = f.iter_ascending().collect();
        assert_eq!(asc, vec![3, 7, 64]);
        assert!(f.contains(64));
        assert!(!f.contains(63));
    }

    #[test]
    fn clear_resets_both_representations() {
        let mut f = Frontier::new(200);
        for v in [0, 65, 199] {
            f.insert(v);
        }
        f.clear();
        assert!(f.is_empty());
        assert!(!f.contains(65));
        assert_eq!(f.iter_ascending().count(), 0);
        assert!(f.insert(65));
    }

    #[test]
    fn density_switching_threshold() {
        let mut f = Frontier::new(160);
        for v in 0..10 {
            f.insert(v);
        }
        assert!(!f.is_dense());
        for v in 10..20 {
            f.insert(v);
        }
        assert!(f.is_dense());
    }

    #[test]
    fn degree_chunks_cover_in_order() {
        // Star: vertex 0 has degree 9, leaves degree 1.
        let edges: Vec<_> = (1..10).flat_map(|v| [(0, v), (v, 0)]).collect();
        let g = CsrGraph::from_edges(10, &edges);
        let mut f = Frontier::new(10);
        for v in 0..10 {
            f.insert(v);
        }
        let chunks = f.degree_chunks(&g, 4);
        assert!(!chunks.is_empty() && chunks.len() <= 4);
        let mut covered = Vec::new();
        let mut prev_end = 0;
        for &(s, e) in &chunks {
            assert_eq!(s, prev_end, "chunks must tile the sparse list");
            assert!(e > s);
            prev_end = e;
            covered.extend_from_slice(&f.as_slice()[s..e]);
        }
        assert_eq!(prev_end, f.len());
        assert_eq!(covered, f.as_slice());
    }

    #[test]
    fn empty_frontier_over_empty_graph() {
        let f = Frontier::new(0);
        assert!(f.is_empty());
        assert_eq!(f.density(), 0.0);
        assert_eq!(f.iter_ascending().count(), 0);
    }
}
