//! Parallel CSR iteration helpers.
//!
//! The batch kernels share three data-parallel access patterns over a
//! [`CsrGraph`](crate::CsrGraph) snapshot: map a function over every vertex, expand a
//! frontier by claiming undiscovered neighbors, and sum a per-vertex
//! quantity (typically degrees). Centralizing them here keeps each
//! kernel's parallel variant small and makes the work-partitioning
//! strategy uniform across kernels.

use crate::adjacency::Adjacency;
use crate::VertexId;
use rayon::prelude::*;

/// How a parallelizable operation (kernel invocation, snapshot freeze)
/// should execute.
///
/// Defined here, in the storage crate, so both the batch kernels
/// (`ga-kernels` re-exports it) and the snapshot pipeline share one
/// knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Always the sequential engine.
    Serial,
    /// Always the rayon-parallel engine.
    Parallel,
    /// Parallel when the thread pool has more than one thread and the
    /// input is large enough to amortize coordination (the default).
    #[default]
    Auto,
}

/// Inputs smaller than this stay serial under [`Parallelism::Auto`]:
/// below ~32k edges of work, thread spawn and chunk coordination cost
/// more than they recover.
pub const AUTO_WORK_CUTOFF: usize = 32_768;

impl Parallelism {
    /// Decide whether an operation facing roughly `work` units (edges)
    /// of work should take its parallel path.
    pub fn use_parallel(self, work: usize) -> bool {
        match self {
            Parallelism::Serial => false,
            Parallelism::Parallel => true,
            Parallelism::Auto => rayon::current_num_threads() > 1 && work >= AUTO_WORK_CUTOFF,
        }
    }
}

/// Map `f` over vertices `0..n` in parallel, collecting results in
/// vertex order (identical to the sequential `(0..n).map(f).collect()`).
pub fn par_vertex_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(VertexId) -> T + Send + Sync,
{
    (0..n as VertexId).into_par_iter().map(f).collect()
}

/// Expand `frontier` one level in parallel: for each frontier vertex `u`
/// and each out-neighbor `v`, `claim(u, v)` decides (atomically, on the
/// caller's state) whether this thread discovered `v`; claimed vertices
/// form the next frontier. Discovery order within the frontier is
/// preserved, so runs are deterministic up to claim races.
///
/// Work is partitioned by *degree sum*, not vertex count: the frontier
/// is pre-split into contiguous ranges of roughly equal total degree so
/// one hub vertex cannot serialize a whole rayon chunk (the
/// degree-aware partitioning half of the GAP frontier treatment).
pub fn par_frontier_expand<G, F>(g: &G, frontier: &[VertexId], claim: F) -> Vec<VertexId>
where
    G: Adjacency,
    F: Fn(VertexId, VertexId) -> bool + Send + Sync,
{
    let chunks = degree_chunks(g, frontier, rayon::current_num_threads() * 4);
    chunks
        .par_iter()
        .flat_map_iter(|&(s, e)| {
            let claim = &claim;
            frontier[s..e]
                .iter()
                .flat_map(move |&u| g.neighbors(u).filter(move |&v| claim(u, v)))
        })
        .collect()
}

/// Split `frontier` into at most `max_chunks` contiguous index ranges of
/// roughly equal total out-degree. Ranges tile the slice in order, so
/// chunked parallel iteration preserves sequential output order.
pub fn degree_chunks<G: Adjacency>(
    g: &G,
    frontier: &[VertexId],
    max_chunks: usize,
) -> Vec<(usize, usize)> {
    let max_chunks = max_chunks.max(1);
    if frontier.is_empty() {
        return Vec::new();
    }
    let total: u64 = frontier.iter().map(|&v| g.degree(v) as u64 + 1).sum();
    let per_chunk = total.div_ceil(max_chunks as u64).max(1);
    let mut chunks = Vec::with_capacity(max_chunks);
    let (mut start, mut acc) = (0usize, 0u64);
    for (i, &v) in frontier.iter().enumerate() {
        acc += g.degree(v) as u64 + 1;
        if acc >= per_chunk {
            chunks.push((start, i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    if start < frontier.len() {
        chunks.push((start, frontier.len()));
    }
    chunks
}

/// Sum of out-degrees over `frontier`, in parallel — the number of edges
/// one expansion level will examine (used both for direction switching
/// and for edge-traffic accounting).
pub fn frontier_degree_sum<G: Adjacency>(g: &G, frontier: &[VertexId]) -> usize {
    frontier.par_iter().map(|&v| g.degree(v)).sum()
}

/// Sum `f` over vertices `0..n` in parallel.
pub fn par_vertex_sum<F>(n: usize, f: F) -> u64
where
    F: Fn(VertexId) -> u64 + Send + Sync,
{
    (0..n as VertexId).into_par_iter().map(f).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::CsrGraph;

    #[test]
    fn vertex_map_matches_sequential() {
        let par = par_vertex_map(100, |v| v * 2);
        let seq: Vec<VertexId> = (0..100).map(|v| v * 2).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn frontier_expand_discovers_neighbors() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let g = CsrGraph::from_edges_undirected(6, &gen::star(6));
        let seen: Vec<AtomicBool> = (0..6).map(|_| AtomicBool::new(false)).collect();
        seen[0].store(true, Ordering::Relaxed);
        let next = par_frontier_expand(&g, &[0], |_, v| {
            !seen[v as usize].swap(true, Ordering::Relaxed)
        });
        let mut sorted = next.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn degree_sums() {
        let g = CsrGraph::from_edges_undirected(5, &gen::path(5));
        assert_eq!(frontier_degree_sum(&g, &[0, 2]), 3);
        // Sum of out-degrees equals the directed edge count.
        assert_eq!(
            par_vertex_sum(5, |v| g.degree(v) as u64),
            g.num_edges() as u64
        );
    }
}
