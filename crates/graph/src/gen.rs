//! Deterministic graph and workload generators.
//!
//! Every benchmark in the paper's Fig. 1 is driven by synthetic graphs
//! with "well-controlled characteristics". This module provides the
//! generators the reproduction uses:
//!
//! * [`rmat`] — the Graph500 Kronecker/R-MAT generator (skewed degree
//!   distribution, the canonical "big graph" stand-in),
//! * [`erdos_renyi`] — uniform G(n, m),
//! * [`barabasi_albert`] — preferential attachment (power-law),
//! * [`watts_strogatz`] — small-world rewiring,
//! * regular topologies ([`grid2d`], [`path`], [`star`], [`complete`],
//!   [`ring`]) used by unit tests and the architecture simulators.
//!
//! All generators take an explicit `seed` and use a counter-based PRNG
//! stream (`ChaCha8`), so every experiment in EXPERIMENTS.md is exactly
//! re-runnable.

use crate::{Edge, VertexId, Weight, WeightedEdge};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// R-MAT quadrant probabilities `(a, b, c)`; `d = 1 - a - b - c`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 reference parameters (A=0.57, B=0.19, C=0.19).
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };

    /// A milder skew useful for tests.
    pub const MILD: RmatParams = RmatParams {
        a: 0.45,
        b: 0.22,
        c: 0.22,
    };
}

/// Generate `num_edges` directed R-MAT edges over `2^scale` vertices.
///
/// Self-loops and duplicates are *not* filtered here — that is the CSR
/// builder's job — because the raw stream is also what the streaming
/// engine replays (Graph500's edge stream semantics).
pub fn rmat(scale: u32, num_edges: usize, p: RmatParams, seed: u64) -> Vec<Edge> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        edges.push(rmat_edge(scale, p, &mut rng));
    }
    edges
}

fn rmat_edge(scale: u32, p: RmatParams, rng: &mut impl Rng) -> Edge {
    let mut u: u64 = 0;
    let mut v: u64 = 0;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.gen();
        if r < p.a {
            // top-left: no bits set
        } else if r < p.a + p.b {
            v |= 1;
        } else if r < p.a + p.b + p.c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as VertexId, v as VertexId)
}

/// Uniform G(n, m): `m` directed edges drawn uniformly (self-loops
/// excluded, duplicates possible).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Vec<Edge> {
    assert!(n >= 2, "G(n,m) needs at least 2 vertices");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u != v {
            edges.push((u, v));
        }
    }
    edges
}

/// Barabási–Albert preferential attachment: starts from a small clique,
/// each new vertex attaches `k` edges biased toward high-degree targets.
/// Produces a power-law-ish degree distribution.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> Vec<Edge> {
    assert!(k >= 1 && n > k, "need n > k >= 1");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::with_capacity(n * k);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * k);
    let core = k + 1;
    for u in 0..core {
        for v in 0..u {
            edges.push((u as VertexId, v as VertexId));
            endpoints.push(u as VertexId);
            endpoints.push(v as VertexId);
        }
    }
    for u in core..n {
        let mut chosen = Vec::with_capacity(k);
        while chosen.len() < k {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != u as VertexId && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((u as VertexId, t));
            endpoints.push(u as VertexId);
            endpoints.push(t);
        }
    }
    edges
}

/// Watts–Strogatz small world: ring lattice with `k` neighbors per side,
/// each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Vec<Edge> {
    assert!(k >= 1 && n > 2 * k, "need n > 2k");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * k);
    for u in 0..n {
        for j in 1..=k {
            let mut v = (u + j) % n;
            if rng.gen::<f64>() < beta {
                loop {
                    let cand = rng.gen_range(0..n);
                    if cand != u && cand != v {
                        v = cand;
                        break;
                    }
                }
            }
            edges.push((u as VertexId, v as VertexId));
        }
    }
    edges
}

/// `rows x cols` 4-neighbor grid (undirected edge set emitted once per
/// pair; symmetrize when building).
pub fn grid2d(rows: usize, cols: usize) -> Vec<Edge> {
    let mut edges = Vec::with_capacity(2 * rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    edges
}

/// Simple path 0-1-2-...-(n-1).
pub fn path(n: usize) -> Vec<Edge> {
    (0..n.saturating_sub(1))
        .map(|i| (i as VertexId, (i + 1) as VertexId))
        .collect()
}

/// Ring 0-1-...-(n-1)-0.
pub fn ring(n: usize) -> Vec<Edge> {
    let mut e = path(n);
    if n > 2 {
        e.push(((n - 1) as VertexId, 0));
    }
    e
}

/// Star with center 0 and `n - 1` leaves.
pub fn star(n: usize) -> Vec<Edge> {
    (1..n).map(|i| (0, i as VertexId)).collect()
}

/// Complete directed graph on `n` vertices (no self-loops).
pub fn complete(n: usize) -> Vec<Edge> {
    let mut e = Vec::with_capacity(n * (n - 1));
    for u in 0..n {
        for v in 0..n {
            if u != v {
                e.push((u as VertexId, v as VertexId));
            }
        }
    }
    e
}

/// Attach uniform random weights in `[lo, hi)` to an edge list.
pub fn with_random_weights(edges: &[Edge], lo: Weight, hi: Weight, seed: u64) -> Vec<WeightedEdge> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    edges
        .iter()
        .map(|&(u, v)| (u, v, rng.gen_range(lo..hi)))
        .collect()
}

/// A planted-partition (stochastic block) graph: `communities` groups of
/// `group_size` vertices; intra-group edge probability `p_in`, inter
/// `p_out`. Ground truth for community-detection tests is "vertex /
/// group_size".
pub fn planted_partition(
    communities: usize,
    group_size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Vec<Edge> {
    let n = communities * group_size;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let same = u / group_size == v / group_size;
            let p = if same { p_in } else { p_out };
            if rng.gen::<f64>() < p {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrGraph;

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(8, 1000, RmatParams::GRAPH500, 7);
        let b = rmat(8, 1000, RmatParams::GRAPH500, 7);
        assert_eq!(a, b);
        let c = rmat(8, 1000, RmatParams::GRAPH500, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_in_range_and_skewed() {
        let scale = 10;
        let edges = rmat(scale, 20_000, RmatParams::GRAPH500, 1);
        let n = 1usize << scale;
        assert!(edges
            .iter()
            .all(|&(u, v)| (u as usize) < n && (v as usize) < n));
        // Skew check: the max-degree vertex should far exceed the mean.
        let g = CsrGraph::from_edges(n, &edges);
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let mean = g.num_edges() as f64 / n as f64;
        assert!(
            max_deg as f64 > 5.0 * mean,
            "rmat should be skewed: max {max_deg}, mean {mean}"
        );
    }

    #[test]
    fn erdos_renyi_exact_count_no_loops() {
        let edges = erdos_renyi(100, 500, 3);
        assert_eq!(edges.len(), 500);
        assert!(edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn barabasi_albert_degrees() {
        let n = 500;
        let k = 3;
        let edges = barabasi_albert(n, k, 11);
        let g = CsrGraph::from_edges_undirected(n, &edges);
        // Every non-core vertex has at least k undirected neighbors.
        for v in (k as VertexId + 1)..n as VertexId {
            assert!(g.degree(v) >= k, "v={v} degree {}", g.degree(v));
        }
        // Preferential attachment produces a heavy tail.
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg >= 4 * k);
    }

    #[test]
    fn watts_strogatz_edge_count() {
        let edges = watts_strogatz(100, 2, 0.1, 5);
        assert_eq!(edges.len(), 200);
        assert!(edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn grid_shape() {
        let edges = grid2d(3, 4);
        // 3*3 horizontal + 2*4 vertical = 17
        assert_eq!(edges.len(), 3 * 3 + 2 * 4);
        let g = CsrGraph::from_edges_undirected(12, &edges);
        // Corner degree 2, interior degree 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn simple_topologies() {
        assert_eq!(path(4), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(ring(3).len(), 3);
        assert_eq!(star(4), vec![(0, 1), (0, 2), (0, 3)]);
        assert_eq!(complete(3).len(), 6);
        assert!(path(1).is_empty());
        assert!(path(0).is_empty());
    }

    #[test]
    fn weights_in_range() {
        let edges = path(10);
        let w = with_random_weights(&edges, 1.0, 5.0, 2);
        assert!(w.iter().all(|&(_, _, x)| (1.0..5.0).contains(&x)));
        assert_eq!(w.len(), edges.len());
    }

    #[test]
    fn planted_partition_denser_inside() {
        let edges = planted_partition(4, 25, 0.5, 0.01, 9);
        let intra = edges.iter().filter(|&&(u, v)| u / 25 == v / 25).count();
        let inter = edges.len() - intra;
        assert!(intra > inter * 2, "intra {intra} vs inter {inter}");
    }
}
