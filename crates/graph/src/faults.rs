//! Deterministic fault injection for the durability layer.
//!
//! A FailPoint-style registry: tests arm named *sites* (e.g.
//! `"wal.append"`) with a [`FaultMode`], and the I/O code asks the
//! registry at each site whether to proceed, fail, or short-write.
//! Everything is deterministic — a fault fires on an exact hit count,
//! never on wall-clock or OS randomness — so crash/recovery tests can
//! replay the same failure on every run.
//!
//! The registry is process-global (the code under test must not need a
//! handle threaded through every call), guarded by a mutex, with an
//! atomic fast path so un-armed production runs pay one relaxed load
//! per site.
//!
//! Sites wired in this workspace:
//!
//! | site               | where it fires                                  |
//! |--------------------|-------------------------------------------------|
//! | `wal.append`       | before/while appending a WAL frame              |
//! | `wal.repair`       | before truncating a torn WAL tail               |
//! | `checkpoint.write` | before/while writing a checkpoint file          |
//! | `checkpoint.load`  | before reading a checkpoint file during recovery |
//! | `segment.write`    | before/while spilling a tier segment to disk    |
//! | `segment.read`     | before reading a tier segment on a cache miss   |
//! | `segment.scrub`    | before each segment's integrity scrub pass      |
//!
//! **Scoped sites.** Multi-engine deployments (the sharded fleet) need
//! to fault *one* engine's durability path while its siblings run
//! clean. Rather than threading shard labels through the WAL and
//! checkpoint writers, callers wrap an engine's I/O in
//! [`with_scope`]`("shard-01", ...)`; every intercept inside first
//! consults the scoped site (`"shard-01/wal.append"`), then the bare
//! one. Arming a scoped name therefore targets exactly one engine, and
//! arming the bare name keeps targeting all of them.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// How an armed site misbehaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Fail the next hit with an injected I/O error, then disarm.
    FailOnce,
    /// Fail every `n`-th hit (1-based: `FailEveryNth(3)` fails hits
    /// 3, 6, 9, ...). Stays armed until [`clear_all`].
    FailEveryNth(u64),
    /// Fail the first `k` hits, then succeed forever — a *transient*
    /// fault, the shape retry/backoff logic is built for. `FailTimes(0)`
    /// never fires.
    FailTimes(u64),
    /// On the next hit, write only the first `n` bytes of the payload,
    /// report an injected error, then disarm — a torn/truncated write.
    ShortWrite(usize),
    /// Delay every hit by `n` milliseconds, then let it proceed — a
    /// slow device rather than a broken one. The operation still
    /// succeeds; only its latency changes, so results stay
    /// deterministic. Stays armed until [`clear_all`].
    Delay(u64),
}

/// What the instrumented site should do for this hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Intercept {
    /// No fault: perform the operation normally.
    Proceed,
    /// Fail with an injected error without touching storage.
    Error,
    /// Write only this many bytes of the payload, then fail.
    ShortWrite(usize),
    /// Sleep this many milliseconds, then perform the operation
    /// normally (a slow-IO fault; the site should count it so tier
    /// stats can report slow devices).
    Delay(u64),
}

struct FaultState {
    mode: FaultMode,
    hits: u64,
    fired: u64,
    disarmed: bool,
}

/// Count of armed sites; zero means every [`intercept`] is a no-op.
static ARMED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The thread's active fault scope (see [`with_scope`]). Empty =
    /// no scope; intercepts consult bare site names only.
    static SCOPE: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Run `f` with this thread's fault *scope* set to `scope`. While the
/// scope is active, every [`intercept`]/[`check`] for site `s` first
/// consults the scoped site `"{scope}/{s}"` and only falls back to the
/// bare `s` — so a test can arm `"shard-01/wal.append"` and fault one
/// shard of a fleet while the shared WAL code stays unmodified. Scopes
/// nest (the previous scope is restored on return) and are per-thread.
pub fn with_scope<T>(scope: &str, f: impl FnOnce() -> T) -> T {
    let prev = SCOPE.with(|s| std::mem::replace(&mut *s.borrow_mut(), scope.to_string()));
    let out = f();
    SCOPE.with(|s| *s.borrow_mut() = prev);
    out
}

/// The effective (possibly scope-prefixed) name `site` resolves to on
/// this thread right now — what an injected error will be labeled with.
fn scoped_name(site: &str) -> Option<String> {
    SCOPE.with(|s| {
        let s = s.borrow();
        (!s.is_empty()).then(|| format!("{}/{site}", *s))
    })
}

fn registry() -> &'static Mutex<HashMap<String, FaultState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, FaultState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arm `site` with `mode` (replacing any previous arming of the site).
pub fn arm(site: &str, mode: FaultMode) {
    let mut reg = registry().lock().unwrap();
    let prev = reg.insert(
        site.to_string(),
        FaultState {
            mode,
            hits: 0,
            fired: 0,
            disarmed: false,
        },
    );
    if prev.is_none() {
        ARMED.fetch_add(1, Ordering::SeqCst);
    }
}

/// Disarm every site and forget all hit counts.
pub fn clear_all() {
    let mut reg = registry().lock().unwrap();
    if !reg.is_empty() {
        reg.clear();
    }
    ARMED.store(0, Ordering::SeqCst);
}

/// Ask whether `site` should misbehave on this hit. Counts the hit.
/// Under an active [`with_scope`], the scoped name is consulted first
/// and — when armed — shadows any arming of the bare name.
pub fn intercept(site: &str) -> Intercept {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return Intercept::Proceed;
    }
    let mut reg = registry().lock().unwrap();
    let state = match scoped_name(site) {
        Some(key) if reg.contains_key(&key) => reg.get_mut(&key).unwrap(),
        _ => match reg.get_mut(site) {
            Some(s) => s,
            None => return Intercept::Proceed,
        },
    };
    if state.disarmed {
        return Intercept::Proceed;
    }
    state.hits += 1;
    match state.mode {
        FaultMode::FailOnce => {
            state.fired += 1;
            state.disarmed = true;
            Intercept::Error
        }
        FaultMode::FailEveryNth(n) => {
            if n > 0 && state.hits % n == 0 {
                state.fired += 1;
                Intercept::Error
            } else {
                Intercept::Proceed
            }
        }
        FaultMode::FailTimes(k) => {
            if state.hits <= k {
                state.fired += 1;
                if state.hits == k {
                    state.disarmed = true;
                }
                Intercept::Error
            } else {
                Intercept::Proceed
            }
        }
        FaultMode::ShortWrite(k) => {
            state.fired += 1;
            state.disarmed = true;
            Intercept::ShortWrite(k)
        }
        FaultMode::Delay(ms) => {
            state.fired += 1;
            Intercept::Delay(ms)
        }
    }
}

/// Honor an [`Intercept::Delay`] by actually sleeping. Split out so
/// sites can count the slow hit before paying it, and so tests can
/// assert the mapping without wall-clock waits.
pub fn apply_delay(ms: u64) {
    if ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Convenience for sites with no payload to tear: `Err` when the site
/// fires (a [`FaultMode::ShortWrite`] arming also maps to an error
/// here). Under an active scope the error names the scoped site, so a
/// fleet-level failure report says *which* engine was faulted.
pub fn check(site: &str) -> io::Result<()> {
    match intercept(site) {
        Intercept::Proceed => Ok(()),
        Intercept::Delay(ms) => {
            apply_delay(ms);
            Ok(())
        }
        Intercept::Error | Intercept::ShortWrite(_) => match scoped_name(site) {
            Some(name) => Err(injected(&name)),
            None => Err(injected(site)),
        },
    }
}

/// The error an armed site reports when it fires.
pub fn injected(site: &str) -> io::Error {
    io::Error::other(format!("injected fault at {site}"))
}

/// True if `err` was produced by [`injected`] (tests use this to tell
/// deliberate faults from real I/O failures).
pub fn is_injected(err: &io::Error) -> bool {
    err.to_string().starts_with("injected fault at ")
}

/// How many times `site` has actually fired since it was armed.
pub fn fired_count(site: &str) -> u64 {
    registry().lock().unwrap().get(site).map_or(0, |s| s.fired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The registry is process-global; serialize the tests that use it.
    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn unarmed_sites_proceed() {
        let _g = LOCK.lock().unwrap();
        clear_all();
        assert_eq!(intercept("wal.append"), Intercept::Proceed);
        assert!(check("checkpoint.write").is_ok());
    }

    #[test]
    fn fail_once_fires_exactly_once() {
        let _g = LOCK.lock().unwrap();
        clear_all();
        arm("wal.append", FaultMode::FailOnce);
        assert_eq!(intercept("wal.append"), Intercept::Error);
        assert_eq!(intercept("wal.append"), Intercept::Proceed);
        assert_eq!(fired_count("wal.append"), 1);
        clear_all();
    }

    #[test]
    fn every_nth_is_periodic() {
        let _g = LOCK.lock().unwrap();
        clear_all();
        arm("checkpoint.load", FaultMode::FailEveryNth(3));
        let pattern: Vec<bool> = (0..7)
            .map(|_| intercept("checkpoint.load") == Intercept::Error)
            .collect();
        assert_eq!(pattern, [false, false, true, false, false, true, false]);
        clear_all();
    }

    #[test]
    fn fail_times_is_transient() {
        let _g = LOCK.lock().unwrap();
        clear_all();
        arm("wal.append", FaultMode::FailTimes(2));
        assert_eq!(intercept("wal.append"), Intercept::Error);
        assert_eq!(intercept("wal.append"), Intercept::Error);
        // Third and later hits succeed — the fault has passed.
        assert_eq!(intercept("wal.append"), Intercept::Proceed);
        assert_eq!(intercept("wal.append"), Intercept::Proceed);
        assert_eq!(fired_count("wal.append"), 2);
        clear_all();
        // Zero-count transient never fires.
        arm("wal.append", FaultMode::FailTimes(0));
        assert_eq!(intercept("wal.append"), Intercept::Proceed);
        assert_eq!(fired_count("wal.append"), 0);
        clear_all();
    }

    #[test]
    fn short_write_hands_back_budget_then_disarms() {
        let _g = LOCK.lock().unwrap();
        clear_all();
        arm("wal.append", FaultMode::ShortWrite(5));
        assert_eq!(intercept("wal.append"), Intercept::ShortWrite(5));
        assert_eq!(intercept("wal.append"), Intercept::Proceed);
        clear_all();
    }

    #[test]
    fn delay_slows_every_hit_but_never_fails() {
        let _g = LOCK.lock().unwrap();
        clear_all();
        arm("segment.read", FaultMode::Delay(0));
        // Every hit reports the delay; the site stays armed (a slow
        // device stays slow until the test clears it).
        assert_eq!(intercept("segment.read"), Intercept::Delay(0));
        assert_eq!(intercept("segment.read"), Intercept::Delay(0));
        assert_eq!(fired_count("segment.read"), 2);
        // check() treats a delayed hit as success, not failure.
        assert!(check("segment.read").is_ok());
        assert_eq!(fired_count("segment.read"), 3);
        clear_all();
        assert_eq!(intercept("segment.read"), Intercept::Proceed);
    }

    #[test]
    fn delay_carries_its_millisecond_budget() {
        let _g = LOCK.lock().unwrap();
        clear_all();
        arm("segment.write", FaultMode::Delay(7));
        assert_eq!(intercept("segment.write"), Intercept::Delay(7));
        clear_all();
        // apply_delay(0) returns immediately — usable in tight tests.
        apply_delay(0);
    }

    #[test]
    fn scoped_arming_targets_one_scope_only() {
        let _g = LOCK.lock().unwrap();
        clear_all();
        arm("shard-01/wal.append", FaultMode::FailOnce);
        // Other scopes — and the bare site — proceed untouched.
        assert_eq!(
            with_scope("shard-00", || intercept("wal.append")),
            Intercept::Proceed
        );
        assert_eq!(intercept("wal.append"), Intercept::Proceed);
        // The targeted scope fires, and the error names the scoped site.
        let err = with_scope("shard-01", || check("wal.append")).unwrap_err();
        assert!(is_injected(&err));
        assert!(err.to_string().contains("shard-01/wal.append"), "{err}");
        assert_eq!(fired_count("shard-01/wal.append"), 1);
        // FailOnce disarmed: the scope proceeds afterwards.
        assert_eq!(
            with_scope("shard-01", || intercept("wal.append")),
            Intercept::Proceed
        );
        clear_all();
    }

    #[test]
    fn scoped_arming_shadows_bare_site_and_scopes_nest() {
        let _g = LOCK.lock().unwrap();
        clear_all();
        arm("wal.append", FaultMode::FailOnce);
        arm("shard-02/wal.append", FaultMode::FailTimes(2));
        // Inside the scope the scoped arming shadows the bare one.
        assert_eq!(
            with_scope("shard-02", || intercept("wal.append")),
            Intercept::Error
        );
        assert_eq!(fired_count("wal.append"), 0, "bare site must not fire");
        // Nested scope restores the outer one on return.
        with_scope("shard-02", || {
            with_scope("shard-03", || {
                assert_eq!(intercept("wal.append"), Intercept::Error); // bare fires
            });
            assert_eq!(intercept("wal.append"), Intercept::Error); // scoped again
        });
        assert_eq!(fired_count("shard-02/wal.append"), 2);
        assert_eq!(fired_count("wal.append"), 1);
        clear_all();
    }

    #[test]
    fn injected_errors_are_recognizable() {
        let _g = LOCK.lock().unwrap();
        let e = injected("wal.append");
        assert!(is_injected(&e));
        assert!(!is_injected(&io::Error::other("disk on fire")));
    }
}
