//! Subgraph extraction with property projection (Fig. 2 centerpiece).
//!
//! The canonical flow identifies *seeds*, performs *subgraph extraction*
//! ("a breadth-first search from individual seed vertices out to some
//! depth, or perhaps out some distance from some path between two or more
//! seeds"), then *physically copies* the subgraph — with a projection of
//! a small subset of the properties — into a smaller, faster memory for
//! the heavy batch analytics. [`Subgraph`] is that copy: a renumbered
//! [`CsrGraph`] plus a `back_map` to translate results back to the
//! persistent graph's ids.

use crate::{Adjacency, CsrBuilder, CsrGraph, DynamicGraph, PropertyStore, VertexId};
use std::collections::VecDeque;

/// Extraction parameters.
#[derive(Clone, Debug)]
pub struct ExtractOptions {
    /// BFS radius around each seed.
    pub depth: usize,
    /// Hard cap on extracted vertices (0 = unlimited). Frontier expansion
    /// stops once the cap is hit, so hub-heavy seeds can't explode the
    /// working set.
    pub max_vertices: usize,
    /// Treat edges as undirected during expansion (follow in-edges too
    /// when the source graph has a reverse index).
    pub undirected_expand: bool,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            depth: 2,
            max_vertices: 0,
            undirected_expand: false,
        }
    }
}

/// A renumbered copy of a region of a larger graph.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The extracted graph over ids `0..back_map.len()`.
    pub graph: CsrGraph,
    /// `back_map[new_id] = old_id` into the source graph.
    pub back_map: Vec<VertexId>,
    /// Projected properties (empty store when no columns requested).
    pub props: PropertyStore,
}

impl Subgraph {
    /// Translate a subgraph vertex id back to the source graph.
    pub fn to_source(&self, v: VertexId) -> VertexId {
        self.back_map[v as usize]
    }

    /// Number of vertices in the extracted region.
    pub fn num_vertices(&self) -> usize {
        self.back_map.len()
    }
}

/// BFS ball extraction around `seeds` from any [`Adjacency`] source —
/// a plain CSR snapshot, a compressed mirror, or a [`crate::TieredCsr`]
/// whose cold rows page in from disk as the ball expands.
pub fn extract_ball<A: Adjacency + ?Sized>(
    g: &A,
    seeds: &[VertexId],
    opts: &ExtractOptions,
    props: Option<(&PropertyStore, &[&str])>,
) -> Subgraph {
    let members = bfs_ball_members(
        |v, out: &mut Vec<VertexId>| {
            out.extend(g.neighbors(v));
            if opts.undirected_expand && g.has_reverse() {
                out.extend(g.in_neighbors(v));
            }
        },
        g.num_vertices(),
        seeds,
        opts,
    );
    induce(g.num_vertices(), &members, props, |u, out| {
        out.extend(g.neighbors(u))
    })
}

/// BFS ball extraction straight from the live [`DynamicGraph`] — the
/// streaming-trigger path of Fig. 2 where modified vertices become seeds
/// without waiting for a full snapshot.
pub fn extract_ball_dynamic(
    g: &DynamicGraph,
    seeds: &[VertexId],
    opts: &ExtractOptions,
    props: Option<(&PropertyStore, &[&str])>,
) -> Subgraph {
    let members = bfs_ball_members(
        |v, out: &mut Vec<VertexId>| out.extend(g.neighbor_ids(v)),
        g.num_vertices(),
        seeds,
        opts,
    );
    induce(g.num_vertices(), &members, props, |u, out| {
        out.extend(g.neighbor_ids(u))
    })
}

/// Path-corridor extraction: find a shortest path between `a` and `b`
/// (unweighted BFS), then take a ball of `opts.depth` around every path
/// vertex — the paper's "out some distance from some path between two or
/// more seeds". Returns `None` when `b` is unreachable from `a`.
pub fn extract_path_corridor(
    g: &CsrGraph,
    a: VertexId,
    b: VertexId,
    opts: &ExtractOptions,
    props: Option<(&PropertyStore, &[&str])>,
) -> Option<Subgraph> {
    let path = shortest_path(g, a, b)?;
    Some(extract_ball(g, &path, opts, props))
}

/// Unweighted shortest path `a -> b` via BFS with parent pointers.
pub fn shortest_path(g: &CsrGraph, a: VertexId, b: VertexId) -> Option<Vec<VertexId>> {
    let n = g.num_vertices();
    let mut parent: Vec<VertexId> = vec![VertexId::MAX; n];
    let mut q = VecDeque::new();
    parent[a as usize] = a;
    q.push_back(a);
    while let Some(u) = q.pop_front() {
        if u == b {
            break;
        }
        for &v in g.neighbors(u) {
            if parent[v as usize] == VertexId::MAX {
                parent[v as usize] = u;
                q.push_back(v);
            }
        }
    }
    if parent[b as usize] == VertexId::MAX {
        return None;
    }
    let mut path = vec![b];
    let mut cur = b;
    while cur != a {
        cur = parent[cur as usize];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Induce a subgraph over an explicit member set (public for callers
/// that compute membership themselves, e.g. community extraction).
pub fn induced_subgraph(
    g: &CsrGraph,
    members: &[VertexId],
    props: Option<(&PropertyStore, &[&str])>,
) -> Subgraph {
    induce(g.num_vertices(), members, props, |u, out| {
        out.extend_from_slice(g.neighbors(u))
    })
}

fn bfs_ball_members(
    mut expand: impl FnMut(VertexId, &mut Vec<VertexId>),
    n: usize,
    seeds: &[VertexId],
    opts: &ExtractOptions,
) -> Vec<VertexId> {
    let mut depth: Vec<u32> = vec![u32::MAX; n];
    let mut order: Vec<VertexId> = Vec::new();
    let mut q = VecDeque::new();
    for &s in seeds {
        if depth[s as usize] == u32::MAX {
            depth[s as usize] = 0;
            order.push(s);
            q.push_back(s);
        }
    }
    let cap = if opts.max_vertices == 0 {
        usize::MAX
    } else {
        opts.max_vertices
    };
    let mut scratch = Vec::new();
    while let Some(u) = q.pop_front() {
        if order.len() >= cap {
            break;
        }
        let d = depth[u as usize];
        if d as usize >= opts.depth {
            continue;
        }
        scratch.clear();
        expand(u, &mut scratch);
        for &v in &scratch {
            if depth[v as usize] == u32::MAX {
                depth[v as usize] = d + 1;
                order.push(v);
                q.push_back(v);
                if order.len() >= cap {
                    break;
                }
            }
        }
    }
    order.sort_unstable();
    order
}

fn induce(
    n: usize,
    members: &[VertexId],
    props: Option<(&PropertyStore, &[&str])>,
    mut neighbors_of: impl FnMut(VertexId, &mut Vec<VertexId>),
) -> Subgraph {
    // Dense old->new map; members are few relative to n in the intended
    // use, but a dense array keeps the inner loop branch-cheap.
    let mut renumber: Vec<VertexId> = vec![VertexId::MAX; n];
    for (new_id, &old) in members.iter().enumerate() {
        renumber[old as usize] = new_id as VertexId;
    }
    let mut b = CsrBuilder::new(members.len());
    let mut scratch = Vec::new();
    let mut edges = Vec::new();
    for (new_u, &old_u) in members.iter().enumerate() {
        scratch.clear();
        neighbors_of(old_u, &mut scratch);
        for &old_v in &scratch {
            let new_v = renumber[old_v as usize];
            if new_v != VertexId::MAX {
                edges.push((new_u as VertexId, new_v));
            }
        }
    }
    b = b.edges(edges).dedup(true);
    let graph = b.build();
    let props = match props {
        Some((store, cols)) => store.project(members, cols),
        None => PropertyStore::new(members.len()),
    };
    Subgraph {
        graph,
        back_map: members.to_vec(),
        props,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn line_graph(n: usize) -> CsrGraph {
        CsrGraph::from_edges_undirected(n, &gen::path(n))
    }

    #[test]
    fn ball_depth_limits() {
        let g = line_graph(10);
        let opts = ExtractOptions {
            depth: 2,
            ..Default::default()
        };
        let sub = extract_ball(&g, &[5], &opts, None);
        // vertices 3..=7
        assert_eq!(sub.back_map, vec![3, 4, 5, 6, 7]);
        assert_eq!(sub.graph.num_vertices(), 5);
        // path structure preserved (undirected: 4 segments * 2)
        assert_eq!(sub.graph.num_edges(), 8);
    }

    #[test]
    fn ball_respects_vertex_cap() {
        let g = CsrGraph::from_edges_undirected(100, &gen::star(100));
        let opts = ExtractOptions {
            depth: 1,
            max_vertices: 10,
            ..Default::default()
        };
        let sub = extract_ball(&g, &[0], &opts, None);
        assert!(sub.num_vertices() <= 10);
        assert!(sub.back_map.contains(&0));
    }

    #[test]
    fn multiple_seeds_union() {
        let g = line_graph(20);
        let opts = ExtractOptions {
            depth: 1,
            ..Default::default()
        };
        let sub = extract_ball(&g, &[0, 19], &opts, None);
        assert_eq!(sub.back_map, vec![0, 1, 18, 19]);
        // The two balls are disconnected in the extraction.
        assert!(!sub.graph.has_edge(1, 2));
    }

    #[test]
    fn extraction_translates_ids() {
        let g = line_graph(10);
        let sub = extract_ball(
            &g,
            &[4],
            &ExtractOptions {
                depth: 1,
                ..Default::default()
            },
            None,
        );
        for v in 0..sub.num_vertices() as VertexId {
            let old = sub.to_source(v);
            assert!([3, 4, 5].contains(&old));
        }
    }

    #[test]
    fn property_projection_travels() {
        let g = line_graph(6);
        let mut props = PropertyStore::new(6);
        props.set_column_f64("score", &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5]);
        props.set_column_u64("junk", &[1, 1, 1, 1, 1, 1]);
        let sub = extract_ball(
            &g,
            &[2],
            &ExtractOptions {
                depth: 1,
                ..Default::default()
            },
            Some((&props, &["score"])),
        );
        assert_eq!(sub.back_map, vec![1, 2, 3]);
        assert_eq!(sub.props.get_f64("score", 0), Some(0.1));
        assert!(!sub.props.has_column("junk"));
    }

    #[test]
    fn shortest_path_on_line() {
        let g = line_graph(8);
        let p = shortest_path(&g, 1, 5).unwrap();
        assert_eq!(p, vec![1, 2, 3, 4, 5]);
        assert_eq!(shortest_path(&g, 3, 3).unwrap(), vec![3]);
    }

    #[test]
    fn shortest_path_unreachable() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(shortest_path(&g, 0, 3).is_none());
    }

    #[test]
    fn path_corridor_covers_path() {
        let g = line_graph(12);
        let sub = extract_path_corridor(
            &g,
            2,
            8,
            &ExtractOptions {
                depth: 1,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        // Path 2..=8 plus radius-1 fringe {1, 9}.
        assert_eq!(sub.back_map, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn dynamic_extraction_sees_live_edges_only() {
        let mut d = DynamicGraph::new(5);
        d.insert_undirected(&gen::path(5), 1);
        d.delete_edge(2, 3, 2);
        d.delete_edge(3, 2, 2);
        let sub = extract_ball_dynamic(
            &d,
            &[2],
            &ExtractOptions {
                depth: 3,
                ..Default::default()
            },
            None,
        );
        // 3 and 4 unreachable after the cut.
        assert_eq!(sub.back_map, vec![0, 1, 2]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let sub = induced_subgraph(&g, &[0, 1, 2], None);
        assert_eq!(sub.graph.num_edges(), 2); // 0->1, 1->2
        assert!(sub.graph.has_edge(0, 1));
        assert!(sub.graph.has_edge(1, 2));
    }
}
