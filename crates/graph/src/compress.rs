//! Delta-varint compressed adjacency (the bandwidth-lean CSR).
//!
//! The paper's E3 calibration names memory bandwidth as the binding
//! resource for graph kernels, and GAP-style systems respond by
//! shrinking the bytes the hot loops stream: each sorted neighbor row
//! is stored as a first-target varint followed by LEB128-encoded gaps.
//! RMAT/social rows have small gaps (heavy-tailed degree, clustered
//! ids), so rows that cost 4 bytes per entry in [`CsrGraph`] typically
//! compress 2-4x.
//!
//! [`CompressedCsr`] mirrors the `CsrGraph` read API — `degree`,
//! `neighbors`, `weighted_neighbors`, `in_neighbors` — but neighbor
//! reads go through a streaming per-row decoder ([`RowDecoder`]) instead
//! of a slice, and every row knows its exact encoded byte length so
//! kernels can book the bytes they actually moved (see
//! [`crate::adjacency::Adjacency::row_bytes`]). Weights stay
//! uncompressed (f32 deltas don't varint), parallel to edge order.
//!
//! Construction is a two-pass row-wise build on the PR 3 freeze
//! pattern: a parallel per-row size pass, a prefix sum, then a parallel
//! fill over disjoint byte slices. `to_csr()` round-trips exactly.

use crate::csr::CsrGraph;
use crate::{VertexId, Weight};

/// Edge-count threshold below which build passes run serially.
const PAR_LEAF_EDGES: usize = 8192;

/// Bytes needed to LEB128-encode `x`.
#[inline]
fn varint_len(x: u32) -> usize {
    // ceil(bits/7) with a 1-byte floor for x == 0.
    ((32 - x.leading_zeros()).max(1) as usize).div_ceil(7)
}

/// Append the LEB128 encoding of `x` to `out`; returns bytes written.
#[inline]
fn write_varint(out: &mut [u8], mut x: u32) -> usize {
    let mut i = 0;
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out[i] = byte;
            return i + 1;
        }
        out[i] = byte | 0x80;
        i += 1;
    }
}

/// Decode one LEB128 value from `bytes[*pos..]`, advancing `pos`.
#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> u32 {
    let mut x = 0u32;
    let mut shift = 0;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        x |= ((b & 0x7f) as u32) << shift;
        if b & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

/// One direction's compressed rows: CSR-shaped edge offsets for O(1)
/// degree, byte offsets into the shared varint buffer.
#[derive(Clone, Debug, Default)]
struct CompressedRows {
    edge_offsets: Vec<u64>,
    byte_offsets: Vec<u64>,
    bytes: Vec<u8>,
}

impl CompressedRows {
    /// Compress `rows(v)` (sorted target lists) for vertices `0..n`.
    fn build<'g>(
        n: usize,
        num_edges: usize,
        row: impl Fn(VertexId) -> &'g [VertexId] + Sync,
    ) -> Self {
        // Pass 1: exact encoded byte length per row.
        let sizes: Vec<u64> = if num_edges >= PAR_LEAF_EDGES {
            use rayon::prelude::*;
            (0..n as VertexId)
                .into_par_iter()
                .map(|v| row_encoded_len(row(v)))
                .collect()
        } else {
            (0..n as VertexId)
                .map(|v| row_encoded_len(row(v)))
                .collect()
        };

        let mut edge_offsets = vec![0u64; n + 1];
        let mut byte_offsets = vec![0u64; n + 1];
        for v in 0..n {
            edge_offsets[v + 1] = edge_offsets[v] + row(v as VertexId).len() as u64;
            byte_offsets[v + 1] = byte_offsets[v] + sizes[v];
        }

        // Pass 2: encode rows into disjoint slices of one buffer.
        let total = byte_offsets[n] as usize;
        let mut bytes = vec![0u8; total];
        fill_rows(&mut bytes, 0, n, &byte_offsets, &row);
        CompressedRows {
            edge_offsets,
            byte_offsets,
            bytes,
        }
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.edge_offsets[v + 1] - self.edge_offsets[v]) as usize
    }

    #[inline]
    fn row_bytes(&self, v: VertexId) -> u64 {
        let v = v as usize;
        self.byte_offsets[v + 1] - self.byte_offsets[v]
    }

    #[inline]
    fn decode(&self, v: VertexId) -> RowDecoder<'_> {
        let vi = v as usize;
        RowDecoder {
            bytes: &self.bytes[self.byte_offsets[vi] as usize..self.byte_offsets[vi + 1] as usize],
            pos: 0,
            remaining: self.degree(v),
            prev: 0,
        }
    }
}

/// Exact LEB128 byte length of one sorted row (first absolute, rest gaps).
fn row_encoded_len(row: &[VertexId]) -> u64 {
    let mut len = 0usize;
    let mut prev = 0u32;
    for (i, &t) in row.iter().enumerate() {
        len += varint_len(if i == 0 { t } else { t - prev });
        prev = t;
    }
    len as u64
}

/// Encode vertices `lo..hi` into the byte slice covering
/// `byte_offsets[lo]..byte_offsets[hi]`, splitting recursively so rayon
/// fills disjoint halves in parallel (same shape as the snapshot
/// freeze's `fill_rows`).
fn fill_rows<'g>(
    out: &mut [u8],
    lo: usize,
    hi: usize,
    byte_offsets: &[u64],
    row: &(impl Fn(VertexId) -> &'g [VertexId] + Sync),
) {
    let span = (byte_offsets[hi] - byte_offsets[lo]) as usize;
    if hi - lo <= 1 || span <= PAR_LEAF_EDGES {
        let base = byte_offsets[lo] as usize;
        for (v, &off) in byte_offsets.iter().enumerate().take(hi).skip(lo) {
            let mut pos = off as usize - base;
            let mut prev = 0u32;
            for (i, &t) in row(v as VertexId).iter().enumerate() {
                let delta = if i == 0 { t } else { t - prev };
                pos += write_varint(&mut out[pos..], delta);
                prev = t;
            }
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let cut = (byte_offsets[mid] - byte_offsets[lo]) as usize;
    let (left, right) = out.split_at_mut(cut);
    rayon::join(
        || fill_rows(left, lo, mid, byte_offsets, row),
        || fill_rows(right, mid, hi, byte_offsets, row),
    );
}

/// Streaming decoder over one compressed row; yields the row's sorted
/// targets without materializing them.
#[derive(Clone, Debug)]
pub struct RowDecoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: usize,
    prev: u32,
}

impl Iterator for RowDecoder<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.remaining == 0 {
            return None;
        }
        let delta = read_varint(self.bytes, &mut self.pos);
        // First value is absolute; prev starts at 0 so `prev + delta`
        // covers both cases only if the first target were a gap from 0 —
        // which is exactly how rows are encoded.
        self.prev += delta;
        self.remaining -= 1;
        Some(self.prev)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RowDecoder<'_> {}

/// A [`CsrGraph`]-compatible graph whose adjacency rows are stored as
/// delta-varint byte streams. Same vertices, same sorted rows, same
/// optional weights and reverse index — a fraction of the adjacency
/// bytes.
#[derive(Clone, Debug, Default)]
pub struct CompressedCsr {
    fwd: CompressedRows,
    weights: Option<Vec<Weight>>,
    rev: Option<Box<CompressedRows>>,
}

impl CompressedCsr {
    /// Compress a CSR snapshot. Rows (and the reverse index, if built)
    /// are encoded in parallel for large graphs; weights are carried
    /// uncompressed.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let fwd = CompressedRows::build(n, m, |v| g.neighbors(v));
        let rev = g
            .has_reverse()
            .then(|| Box::new(CompressedRows::build(n, m, |v| g.in_neighbors(v))));
        CompressedCsr {
            fwd,
            weights: g.raw_weights().map(<[Weight]>::to_vec),
            rev,
        }
    }

    /// Decompress back to a plain [`CsrGraph`]. Exact round-trip: the
    /// resulting offsets/targets/weights (and reverse index, if one was
    /// compressed) are bit-identical to the source graph's.
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut targets = Vec::with_capacity(self.num_edges());
        for v in 0..n as VertexId {
            targets.extend(self.neighbors(v));
        }
        let mut g =
            CsrGraph::from_parts(self.fwd.edge_offsets.clone(), targets, self.weights.clone());
        if let Some(rev) = &self.rev {
            let mut sources = Vec::with_capacity(self.num_edges());
            for v in 0..n as VertexId {
                sources.extend(rev.decode(v));
            }
            g.attach_reverse(rev.edge_offsets.clone(), sources);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.fwd.edge_offsets.len() - 1
    }

    /// Number of directed edges stored.
    #[inline]
    pub fn num_edges(&self) -> usize {
        *self.fwd.edge_offsets.last().unwrap_or(&0) as usize
    }

    /// Out-degree of `v` (O(1) — edge offsets are kept CSR-shaped).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.fwd.degree(v)
    }

    /// Streaming decoder over `v`'s sorted out-neighbors.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> RowDecoder<'_> {
        self.fwd.decode(v)
    }

    /// `(neighbor, weight)` pairs for `v`; weight defaults to 1.0 on
    /// unweighted graphs (same contract as `CsrGraph`).
    pub fn weighted_neighbors(&self, v: VertexId) -> WeightedRowDecoder<'_> {
        let vi = v as usize;
        let ws = self.weights.as_ref().map(|w| {
            &w[self.fwd.edge_offsets[vi] as usize..self.fwd.edge_offsets[vi + 1] as usize]
        });
        WeightedRowDecoder {
            targets: self.fwd.decode(v),
            weights: ws,
            idx: 0,
        }
    }

    /// Whether the graph carries edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Whether a reverse (in-edge) index was compressed.
    #[inline]
    pub fn has_reverse(&self) -> bool {
        self.rev.is_some()
    }

    /// In-degree of `v`. Requires the reverse index.
    ///
    /// # Panics
    /// Panics if the source graph had no reverse index.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.rev
            .as_ref()
            .expect("reverse index not built")
            .degree(v)
    }

    /// Streaming decoder over `v`'s sorted in-neighbors. Requires the
    /// reverse index.
    ///
    /// # Panics
    /// Panics if the source graph had no reverse index.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> RowDecoder<'_> {
        self.rev
            .as_ref()
            .expect("reverse index not built")
            .decode(v)
    }

    /// Encoded bytes of `v`'s out-row — the bytes a kernel actually
    /// streams scanning it.
    #[inline]
    pub fn row_bytes(&self, v: VertexId) -> u64 {
        self.fwd.row_bytes(v)
    }

    /// Encoded bytes of `v`'s in-row.
    #[inline]
    pub fn in_row_bytes(&self, v: VertexId) -> u64 {
        self.rev.as_ref().map_or(0, |r| r.row_bytes(v))
    }

    /// Total encoded adjacency bytes (forward + reverse rows).
    #[inline]
    pub fn adjacency_bytes(&self) -> u64 {
        self.fwd.bytes.len() as u64 + self.rev.as_ref().map_or(0, |r| r.bytes.len() as u64)
    }

    /// What the same adjacency costs in plain CSR form: 4 bytes per
    /// stored target (and per reverse source). The compression-ratio
    /// denominator.
    #[inline]
    pub fn plain_adjacency_bytes(&self) -> u64 {
        let m = self.num_edges() as u64;
        4 * if self.rev.is_some() { 2 * m } else { m }
    }

    /// Heap bytes held by this structure (adjacency, offsets, weights) —
    /// the snapshot cache's accounting hook.
    pub fn mem_bytes(&self) -> u64 {
        let offs = |r: &CompressedRows| 8 * (r.edge_offsets.len() + r.byte_offsets.len()) as u64;
        self.adjacency_bytes()
            + offs(&self.fwd)
            + self.rev.as_ref().map_or(0, |r| offs(r))
            + self.weights.as_ref().map_or(0, |w| 4 * w.len() as u64)
    }
}

/// Streaming `(target, weight)` decoder; weight defaults to 1.0 on
/// unweighted graphs.
#[derive(Clone, Debug)]
pub struct WeightedRowDecoder<'a> {
    targets: RowDecoder<'a>,
    weights: Option<&'a [Weight]>,
    idx: usize,
}

impl Iterator for WeightedRowDecoder<'_> {
    type Item = (VertexId, Weight);

    #[inline]
    fn next(&mut self) -> Option<(VertexId, Weight)> {
        let t = self.targets.next()?;
        let w = self.weights.map_or(1.0, |w| w[self.idx]);
        self.idx += 1;
        Some((t, w))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.targets.size_hint()
    }
}

impl ExactSizeIterator for WeightedRowDecoder<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;
    use crate::gen;

    fn assert_round_trip(g: &CsrGraph) {
        let c = CompressedCsr::from_csr(g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(c.is_weighted(), g.is_weighted());
        assert_eq!(c.has_reverse(), g.has_reverse());
        for v in g.vertices() {
            assert_eq!(c.degree(v), g.degree(v));
            let row: Vec<VertexId> = c.neighbors(v).collect();
            assert_eq!(row, g.neighbors(v), "row {v}");
            let wrow: Vec<(VertexId, Weight)> = c.weighted_neighbors(v).collect();
            let want: Vec<(VertexId, Weight)> = g.weighted_neighbors(v).collect();
            assert_eq!(wrow, want, "weighted row {v}");
            if g.has_reverse() {
                let irow: Vec<VertexId> = c.in_neighbors(v).collect();
                assert_eq!(irow, g.in_neighbors(v), "in-row {v}");
            }
        }
        let back = c.to_csr();
        assert_eq!(back.raw_offsets(), g.raw_offsets());
        assert_eq!(back.raw_targets(), g.raw_targets());
        assert_eq!(back.raw_weights(), g.raw_weights());
        if g.has_reverse() {
            for v in g.vertices() {
                assert_eq!(back.in_neighbors(v), g.in_neighbors(v));
            }
        }
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = [0u8; 5];
        for x in [0u32, 1, 127, 128, 16383, 16384, u32::MAX] {
            let n = write_varint(&mut buf, x);
            assert_eq!(n, varint_len(x), "len for {x}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), x);
            assert_eq!(pos, n);
        }
    }

    #[test]
    fn round_trips_simple_graphs() {
        assert_round_trip(&CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]));
        assert_round_trip(&CsrGraph::from_edges(0, &[]));
        assert_round_trip(&CsrGraph::from_edges(10, &[(0, 9)]));
    }

    #[test]
    fn round_trips_weighted_multigraph_with_self_loops() {
        // Parallel edges (gap 0 in the varint stream) and self-loops.
        let g = CsrBuilder::new(5)
            .weighted_edges([
                (0, 1, 2.0),
                (0, 1, 3.0),
                (1, 1, 0.5),
                (2, 4, 1.0),
                (4, 0, 9.0),
            ])
            .reverse(true)
            .build();
        assert_round_trip(&g);
    }

    #[test]
    fn round_trips_rmat_with_reverse() {
        let edges = gen::rmat(10, 12 << 10, gen::RmatParams::GRAPH500, 7);
        let g = CsrBuilder::new(1 << 10)
            .edges(edges.iter().copied())
            .symmetrize(true)
            .dedup(true)
            .drop_self_loops(true)
            .reverse(true)
            .build();
        assert_round_trip(&g);
    }

    #[test]
    fn rmat_rows_compress_at_least_2x() {
        let edges = gen::rmat(12, 12 << 12, gen::RmatParams::GRAPH500, 42);
        let g = CsrBuilder::new(1 << 12)
            .edges(edges.iter().copied())
            .symmetrize(true)
            .dedup(true)
            .drop_self_loops(true)
            .reverse(true)
            .build();
        let c = CompressedCsr::from_csr(&g);
        let ratio = c.plain_adjacency_bytes() as f64 / c.adjacency_bytes() as f64;
        assert!(ratio >= 2.0, "compression ratio only {ratio:.2}");
    }

    #[test]
    fn row_bytes_sum_to_total() {
        let edges = gen::rmat(9, 12 << 9, gen::RmatParams::GRAPH500, 3);
        let g = CsrBuilder::new(1 << 9)
            .edges(edges.iter().copied())
            .dedup(true)
            .reverse(true)
            .build();
        let c = CompressedCsr::from_csr(&g);
        let fwd: u64 = g.vertices().map(|v| c.row_bytes(v)).sum();
        let rev: u64 = g.vertices().map(|v| c.in_row_bytes(v)).sum();
        assert_eq!(fwd + rev, c.adjacency_bytes());
        assert!(fwd > 0);
    }
}
