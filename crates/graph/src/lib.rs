//! # ga-graph — graph substrate
//!
//! The storage layer underneath the whole reproduction of Kogge's
//! *"Graph Analytics: Complexity, Scalability, and Architectures"*
//! (IPDPSW 2017).
//!
//! The paper's canonical processing flow (its Fig. 2) needs two kinds of
//! graph storage:
//!
//! * a **persistent, mutable property graph** that absorbs streaming
//!   updates — [`DynamicGraph`] (a STINGER-inspired blocked adjacency
//!   structure with timestamps and lazy deletion) together with a
//!   [`PropertyStore`] holding arbitrarily many named, typed vertex
//!   property columns ("thousands of properties per vertex" in the
//!   paper's words), and
//! * **frozen, compact snapshots** that batch analytics run against —
//!   [`CsrGraph`], an immutable compressed-sparse-row graph with O(1)
//!   neighbor slices, optional weights and optional reverse (in-edge)
//!   index.
//!
//! On top of those sit deterministic workload generators ([`gen`]),
//! subgraph extraction with property projection ([`sub`]), plain-text and
//! binary I/O ([`io`]), and whole-graph statistics ([`stats`]).
//!
//! ```
//! use ga_graph::{gen, CsrGraph};
//!
//! // A Graph500-style RMAT graph: 2^10 vertices, 16 edges per vertex.
//! let edges = gen::rmat(10, 16 << 10, gen::RmatParams::GRAPH500, 42);
//! let g = CsrGraph::from_edges(1 << 10, &edges);
//! assert_eq!(g.num_vertices(), 1 << 10);
//! assert!(g.num_edges() > 0);
//! ```

#![warn(missing_docs)]

pub mod adjacency;
pub mod compress;
pub mod counters;
pub mod csr;
pub mod dynamic;
pub mod faults;
pub mod frontier;
pub mod gen;
pub mod io;
pub mod par;
pub mod props;
pub mod snapshot;
pub mod stats;
pub mod sub;
pub mod tier;

pub use adjacency::Adjacency;
pub use compress::CompressedCsr;
pub use counters::{OpCounters, OpSnapshot};
pub use csr::{CsrBuilder, CsrGraph};
pub use dynamic::{DynamicGraph, EdgeRecord};
pub use frontier::Frontier;
pub use par::Parallelism;
pub use props::{PropValue, PropertyStore};
pub use snapshot::{SnapshotCache, SnapshotEpoch, SnapshotStats};
pub use sub::{ExtractOptions, Subgraph};
pub use tier::{SegmentStore, TierConfig, TierStats, TieredCsr};

/// Dense vertex identifier.
///
/// Vertices are numbered `0..num_vertices`. A `u32` keeps adjacency
/// arrays half the size of `usize` on 64-bit targets, which matters for
/// the memory-bandwidth-bound kernels this workspace is about; graphs of
/// more than 2^32 vertices are out of scope for a laptop-scale
/// reproduction.
pub type VertexId = u32;

/// Edge weight type used by the weighted kernels (SSSP, APSP, ...).
pub type Weight = f32;

/// Timestamp attached to streamed edges (paper §II: "edges may have
/// time-stamps in addition to properties").
pub type Timestamp = u64;

/// A directed edge `(src, dst)`.
pub type Edge = (VertexId, VertexId);

/// A directed weighted edge `(src, dst, weight)`.
pub type WeightedEdge = (VertexId, VertexId, Weight);
