//! STINGER-inspired dynamic property graph.
//!
//! The paper's streaming path (Fig. 2, left side) needs a persistent
//! graph that absorbs "an incoming stream of individually small-scale
//! updates, such as additions or deletions to vertices or edges, or
//! modification of their properties". [`DynamicGraph`] provides that:
//!
//! * per-vertex adjacency stored in growable blocks (amortized O(1)
//!   insert, no global re-allocation storms),
//! * **timestamps** on every edge (paper §II: "edges may have time-stamps
//!   in addition to properties"),
//! * **lazy deletion** — deleted slots are tombstoned and reused by later
//!   inserts, with an explicit [`DynamicGraph::compact`] sweep,
//! * cheap [`DynamicGraph::snapshot`] freezes into a [`CsrGraph`] for the
//!   batch analytics on the right side of Fig. 2.

use crate::{CsrBuilder, CsrGraph, Edge, Timestamp, VertexId, Weight};

/// One live or tombstoned directed edge slot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeRecord {
    /// Target vertex.
    pub dst: VertexId,
    /// Edge weight (1.0 when unweighted updates are applied).
    pub weight: Weight,
    /// Time the edge was inserted or last modified.
    pub timestamp: Timestamp,
    /// Tombstone flag; set by `delete_edge`, cleared on slot reuse.
    pub deleted: bool,
}

/// A mutable directed multigraph-free graph with timestamps and lazy
/// deletion.
///
/// Out-of-range vertex ids never panic: inserts grow the vertex space on
/// demand, deletes report [`ApplyResult::Missing`], and queries return
/// empty/`None` — the hardening the streaming ingest path relies on.
///
/// ```
/// use ga_graph::DynamicGraph;
/// let mut g = DynamicGraph::new(3);
/// g.insert_edge(0, 1, 1.0, 10);
/// g.insert_edge(1, 2, 1.0, 11);
/// assert_eq!(g.num_live_edges(), 2);
/// g.delete_edge(0, 1, 12);
/// assert_eq!(g.num_live_edges(), 1);
/// assert!(!g.has_edge(0, 1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct DynamicGraph {
    adj: Vec<Vec<EdgeRecord>>,
    live_edges: usize,
    tombstones: usize,
    last_update: Timestamp,
    /// Monotone structural-change counter; bumped by every mutation that
    /// can alter a row's snapshot content.
    version: u64,
    /// `row_version[u]` = [`Self::version`] value when row `u` last
    /// changed — the dirty-row index [`crate::snapshot::SnapshotCache`]
    /// consults to rebuild only what moved since the previous freeze.
    row_version: Vec<u64>,
}

/// Equality is over graph *content* (slots, tombstones, timestamps,
/// counters) — the version counters are snapshot-cache metadata and two
/// graphs that hold identical content compare equal regardless of the
/// mutation history that produced them (recovery relies on this).
impl PartialEq for DynamicGraph {
    fn eq(&self, other: &Self) -> bool {
        self.adj == other.adj
            && self.live_edges == other.live_edges
            && self.tombstones == other.tombstones
            && self.last_update == other.last_update
    }
}

/// Result of applying a single edge update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyResult {
    /// A brand-new edge was created.
    Inserted,
    /// The edge already existed; weight/timestamp were refreshed.
    Updated,
    /// A tombstoned or absent edge was deleted (no-op delete).
    Missing,
    /// An existing edge was tombstoned.
    Deleted,
}

impl DynamicGraph {
    /// Create a graph with `num_vertices` vertices and no edges.
    pub fn new(num_vertices: usize) -> Self {
        DynamicGraph {
            adj: vec![Vec::new(); num_vertices],
            live_edges: 0,
            tombstones: 0,
            last_update: 0,
            version: 0,
            row_version: vec![0; num_vertices],
        }
    }

    /// Build from an existing snapshot (all edges timestamped `ts`).
    pub fn from_csr(g: &CsrGraph, ts: Timestamp) -> Self {
        let mut d = DynamicGraph::new(g.num_vertices());
        for u in g.vertices() {
            for (v, w) in g.weighted_neighbors(u) {
                d.insert_edge(u, v, w, ts);
            }
        }
        d
    }

    /// Number of vertices (including isolated ones).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of live (non-tombstoned) directed edges.
    #[inline]
    pub fn num_live_edges(&self) -> usize {
        self.live_edges
    }

    /// Number of tombstoned slots awaiting compaction.
    #[inline]
    pub fn num_tombstones(&self) -> usize {
        self.tombstones
    }

    /// Timestamp of the most recent structural update.
    #[inline]
    pub fn last_update(&self) -> Timestamp {
        self.last_update
    }

    /// Current value of the structural-change counter. Strictly
    /// increases with every content mutation; equal versions mean the
    /// graph (and therefore any snapshot of it) is unchanged.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// True iff row `u`'s content may have changed after the moment the
    /// graph's [`Self::version`] was `since` (out-of-range rows report
    /// `false` — they did not exist, the caller handles growth).
    #[inline]
    pub fn row_changed_since(&self, u: VertexId, since: u64) -> bool {
        self.row_version
            .get(u as usize)
            .is_some_and(|&rv| rv > since)
    }

    /// Number of rows whose content changed after version `since` — the
    /// delta size a snapshot rebuild will face.
    pub fn dirty_rows_since(&self, since: u64) -> usize {
        self.row_version.iter().filter(|&&rv| rv > since).count()
    }

    /// Bump the change counter and stamp row `u` with it.
    #[inline]
    fn touch_row(&mut self, u: VertexId) {
        self.version += 1;
        self.row_version[u as usize] = self.version;
    }

    /// Grow the row space to `new_len`, stamping the fresh rows dirty so
    /// delta rebuilds notice the graph widened.
    fn grow_rows(&mut self, new_len: usize) {
        self.version += 1;
        self.adj.resize_with(new_len, Vec::new);
        self.row_version.resize(new_len, self.version);
    }

    /// Append `count` fresh isolated vertices, returning the id of the
    /// first one. Covers the paper's "less frequently new vertices" case.
    pub fn add_vertices(&mut self, count: usize) -> VertexId {
        let first = self.adj.len() as VertexId;
        self.grow_rows(self.adj.len() + count);
        first
    }

    /// Insert or refresh the directed edge `u -> v`.
    ///
    /// Returns [`ApplyResult::Inserted`] for a new edge,
    /// [`ApplyResult::Updated`] when the edge existed (its weight and
    /// timestamp are overwritten — the paper's "updating some properties
    /// associated with an existing edge"). Endpoints beyond the current
    /// vertex range grow the graph instead of panicking; callers that
    /// need a hard bound enforce it upstream (see the stream engine's
    /// quarantine).
    pub fn insert_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: Weight,
        ts: Timestamp,
    ) -> ApplyResult {
        self.last_update = self.last_update.max(ts);
        let hi = u.max(v) as usize;
        if hi >= self.adj.len() {
            self.grow_rows(hi + 1);
        }
        self.touch_row(u);
        let row = &mut self.adj[u as usize];
        let mut free: Option<usize> = None;
        for (i, rec) in row.iter_mut().enumerate() {
            if rec.dst == v {
                if rec.deleted {
                    rec.deleted = false;
                    rec.weight = weight;
                    rec.timestamp = ts;
                    self.live_edges += 1;
                    self.tombstones -= 1;
                    return ApplyResult::Inserted;
                }
                rec.weight = weight;
                rec.timestamp = ts;
                return ApplyResult::Updated;
            }
            if rec.deleted && free.is_none() {
                free = Some(i);
            }
        }
        let rec = EdgeRecord {
            dst: v,
            weight,
            timestamp: ts,
            deleted: false,
        };
        match free {
            Some(i) => {
                row[i] = rec;
                self.tombstones -= 1;
            }
            None => row.push(rec),
        }
        self.live_edges += 1;
        ApplyResult::Inserted
    }

    /// Tombstone the directed edge `u -> v` if live. Out-of-range
    /// endpoints are a no-op ([`ApplyResult::Missing`]), not a panic.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId, ts: Timestamp) -> ApplyResult {
        self.last_update = self.last_update.max(ts);
        if u as usize >= self.adj.len() {
            return ApplyResult::Missing;
        }
        for i in 0..self.adj[u as usize].len() {
            let rec = &mut self.adj[u as usize][i];
            if rec.dst == v && !rec.deleted {
                rec.deleted = true;
                rec.timestamp = ts;
                self.live_edges -= 1;
                self.tombstones += 1;
                self.touch_row(u);
                return ApplyResult::Deleted;
            }
        }
        ApplyResult::Missing
    }

    /// Remove a vertex by tombstoning every incident edge (both
    /// directions). The id remains allocated; degree drops to zero.
    pub fn delete_vertex(&mut self, v: VertexId, ts: Timestamp) -> usize {
        let mut removed = 0;
        let out: Vec<VertexId> = self.neighbors(v).map(|r| r.dst).collect();
        for u in out {
            if self.delete_edge(v, u, ts) == ApplyResult::Deleted {
                removed += 1;
            }
        }
        for u in 0..self.num_vertices() as VertexId {
            if u != v && self.delete_edge(u, v, ts) == ApplyResult::Deleted {
                removed += 1;
            }
        }
        removed
    }

    /// True if a live edge `u -> v` exists (false for out-of-range `u`).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.row(u).iter().any(|r| r.dst == v && !r.deleted)
    }

    /// The live record for `u -> v`, if any.
    pub fn edge(&self, u: VertexId, v: VertexId) -> Option<&EdgeRecord> {
        self.row(u).iter().find(|r| r.dst == v && !r.deleted)
    }

    /// Live out-degree of `v` (0 for out-of-range ids).
    pub fn degree(&self, v: VertexId) -> usize {
        self.row(v).iter().filter(|r| !r.deleted).count()
    }

    /// Iterate live out-edge records of `v` (empty for out-of-range ids).
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = &EdgeRecord> {
        self.row(v).iter().filter(|r| !r.deleted)
    }

    /// Adjacency row of `v`, empty when `v` is out of range.
    #[inline]
    fn row(&self, v: VertexId) -> &[EdgeRecord] {
        self.adj.get(v as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate live out-neighbor ids of `v`.
    pub fn neighbor_ids(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.neighbors(v).map(|r| r.dst)
    }

    /// Iterate all live edges as `(src, dst, weight, timestamp)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight, Timestamp)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, row)| {
            row.iter()
                .filter(|r| !r.deleted)
                .map(move |r| (u as VertexId, r.dst, r.weight, r.timestamp))
        })
    }

    /// Physically remove tombstones. Returns slots reclaimed.
    pub fn compact(&mut self) -> usize {
        let mut reclaimed = 0;
        for u in 0..self.adj.len() {
            let row = &mut self.adj[u];
            let before = row.len();
            row.retain(|r| !r.deleted);
            let removed = before - row.len();
            if removed > 0 {
                reclaimed += removed;
                self.touch_row(u as VertexId);
            }
        }
        self.tombstones = 0;
        reclaimed
    }

    /// Freeze the live edges into an immutable weighted [`CsrGraph`]
    /// snapshot — the hand-off from the streaming side of Fig. 2 to the
    /// batch side.
    ///
    /// Runs the row-wise freeze ([`crate::snapshot::freeze`]): offsets
    /// come from a counting pass over per-row live counts and each row
    /// is sorted independently (in parallel for large graphs), so no
    /// `(u, v, w)` tuple vector is materialized and no global
    /// `O(E log E)` sort runs. Output is bit-identical to the legacy
    /// [`CsrBuilder`] path ([`Self::snapshot_legacy`]).
    pub fn snapshot(&self) -> CsrGraph {
        crate::snapshot::freeze(self, crate::par::Parallelism::Auto)
    }

    /// Freeze only edges with `timestamp >= since` — a temporal window
    /// view for "what changed recently" analytics. Routed through the
    /// same row-wise freeze as [`Self::snapshot`].
    pub fn snapshot_since(&self, since: Timestamp) -> CsrGraph {
        crate::snapshot::freeze_since(self, since, crate::par::Parallelism::Auto)
    }

    /// The original tuple-materializing, globally-sorting snapshot path.
    /// Kept as the reference implementation the proptest suite and the
    /// snapshot benchmarks compare the row-wise and delta paths against;
    /// prefer [`Self::snapshot`].
    pub fn snapshot_legacy(&self) -> CsrGraph {
        CsrBuilder::new(self.num_vertices())
            .weighted_edges(self.edges().map(|(u, v, w, _)| (u, v, w)))
            .build()
    }

    /// Legacy-path counterpart of [`Self::snapshot_since`] (reference
    /// for equivalence tests).
    pub fn snapshot_since_legacy(&self, since: Timestamp) -> CsrGraph {
        CsrBuilder::new(self.num_vertices())
            .weighted_edges(
                self.edges()
                    .filter(|&(_, _, _, ts)| ts >= since)
                    .map(|(u, v, w, _)| (u, v, w)),
            )
            .build()
    }

    /// Apply the edge list of `g` as undirected inserts (helper for tests
    /// and generators).
    pub fn insert_undirected(&mut self, edges: &[Edge], ts: Timestamp) {
        for &(u, v) in edges {
            self.insert_edge(u, v, 1.0, ts);
            self.insert_edge(v, u, 1.0, ts);
        }
    }

    /// Raw adjacency rows *including tombstones*, in slot order — the
    /// checkpoint codec serializes these verbatim so a recovered graph is
    /// bit-identical (same slot layout, same tombstones) to the original.
    pub(crate) fn raw_rows(&self) -> &[Vec<EdgeRecord>] {
        &self.adj
    }

    /// The raw slot row of vertex `v` *including tombstones*, in slot
    /// order. Sharded routers use this to lift owned rows out of a shard
    /// verbatim, so a merged graph can be compared slot-for-slot against
    /// an unsharded run. Empty for out-of-range ids (a shard that never
    /// saw an edge near `v` simply has no row for it).
    pub fn row_slots(&self, v: VertexId) -> &[EdgeRecord] {
        self.row(v)
    }

    /// Assemble a graph from raw slot rows (tombstones included);
    /// live/tombstone counts are recomputed, versions reset to zero.
    /// Inverse of reading every row via [`Self::row_slots`].
    pub fn from_rows(adj: Vec<Vec<EdgeRecord>>, last_update: Timestamp) -> Self {
        Self::from_raw_parts(adj, last_update)
    }

    /// Rebuild a graph from checkpointed rows; live/tombstone counts are
    /// recomputed from the records.
    pub(crate) fn from_raw_parts(adj: Vec<Vec<EdgeRecord>>, last_update: Timestamp) -> Self {
        let mut live_edges = 0;
        let mut tombstones = 0;
        for row in &adj {
            for rec in row {
                if rec.deleted {
                    tombstones += 1;
                } else {
                    live_edges += 1;
                }
            }
        }
        let rows = adj.len();
        DynamicGraph {
            adj,
            live_edges,
            tombstones,
            last_update,
            version: 0,
            row_version: vec![0; rows],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_update_delete_cycle() {
        let mut g = DynamicGraph::new(3);
        assert_eq!(g.insert_edge(0, 1, 1.0, 1), ApplyResult::Inserted);
        assert_eq!(g.insert_edge(0, 1, 2.0, 2), ApplyResult::Updated);
        assert_eq!(g.edge(0, 1).unwrap().weight, 2.0);
        assert_eq!(g.edge(0, 1).unwrap().timestamp, 2);
        assert_eq!(g.delete_edge(0, 1, 3), ApplyResult::Deleted);
        assert_eq!(g.delete_edge(0, 1, 4), ApplyResult::Missing);
        assert_eq!(g.num_live_edges(), 0);
        assert_eq!(g.num_tombstones(), 1);
    }

    #[test]
    fn tombstone_reuse() {
        let mut g = DynamicGraph::new(3);
        g.insert_edge(0, 1, 1.0, 1);
        g.delete_edge(0, 1, 2);
        // Re-inserting the same edge reuses the slot in place.
        assert_eq!(g.insert_edge(0, 1, 5.0, 3), ApplyResult::Inserted);
        assert_eq!(g.num_tombstones(), 0);
        assert_eq!(g.num_live_edges(), 1);
        // Different target reuses a *free* slot.
        g.delete_edge(0, 1, 4);
        g.insert_edge(0, 2, 1.0, 5);
        assert_eq!(g.adj_len(0), 1);
    }

    impl DynamicGraph {
        fn adj_len(&self, v: VertexId) -> usize {
            self.adj[v as usize].len()
        }
    }

    #[test]
    fn degree_ignores_tombstones() {
        let mut g = DynamicGraph::new(4);
        g.insert_edge(0, 1, 1.0, 1);
        g.insert_edge(0, 2, 1.0, 1);
        g.insert_edge(0, 3, 1.0, 1);
        g.delete_edge(0, 2, 2);
        assert_eq!(g.degree(0), 2);
        let ids: Vec<_> = g.neighbor_ids(0).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn vertex_deletion_clears_both_directions() {
        let mut g = DynamicGraph::new(3);
        g.insert_edge(0, 1, 1.0, 1);
        g.insert_edge(1, 2, 1.0, 1);
        g.insert_edge(2, 1, 1.0, 1);
        let removed = g.delete_vertex(1, 5);
        assert_eq!(removed, 3);
        assert_eq!(g.num_live_edges(), 0);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn add_vertices_extends() {
        let mut g = DynamicGraph::new(2);
        let first = g.add_vertices(3);
        assert_eq!(first, 2);
        assert_eq!(g.num_vertices(), 5);
        g.insert_edge(4, 0, 1.0, 1);
        assert!(g.has_edge(4, 0));
    }

    #[test]
    fn compact_reclaims() {
        let mut g = DynamicGraph::new(2);
        for i in 0..10 {
            g.insert_edge(0, 1, i as f32, i);
            g.delete_edge(0, 1, i);
        }
        assert_eq!(g.num_tombstones(), 1);
        assert_eq!(g.compact(), 1);
        assert_eq!(g.num_tombstones(), 0);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn snapshot_matches_live_edges() {
        let mut g = DynamicGraph::new(4);
        g.insert_edge(0, 1, 2.0, 1);
        g.insert_edge(1, 2, 3.0, 2);
        g.insert_edge(2, 3, 4.0, 3);
        g.delete_edge(1, 2, 4);
        let s = g.snapshot();
        assert_eq!(s.num_edges(), 2);
        assert!(s.has_edge(0, 1));
        assert!(!s.has_edge(1, 2));
        assert_eq!(s.edge_weight(2, 3), Some(4.0));
    }

    #[test]
    fn snapshot_since_windows() {
        let mut g = DynamicGraph::new(3);
        g.insert_edge(0, 1, 1.0, 10);
        g.insert_edge(1, 2, 1.0, 20);
        let recent = g.snapshot_since(15);
        assert_eq!(recent.num_edges(), 1);
        assert!(recent.has_edge(1, 2));
    }

    #[test]
    fn from_csr_round_trip() {
        let csr = CsrGraph::from_weighted_edges(3, &[(0, 1, 5.0), (1, 2, 6.0)]);
        let dynamic = DynamicGraph::from_csr(&csr, 99);
        assert_eq!(dynamic.num_live_edges(), 2);
        assert_eq!(dynamic.edge(0, 1).unwrap().timestamp, 99);
        let back = dynamic.snapshot();
        assert_eq!(back.edge_weight(0, 1), Some(5.0));
        assert_eq!(back.edge_weight(1, 2), Some(6.0));
    }

    #[test]
    fn out_of_range_ids_never_panic() {
        let mut g = DynamicGraph::new(2);
        // Queries on unknown vertices are empty, not a crash.
        assert!(!g.has_edge(9, 0));
        assert!(g.edge(9, 0).is_none());
        assert_eq!(g.degree(9), 0);
        assert_eq!(g.neighbors(9).count(), 0);
        assert_eq!(g.neighbor_ids(9).count(), 0);
        // Deletes of unknown vertices are missing, not a crash.
        assert_eq!(g.delete_edge(9, 0, 1), ApplyResult::Missing);
        assert_eq!(g.delete_edge(0, 9, 1), ApplyResult::Missing);
        // Inserts grow the vertex space.
        assert_eq!(g.insert_edge(5, 1, 1.0, 2), ApplyResult::Inserted);
        assert_eq!(g.num_vertices(), 6);
        assert!(g.has_edge(5, 1));
        assert_eq!(g.insert_edge(0, 7, 1.0, 3), ApplyResult::Inserted);
        assert_eq!(g.num_vertices(), 8);
    }

    #[test]
    fn equality_sees_tombstones_and_timestamps() {
        let build = |delete: bool| {
            let mut g = DynamicGraph::new(3);
            g.insert_edge(0, 1, 1.0, 1);
            g.insert_edge(1, 2, 2.0, 2);
            if delete {
                g.delete_edge(0, 1, 3);
            }
            g
        };
        assert_eq!(build(false), build(false));
        assert_ne!(build(false), build(true));
    }

    #[test]
    fn last_update_tracks_max() {
        let mut g = DynamicGraph::new(2);
        g.insert_edge(0, 1, 1.0, 7);
        g.delete_edge(0, 1, 3); // out-of-order timestamp doesn't regress
        assert_eq!(g.last_update(), 7);
    }
}
