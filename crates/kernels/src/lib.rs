//! # ga-kernels — batch graph-analytics kernels
//!
//! One module per kernel row of the paper's Fig. 1 ("The Spectrum of
//! Existing kernels"):
//!
//! | Fig. 1 row | module |
//! |---|---|
//! | BFS: Breadth First Search | [`bfs`] (top-down, bottom-up, direction-optimizing) |
//! | SSSP: Single Source Shortest Path | [`sssp`] (Dijkstra, Bellman–Ford, delta-stepping) |
//! | APSP: All Pairs Shortest Path | [`apsp`] |
//! | CCW / CCS: Connected Components | [`cc`] (union-find, label propagation; Tarjan, Kosaraju) |
//! | PR: PageRank | [`pagerank`] |
//! | BC: Betweenness Centrality | [`bc`] (Brandes exact + sampled) |
//! | CCO: Clustering Coefficients | [`cluster`] |
//! | GTC / TL: Triangle Counting & Listing | [`triangles`] |
//! | Jaccard | [`jaccard`] |
//! | CD: Community Detection | [`community`] (label propagation, Louvain) |
//! | GC: Graph Contraction | [`contract`] |
//! | GP: Graph Partitioning | [`partition`] |
//! | MIS: Maximally Independent Set | [`mis`] |
//! | SI: Subgraph Isomorphism | [`subiso`] (VF2-style) |
//! | Search for "Largest" | [`topk`] |
//! | (seed selection support) | [`kcore`] |
//!
//! The streaming (S-column) forms live in the `ga-stream` crate; the
//! linear-algebra formulations (Kepner–Gilbert) live in `ga-linalg` and
//! are cross-checked against these implementations in tests.
//!
//! All kernels operate on [`ga_graph::CsrGraph`] snapshots. Kernels whose
//! mathematical definition assumes an undirected graph (triangles,
//! clustering, Jaccard, communities, MIS, k-core) expect a symmetrized
//! snapshot (`CsrGraph::from_edges_undirected` or a symmetric stream's
//! `DynamicGraph::snapshot`) and say so in their docs.

#![warn(missing_docs)]

pub mod apsp;
pub mod bc;
pub mod bfs;
pub mod cc;
pub mod cluster;
pub mod coloring;
pub mod community;
pub mod contract;
pub mod ctx;
pub mod jaccard;
pub mod kcore;
pub mod mis;
pub mod pagerank;
pub mod partition;
pub mod scatter;
pub mod sssp;
pub mod subiso;
pub mod topk;
pub mod triangles;
pub mod union_find;

pub use ctx::{Budget, Completion, KernelCtx, Parallelism};
pub use union_find::UnionFind;

/// Distance value used by SSSP results; `f32::INFINITY` marks unreachable.
pub const INF: f32 = f32::INFINITY;

/// Depth marker for unreached vertices in BFS results.
pub const UNREACHED: u32 = u32::MAX;
