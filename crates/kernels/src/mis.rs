//! Maximal independent set (Fig. 1 row "MIS").
//!
//! [`luby`] is the classic parallel-style randomized rounds algorithm
//! (deterministic here via seeded priorities); [`greedy`] is the
//! sequential min-id sweep. Both return a *maximal* (not maximum) set.
//! Expects an undirected snapshot.

use ga_graph::{CsrGraph, VertexId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Check that `set` is independent and maximal in `g`.
pub fn validate_mis(g: &CsrGraph, set: &[bool]) -> Result<(), String> {
    for u in g.vertices() {
        if set[u as usize] {
            for &v in g.neighbors(u) {
                if set[v as usize] {
                    return Err(format!("edge {u}-{v} inside the set"));
                }
            }
        } else {
            let covered = g.neighbors(u).iter().any(|&v| set[v as usize]);
            if !covered {
                return Err(format!("vertex {u} could be added (not maximal)"));
            }
        }
    }
    Ok(())
}

/// Luby's algorithm with seeded random priorities: each round, every
/// live vertex whose priority beats all live neighbors joins the set;
/// joined vertices and their neighbors leave the graph.
pub fn luby(g: &CsrGraph, seed: u64) -> Vec<bool> {
    let n = g.num_vertices();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut in_set = vec![false; n];
    let mut live = vec![true; n];
    let mut remaining: usize = n;
    while remaining > 0 {
        let priority: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let mut winners = Vec::new();
        for v in 0..n as VertexId {
            if !live[v as usize] {
                continue;
            }
            let pv = (priority[v as usize], v);
            let beaten = g
                .neighbors(v)
                .iter()
                .any(|&u| live[u as usize] && (priority[u as usize], u) > pv);
            if !beaten {
                winners.push(v);
            }
        }
        for v in winners {
            if !live[v as usize] {
                continue; // a neighbor won earlier this round
            }
            in_set[v as usize] = true;
            live[v as usize] = false;
            remaining -= 1;
            for &u in g.neighbors(v) {
                if live[u as usize] {
                    live[u as usize] = false;
                    remaining -= 1;
                }
            }
        }
    }
    in_set
}

/// Greedy min-id MIS: sweep vertices in id order, add if no neighbor is
/// in the set already.
pub fn greedy(g: &CsrGraph) -> Vec<bool> {
    let n = g.num_vertices();
    let mut in_set = vec![false; n];
    let mut blocked = vec![false; n];
    for v in 0..n as VertexId {
        if blocked[v as usize] {
            continue;
        }
        in_set[v as usize] = true;
        for &u in g.neighbors(v) {
            blocked[u as usize] = true;
        }
    }
    in_set
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::gen;

    #[test]
    fn greedy_on_path() {
        let g = CsrGraph::from_edges_undirected(5, &gen::path(5));
        let s = greedy(&g);
        assert_eq!(s, vec![true, false, true, false, true]);
        validate_mis(&g, &s).unwrap();
    }

    #[test]
    fn complete_graph_single_member() {
        let g = CsrGraph::from_edges_undirected(6, &gen::complete(6));
        for s in [greedy(&g), luby(&g, 1)] {
            assert_eq!(s.iter().filter(|&&x| x).count(), 1);
            validate_mis(&g, &s).unwrap();
        }
    }

    #[test]
    fn star_picks_leaves_or_center() {
        let g = CsrGraph::from_edges_undirected(6, &gen::star(6));
        let s = luby(&g, 7);
        validate_mis(&g, &s).unwrap();
        // Either {center} or all leaves.
        if s[0] {
            assert_eq!(s.iter().filter(|&&x| x).count(), 1);
        } else {
            assert_eq!(s.iter().filter(|&&x| x).count(), 5);
        }
    }

    #[test]
    fn luby_valid_on_random_graphs() {
        for seed in 0..5 {
            let edges = gen::erdos_renyi(120, 400, seed);
            let g = CsrGraph::from_edges_undirected(120, &edges);
            let s = luby(&g, seed * 13 + 1);
            validate_mis(&g, &s).unwrap();
        }
    }

    #[test]
    fn isolated_vertices_always_in() {
        let g = CsrGraph::from_edges_undirected(5, &[(0, 1)]);
        for s in [greedy(&g), luby(&g, 3)] {
            assert!(s[2] && s[3] && s[4]);
            validate_mis(&g, &s).unwrap();
        }
    }

    #[test]
    fn luby_deterministic_per_seed() {
        let edges = gen::erdos_renyi(60, 200, 2);
        let g = CsrGraph::from_edges_undirected(60, &edges);
        assert_eq!(luby(&g, 5), luby(&g, 5));
    }
}
