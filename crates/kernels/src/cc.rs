//! Connected components (Fig. 1 rows "CCW" and "CCS").
//!
//! Weakly connected components via [`wcc_union_find`] (sequential DSU,
//! deterministic labels) and [`wcc_label_prop`] (iterative min-label
//! propagation, the Pregel/parallel formulation — rayon-parallel hook
//! point). Strongly connected components via [`scc_tarjan`] (iterative,
//! no recursion, safe on deep graphs) and [`scc_kosaraju`].
//!
//! All return a label vector where `label[v]` identifies v's component;
//! labels are normalized to the minimum vertex id in the component so
//! independent algorithms can be compared bit-for-bit.

use crate::ctx::{Budget, KernelCtx};
use crate::UnionFind;
use ga_graph::{Adjacency, CsrGraph, Frontier, VertexId};
use rayon::prelude::*;

/// Component labelling.
#[derive(Clone, Debug, PartialEq)]
pub struct Components {
    /// `label[v]` = min vertex id in v's component.
    pub label: Vec<VertexId>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Size of each component keyed by label.
    pub fn sizes(&self) -> Vec<(VertexId, usize)> {
        let mut counts: std::collections::BTreeMap<VertexId, usize> = Default::default();
        for &l in &self.label {
            *counts.entry(l).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// The label of the largest component (ties: smaller label).
    pub fn largest(&self) -> Option<(VertexId, usize)> {
        self.sizes()
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Members of component `label`, sorted.
    pub fn members(&self, label: VertexId) -> Vec<VertexId> {
        self.label
            .iter()
            .enumerate()
            .filter_map(|(v, &l)| (l == label).then_some(v as VertexId))
            .collect()
    }
}

fn normalize(mut label: Vec<VertexId>) -> Components {
    // Map every label to the min vertex id in its class.
    let n = label.len();
    let mut min_of: Vec<VertexId> = (0..n as VertexId).collect();
    for (v, &l) in label.iter().enumerate() {
        if (v as VertexId) < min_of[l as usize] {
            min_of[l as usize] = v as VertexId;
        }
    }
    let mut seen = vec![false; n];
    let mut count = 0;
    for v in 0..n {
        label[v] = min_of[label[v] as usize];
        if !seen[label[v] as usize] {
            seen[label[v] as usize] = true;
            count += 1;
        }
    }
    Components { label, count }
}

/// WCC by union-find; edge direction ignored.
pub fn wcc_union_find<G: Adjacency>(g: &G) -> Components {
    let n = g.num_vertices();
    let mut uf = UnionFind::new(n);
    for u in 0..n as VertexId {
        for v in g.neighbors(u) {
            uf.union(u, v);
        }
    }
    let label = uf.labels();
    let count = uf.num_sets();
    Components { label, count }
}

/// WCC by iterative min-label propagation (needs symmetric edges to
/// converge to true WCC on directed inputs; pass an undirected snapshot
/// or a graph with a reverse index).
pub fn wcc_label_prop<G: Adjacency>(g: &G) -> Components {
    normalize(label_prop_serial(g, &Budget::unlimited()).0)
}

/// Per-sweep cost of label propagation — the formula `wcc_with` flushes
/// into the counters and the budget checks consult.
fn sweep_cost<G: Adjacency>(g: &G) -> u64 {
    let m = g.num_edges() as u64 * if g.has_reverse() { 2 } else { 1 };
    2 * m + g.num_vertices() as u64
}

/// Activate everyone who reads `u`'s label next sweep: out-neighbors
/// plus in-neighbors (when a reverse index exists; without one, label
/// propagation already requires symmetric edges, so out covers both).
fn activate_readers<G: Adjacency>(g: &G, u: VertexId, next: &mut Frontier) {
    for v in g.neighbors(u) {
        next.insert(v);
    }
    if g.has_reverse() {
        for v in g.in_neighbors(u) {
            next.insert(v);
        }
    }
}

/// Serial Gauss–Seidel min-label sweeps; returns raw labels and sweep
/// count. Consults `budget` at sweep boundaries: a budget stop leaves a
/// valid coarser partition (labels propagated as far as the completed
/// sweeps reached). Sweeps after the first run over a [`Frontier`] of
/// *affected* vertices — those adjacent to a label that changed last
/// sweep — instead of rescanning the whole graph; vertices outside the
/// set provably cannot improve, so the fixpoint is unchanged.
fn label_prop_serial<G: Adjacency>(g: &G, budget: &Budget) -> (Vec<VertexId>, usize) {
    let n = g.num_vertices();
    let cost = sweep_cost(g);
    let mut label: Vec<VertexId> = (0..n as VertexId).collect();
    let mut sweeps = 0;
    let mut active = Frontier::new(n);
    let mut next_active = Frontier::new(n);
    for v in 0..n as VertexId {
        active.insert(v);
    }
    while !active.is_empty() {
        if budget.check(sweeps as u64 * cost).is_partial() {
            break;
        }
        sweeps += 1;
        next_active.clear();
        for u in active.iter_ascending() {
            let mut best = label[u as usize];
            for v in g.neighbors(u) {
                best = best.min(label[v as usize]);
            }
            if g.has_reverse() {
                for v in g.in_neighbors(u) {
                    best = best.min(label[v as usize]);
                }
            }
            if best < label[u as usize] {
                label[u as usize] = best;
                activate_readers(g, u, &mut next_active);
            }
        }
        std::mem::swap(&mut active, &mut next_active);
    }
    (label, sweeps)
}

/// WCC by **parallel** min-label propagation: Jacobi sweeps (every
/// vertex reads the previous sweep's labels, all vertices update
/// concurrently). Takes more sweeps than the Gauss–Seidel serial engine
/// but converges to the same unique fixpoint — `label[v]` = min vertex
/// id in v's component — so after `normalize` the labels are
/// bit-identical to [`wcc_label_prop`]'s.
pub fn wcc_label_prop_parallel<G: Adjacency>(g: &G) -> Components {
    normalize(label_prop_parallel(g, &Budget::unlimited()).0)
}

/// Parallel Jacobi min-label sweeps; returns raw labels and sweep count.
/// Budget handling mirrors [`label_prop_serial`].
///
/// Sweeps after the first scan only the [`Frontier`] of affected
/// vertices, split by degree sum across the pool. An inactive vertex's
/// neighborhood is unchanged since it last settled, so its full-Jacobi
/// update would be a no-op: per-sweep labels — and therefore the sweep
/// count — are identical to the dense formulation's.
fn label_prop_parallel<G: Adjacency>(g: &G, budget: &Budget) -> (Vec<VertexId>, usize) {
    let n = g.num_vertices();
    let cost = sweep_cost(g);
    let mut label: Vec<VertexId> = (0..n as VertexId).collect();
    let mut sweeps = 0;
    let mut active = Frontier::new(n);
    let mut next_active = Frontier::new(n);
    for v in 0..n as VertexId {
        active.insert(v);
    }
    while !active.is_empty() {
        if budget.check(sweeps as u64 * cost).is_partial() {
            break;
        }
        sweeps += 1;
        // Gather improving updates against the previous sweep's labels
        // (reads only), then commit serially.
        let chunks = active.degree_chunks(g, rayon::current_num_threads() * 4);
        let updates: Vec<(VertexId, VertexId)> = chunks
            .par_iter()
            .flat_map_iter(|&(s, e)| {
                active.as_slice()[s..e].iter().filter_map(|&u| {
                    let mut best = label[u as usize];
                    for v in g.neighbors(u) {
                        best = best.min(label[v as usize]);
                    }
                    if g.has_reverse() {
                        for v in g.in_neighbors(u) {
                            best = best.min(label[v as usize]);
                        }
                    }
                    (best < label[u as usize]).then_some((u, best))
                })
            })
            .collect();
        next_active.clear();
        for &(u, l) in &updates {
            label[u as usize] = l;
        }
        for &(u, _) in &updates {
            activate_readers(g, u, &mut next_active);
        }
        std::mem::swap(&mut active, &mut next_active);
    }
    (label, sweeps)
}

/// Instrumented, dispatching WCC: runs [`wcc_label_prop`] or
/// [`wcc_label_prop_parallel`] per the context's [`crate::Parallelism`]
/// and flushes the propagation's cost into the context counters. Labels
/// are identical across both engines (and match [`wcc_union_find`] on
/// symmetric graphs).
pub fn wcc_with<G: Adjacency>(g: &G, ctx: &KernelCtx) -> Components {
    let (label, sweeps) = if ctx.parallelism.use_parallel(g.num_edges()) {
        label_prop_parallel(g, &ctx.budget)
    } else {
        label_prop_serial(g, &ctx.budget)
    };
    // Each sweep scans every out-row (both directions when a reverse
    // index exists) — charged at the representation's actual adjacency
    // bytes — plus one label load + min (~2 ops, 4 bytes) per edge and a
    // label read/write (~16 bytes) per vertex. Dense-sweep upper bound:
    // frontier'd sweeps touch a subset.
    let nv = g.num_vertices() as u64;
    let m = g.num_edges() as u64 * if g.has_reverse() { 2 } else { 1 };
    let adj_bytes: u64 = (0..nv as VertexId)
        .map(|v| {
            g.row_bytes(v)
                + if g.has_reverse() {
                    g.in_row_bytes(v)
                } else {
                    0
                }
        })
        .sum();
    let s = sweeps as u64;
    ctx.counters
        .flush(s * (2 * m + nv), s * (adj_bytes + 4 * m + 16 * nv), s * m);
    normalize(label)
}

/// Number of initial out-neighbors each vertex links to during the
/// cheap subgraph-sampling phase of [`wcc_afforest`].
const AFFOREST_NEIGHBOR_ROUNDS: usize = 2;

/// Upper bound on the fixed-stride component samples taken to identify
/// the (probable) largest intermediate component in [`wcc_afforest`].
const AFFOREST_SAMPLES: usize = 1024;

/// WCC in the Afforest / Shiloach–Vishkin family: union-find with
/// subgraph sampling (Sutton et al., IPDPS'18). Phase 1 links every
/// vertex to its first `AFFOREST_NEIGHBOR_ROUNDS` out-neighbors —
/// on skewed graphs this already assembles most of the giant
/// component. Phase 2 samples component roots at a fixed stride and
/// picks the most frequent one. Phase 3 finishes only the vertices
/// *outside* that component, skipping the giant component's (already
/// connected) internal edges entirely.
///
/// Fully deterministic: sampling is fixed-stride, not randomized, and
/// labels come from [`UnionFind::labels`] (min vertex id per set), so
/// the result is bit-identical to [`wcc_union_find`].
///
/// Same contract as [`wcc_label_prop`]: finds true weak components
/// only when edges are symmetric or a reverse index is present
/// (skipped giant-component vertices rely on the other endpoint
/// seeing the edge from its side).
pub fn wcc_afforest<G: Adjacency>(g: &G) -> Components {
    let n = g.num_vertices();
    let mut uf = UnionFind::new(n);

    // Phase 1: cheap partial linking.
    for r in 0..AFFOREST_NEIGHBOR_ROUNDS {
        for u in 0..n as VertexId {
            if let Some(v) = g.neighbors(u).nth(r) {
                uf.union(u, v);
            }
        }
    }

    // Phase 2: find the most frequent root among fixed-stride samples
    // (ties break toward the smaller root, keeping this deterministic).
    let skip_root = if n > 0 {
        let stride = (n / AFFOREST_SAMPLES.min(n)).max(1);
        let mut counts: std::collections::BTreeMap<VertexId, usize> = Default::default();
        let mut v = 0usize;
        while v < n {
            *counts.entry(uf.find(v as VertexId)).or_default() += 1;
            v += stride;
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(root, _)| root)
    } else {
        None
    };

    // Phase 3: finish everything outside the sampled giant component.
    // An edge {u,v} with u inside and v outside is still honored: v is
    // not skipped and sees the edge via symmetric adjacency or the
    // reverse index. The working set lives in a [`Frontier`] so the
    // membership snapshot and the scan are separate passes (extra
    // vertices merged into the giant component mid-scan only re-union
    // already-connected pairs, which is a no-op).
    let mut rest = Frontier::new(n);
    for u in 0..n as VertexId {
        if skip_root != Some(uf.find(u)) {
            rest.insert(u);
        }
    }
    for u in rest.iter() {
        for v in g.neighbors(u).skip(AFFOREST_NEIGHBOR_ROUNDS) {
            uf.union(u, v);
        }
        if g.has_reverse() {
            for v in g.in_neighbors(u) {
                uf.union(u, v);
            }
        }
    }

    let count = uf.num_sets();
    Components {
        label: uf.labels(),
        count,
    }
}

/// Tarjan's SCC, iterative formulation (explicit stack; no recursion).
pub fn scc_tarjan(g: &CsrGraph) -> Components {
    let n = g.num_vertices();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<VertexId> = Vec::new();
    let mut label: Vec<VertexId> = (0..n as VertexId).collect();
    let mut next_index = 0u32;

    // Work stack frames: (vertex, next-neighbor-position).
    let mut work: Vec<(VertexId, usize)> = Vec::new();
    for root in 0..n as VertexId {
        if index[root as usize] != UNSET {
            continue;
        }
        work.push((root, 0));
        while let Some(&mut (v, ref mut pos)) = work.last_mut() {
            if *pos == 0 {
                index[v as usize] = next_index;
                lowlink[v as usize] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v as usize] = true;
            }
            let nbrs = g.neighbors(v);
            let mut descended = false;
            while *pos < nbrs.len() {
                let w = nbrs[*pos];
                *pos += 1;
                if index[w as usize] == UNSET {
                    work.push((w, 0));
                    descended = true;
                    break;
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            }
            if descended {
                continue;
            }
            // v finished.
            if lowlink[v as usize] == index[v as usize] {
                // Pop the SCC rooted at v.
                loop {
                    let w = stack.pop().unwrap();
                    on_stack[w as usize] = false;
                    label[w as usize] = v;
                    if w == v {
                        break;
                    }
                }
            }
            work.pop();
            if let Some(&mut (parent, _)) = work.last_mut() {
                lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
            }
        }
    }
    normalize(label)
}

/// Kosaraju's SCC: forward finish-order DFS, then reverse-graph sweep.
pub fn scc_kosaraju(g: &CsrGraph) -> Components {
    let n = g.num_vertices();
    let gt = g.transpose();
    // Iterative DFS computing finish order on g.
    let mut visited = vec![false; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut stack: Vec<(VertexId, usize)> = Vec::new();
    for root in 0..n as VertexId {
        if visited[root as usize] {
            continue;
        }
        visited[root as usize] = true;
        stack.push((root, 0));
        while let Some(&mut (v, ref mut pos)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            if *pos < nbrs.len() {
                let w = nbrs[*pos];
                *pos += 1;
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    // Sweep transpose in reverse finish order.
    let mut label: Vec<VertexId> = (0..n as VertexId).collect();
    let mut assigned = vec![false; n];
    let mut dfs: Vec<VertexId> = Vec::new();
    for &root in order.iter().rev() {
        if assigned[root as usize] {
            continue;
        }
        dfs.push(root);
        assigned[root as usize] = true;
        while let Some(v) = dfs.pop() {
            label[v as usize] = root;
            for &w in gt.neighbors(v) {
                if !assigned[w as usize] {
                    assigned[w as usize] = true;
                    dfs.push(w);
                }
            }
        }
    }
    normalize(label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::{gen, CsrBuilder};

    #[test]
    fn wcc_two_islands() {
        let g = CsrGraph::from_edges_undirected(6, &[(0, 1), (1, 2), (3, 4)]);
        let c = wcc_union_find(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.label, vec![0, 0, 0, 3, 3, 5]);
        assert_eq!(c.largest(), Some((0, 3)));
        assert_eq!(c.members(3), vec![3, 4]);
    }

    #[test]
    fn wcc_engines_agree_on_random() {
        for seed in 0..4 {
            let edges = gen::erdos_renyi(200, 220, seed);
            let g = CsrGraph::from_edges_undirected(200, &edges);
            let a = wcc_union_find(&g);
            let b = wcc_label_prop(&g);
            assert_eq!(a.label, b.label, "seed {seed}");
            assert_eq!(a.count, b.count);
        }
    }

    #[test]
    fn wcc_label_prop_directed_with_reverse() {
        // Directed chain; label prop needs reverse edges to see ancestors.
        let g = CsrBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 3)])
            .reverse(true)
            .build();
        let c = wcc_label_prop(&g);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn scc_cycle_plus_tail() {
        // 0 -> 1 -> 2 -> 0 cycle, 2 -> 3 tail
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        for c in [scc_tarjan(&g), scc_kosaraju(&g)] {
            assert_eq!(c.count, 2);
            assert_eq!(c.label[0], c.label[1]);
            assert_eq!(c.label[1], c.label[2]);
            assert_ne!(c.label[3], c.label[0]);
        }
    }

    #[test]
    fn scc_dag_all_singletons() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let c = scc_tarjan(&g);
        assert_eq!(c.count, 4);
    }

    #[test]
    fn scc_engines_agree_on_random() {
        for seed in 10..14 {
            let edges = gen::erdos_renyi(150, 300, seed);
            let g = CsrGraph::from_edges(150, &edges);
            let a = scc_tarjan(&g);
            let b = scc_kosaraju(&g);
            assert_eq!(a.label, b.label, "seed {seed}");
        }
    }

    #[test]
    fn scc_refines_wcc() {
        // Every SCC is inside one WCC.
        let edges = gen::erdos_renyi(100, 150, 77);
        let g = CsrGraph::from_edges(100, &edges);
        let und = CsrGraph::from_edges_undirected(100, &edges);
        let scc = scc_tarjan(&g);
        let wcc = wcc_union_find(&und);
        for v in g.vertices() {
            for u in g.vertices() {
                if scc.label[u as usize] == scc.label[v as usize] {
                    assert_eq!(wcc.label[u as usize], wcc.label[v as usize]);
                }
            }
        }
        assert!(scc.count >= wcc.count);
    }

    #[test]
    fn deep_path_no_stack_overflow() {
        // 100k-vertex directed path: recursion-based Tarjan would blow the
        // stack; the iterative one must not.
        let n = 100_000;
        let g = CsrGraph::from_edges(n, &gen::path(n));
        let c = scc_tarjan(&g);
        assert_eq!(c.count, n);
    }

    #[test]
    fn zero_budget_stops_label_prop_before_any_sweep() {
        let g = CsrGraph::from_edges_undirected(50, &gen::path(50));
        let mut ctx = KernelCtx::serial();
        ctx.budget = Budget::ops(0);
        let partial = wcc_with(&g, &ctx);
        // No sweeps ran: every vertex still carries its own label — a
        // valid (maximally coarse) partition refinement, just unmerged.
        assert_eq!(partial.count, 50);
        assert!(ctx.budget.hits() >= 1, "exhaustion must be tallied");
        // And the same graph collapses fully without a budget.
        assert_eq!(wcc_with(&g, &KernelCtx::serial()).count, 1);
    }

    #[test]
    fn budget_cuts_parallel_jacobi_sweeps() {
        // A path needs ~n Jacobi sweeps; one sweep only merges pairs.
        let g = CsrGraph::from_edges_undirected(64, &gen::path(64));
        let mut ctx = KernelCtx::parallel();
        ctx.budget = Budget::ops(1); // one sweep affordable
        let partial = wcc_with(&g, &ctx);
        let full = wcc_with(&g, &KernelCtx::parallel());
        assert!(ctx.budget.hits() >= 1);
        assert!(partial.count > full.count, "partial must be coarser");
    }

    #[test]
    fn compressed_adjacency_is_bit_identical() {
        let edges = gen::erdos_renyi(512, 1200, 3);
        let g = CsrGraph::from_edges_undirected(512, &edges);
        let c = ga_graph::CompressedCsr::from_csr(&g);
        let a = wcc_with(&g, &KernelCtx::serial());
        let b = wcc_with(&c, &KernelCtx::serial());
        assert_eq!(a.label, b.label);
        assert_eq!(a.count, b.count);
        let ap = wcc_with(&g, &KernelCtx::parallel());
        let bp = wcc_with(&c, &KernelCtx::parallel());
        assert_eq!(ap.label, bp.label);
        assert_eq!(a.label, ap.label, "serial and parallel engines agree");
        assert_eq!(wcc_afforest(&g).label, wcc_afforest(&c).label);
        assert_eq!(wcc_union_find(&g).label, wcc_afforest(&g).label);
        // Compressed runs book fewer adjacency bytes, same op count.
        let (pc, cc) = (KernelCtx::serial(), KernelCtx::serial());
        wcc_with(&g, &pc);
        wcc_with(&c, &cc);
        let (ps, cs) = (pc.snapshot(), cc.snapshot());
        assert_eq!(ps.cpu_ops, cs.cpu_ops);
        assert!(
            cs.mem_bytes < ps.mem_bytes,
            "compressed books fewer bytes: {} vs {}",
            cs.mem_bytes,
            ps.mem_bytes
        );
    }

    #[test]
    fn empty_and_singleton() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(wcc_union_find(&g).count, 0);
        let g1 = CsrGraph::from_edges(1, &[]);
        assert_eq!(scc_tarjan(&g1).count, 1);
    }
}

/// The condensation of a directed graph: one vertex per SCC, edges
/// between distinct components (deduplicated). The result is a DAG —
/// the standard "higher level view" of directed reachability structure.
pub fn condensation(g: &CsrGraph) -> (Components, CsrGraph) {
    let scc = scc_tarjan(g);
    // Dense-renumber SCC labels in sorted order.
    let mut distinct: Vec<VertexId> = scc.label.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let dense = |l: VertexId| distinct.binary_search(&l).unwrap() as VertexId;
    let mut edges = Vec::new();
    for (u, v) in g.edges() {
        let (cu, cv) = (dense(scc.label[u as usize]), dense(scc.label[v as usize]));
        if cu != cv {
            edges.push((cu, cv));
        }
    }
    let dag = CsrGraph::from_edges(distinct.len(), &edges);
    (scc, dag)
}

#[cfg(test)]
mod condensation_tests {
    use super::*;
    use ga_graph::gen;

    fn is_dag(g: &CsrGraph) -> bool {
        // A graph is a DAG iff every SCC is a singleton and loop-free.
        scc_tarjan(g).count == g.num_vertices()
    }

    #[test]
    fn condenses_cycle_plus_tail() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let (scc, dag) = condensation(&g);
        assert_eq!(scc.count, 2);
        assert_eq!(dag.num_vertices(), 2);
        assert_eq!(dag.num_edges(), 1);
        assert!(is_dag(&dag));
    }

    #[test]
    fn condensation_always_acyclic() {
        for seed in 0..4 {
            let edges = gen::erdos_renyi(80, 240, seed);
            let g = CsrGraph::from_edges(80, &edges);
            let (scc, dag) = condensation(&g);
            assert!(is_dag(&dag), "seed {seed}");
            assert_eq!(dag.num_vertices(), scc.count);
        }
    }

    #[test]
    fn dag_condensation_is_identity_shaped() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let (scc, dag) = condensation(&g);
        assert_eq!(scc.count, 4);
        assert_eq!(dag.num_vertices(), 4);
        assert_eq!(dag.num_edges(), 4);
    }

    #[test]
    fn parallel_cross_edges_deduplicated() {
        // Two SCCs with two parallel cross edges.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (1, 3)]);
        let (_, dag) = condensation(&g);
        assert_eq!(dag.num_vertices(), 2);
        assert_eq!(dag.num_edges(), 1);
    }
}
