//! Betweenness centrality (Fig. 1 row "BC").
//!
//! [`brandes`] is the exact O(nm) algorithm (unweighted); [`sampled`]
//! approximates by accumulating from a random subset of sources — the
//! form large-scale benchmarks (Graph500 BC, Graph Challenge) actually
//! run, and the one whose streaming "top-n changed" variant lives in
//! `ga-stream`.

use ga_graph::{CsrGraph, VertexId};
use rand::seq::index::sample;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::collections::VecDeque;

/// One source's dependency accumulation (Brandes inner loop).
fn accumulate_from(g: &CsrGraph, s: VertexId, bc: &mut [f64]) {
    let n = g.num_vertices();
    let mut sigma = vec![0.0f64; n]; // shortest-path counts
    let mut depth = vec![i64::MAX; n];
    let mut preds: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut q = VecDeque::new();
    sigma[s as usize] = 1.0;
    depth[s as usize] = 0;
    q.push_back(s);
    while let Some(u) = q.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            let dv = depth[u as usize] + 1;
            if depth[v as usize] == i64::MAX {
                depth[v as usize] = dv;
                q.push_back(v);
            }
            if depth[v as usize] == dv {
                sigma[v as usize] += sigma[u as usize];
                preds[v as usize].push(u);
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    for &w in order.iter().rev() {
        for &u in &preds[w as usize] {
            delta[u as usize] += sigma[u as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
        }
        if w != s {
            bc[w as usize] += delta[w as usize];
        }
    }
}

/// Exact Brandes betweenness (directed; for undirected inputs pass a
/// symmetrized graph and halve the scores via [`normalize_undirected`]).
/// Parallel over sources.
pub fn brandes(g: &CsrGraph) -> Vec<f64> {
    let n = g.num_vertices();
    (0..n as VertexId)
        .into_par_iter()
        .fold(
            || vec![0.0f64; n],
            |mut acc, s| {
                accumulate_from(g, s, &mut acc);
                acc
            },
        )
        .reduce(
            || vec![0.0f64; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Sampled approximation: accumulate from `num_samples` random sources
/// and scale by `n / num_samples`.
pub fn sampled(g: &CsrGraph, num_samples: usize, seed: u64) -> Vec<f64> {
    let n = g.num_vertices();
    if num_samples >= n {
        return brandes(g);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sources: Vec<VertexId> = sample(&mut rng, n, num_samples)
        .into_iter()
        .map(|i| i as VertexId)
        .collect();
    let mut bc = sources
        .par_iter()
        .fold(
            || vec![0.0f64; n],
            |mut acc, &s| {
                accumulate_from(g, s, &mut acc);
                acc
            },
        )
        .reduce(
            || vec![0.0f64; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
    let scale = n as f64 / num_samples as f64;
    for x in &mut bc {
        *x *= scale;
    }
    bc
}

/// Halve scores for symmetrized graphs (each undirected path counted in
/// both directions).
pub fn normalize_undirected(bc: &mut [f64]) {
    for x in bc {
        *x /= 2.0;
    }
}

/// Top-`k` vertices by centrality, descending (ties by id) — the
/// membership set the streaming form watches.
pub fn top_k(bc: &[f64], k: usize) -> Vec<(VertexId, f64)> {
    let mut v: Vec<(VertexId, f64)> = bc
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as VertexId, x))
        .collect();
    v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::gen;

    #[test]
    fn path_center_is_most_between() {
        let g = CsrGraph::from_edges_undirected(5, &gen::path(5));
        let mut bc = brandes(&g);
        normalize_undirected(&mut bc);
        // Path 0-1-2-3-4: bc = [0, 3, 4, 3, 0].
        assert_eq!(bc, vec![0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_center_carries_all() {
        let g = CsrGraph::from_edges_undirected(5, &gen::star(5));
        let mut bc = brandes(&g);
        normalize_undirected(&mut bc);
        // Center: all C(4,2) = 6 leaf pairs route through it.
        assert_eq!(bc[0], 6.0);
        for &leaf_bc in &bc[1..5] {
            assert_eq!(leaf_bc, 0.0);
        }
    }

    #[test]
    fn cycle_symmetry() {
        let g = CsrGraph::from_edges_undirected(6, &gen::ring(6));
        let bc = brandes(&g);
        for w in &bc {
            assert!((w - bc[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn shortcut_reduces_betweenness() {
        // Path 0-1-2 vs path plus direct edge 0-2.
        let a = CsrGraph::from_edges_undirected(3, &[(0, 1), (1, 2)]);
        let b = CsrGraph::from_edges_undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(brandes(&a)[1] > brandes(&b)[1]);
        assert_eq!(brandes(&b)[1], 0.0);
    }

    #[test]
    fn sampled_full_equals_exact() {
        let edges = gen::erdos_renyi(30, 120, 3);
        let g = CsrGraph::from_edges_undirected(30, &edges);
        let exact = brandes(&g);
        let s = sampled(&g, 30, 1);
        for (x, y) in exact.iter().zip(&s) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_correlates_with_exact() {
        let edges = gen::barabasi_albert(150, 3, 4);
        let g = CsrGraph::from_edges_undirected(150, &edges);
        let exact = brandes(&g);
        let approx = sampled(&g, 50, 7);
        // The exact top-1 should be in the approx top-5 on a hubby graph.
        let top_exact = top_k(&exact, 1)[0].0;
        let approx_top: Vec<_> = top_k(&approx, 5).iter().map(|&(v, _)| v).collect();
        assert!(
            approx_top.contains(&top_exact),
            "exact top {top_exact} not in approx top-5 {approx_top:?}"
        );
    }

    #[test]
    fn directed_asymmetric_counts() {
        // 0 -> 1 -> 2 only: vertex 1 is on the single 0->2 path.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let bc = brandes(&g);
        assert_eq!(bc, vec![0.0, 1.0, 0.0]);
    }
}
