//! Community detection (Fig. 1 row "CD").
//!
//! [`label_propagation`] is the cheap near-linear pass; [`louvain`] is
//! greedy modularity maximization with multi-level contraction (built on
//! the [`crate::contract`] kernel, demonstrating the kernel composition
//! the paper's §III argues real pipelines need). [`modularity`] scores
//! any assignment. All expect an undirected snapshot.

use crate::contract::contract_by_label;
use ga_graph::{CsrGraph, VertexId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Community assignment: `label[v]` identifies v's community.
#[derive(Clone, Debug)]
pub struct CommunityResult {
    /// Per-vertex community label (not necessarily dense).
    pub label: Vec<VertexId>,
    /// Number of distinct communities.
    pub count: usize,
    /// Modularity of the assignment.
    pub modularity: f64,
}

fn count_labels(label: &[VertexId]) -> usize {
    let mut seen: Vec<VertexId> = label.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Newman modularity Q of an assignment over an undirected snapshot.
///
/// Q = (1/2m) Σ_ij [A_ij - k_i k_j / 2m] δ(c_i, c_j), computed per
/// community from internal-edge and degree sums.
pub fn modularity(g: &CsrGraph, label: &[VertexId]) -> f64 {
    let two_m = g.num_edges() as f64; // symmetrized: num_edges = 2m
    if two_m == 0.0 {
        return 0.0;
    }
    use std::collections::HashMap;
    let mut internal: HashMap<VertexId, f64> = HashMap::new();
    let mut degree: HashMap<VertexId, f64> = HashMap::new();
    for u in g.vertices() {
        let cu = label[u as usize];
        *degree.entry(cu).or_default() += g.degree(u) as f64;
        for &v in g.neighbors(u) {
            if label[v as usize] == cu {
                *internal.entry(cu).or_default() += 1.0;
            }
        }
    }
    let mut q = 0.0;
    for (&c, &deg) in &degree {
        let inside = internal.get(&c).copied().unwrap_or(0.0);
        q += inside / two_m - (deg / two_m).powi(2);
    }
    q
}

/// Asynchronous label propagation: each vertex repeatedly adopts the
/// most frequent label among its neighbors (ties -> smallest label),
/// visiting vertices in a seeded random order until a sweep changes
/// nothing or `max_sweeps` elapse.
pub fn label_propagation(g: &CsrGraph, seed: u64, max_sweeps: usize) -> CommunityResult {
    let n = g.num_vertices();
    let mut label: Vec<VertexId> = (0..n as VertexId).collect();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut counts: std::collections::HashMap<VertexId, usize> = Default::default();
    for _ in 0..max_sweeps {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &v in &order {
            if g.degree(v) == 0 {
                continue;
            }
            counts.clear();
            for &u in g.neighbors(v) {
                *counts.entry(label[u as usize]).or_default() += 1;
            }
            let best = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .map(|(&l, _)| l)
                .unwrap();
            if best != label[v as usize] {
                label[v as usize] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let q = modularity(g, &label);
    CommunityResult {
        count: count_labels(&label),
        modularity: q,
        label,
    }
}

/// One Louvain level: greedy single-vertex moves maximizing modularity
/// gain until no move improves. Returns the local assignment (dense
/// labels) and whether anything moved.
fn louvain_level(g: &CsrGraph, weight: &[f64]) -> (Vec<VertexId>, bool) {
    let n = g.num_vertices();
    // Weighted degree per vertex and total weight.
    let wdeg: Vec<f64> = (0..n as VertexId)
        .map(|v| {
            g.neighbors(v)
                .iter()
                .enumerate()
                .map(|(i, _)| edge_w(g, weight, v, i))
                .sum()
        })
        .collect();
    let two_m: f64 = wdeg.iter().sum();
    if two_m == 0.0 {
        return ((0..n as VertexId).collect(), false);
    }
    let mut label: Vec<VertexId> = (0..n as VertexId).collect();
    let mut comm_deg = wdeg.clone(); // total degree per community
    let mut moved_any = false;
    let mut improved = true;
    let mut link_to: std::collections::HashMap<VertexId, f64> = Default::default();
    while improved {
        improved = false;
        for v in 0..n as VertexId {
            let cv = label[v as usize];
            // Weights from v to each neighboring community.
            link_to.clear();
            for (i, &u) in g.neighbors(v).iter().enumerate() {
                if u != v {
                    *link_to.entry(label[u as usize]).or_default() += edge_w(g, weight, v, i);
                }
            }
            // Remove v from its community.
            comm_deg[cv as usize] -= wdeg[v as usize];
            let mut best = (cv, 0.0f64);
            for (&c, &w_vc) in &link_to {
                let gain = w_vc - comm_deg[c as usize] * wdeg[v as usize] / two_m;
                if gain > best.1 + 1e-12 || (c == cv && gain >= best.1) {
                    best = (c, gain);
                }
            }
            comm_deg[best.0 as usize] += wdeg[v as usize];
            if best.0 != cv {
                label[v as usize] = best.0;
                improved = true;
                moved_any = true;
            }
        }
    }
    (label, moved_any)
}

#[inline]
fn edge_w(g: &CsrGraph, weight: &[f64], v: VertexId, i: usize) -> f64 {
    let off = g.raw_offsets()[v as usize] as usize + i;
    weight[off]
}

/// Multi-level Louvain. `max_levels` bounds the contraction depth.
/// Returns labels in the *original* graph's vertex space.
pub fn louvain(g: &CsrGraph, max_levels: usize) -> CommunityResult {
    let mut current = g.clone();
    let mut weight: Vec<f64> = vec![1.0; current.num_edges()];
    // map[v] = community of original vertex v in the current level.
    let mut map: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    for _ in 0..max_levels {
        let (label, moved) = louvain_level(&current, &weight);
        if !moved {
            break;
        }
        // Contract: communities become vertices; parallel edges merge
        // with summed weights (self-loops keep internal weight).
        let contraction = contract_by_label(&current, &label, &weight);
        for m in &mut map {
            *m = contraction.dense_label[label[*m as usize] as usize];
        }
        current = contraction.graph;
        weight = contraction.weight;
        if current.num_vertices() <= 1 {
            break;
        }
    }
    let q = modularity(g, &map);
    CommunityResult {
        count: count_labels(&map),
        modularity: q,
        label: map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::gen;

    fn two_cliques() -> CsrGraph {
        // Two K4s joined by one edge.
        let mut e = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                e.push((u, v));
                e.push((u + 4, v + 4));
            }
        }
        e.push((0, 4));
        CsrGraph::from_edges_undirected(8, &e)
    }

    #[test]
    fn modularity_of_perfect_split() {
        let g = two_cliques();
        let split = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let together = vec![0; 8];
        assert!(modularity(&g, &split) > modularity(&g, &together));
        assert!(modularity(&g, &split) > 0.3);
    }

    #[test]
    fn modularity_single_community_zero_ish() {
        let g = two_cliques();
        let q = modularity(&g, &[0; 8]);
        assert!(q.abs() < 1e-9);
    }

    #[test]
    fn label_prop_finds_cliques() {
        let g = two_cliques();
        let r = label_propagation(&g, 3, 50);
        assert_eq!(r.label[0], r.label[1]);
        assert_eq!(r.label[1], r.label[2]);
        assert_eq!(r.label[4], r.label[5]);
        // The two cliques may or may not merge over the bridge, but a
        // valid run should find >= 1 and <= 2 communities among clique
        // members, with high modularity if 2.
        assert!(r.count <= 3);
    }

    #[test]
    fn louvain_on_planted_partition() {
        let edges = gen::planted_partition(4, 20, 0.6, 0.02, 5);
        let g = CsrGraph::from_edges_undirected(80, &edges);
        let r = louvain(&g, 5);
        assert!(
            r.modularity > 0.5,
            "expected strong community structure, got Q={}",
            r.modularity
        );
        // Most same-group pairs should share a label.
        let mut agree = 0;
        let mut total = 0;
        for u in 0..80usize {
            for v in (u + 1)..80 {
                if u / 20 == v / 20 {
                    total += 1;
                    if r.label[u] == r.label[v] {
                        agree += 1;
                    }
                }
            }
        }
        assert!(
            agree * 10 >= total * 8,
            "only {agree}/{total} intra pairs agree"
        );
    }

    #[test]
    fn louvain_beats_or_matches_label_prop_modularity() {
        let edges = gen::planted_partition(5, 16, 0.5, 0.03, 9);
        let g = CsrGraph::from_edges_undirected(80, &edges);
        let lp = label_propagation(&g, 1, 50);
        let lv = louvain(&g, 5);
        assert!(lv.modularity >= lp.modularity - 0.05);
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let g = CsrGraph::from_edges_undirected(5, &[(0, 1)]);
        let r = label_propagation(&g, 0, 10);
        assert_eq!(r.label[3], 3);
        assert_eq!(r.label[4], 4);
    }

    #[test]
    fn empty_graph_modularity() {
        let g = CsrGraph::from_edges(3, &[]);
        assert_eq!(modularity(&g, &[0, 1, 2]), 0.0);
        let r = louvain(&g, 3);
        assert_eq!(r.count, 3);
    }
}
