//! Scatter-gather (partial + merge) kernel entry points for sharded
//! execution.
//!
//! A sharded driver (see `ga-core`'s `sharded` module) partitions the
//! vertex set across N shard-local engines and runs batch analytics in
//! two phases: each shard computes a **partial** over the vertices it
//! owns, then a router-side **merge** combines the partials into the
//! global answer. The functions here are the per-kernel halves of that
//! protocol, written so the merged result is *bit-identical* for every
//! shard count:
//!
//! * PageRank — the owner shard holds the complete in-adjacency of each
//!   owned vertex (edges are delivered to both endpoints' owners), so
//!   the pull sweep [`pagerank_owned_sweep`] accumulates in global
//!   vertex order and the router finishes each iteration with serial
//!   dangling/residual reductions, mirroring
//!   [`crate::pagerank::pagerank_with`]'s determinism argument.
//! * BFS — level-synchronous frontier exchange ([`bfs_owned_expand`]);
//!   depths are integers, so any execution order agrees.
//! * Connected components — each shard reduces its local edges to a
//!   spanning forest ([`cc_local_forest`]), the router unions the
//!   forests ([`cc_merge_forests`]); `UnionFind::labels` normalizes to
//!   the min vertex id per set regardless of union order.
//!
//! Nothing here assumes the serving shard is the *owner*: the
//! `is_owned` predicates take any serving assignment. The sharded
//! driver exploits that for failover — when a shard is dead, its
//! ring-successor replica (whose rows are slot-exact copies of the
//! owner's) serves the same predicates, and every bit-identity
//! argument above carries over unchanged.

use crate::cc::{wcc_afforest, wcc_union_find, Components};
use crate::UnionFind;
use ga_graph::{CsrGraph, DynamicGraph, VertexId};

/// Build the complete in-adjacency of every vertex satisfying
/// `is_owned`, by scanning the shard graph's rows in global vertex
/// order. Because edge updates are routed to both endpoints' owner
/// shards, the owner of `v` sees every live in-edge `(u, v)`; the scan
/// order makes `in_adj[v]` ascend by source id for *any* shard count,
/// which keeps downstream floating-point accumulation order canonical.
///
/// The returned vector has length `n_global`; rows of non-owned
/// vertices are left empty.
pub fn owned_in_adjacency<F>(g: &DynamicGraph, n_global: usize, is_owned: F) -> Vec<Vec<VertexId>>
where
    F: Fn(VertexId) -> bool,
{
    let mut in_adj: Vec<Vec<VertexId>> = vec![Vec::new(); n_global];
    for u in 0..g.num_vertices() as VertexId {
        for rec in g.neighbors(u) {
            let v = rec.dst as usize;
            if v < n_global && is_owned(rec.dst) {
                in_adj[v].push(u);
            }
        }
    }
    in_adj
}

/// Live out-degree of every local row (for owned rows this *is* the
/// global out-degree, since the owner holds the full out-row).
pub fn local_out_degrees(g: &DynamicGraph) -> Vec<u32> {
    (0..g.num_vertices() as VertexId)
        .map(|v| g.degree(v) as u32)
        .collect()
}

/// One owned PageRank pull sweep: for each vertex in `owned` (ascending
/// order), pull `rank[u] / out_deg[u]` over its in-adjacency and return
/// `(v, base + damping * acc)` pairs. Arithmetic matches
/// [`crate::pagerank::pagerank_with`]'s inner loop term-for-term; the
/// caller supplies the global `rank`/`out_deg` vectors and the
/// dangling-corrected `base`.
pub fn pagerank_owned_sweep(
    in_adj: &[Vec<VertexId>],
    owned: &[VertexId],
    rank: &[f64],
    out_deg: &[f64],
    base: f64,
    damping: f64,
) -> Vec<(VertexId, f64)> {
    owned
        .iter()
        .map(|&v| {
            let mut acc = 0.0;
            for &u in &in_adj[v as usize] {
                acc += rank[u as usize] / out_deg[u as usize];
            }
            (v, base + damping * acc)
        })
        .collect()
}

/// Expand one BFS level on a shard: emit every live out-neighbor of the
/// *owned* frontier vertices. The router dedups candidates, assigns
/// depth `d + 1` to the unreached ones, and builds the next frontier.
pub fn bfs_owned_expand(g: &DynamicGraph, owned_frontier: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    for &u in owned_frontier {
        out.extend(g.neighbor_ids(u));
    }
    out
}

/// Reduce a shard-local graph to a spanning forest: `(v, label)` pairs
/// with `label != v`, where `label` is the min vertex id of v's
/// component *within this shard's edges*. Uses the fast
/// [`wcc_afforest`] kernel when its contract holds (symmetric adjacency
/// or a reverse index), plain union-find otherwise; both normalize to
/// min-id labels, so the emitted pairs are identical either way.
pub fn cc_local_forest(g: &CsrGraph, symmetric: bool) -> Vec<(VertexId, VertexId)> {
    let comps = if symmetric || g.has_reverse() {
        wcc_afforest(g)
    } else {
        wcc_union_find(g)
    };
    comps
        .label
        .iter()
        .enumerate()
        .filter_map(|(v, &l)| (l != v as VertexId).then_some((v as VertexId, l)))
        .collect()
}

/// Merge shard forests into global components over `n_global` vertices.
/// Labels come from [`UnionFind::labels`] (min vertex id per set), so
/// the result is independent of pair order and shard count, and matches
/// [`wcc_union_find`] on the merged graph.
pub fn cc_merge_forests<I>(n_global: usize, pairs: I) -> Components
where
    I: IntoIterator<Item = (VertexId, VertexId)>,
{
    let mut uf = UnionFind::new(n_global);
    for (v, l) in pairs {
        uf.union(v, l);
    }
    let count = uf.num_sets();
    Components {
        label: uf.labels(),
        count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::pagerank_with;
    use crate::KernelCtx;
    use ga_graph::gen;

    fn dyn_graph(n: usize, edges: &[(VertexId, VertexId)]) -> DynamicGraph {
        let mut g = DynamicGraph::new(n);
        g.insert_undirected(edges, 1);
        g
    }

    #[test]
    fn forest_merge_matches_union_find() {
        let edges = gen::erdos_renyi(80, 70, 3);
        let g = CsrGraph::from_edges_undirected(80, &edges);
        let direct = wcc_union_find(&g);
        // Split the edge set "across shards" arbitrarily and merge.
        let sub_a = CsrGraph::from_edges_undirected(
            80,
            &edges.iter().copied().step_by(2).collect::<Vec<_>>(),
        );
        let sub_b = CsrGraph::from_edges_undirected(
            80,
            &edges.iter().copied().skip(1).step_by(2).collect::<Vec<_>>(),
        );
        let mut pairs = cc_local_forest(&sub_a, true);
        pairs.extend(cc_local_forest(&sub_b, true));
        let merged = cc_merge_forests(80, pairs);
        assert_eq!(direct.label, merged.label);
        assert_eq!(direct.count, merged.count);
    }

    #[test]
    fn single_shard_sweep_matches_pagerank_with() {
        // With one "shard" owning everything, iterating the owned sweep
        // must reproduce pagerank_with bit-for-bit (same in-adjacency
        // order: CSR transposes are source-sorted, as is the row scan).
        let edges = gen::erdos_renyi(64, 200, 9);
        let dg = dyn_graph(64, &edges);
        let csr = dg.snapshot();
        let csr = ga_graph::CsrBuilder::new(64)
            .edges(csr.edges())
            .reverse(true)
            .build();
        let reference = pagerank_with(&csr, 0.85, 1e-10, 100, &KernelCtx::serial());

        let n = 64usize;
        let in_adj = owned_in_adjacency(&dg, n, |_| true);
        let out_deg: Vec<f64> = local_out_degrees(&dg).iter().map(|&d| d as f64).collect();
        let owned: Vec<VertexId> = (0..n as VertexId).collect();
        let inv_n = 1.0 / n as f64;
        let mut rank = vec![inv_n; n];
        let mut residual = f64::INFINITY;
        let mut iters = 0;
        while iters < 100 && residual > 1e-10 {
            let dangling: f64 = (0..n).filter(|&v| out_deg[v] == 0.0).map(|v| rank[v]).sum();
            let base = (1.0 - 0.85) * inv_n + 0.85 * dangling * inv_n;
            let new: Vec<(VertexId, f64)> =
                pagerank_owned_sweep(&in_adj, &owned, &rank, &out_deg, base, 0.85);
            let mut next = rank.clone();
            for (v, r) in new {
                next[v as usize] = r;
            }
            residual = (0..n).map(|v| (next[v] - rank[v]).abs()).sum();
            rank = next;
            iters += 1;
        }
        assert_eq!(iters, reference.work);
        for (v, r) in rank.iter().enumerate() {
            assert_eq!(*r, reference.rank[v], "rank differs at {v}");
        }
    }

    #[test]
    fn bfs_expand_emits_live_neighbors_only() {
        let mut g = DynamicGraph::new(4);
        g.insert_edge(0, 1, 1.0, 1);
        g.insert_edge(0, 2, 1.0, 1);
        g.delete_edge(0, 2, 2);
        let out = bfs_owned_expand(&g, &[0]);
        assert_eq!(out, vec![1]);
    }
}
