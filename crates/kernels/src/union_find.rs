//! Disjoint-set forest shared by the connectivity kernels.

use ga_graph::VertexId;

/// Union-find with union-by-rank and path halving.
///
/// ```
/// use ga_kernels::UnionFind;
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(1, 2));
/// assert_eq!(uf.num_sets(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<VertexId>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as VertexId).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: VertexId) -> VertexId {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Representative without path compression (read-only contexts).
    pub fn find_const(&self, mut x: VertexId) -> VertexId {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: VertexId, b: VertexId) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn same(&mut self, a: VertexId, b: VertexId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Fully-compressed label array: `labels[v]` = min vertex id in v's set.
    /// Deterministic regardless of union order.
    pub fn labels(&mut self) -> Vec<VertexId> {
        let n = self.parent.len();
        let mut min_of_root: Vec<VertexId> = (0..n as VertexId).collect();
        for v in 0..n as VertexId {
            let r = self.find(v);
            if v < min_of_root[r as usize] {
                min_of_root[r as usize] = v;
            }
        }
        (0..n as VertexId)
            .map(|v| {
                let r = self.find_const(v);
                min_of_root[r as usize]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.num_sets(), 3);
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn chain_unions() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn labels_are_min_ids() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(3, 1);
        uf.union(0, 4);
        let labels = uf.labels();
        assert_eq!(labels, vec![0, 1, 2, 1, 0, 1]);
    }

    #[test]
    fn label_determinism_under_union_order() {
        let mut a = UnionFind::new(4);
        a.union(0, 1);
        a.union(2, 3);
        a.union(1, 3);
        let mut b = UnionFind::new(4);
        b.union(3, 0);
        b.union(2, 1);
        b.union(0, 2);
        assert_eq!(a.labels(), b.labels());
    }
}
