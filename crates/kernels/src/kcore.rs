//! k-core decomposition — the peeling kernel the flow engine uses for
//! seed selection ("top-k vertices with the highest values of some
//! properties" where the property is coreness). Expects an undirected
//! snapshot.

use ga_graph::{CsrGraph, VertexId};

/// Coreness of every vertex via the O(m) bucket-peeling algorithm
/// (Batagelj–Zaveršnik).
pub fn core_numbers(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<u32> = (0..n as VertexId).map(|v| g.degree(v) as u32).collect();
    let max_deg = *degree.iter().max().unwrap() as usize;
    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d as usize + 1] += 1;
    }
    for i in 1..bin.len() {
        bin[i] += bin[i - 1];
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0 as VertexId; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            let d = degree[v] as usize;
            pos[v] = cursor[d];
            vert[pos[v]] = v as VertexId;
            cursor[d] += 1;
        }
    }
    // Peel in degree order.
    for i in 0..n {
        let v = vert[i];
        for &u in g.neighbors(v) {
            if degree[u as usize] > degree[v as usize] {
                let du = degree[u as usize] as usize;
                // Swap u to the front of its bin, then decrement.
                let pu = pos[u as usize];
                let pw = bin[du];
                let w = vert[pw];
                if u != w {
                    vert[pu] = w;
                    vert[pw] = u;
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    degree
}

/// Vertices in the `k`-core (coreness >= k), sorted.
pub fn k_core_members(g: &CsrGraph, k: u32) -> Vec<VertexId> {
    core_numbers(g)
        .iter()
        .enumerate()
        .filter_map(|(v, &c)| (c >= k).then_some(v as VertexId))
        .collect()
}

/// The degeneracy of the graph (max coreness).
pub fn degeneracy(g: &CsrGraph) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

/// Naive iterative-peeling reference for tests.
pub fn core_numbers_naive(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut alive = vec![true; n];
    let mut core = vec![0u32; n];
    let mut degree: Vec<i64> = (0..n as VertexId).map(|v| g.degree(v) as i64).collect();
    let mut k = 0u32;
    let mut remaining = n;
    while remaining > 0 {
        loop {
            let peel: Vec<VertexId> = (0..n as VertexId)
                .filter(|&v| alive[v as usize] && degree[v as usize] <= k as i64)
                .collect();
            if peel.is_empty() {
                break;
            }
            for v in peel {
                alive[v as usize] = false;
                core[v as usize] = k;
                remaining -= 1;
                for &u in g.neighbors(v) {
                    if alive[u as usize] {
                        degree[u as usize] -= 1;
                    }
                }
            }
        }
        k += 1;
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::gen;

    #[test]
    fn clique_coreness() {
        let g = CsrGraph::from_edges_undirected(5, &gen::complete(5));
        assert_eq!(core_numbers(&g), vec![4; 5]);
        assert_eq!(degeneracy(&g), 4);
    }

    #[test]
    fn path_coreness_one() {
        let g = CsrGraph::from_edges_undirected(6, &gen::path(6));
        assert_eq!(core_numbers(&g), vec![1; 6]);
    }

    #[test]
    fn clique_with_tail() {
        // K4 on {0..3} plus tail 3-4-5.
        let mut e = gen::complete(4);
        e.push((3, 4));
        e.push((4, 5));
        let g = CsrGraph::from_edges_undirected(6, &e);
        let c = core_numbers(&g);
        assert_eq!(&c[0..4], &[3, 3, 3, 3]);
        assert_eq!(c[4], 1);
        assert_eq!(c[5], 1);
        assert_eq!(k_core_members(&g, 3), vec![0, 1, 2, 3]);
        assert_eq!(k_core_members(&g, 1).len(), 6);
    }

    #[test]
    fn matches_naive_on_random() {
        for seed in 0..4 {
            let edges = gen::erdos_renyi(80, 300, seed);
            let g = CsrGraph::from_edges_undirected(80, &edges);
            assert_eq!(core_numbers(&g), core_numbers_naive(&g), "seed {seed}");
        }
    }

    #[test]
    fn isolated_zero_core() {
        let g = CsrGraph::from_edges_undirected(4, &[(0, 1)]);
        let c = core_numbers(&g);
        assert_eq!(c[2], 0);
        assert_eq!(c[3], 0);
        assert_eq!(c[0], 1);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(core_numbers(&g).is_empty());
        assert_eq!(degeneracy(&g), 0);
    }
}
