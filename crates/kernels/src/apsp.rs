//! All-pairs shortest paths (Fig. 1 row "APSP") — the `O(|V|^k)`-output
//! kernel class.
//!
//! Two engines: [`floyd_warshall`] for dense small graphs and
//! [`repeated_sssp`] (one Dijkstra per source, parallel over sources) for
//! sparse ones. Output is a dense `n x n` row-major distance matrix, so
//! both are deliberately gated to small `n` — this is the kernel the
//! paper flags as producing output that "may grow far faster" than |V|.

use crate::sssp::dijkstra;
use crate::INF;
use ga_graph::{CsrGraph, Weight};
use rayon::prelude::*;

/// Dense distance matrix: `dist[u * n + v]`.
#[derive(Clone, Debug, PartialEq)]
pub struct DistMatrix {
    /// Number of vertices.
    pub n: usize,
    /// Row-major distances; [`INF`] = unreachable.
    pub dist: Vec<Weight>,
}

impl DistMatrix {
    /// Distance from `u` to `v`.
    #[inline]
    pub fn get(&self, u: usize, v: usize) -> Weight {
        self.dist[u * self.n + v]
    }

    /// Largest finite distance (the exact diameter when strongly
    /// connected).
    pub fn diameter(&self) -> Weight {
        self.dist
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0, Weight::max)
    }

    /// Count of reachable (finite) ordered pairs, self-pairs included.
    pub fn reachable_pairs(&self) -> usize {
        self.dist.iter().filter(|d| d.is_finite()).count()
    }
}

/// Floyd–Warshall. O(n^3) time, O(n^2) space.
pub fn floyd_warshall(g: &CsrGraph) -> DistMatrix {
    let n = g.num_vertices();
    let mut dist = vec![INF; n * n];
    for v in 0..n {
        dist[v * n + v] = 0.0;
    }
    for (u, v, w) in g.weighted_edges() {
        let idx = u as usize * n + v as usize;
        if w < dist[idx] {
            dist[idx] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = dist[i * n + k];
            if dik == INF {
                continue;
            }
            for j in 0..n {
                let through = dik + dist[k * n + j];
                if through < dist[i * n + j] {
                    dist[i * n + j] = through;
                }
            }
        }
    }
    DistMatrix { n, dist }
}

/// One Dijkstra per source, parallel over sources. Preferred when the
/// graph is sparse (`m << n^2`).
pub fn repeated_sssp(g: &CsrGraph) -> DistMatrix {
    let n = g.num_vertices();
    let rows: Vec<Vec<Weight>> = (0..n as u32)
        .into_par_iter()
        .map(|src| dijkstra(g, src).dist)
        .collect();
    let mut dist = Vec::with_capacity(n * n);
    for row in rows {
        dist.extend(row);
    }
    DistMatrix { n, dist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::gen;

    #[test]
    fn engines_agree() {
        let edges = gen::with_random_weights(&gen::erdos_renyi(40, 200, 1), 0.5, 3.0, 2);
        let g = CsrGraph::from_weighted_edges(40, &edges);
        let a = floyd_warshall(&g);
        let b = repeated_sssp(&g);
        assert_eq!(a.n, b.n);
        for i in 0..a.dist.len() {
            let (x, y) = (a.dist[i], b.dist[i]);
            assert!(
                (x - y).abs() < 1e-3 || (x == INF && y == INF),
                "at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn path_distances() {
        let g = CsrGraph::from_edges_undirected(5, &gen::path(5));
        let d = floyd_warshall(&g);
        assert_eq!(d.get(0, 4), 4.0);
        assert_eq!(d.get(2, 2), 0.0);
        assert_eq!(d.diameter(), 4.0);
        assert_eq!(d.reachable_pairs(), 25);
    }

    #[test]
    fn unreachable_pairs() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let d = repeated_sssp(&g);
        assert_eq!(d.get(0, 2), INF);
        assert_eq!(d.get(0, 1), 1.0);
        // 4 self + 2 edges
        assert_eq!(d.reachable_pairs(), 6);
    }

    #[test]
    fn directed_asymmetry() {
        let g = CsrGraph::from_weighted_edges(2, &[(0, 1, 2.0)]);
        let d = floyd_warshall(&g);
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(1, 0), INF);
    }

    #[test]
    fn parallel_edge_takes_min() {
        let g = CsrGraph::from_weighted_edges(2, &[(0, 1, 5.0), (0, 1, 1.0)]);
        let d = floyd_warshall(&g);
        assert_eq!(d.get(0, 1), 1.0);
    }
}

/// Johnson's algorithm: Bellman–Ford reweighting from a virtual source
/// makes all weights non-negative, then one Dijkstra per source. Handles
/// negative edges (no negative cycles) at repeated-Dijkstra cost.
/// Returns `None` when a negative cycle exists.
pub fn johnson(g: &CsrGraph) -> Option<DistMatrix> {
    use crate::sssp::bellman_ford;
    use ga_graph::CsrBuilder;
    let n = g.num_vertices();
    // Augmented graph: virtual source n with 0-weight edges to all.
    let mut b = CsrBuilder::new(n + 1).weighted_edges(g.weighted_edges());
    b = b.weighted_edges((0..n as u32).map(|v| (n as u32, v, 0.0)));
    let aug = b.build();
    let h = bellman_ford(&aug, n as u32).ok()?.dist;
    // Reweight: w'(u, v) = w + h[u] - h[v]  (>= 0 by the BF invariant).
    let reweighted = CsrBuilder::new(n)
        .weighted_edges(
            g.weighted_edges()
                .map(|(u, v, w)| (u, v, w + h[u as usize] - h[v as usize])),
        )
        .build();
    let prelim = repeated_sssp(&reweighted);
    // Undo the reweighting per pair.
    let mut dist = prelim.dist;
    for u in 0..n {
        for v in 0..n {
            let d = &mut dist[u * n + v];
            if d.is_finite() {
                *d = *d - h[u] + h[v];
            }
        }
    }
    Some(DistMatrix { n, dist })
}

#[cfg(test)]
mod johnson_tests {
    use super::*;

    #[test]
    fn johnson_matches_floyd_on_negative_edges() {
        // Negative edge 2->1, but the cycle 2->1->3->2 sums to +2.
        let g = CsrGraph::from_weighted_edges(
            4,
            &[
                (0, 1, 3.0),
                (0, 2, 8.0),
                (1, 3, 1.0),
                (2, 1, -4.0),
                (3, 2, 5.0),
            ],
        );
        let j = johnson(&g).unwrap();
        let f = floyd_warshall(&g);
        for i in 0..j.dist.len() {
            let (a, b) = (j.dist[i], f.dist[i]);
            assert!(
                (a - b).abs() < 1e-3 || (a.is_infinite() && b.is_infinite()),
                "at {i}: {a} vs {b}"
            );
        }
        // 0->1->3 costs 4; the detour through the negative edge
        // (0->2->1->3 = 8 - 4 + 1 = 5) doesn't beat it.
        assert!((j.get(0, 3) - 4.0).abs() < 1e-3);
    }

    #[test]
    fn johnson_detects_negative_cycle() {
        let g = CsrGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, -3.0), (2, 0, 1.0)]);
        assert!(johnson(&g).is_none());
    }

    #[test]
    fn johnson_matches_repeated_sssp_on_nonnegative() {
        let edges = ga_graph::gen::with_random_weights(
            &ga_graph::gen::erdos_renyi(30, 150, 2),
            0.1,
            2.0,
            3,
        );
        let g = CsrGraph::from_weighted_edges(30, &edges);
        let j = johnson(&g).unwrap();
        let r = repeated_sssp(&g);
        for i in 0..j.dist.len() {
            let (a, b) = (j.dist[i], r.dist[i]);
            assert!((a - b).abs() < 1e-3 || (a.is_infinite() && b.is_infinite()));
        }
    }
}
