//! Jaccard similarity coefficients (Fig. 1 row "Jaccard").
//!
//! The paper singles Jaccard out twice: as "a growing subset" of the
//! clustering class, and as the batch kernel closest to the NORA
//! relationship analysis ("who has shared an address with what other
//! individuals 2 or more times..."). For a pair (u, v):
//!
//! `J(u, v) = |N(u) ∩ N(v)| / |N(u) ∪ N(v)|`
//!
//! Three access patterns, matching §II's description:
//! * [`pair`] — one coefficient,
//! * [`for_vertex`] — all non-zero coefficients of one vertex against its
//!   2-hop neighborhood (the streaming *query* form's batch core),
//! * [`all_pairs_above`] — every pair with `J >= tau` (the
//!   near-quadratic-output batch form, threshold-pruned).
//!
//! Expects an undirected snapshot with sorted neighbor slices.

use crate::triangles::intersect_count;
use ga_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Jaccard coefficient of a single pair.
pub fn pair(g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
    let (nu, nv) = (g.neighbors(u), g.neighbors(v));
    if nu.is_empty() && nv.is_empty() {
        return 0.0;
    }
    let inter = intersect_count(nu, nv);
    let union = nu.len() + nv.len() - inter;
    inter as f64 / union as f64
}

/// All vertices with a non-zero coefficient against `u`, i.e. u's 2-hop
/// candidates, with coefficients `>= tau`, sorted descending (ties by
/// id). `u` itself is excluded.
pub fn for_vertex(g: &CsrGraph, u: VertexId, tau: f64) -> Vec<(VertexId, f64)> {
    let nu = g.neighbors(u);
    // Gather 2-hop candidates with shared-neighbor counts via a sparse
    // accumulator.
    let mut counts: std::collections::HashMap<VertexId, usize> = Default::default();
    for &w in nu {
        for &v in g.neighbors(w) {
            if v != u {
                *counts.entry(v).or_default() += 1;
            }
        }
    }
    let mut out: Vec<(VertexId, f64)> = counts
        .into_iter()
        .filter_map(|(v, inter)| {
            let union = nu.len() + g.degree(v) - inter;
            let j = inter as f64 / union as f64;
            (j >= tau && j > 0.0).then_some((v, j))
        })
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

/// Top-`k` most similar vertices to `u`.
pub fn top_k_for_vertex(g: &CsrGraph, u: VertexId, k: usize) -> Vec<(VertexId, f64)> {
    let mut all = for_vertex(g, u, 0.0);
    all.truncate(k);
    all
}

/// Every unordered pair `(u, v)` with `J(u, v) >= tau`, parallel over
/// source vertices. Pairs are emitted once with `u < v`, sorted.
///
/// Pruning: only pairs sharing at least one neighbor can have J > 0, so
/// enumeration walks wedges instead of all O(n^2) pairs.
pub fn all_pairs_above(g: &CsrGraph, tau: f64) -> Vec<(VertexId, VertexId, f64)> {
    assert!(tau > 0.0, "tau must be positive; 0 would emit O(n^2) pairs");
    let n = g.num_vertices();
    let mut out: Vec<(VertexId, VertexId, f64)> = (0..n as VertexId)
        .into_par_iter()
        .flat_map_iter(|u| {
            for_vertex(g, u, tau)
                .into_iter()
                .filter(move |&(v, _)| u < v)
                .map(move |(v, j)| (u, v, j))
        })
        .collect();
    out.sort_by_key(|r| (r.0, r.1));
    out
}

/// Brute-force reference for tests.
pub fn all_pairs_brute(g: &CsrGraph, tau: f64) -> Vec<(VertexId, VertexId, f64)> {
    let n = g.num_vertices() as VertexId;
    let mut out = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let j = pair(g, u, v);
            if j >= tau && j > 0.0 {
                out.push((u, v, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::gen;

    fn und(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
        CsrGraph::from_edges_undirected(n, edges)
    }

    #[test]
    fn pair_basics() {
        // 0 and 1 both neighbor 2 and 3; 0 also neighbors 4.
        let g = und(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3)]);
        // N(0) = {2,3,4}, N(1) = {2,3}: J = 2/3.
        assert!((pair(&g, 0, 1) - 2.0 / 3.0).abs() < 1e-12);
        // Identical neighborhoods -> 1.0
        assert!((pair(&g, 2, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pair_no_overlap_or_empty() {
        let g = und(4, &[(0, 1)]);
        assert_eq!(pair(&g, 0, 1), 0.0); // N(0)={1}, N(1)={0}, disjoint
        assert_eq!(pair(&g, 2, 3), 0.0); // both isolated
    }

    #[test]
    fn symmetry() {
        let edges = gen::erdos_renyi(50, 200, 8);
        let g = und(50, &edges);
        for u in 0..10 {
            for v in 10..20 {
                assert!((pair(&g, u, v) - pair(&g, v, u)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn for_vertex_matches_pair() {
        let edges = gen::erdos_renyi(60, 240, 2);
        let g = und(60, &edges);
        let res = for_vertex(&g, 5, 0.0);
        for &(v, j) in &res {
            assert!((pair(&g, 5, v) - j).abs() < 1e-12, "v={v}");
            assert!(j > 0.0);
        }
        // Completeness: any vertex with positive pair J must appear.
        for v in 0..60 {
            if v != 5 && pair(&g, 5, v) > 0.0 {
                assert!(res.iter().any(|&(x, _)| x == v), "missing {v}");
            }
        }
    }

    #[test]
    fn all_pairs_matches_brute_force() {
        for seed in 0..3 {
            let edges = gen::erdos_renyi(40, 150, seed);
            let g = und(40, &edges);
            let fast = all_pairs_above(&g, 0.3);
            let slow = all_pairs_brute(&g, 0.3);
            assert_eq!(fast.len(), slow.len(), "seed {seed}");
            for (a, b) in fast.iter().zip(&slow) {
                assert_eq!((a.0, a.1), (b.0, b.1));
                assert!((a.2 - b.2).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn threshold_filters() {
        let g = und(6, &gen::complete(6));
        // In K6 every pair has J = 4/6 (shared = 4 of 5-each minus each other).
        let hi = all_pairs_above(&g, 0.9);
        assert!(hi.is_empty());
        let lo = all_pairs_above(&g, 0.5);
        assert_eq!(lo.len(), 15);
    }

    #[test]
    fn top_k_ordering() {
        let g = und(6, &[(0, 1), (0, 2), (3, 1), (3, 2), (4, 1), (5, 1)]);
        let top = top_k_for_vertex(&g, 0, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 3); // shares both neighbors
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn coefficients_bounded() {
        let edges = gen::erdos_renyi(50, 300, 12);
        let g = und(50, &edges);
        for (_, _, j) in all_pairs_above(&g, 0.01) {
            assert!(j > 0.0 && j <= 1.0);
        }
    }
}
