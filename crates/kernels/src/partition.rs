//! Graph partitioning (Fig. 1 row "GP").
//!
//! [`bfs_grow`] produces a balanced k-way partition by growing BFS
//! regions from spread-out seeds — the cheap geometric heuristic used
//! when a full multilevel partitioner is overkill. [`edge_cut`] and
//! [`balance`] score any assignment (they are also what the NORA model
//! uses to reason about network traffic between blades).

use ga_graph::{CsrGraph, VertexId};
use std::collections::VecDeque;

/// A k-way partition assignment.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `part[v]` in `0..k`.
    pub part: Vec<u32>,
    /// Number of parts.
    pub k: u32,
}

impl Partition {
    /// Vertices per part.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.k as usize];
        for &p in &self.part {
            s[p as usize] += 1;
        }
        s
    }
}

/// Number of edges crossing parts (directed count).
pub fn edge_cut(g: &CsrGraph, p: &Partition) -> usize {
    let mut cut = 0;
    for (u, v) in g.edges() {
        if p.part[u as usize] != p.part[v as usize] {
            cut += 1;
        }
    }
    cut
}

/// Imbalance ratio: max part size / ideal size (1.0 = perfectly even).
pub fn balance(p: &Partition) -> f64 {
    let sizes = p.sizes();
    let max = *sizes.iter().max().unwrap_or(&0) as f64;
    let ideal = p.part.len() as f64 / p.k as f64;
    if ideal == 0.0 {
        1.0
    } else {
        max / ideal
    }
}

/// Grow `k` BFS regions round-robin from evenly spaced seeds; any
/// vertex unreached (disconnected graph) is assigned to the smallest
/// part. Capacity-bounded so parts stay within `ceil(n/k)` during
/// growth.
#[allow(clippy::needless_range_loop)] // parallel arrays indexed by part id
pub fn bfs_grow(g: &CsrGraph, k: u32) -> Partition {
    let n = g.num_vertices();
    assert!(k >= 1);
    let mut part = vec![u32::MAX; n];
    if n == 0 {
        return Partition { part, k };
    }
    let cap = n.div_ceil(k as usize);
    let mut queues: Vec<VecDeque<VertexId>> = Vec::with_capacity(k as usize);
    let mut sizes = vec![0usize; k as usize];
    // Seeds spaced across the id range.
    for i in 0..k as usize {
        let seed = ((i * n) / k as usize) as VertexId;
        let mut q = VecDeque::new();
        if part[seed as usize] == u32::MAX {
            part[seed as usize] = i as u32;
            sizes[i] += 1;
            q.push_back(seed);
        }
        queues.push(q);
    }
    // Round-robin frontier growth.
    let mut active = true;
    while active {
        active = false;
        for i in 0..k as usize {
            if sizes[i] >= cap {
                continue;
            }
            if let Some(u) = queues[i].pop_front() {
                active = true;
                for &v in g.neighbors(u) {
                    if part[v as usize] == u32::MAX && sizes[i] < cap {
                        part[v as usize] = i as u32;
                        sizes[i] += 1;
                        queues[i].push_back(v);
                    }
                }
                // Re-queue u if it still has unvisited neighbors and we
                // hit the per-round budget (simple fairness).
            }
        }
    }
    // Sweep leftovers (disconnected or capacity-stranded) to the
    // emptiest part.
    for p in part.iter_mut() {
        if *p == u32::MAX {
            let i = (0..k as usize).min_by_key(|&i| sizes[i]).unwrap();
            *p = i as u32;
            sizes[i] += 1;
        }
    }
    Partition { part, k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::gen;

    #[test]
    fn partition_covers_all_vertices() {
        let g = CsrGraph::from_edges_undirected(100, &gen::erdos_renyi(100, 300, 1));
        let p = bfs_grow(&g, 4);
        assert!(p.part.iter().all(|&x| x < 4));
        assert_eq!(p.sizes().iter().sum::<usize>(), 100);
    }

    #[test]
    fn balance_reasonable() {
        let g = CsrGraph::from_edges_undirected(128, &gen::grid2d(8, 16));
        let p = bfs_grow(&g, 4);
        assert!(balance(&p) <= 1.2, "balance {}", balance(&p));
    }

    #[test]
    fn grid_partition_cut_beats_random() {
        let g = CsrGraph::from_edges_undirected(256, &gen::grid2d(16, 16));
        let p = bfs_grow(&g, 4);
        let cut = edge_cut(&g, &p);
        // Random assignment: expected 3/4 of edges cut.
        let random = Partition {
            part: (0..256).map(|v| (v % 4) as u32).collect(),
            k: 4,
        };
        let random_cut = edge_cut(&g, &random);
        assert!(
            cut * 2 < random_cut,
            "bfs-grow cut {cut} not much better than random {random_cut}"
        );
    }

    #[test]
    fn single_part_has_zero_cut() {
        let g = CsrGraph::from_edges_undirected(30, &gen::ring(30));
        let p = bfs_grow(&g, 1);
        assert_eq!(edge_cut(&g, &p), 0);
        assert_eq!(balance(&p), 1.0);
    }

    #[test]
    fn disconnected_graph_still_assigned() {
        let g = CsrGraph::from_edges(10, &[(0, 1), (5, 6)]);
        let p = bfs_grow(&g, 3);
        assert!(p.part.iter().all(|&x| x < 3));
    }

    #[test]
    fn more_parts_than_vertices() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let p = bfs_grow(&g, 5);
        assert_eq!(p.part.len(), 2);
        assert!(p.part.iter().all(|&x| x < 5));
    }
}
