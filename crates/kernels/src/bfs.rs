//! Breadth-first search — the Graph500 kernel and the paper's canonical
//! connectedness primitive.
//!
//! Three engines:
//! * [`bfs`] — classic top-down queue BFS,
//! * [`bfs_bottom_up`] — level-synchronous bottom-up sweep (each
//!   unvisited vertex scans its in-neighbors for a frontier member),
//! * [`bfs_direction_optimizing`] — Beamer-style hybrid that switches
//!   bottom-up when the frontier grows past a fraction of the edges, the
//!   strategy GRAPH500 winners use on skewed (R-MAT) graphs. Frontiers
//!   live in the shared [`Frontier`] bitmap + sparse-list structure.
//!
//! Every engine is generic over [`Adjacency`], so it runs unchanged —
//! and bit-identically — over a plain [`CsrGraph`] or a delta-varint
//! [`ga_graph::CompressedCsr`].
//!
//! All return a [`BfsResult`] with parent pointers and depths; the
//! streaming O(1)-event variant in Fig. 1 corresponds to inspecting
//! `depth[target]` after the sweep.

use crate::ctx::{Budget, Completion, KernelCtx};
use crate::UNREACHED;
use ga_graph::par::{frontier_degree_sum, par_frontier_expand};
use ga_graph::{Adjacency, CsrGraph, Frontier, VertexId};
use std::collections::VecDeque;

/// Queue pops between budget consults in the serial engine.
const BUDGET_CHECK_POPS: usize = 1024;

/// Output of a BFS sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct BfsResult {
    /// `depth[v]` = hops from the source, [`UNREACHED`] if unreachable.
    pub depth: Vec<u32>,
    /// `parent[v]` = BFS-tree parent; source's parent is itself;
    /// `UNREACHED` (as id) for unreachable vertices.
    pub parent: Vec<VertexId>,
    /// Vertices reached (including the source).
    pub reached: usize,
    /// Whether the sweep covered everything reachable or stopped at the
    /// context's budget. A partial result reports the frontier covered
    /// so far: every vertex with a finite depth has a valid BFS-tree
    /// parent, but `UNREACHED` vertices may merely be not-yet-visited.
    pub completion: Completion,
}

impl BfsResult {
    /// Validate the BFS-tree invariants against `g` (Graph500-style
    /// result check): parent edges exist, depths increase by exactly one
    /// along parent links, unreachable vertices stay unmarked.
    pub fn validate(&self, g: &CsrGraph, src: VertexId) -> Result<(), String> {
        if self.depth[src as usize] != 0 || self.parent[src as usize] != src {
            return Err("source not rooted at depth 0".into());
        }
        for v in g.vertices() {
            let d = self.depth[v as usize];
            let p = self.parent[v as usize];
            if (d == UNREACHED) != (p == UNREACHED) {
                return Err(format!("vertex {v}: depth/parent disagree"));
            }
            if d == UNREACHED || v == src {
                continue;
            }
            if self.depth[p as usize] + 1 != d {
                return Err(format!("vertex {v}: depth not parent+1"));
            }
            if !g.has_edge(p, v) {
                return Err(format!("vertex {v}: parent edge {p}->{v} missing"));
            }
        }
        Ok(())
    }
}

/// Top-down queue BFS from `src`.
pub fn bfs<G: Adjacency>(g: &G, src: VertexId) -> BfsResult {
    bfs_budgeted(g, src, &Budget::unlimited())
}

/// Top-down queue BFS that consults `budget` every ~1k pops and stops
/// with a typed partial result (covered frontier so far) on exhaustion.
pub fn bfs_budgeted<G: Adjacency>(g: &G, src: VertexId, budget: &Budget) -> BfsResult {
    let n = g.num_vertices();
    let mut depth = vec![UNREACHED; n];
    let mut parent = vec![UNREACHED as VertexId; n];
    let mut q = VecDeque::new();
    depth[src as usize] = 0;
    parent[src as usize] = src;
    q.push_back(src);
    let mut reached = 1usize;
    let mut completion = Completion::Complete;
    let mut pops = 0usize;
    let mut edges = 0u64;
    while let Some(u) = q.pop_front() {
        pops += 1;
        if pops.is_multiple_of(BUDGET_CHECK_POPS) {
            // Same cost formula bfs_with flushes into the counters.
            completion = budget.check(2 * edges + 3 * reached as u64);
            if completion.is_partial() {
                break;
            }
        }
        edges += g.degree(u) as u64;
        for v in g.neighbors(u) {
            if depth[v as usize] == UNREACHED {
                depth[v as usize] = depth[u as usize] + 1;
                parent[v as usize] = u;
                reached += 1;
                q.push_back(v);
            }
        }
    }
    BfsResult {
        depth,
        parent,
        reached,
        completion,
    }
}

/// Level-synchronous bottom-up BFS. Requires the reverse index (or an
/// undirected graph, where out-neighbors suffice); falls back to
/// out-neighbors when no reverse index is present.
pub fn bfs_bottom_up<G: Adjacency>(g: &G, src: VertexId) -> BfsResult {
    let n = g.num_vertices();
    let mut depth = vec![UNREACHED; n];
    let mut parent = vec![UNREACHED as VertexId; n];
    let mut frontier = Frontier::new(n);
    depth[src as usize] = 0;
    parent[src as usize] = src;
    frontier.insert(src);
    let mut reached = 1;
    let mut level = 0u32;
    // Two frontiers swapped between levels; `next` is cleared in
    // O(frontier) instead of re-allocated each level.
    let mut next = Frontier::new(n);
    loop {
        for v in 0..n as VertexId {
            if depth[v as usize] != UNREACHED {
                continue;
            }
            let found = if g.has_reverse() {
                bottom_up_scan(g.in_neighbors(v), &frontier)
            } else {
                bottom_up_scan(g.neighbors(v), &frontier)
            };
            if let Some(u) = found {
                depth[v as usize] = level + 1;
                parent[v as usize] = u;
                next.insert(v);
                reached += 1;
            }
        }
        if next.is_empty() {
            break;
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
        level += 1;
    }
    BfsResult {
        depth,
        parent,
        reached,
        completion: Completion::Complete,
    }
}

/// First predecessor of a bottom-up candidate found in the frontier.
#[inline]
fn bottom_up_scan(
    mut preds: impl Iterator<Item = VertexId>,
    frontier: &Frontier,
) -> Option<VertexId> {
    preds.find(|&u| frontier.contains(u))
}

/// Direction-optimizing BFS (Beamer): top-down while the frontier is
/// small, bottom-up once `frontier_edges > total_edges / alpha`.
///
/// The frontier's dual [`Frontier`] representation serves both modes:
/// the sparse list drives top-down expansion in discovery order, the
/// bitmap answers the bottom-up membership probes in O(1), and
/// [`Frontier::edge_sum`] feeds the switch heuristic.
///
/// `alpha` controls the switch threshold; 15 matches the GAP benchmark
/// suite default.
pub fn bfs_direction_optimizing<G: Adjacency>(g: &G, src: VertexId, alpha: usize) -> BfsResult {
    let n = g.num_vertices();
    let m = g.num_edges().max(1);
    let mut depth = vec![UNREACHED; n];
    let mut parent = vec![UNREACHED as VertexId; n];
    depth[src as usize] = 0;
    parent[src as usize] = src;
    let mut reached = 1;
    let mut frontier = Frontier::new(n);
    frontier.insert(src);
    let mut next = Frontier::new(n);
    let mut level = 0u32;
    while !frontier.is_empty() {
        let frontier_edges = frontier.edge_sum(g) as usize;
        let bottom_up = frontier_edges * alpha > m && g.has_reverse();
        if bottom_up {
            for v in 0..n as VertexId {
                if depth[v as usize] != UNREACHED {
                    continue;
                }
                if let Some(u) = bottom_up_scan(g.in_neighbors(v), &frontier) {
                    depth[v as usize] = level + 1;
                    parent[v as usize] = u;
                    next.insert(v);
                    reached += 1;
                }
            }
        } else {
            for u in frontier.iter() {
                for v in g.neighbors(u) {
                    if depth[v as usize] == UNREACHED {
                        depth[v as usize] = level + 1;
                        parent[v as usize] = u;
                        next.insert(v);
                        reached += 1;
                    }
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
        level += 1;
    }
    BfsResult {
        depth,
        parent,
        reached,
        completion: Completion::Complete,
    }
}

/// Depths only, via the engine best suited to the graph (hybrid when a
/// reverse index exists, top-down otherwise).
pub fn bfs_depths<G: Adjacency>(g: &G, src: VertexId) -> Vec<u32> {
    if g.has_reverse() {
        bfs_direction_optimizing(g, src, 15).depth
    } else {
        bfs(g, src).depth
    }
}

/// Level-synchronous parallel BFS: each level's frontier is expanded
/// with rayon, vertices claimed by atomic compare-exchange on the
/// parent array (the standard shared-memory formulation; parents may
/// differ from the sequential engines but depths are identical).
pub fn bfs_parallel<G: Adjacency>(g: &G, src: VertexId) -> BfsResult {
    bfs_parallel_budgeted(g, src, &Budget::unlimited())
}

/// [`bfs_parallel`] with a cooperative budget consulted at each level
/// boundary (the natural cancellation point of a level-synchronous
/// engine); on exhaustion the covered levels are returned as a partial
/// result.
pub fn bfs_parallel_budgeted<G: Adjacency>(g: &G, src: VertexId, budget: &Budget) -> BfsResult {
    use std::sync::atomic::{AtomicU32, Ordering};
    let n = g.num_vertices();
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    let depth_atomic: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    parent[src as usize].store(src, Ordering::Relaxed);
    depth_atomic[src as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![src];
    let mut level = 0u32;
    let mut completion = Completion::Complete;
    let mut edges = 0u64;
    let mut claimed_total = 1u64;
    while !frontier.is_empty() {
        if budget.is_limited() {
            completion = budget.check(2 * edges + 3 * claimed_total);
            if completion.is_partial() {
                break;
            }
            edges += frontier_degree_sum(g, &frontier) as u64;
        }
        level += 1;
        frontier = par_frontier_expand(g, &frontier, |u, v| {
            // Claim v exactly once across threads.
            let claimed = parent[v as usize]
                .compare_exchange(UNREACHED, u, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok();
            if claimed {
                depth_atomic[v as usize].store(level, Ordering::Relaxed);
            }
            claimed
        });
        claimed_total += frontier.len() as u64;
    }
    let depth: Vec<u32> = depth_atomic.into_iter().map(|d| d.into_inner()).collect();
    let parent: Vec<VertexId> = parent.into_iter().map(|p| p.into_inner()).collect();
    let reached = depth.iter().filter(|&&d| d != UNREACHED).count();
    BfsResult {
        depth,
        parent,
        reached,
        completion,
    }
}

/// Instrumented, dispatching BFS: runs the serial queue engine or
/// [`bfs_parallel`] per the context's [`crate::Parallelism`] and flushes
/// the traversal's cost into the context counters.
///
/// Depths and reach counts are identical across both engines; parallel
/// parent pointers may pick a different (equally valid) BFS tree.
pub fn bfs_with<G: Adjacency>(g: &G, src: VertexId, ctx: &KernelCtx) -> BfsResult {
    let r = if ctx.parallelism.use_parallel(g.num_edges()) {
        bfs_parallel_budgeted(g, src, &ctx.budget)
    } else {
        bfs_budgeted(g, src, &ctx.budget)
    };
    // Top-down BFS scans every out-edge of every reached vertex once.
    let (mut edges, mut adj_bytes) = (0u64, 0u64);
    for (v, _) in r.depth.iter().enumerate().filter(|&(_, &d)| d != UNREACHED) {
        edges += g.degree(v as VertexId) as u64;
        adj_bytes += g.row_bytes(v as VertexId);
    }
    let reached = r.reached as u64;
    // Per edge: one id load (the adjacency bytes actually streamed —
    // 4/entry on plain CSR, the encoded row length on compressed) plus
    // one depth check (~8 bytes, ~2 ops); per claimed vertex:
    // depth+parent+queue writes (~16 bytes, ~3 ops).
    ctx.counters.flush(
        2 * edges + 3 * reached,
        adj_bytes + 8 * edges + 16 * reached,
        edges,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::{gen, CompressedCsr, CsrBuilder};

    fn rmat_graph(scale: u32) -> CsrGraph {
        let edges = gen::rmat(scale, (1usize << scale) * 8, gen::RmatParams::GRAPH500, 5);
        CsrBuilder::new(1 << scale)
            .edges(edges.iter().copied())
            .symmetrize(true)
            .dedup(true)
            .drop_self_loops(true)
            .reverse(true)
            .build()
    }

    #[test]
    fn depths_on_path() {
        let g = CsrGraph::from_edges_undirected(5, &gen::path(5));
        let r = bfs(&g, 0);
        assert_eq!(r.depth, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.reached, 5);
        r.validate(&g, 0).unwrap();
    }

    #[test]
    fn unreachable_marked() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let r = bfs(&g, 0);
        assert_eq!(r.depth[2], UNREACHED);
        assert_eq!(r.parent[3], UNREACHED as VertexId);
        assert_eq!(r.reached, 2);
        r.validate(&g, 0).unwrap();
    }

    #[test]
    fn directed_respects_direction() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (2, 1)]);
        let r = bfs(&g, 0);
        assert_eq!(r.depth[1], 1);
        assert_eq!(r.depth[2], UNREACHED);
    }

    #[test]
    fn three_engines_agree_on_depths() {
        let g = rmat_graph(9);
        for &src in &[0u32, 7, 100] {
            let a = bfs(&g, src);
            let b = bfs_bottom_up(&g, src);
            let c = bfs_direction_optimizing(&g, src, 15);
            assert_eq!(a.depth, b.depth, "bottom-up mismatch src={src}");
            assert_eq!(a.depth, c.depth, "hybrid mismatch src={src}");
            assert_eq!(a.reached, c.reached);
            a.validate(&g, src).unwrap();
            b.validate(&g, src).unwrap();
            c.validate(&g, src).unwrap();
        }
    }

    #[test]
    fn compressed_adjacency_is_bit_identical() {
        let g = rmat_graph(9);
        let c = CompressedCsr::from_csr(&g);
        for &src in &[0u32, 7, 100] {
            let plain = bfs_direction_optimizing(&g, src, 15);
            let comp = bfs_direction_optimizing(&c, src, 15);
            assert_eq!(plain.depth, comp.depth, "src={src}");
            assert_eq!(plain.parent, comp.parent, "src={src}");
            assert_eq!(bfs(&g, src).parent, bfs(&c, src).parent);
        }
    }

    #[test]
    fn hybrid_switches_bottom_up_on_star() {
        // Star from center: frontier after level 0 is all leaves.
        let g = CsrBuilder::new(64)
            .edges(gen::star(64))
            .symmetrize(true)
            .reverse(true)
            .build();
        let r = bfs_direction_optimizing(&g, 0, 1);
        assert_eq!(r.reached, 64);
        assert!(r.depth.iter().all(|&d| d <= 1));
        r.validate(&g, 0).unwrap();
    }

    #[test]
    fn validate_catches_corruption() {
        let g = CsrGraph::from_edges_undirected(4, &gen::path(4));
        let mut r = bfs(&g, 0);
        r.depth[3] = 9;
        assert!(r.validate(&g, 0).is_err());
    }

    #[test]
    fn op_budget_yields_covered_frontier() {
        let g = rmat_graph(11);
        let full = bfs(&g, 0);
        assert_eq!(full.completion, Completion::Complete);
        // A tiny op budget trips at the first consult (1024 pops in).
        let b = Budget::ops(1);
        let partial = bfs_budgeted(&g, 0, &b);
        assert_eq!(partial.completion, Completion::OpBudgetExhausted);
        assert!(partial.reached < full.reached, "budget must cut coverage");
        assert!(partial.reached >= 1024, "covered frontier before the stop");
        // The covered portion is still a valid BFS tree.
        partial.validate(&g, 0).unwrap();
        // Determinism: the serial engine stops at the same place.
        let again = bfs_budgeted(&g, 0, &Budget::ops(1));
        assert_eq!(partial.depth, again.depth);
        assert_eq!(partial.reached, again.reached);
    }

    #[test]
    fn parallel_budget_stops_at_level_boundary() {
        let g = rmat_graph(10);
        let b = Budget::ops(1);
        let partial = bfs_parallel_budgeted(&g, 0, &b);
        assert_eq!(partial.completion, Completion::OpBudgetExhausted);
        // Level-synchronous stop: only the source's level is covered.
        assert_eq!(partial.reached, 1);
        partial.validate(&g, 0).unwrap();
    }

    #[test]
    fn single_vertex() {
        let g = CsrGraph::from_edges(1, &[]);
        let r = bfs(&g, 0);
        assert_eq!(r.reached, 1);
        assert_eq!(r.depth, vec![0]);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use ga_graph::gen;

    #[test]
    fn parallel_matches_sequential_depths() {
        let edges = gen::rmat(10, 8 << 10, gen::RmatParams::GRAPH500, 6);
        let g = CsrGraph::from_edges_undirected(1 << 10, &edges);
        for &src in &[0u32, 5, 99] {
            let seq = bfs(&g, src);
            let par = bfs_parallel(&g, src);
            assert_eq!(seq.depth, par.depth, "src {src}");
            assert_eq!(seq.reached, par.reached);
            par.validate(&g, src).unwrap();
        }
    }

    #[test]
    fn parallel_on_disconnected() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (3, 4)]);
        let r = bfs_parallel(&g, 0);
        assert_eq!(r.reached, 2);
        assert_eq!(r.depth[3], UNREACHED);
    }
}
