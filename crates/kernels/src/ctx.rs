//! Kernel execution context: the parallelism knob plus the operation
//! counters every instrumented kernel flushes into.
//!
//! Every hot batch kernel has a `*_with(g, ..., &KernelCtx)` entry point
//! that (a) dispatches between its serial and rayon-parallel engine
//! according to [`Parallelism`], and (b) records the work it did in the
//! context's [`OpCounters`]. The plain entry points (`bfs::bfs`,
//! `pagerank::pagerank`, ...) remain unchanged for callers that don't
//! care.
//!
//! Serial and parallel engines of the same kernel are interchangeable:
//! BFS depths, component labels, and triangle counts are bit-identical,
//! SSSP distances are exact, and PageRank ranks agree to well below 1e-9
//! (the agreement suite in `tests/cross_kernel_agreement.rs` enforces
//! this).

use ga_graph::counters::{OpCounters, OpSnapshot};

// The knob now lives in the storage crate so the snapshot pipeline can
// share it; re-exported here so existing `ga_kernels::Parallelism`
// callers keep compiling unchanged.
pub use ga_graph::par::{Parallelism, AUTO_WORK_CUTOFF};

/// Execution context threaded through instrumented kernel calls.
#[derive(Debug, Default)]
pub struct KernelCtx {
    /// Serial/parallel dispatch policy.
    pub parallelism: Parallelism,
    /// Operation tally the kernels flush into.
    pub counters: OpCounters,
}

impl KernelCtx {
    /// Context with the given policy and fresh counters.
    pub fn new(parallelism: Parallelism) -> Self {
        KernelCtx {
            parallelism,
            counters: OpCounters::new(),
        }
    }

    /// Always-serial context.
    pub fn serial() -> Self {
        Self::new(Parallelism::Serial)
    }

    /// Always-parallel context.
    pub fn parallel() -> Self {
        Self::new(Parallelism::Parallel)
    }

    /// Current counter tally.
    pub fn snapshot(&self) -> OpSnapshot {
        self.counters.snapshot()
    }

    /// Drain the counter tally (copy then reset).
    pub fn take(&self) -> OpSnapshot {
        self.counters.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_are_unconditional() {
        assert!(!Parallelism::Serial.use_parallel(usize::MAX));
        assert!(Parallelism::Parallel.use_parallel(0));
    }

    #[test]
    fn auto_stays_serial_on_tiny_inputs() {
        assert!(!Parallelism::Auto.use_parallel(10));
    }

    #[test]
    fn ctx_counters_drain() {
        let ctx = KernelCtx::serial();
        ctx.counters.flush(1, 2, 3);
        assert_eq!(ctx.take().edges_touched, 3);
        assert!(ctx.snapshot().is_zero());
    }
}
