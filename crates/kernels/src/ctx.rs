//! Kernel execution context: the parallelism knob plus the operation
//! counters every instrumented kernel flushes into.
//!
//! Every hot batch kernel has a `*_with(g, ..., &KernelCtx)` entry point
//! that (a) dispatches between its serial and rayon-parallel engine
//! according to [`Parallelism`], and (b) records the work it did in the
//! context's [`OpCounters`]. The plain entry points (`bfs::bfs`,
//! `pagerank::pagerank`, ...) remain unchanged for callers that don't
//! care.
//!
//! Serial and parallel engines of the same kernel are interchangeable:
//! BFS depths, component labels, and triangle counts are bit-identical,
//! SSSP distances are exact, and PageRank ranks agree to well below 1e-9
//! (the agreement suite in `tests/cross_kernel_agreement.rs` enforces
//! this).

use ga_graph::counters::{OpCounters, OpSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

// The knob now lives in the storage crate so the snapshot pipeline can
// share it; re-exported here so existing `ga_kernels::Parallelism`
// callers keep compiling unchanged.
pub use ga_graph::par::{Parallelism, AUTO_WORK_CUTOFF};

/// How a budgeted kernel run ended.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Completion {
    /// The kernel ran to its natural fixed point / traversal end.
    #[default]
    Complete,
    /// The kernel stopped cooperatively at the context's op budget and
    /// returned a typed partial result.
    OpBudgetExhausted,
    /// The kernel stopped cooperatively at the context's wall-clock
    /// deadline and returned a typed partial result.
    DeadlineExpired,
    /// The result was computed with reduced redundancy or reduced
    /// input: in a sharded deployment, at least one shard was dead or
    /// rebuilding, so rows were served from replicas (exact values,
    /// lost redundancy) or were missing entirely (partial values).
    /// Callers distinguish the two via the fleet's coverage report.
    Degraded,
}

impl Completion {
    /// True for every outcome other than [`Completion::Complete`].
    pub fn is_partial(self) -> bool {
        !matches!(self, Completion::Complete)
    }
}

/// A cooperative time/op budget for batch kernels.
///
/// Budgeted kernels consult [`Budget::check`] at iteration boundaries
/// (per sweep, per level, every ~1k queue pops) with their running op
/// estimate — the same estimate they flush into [`OpCounters`] — and
/// stop early with a typed partial result when either bound is hit.
/// Exhaustions are tallied so the flow layer can count
/// deadline-partial analytics without threading return values through
/// every analytic trait.
///
/// The default budget is unlimited: `check` is a no-op and kernels run
/// exactly as before.
#[derive(Debug, Default)]
pub struct Budget {
    op_limit: Option<u64>,
    deadline: Option<Instant>,
    hits: AtomicU64,
}

impl Clone for Budget {
    fn clone(&self) -> Self {
        Budget {
            op_limit: self.op_limit,
            deadline: self.deadline,
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
        }
    }
}

impl Budget {
    /// No limits (the default): kernels run to completion.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Stop once the kernel's op estimate reaches `limit`.
    pub fn ops(limit: u64) -> Self {
        Budget {
            op_limit: Some(limit),
            ..Budget::default()
        }
    }

    /// Stop once `dur` wall-clock time has elapsed (from now).
    pub fn deadline_in(dur: Duration) -> Self {
        Budget {
            deadline: Some(Instant::now() + dur),
            ..Budget::default()
        }
    }

    /// Both bounds; whichever trips first wins. Deterministic tests
    /// should use the op bound only (wall-clock varies run to run).
    pub fn ops_and_deadline(limit: u64, dur: Duration) -> Self {
        Budget {
            op_limit: Some(limit),
            deadline: Some(Instant::now() + dur),
            hits: AtomicU64::new(0),
        }
    }

    /// Whether any bound is set (kernels skip checks entirely if not).
    pub fn is_limited(&self) -> bool {
        self.op_limit.is_some() || self.deadline.is_some()
    }

    /// Consult the budget with the kernel's running op estimate.
    /// Returns the non-`Complete` variant (and tallies a hit) when a
    /// bound is exhausted. The op bound is checked before the deadline
    /// so op-only budgets are fully deterministic.
    pub fn check(&self, ops_spent: u64) -> Completion {
        if let Some(limit) = self.op_limit {
            if ops_spent >= limit {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Completion::OpBudgetExhausted;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Completion::DeadlineExpired;
            }
        }
        Completion::Complete
    }

    /// Exhaustions recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Drain the exhaustion tally (read then reset).
    pub fn take_hits(&self) -> u64 {
        self.hits.swap(0, Ordering::Relaxed)
    }
}

/// Execution context threaded through instrumented kernel calls.
#[derive(Debug, Default)]
pub struct KernelCtx {
    /// Serial/parallel dispatch policy.
    pub parallelism: Parallelism,
    /// Operation tally the kernels flush into.
    pub counters: OpCounters,
    /// Cooperative cancellation budget; unlimited by default.
    pub budget: Budget,
    /// Observability sink: callers that drain [`OpCounters`] attribute
    /// the drained work to a [`ga_obs::Step`] span here. Disabled (a
    /// no-op) by default.
    pub recorder: ga_obs::Recorder,
}

impl KernelCtx {
    /// Context with the given policy and fresh counters.
    pub fn new(parallelism: Parallelism) -> Self {
        KernelCtx {
            parallelism,
            counters: OpCounters::new(),
            budget: Budget::default(),
            recorder: ga_obs::Recorder::disabled(),
        }
    }

    /// Always-serial context.
    pub fn serial() -> Self {
        Self::new(Parallelism::Serial)
    }

    /// Always-parallel context.
    pub fn parallel() -> Self {
        Self::new(Parallelism::Parallel)
    }

    /// Current counter tally.
    pub fn snapshot(&self) -> OpSnapshot {
        self.counters.snapshot()
    }

    /// Drain the counter tally (copy then reset).
    pub fn take(&self) -> OpSnapshot {
        self.counters.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_are_unconditional() {
        assert!(!Parallelism::Serial.use_parallel(usize::MAX));
        assert!(Parallelism::Parallel.use_parallel(0));
    }

    #[test]
    fn auto_stays_serial_on_tiny_inputs() {
        assert!(!Parallelism::Auto.use_parallel(10));
    }

    #[test]
    fn ctx_counters_drain() {
        let ctx = KernelCtx::serial();
        ctx.counters.flush(1, 2, 3);
        assert_eq!(ctx.take().edges_touched, 3);
        assert!(ctx.snapshot().is_zero());
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert_eq!(b.check(u64::MAX), Completion::Complete);
        assert_eq!(b.hits(), 0);
    }

    #[test]
    fn op_budget_trips_at_limit_and_tallies() {
        let b = Budget::ops(100);
        assert!(b.is_limited());
        assert_eq!(b.check(99), Completion::Complete);
        assert_eq!(b.check(100), Completion::OpBudgetExhausted);
        assert_eq!(b.check(500), Completion::OpBudgetExhausted);
        assert_eq!(b.take_hits(), 2);
        assert_eq!(b.hits(), 0);
    }

    #[test]
    fn expired_deadline_trips() {
        let b = Budget::deadline_in(Duration::from_secs(0));
        assert_eq!(b.check(0), Completion::DeadlineExpired);
        assert!(b.hits() >= 1);
    }

    #[test]
    fn op_bound_wins_over_deadline() {
        // Both exhausted: the deterministic op bound is reported.
        let b = Budget::ops_and_deadline(10, Duration::from_secs(0));
        assert_eq!(b.check(10), Completion::OpBudgetExhausted);
    }
}
