//! PageRank (Fig. 1 row "PR") — the canonical "compute a new property
//! for each vertex" centrality kernel.
//!
//! Three engines:
//! * [`pagerank`] — synchronous pull-based power iteration,
//!   rayon-parallel over vertices, with proper dangling-mass
//!   redistribution so ranks always sum to 1; generic over
//!   [`Adjacency`] so it runs bit-identically on plain or compressed
//!   rows;
//! * [`pagerank_blocked`] — the same power iteration cache-blocked the
//!   GAP way: contributions are hoisted to one division per vertex and
//!   the in-edges are laid out in (destination-block, source-block)
//!   segments so each segment's reads and writes both fit in L2. Ranks
//!   are **bit-identical** to [`pagerank`] at equal iteration counts;
//! * [`pagerank_delta`] — Gauss–Southwell residual pushing, the
//!   asynchronous formulation the streaming variant (`ga-stream`)
//!   shares its update rule with.

use crate::ctx::{Completion, KernelCtx};
use ga_graph::par::par_vertex_map;
use ga_graph::{Adjacency, CsrGraph, VertexId};
use rayon::prelude::*;

/// Pushes between budget consults in the delta engine.
const BUDGET_CHECK_PUSHES: usize = 1024;

/// Destination-block width for [`pagerank_blocked`]: 2^12 f64
/// accumulators = 32 KiB, resident in L1d. Must stay ≤ 2^16 so a
/// block-local destination index fits in a `u16` segment entry.
const DST_BLOCK: usize = 1 << 12;

/// Source-block width: the contribution slice a segment reads stays
/// L2-resident (2^14 f64 = 128 KiB). Must stay ≤ 2^16 so a block-local
/// source index fits in a `u16` segment entry.
const SRC_BLOCK: usize = 1 << 14;

/// Convergence/result record.
#[derive(Clone, Debug)]
pub struct PageRankResult {
    /// Rank per vertex; sums to 1.
    pub rank: Vec<f64>,
    /// Iterations (power method) or pushes (delta) executed.
    pub work: usize,
    /// Final residual (L1 change of last sweep, or max residual).
    pub residual: f64,
    /// Whether the run converged or stopped at the context's budget.
    /// A partial result is the rank vector after the last *completed*
    /// sweep (power method) or push (delta) — always a valid
    /// distribution, just less converged.
    pub completion: Completion,
}

impl PageRankResult {
    /// The `k` top-ranked vertices, descending (ties by id).
    pub fn top_k(&self, k: usize) -> Vec<(VertexId, f64)> {
        let mut v: Vec<(VertexId, f64)> = self
            .rank
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as VertexId, r))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

/// Pull-based power iteration. `g` must carry a reverse index (pull
/// reads in-neighbors); `damping` is typically 0.85.
///
/// Converges when the L1 change of a sweep drops below `tol`, or after
/// `max_iters` sweeps.
pub fn pagerank<G: Adjacency>(g: &G, damping: f64, tol: f64, max_iters: usize) -> PageRankResult {
    pagerank_with(g, damping, tol, max_iters, &KernelCtx::default())
}

/// Instrumented, dispatching pull PageRank (see [`pagerank`]).
///
/// Serial and parallel execution produce **bit-identical** rank vectors:
/// only the embarrassingly parallel per-vertex pull sweep is
/// parallelized, while the dangling-mass and residual reductions — whose
/// floating-point result depends on summation order — are computed
/// serially in both modes.
pub fn pagerank_with<G: Adjacency>(
    g: &G,
    damping: f64,
    tol: f64,
    max_iters: usize,
    ctx: &KernelCtx,
) -> PageRankResult {
    assert!(g.has_reverse(), "pull PageRank needs a reverse index");
    let n = g.num_vertices();
    if n == 0 {
        return PageRankResult {
            rank: vec![],
            work: 0,
            residual: 0.0,
            completion: Completion::Complete,
        };
    }
    let parallel = ctx.parallelism.use_parallel(g.num_edges());
    let (m, nv) = (g.num_edges() as u64, n as u64);
    let inv_n = 1.0 / n as f64;
    let mut rank = vec![inv_n; n];
    let out_deg: Vec<f64> = (0..n as VertexId).map(|v| g.degree(v) as f64).collect();
    let mut iters = 0;
    let mut residual = f64::INFINITY;
    let mut completion = Completion::Complete;
    while iters < max_iters && residual > tol {
        // Budget check at the sweep boundary: stop at the last
        // completed iteration, never mid-sweep.
        completion = ctx.budget.check(iters as u64 * (2 * m + 4 * nv));
        if completion.is_partial() {
            break;
        }
        // Dangling vertices spread their rank uniformly.
        let dangling: f64 = (0..n).filter(|&v| out_deg[v] == 0.0).map(|v| rank[v]).sum();
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        let pull = |v: VertexId| {
            let mut acc = 0.0;
            for u in g.in_neighbors(v) {
                acc += rank[u as usize] / out_deg[u as usize];
            }
            base + damping * acc
        };
        let new_rank: Vec<f64> = if parallel {
            par_vertex_map(n, pull)
        } else {
            (0..n as VertexId).map(pull).collect()
        };
        residual = (0..n).map(|v| (new_rank[v] - rank[v]).abs()).sum();
        rank = new_rank;
        iters += 1;
    }
    flush_power_iteration(g, ctx, iters as u64, m, nv);
    PageRankResult {
        rank,
        work: iters,
        residual,
        completion,
    }
}

/// Counter flush shared by the pull engines. Per sweep: every in-edge
/// pulled once — the in-row adjacency bytes actually streamed (4/entry
/// plain, the encoded length compressed) plus ~12 bytes of rank math —
/// and every vertex read + written (~24 bytes, ~4 ops).
fn flush_power_iteration<G: Adjacency>(g: &G, ctx: &KernelCtx, sweeps: u64, m: u64, nv: u64) {
    let in_adj_bytes: u64 = (0..nv as VertexId).map(|v| g.in_row_bytes(v)).sum();
    ctx.counters.flush(
        sweeps * (2 * m + 4 * nv),
        sweeps * (in_adj_bytes + 12 * m + 24 * nv),
        sweeps * m,
    );
}

/// Cache-blocked pull PageRank (see [`pagerank_blocked_with`]).
pub fn pagerank_blocked(g: &CsrGraph, damping: f64, tol: f64, max_iters: usize) -> PageRankResult {
    pagerank_blocked_with(g, damping, tol, max_iters, &KernelCtx::default())
}

/// Cache-blocked pull power iteration over the row-wise CSR — the GAP
/// PageRank formulation.
///
/// Two changes over [`pagerank_with`], neither of which alters a single
/// bit of the result:
///
/// 1. **Hoisted contributions**: `rank[u] / out_deg[u]` is computed once
///    per vertex per sweep instead of once per edge (same operands →
///    the same IEEE value), halving the random bytes each edge reads
///    (one f64 instead of rank + out-degree).
/// 2. **L2 blocking**: in-edges are laid out once per call into
///    (destination-block × source-block) segments of block-local
///    `(u16, u16)` index pairs — 4 bytes per edge, the same stream
///    width as a plain CSR row. A sweep walks each destination block's
///    segments in ascending source order, so every edge's read lands
///    in an L2-resident contribution slice and its write in an
///    L1-resident accumulator block. Per destination the additions
///    happen in ascending source order — exactly the order
///    [`pagerank_with`] pulls `in_neighbors` — so sums are bit-identical.
///
/// Dangling-mass and residual reductions stay serial and identical, and
/// the sweep-boundary budget formula matches [`pagerank_with`], so at
/// equal iteration counts the two engines return identical results in
/// less wall time here.
pub fn pagerank_blocked_with(
    g: &CsrGraph,
    damping: f64,
    tol: f64,
    max_iters: usize,
    ctx: &KernelCtx,
) -> PageRankResult {
    assert!(g.has_reverse(), "pull PageRank needs a reverse index");
    let n = g.num_vertices();
    if n == 0 {
        return PageRankResult {
            rank: vec![],
            work: 0,
            residual: 0.0,
            completion: Completion::Complete,
        };
    }
    let parallel = ctx.parallelism.use_parallel(g.num_edges());
    let (m, nv) = (g.num_edges() as u64, n as u64);
    let inv_n = 1.0 / n as f64;
    let mut rank = vec![inv_n; n];
    let out_deg: Vec<f64> = (0..n as VertexId).map(|v| g.degree(v) as f64).collect();

    // One-time blocked edge layout. segs[s] of a destination block
    // holds (local dst, local src) pairs whose source falls in source
    // block s; appending in (dst, in-row) order keeps each
    // destination's sources ascending within and across segments.
    // Block-local u16 indices keep the edge stream at 4 B/edge.
    let num_src_blocks = n.div_ceil(SRC_BLOCK).max(1);
    let dst_ranges: Vec<(usize, usize)> = (0..n)
        .step_by(DST_BLOCK)
        .map(|lo| (lo, (lo + DST_BLOCK).min(n)))
        .collect();
    let build = |&(lo, hi): &(usize, usize)| -> Vec<Vec<(u16, u16)>> {
        let mut segs = vec![Vec::new(); num_src_blocks];
        for v in lo..hi {
            let local = (v - lo) as u16;
            for &u in g.in_neighbors(v as VertexId) {
                segs[u as usize / SRC_BLOCK].push((local, (u as usize % SRC_BLOCK) as u16));
            }
        }
        segs
    };
    let blocks: Vec<Vec<Vec<(u16, u16)>>> = if parallel {
        dst_ranges.par_iter().map(build).collect()
    } else {
        dst_ranges.iter().map(build).collect()
    };

    // Two bit-identical inner loops (the summation order is the same
    // either way): on skewed graphs a hub destination's additions form
    // a long store-forwarding chain, so runs of one destination are
    // accumulated in a register; on flat graphs runs are short and the
    // run-end branch mispredicts cost more than the stores save.
    let hub_runs = (0..n as VertexId).map(|v| g.in_degree(v)).max() >= Some(128);

    let mut contrib = vec![0.0f64; n];
    let mut iters = 0;
    let mut residual = f64::INFINITY;
    let mut completion = Completion::Complete;
    while iters < max_iters && residual > tol {
        completion = ctx.budget.check(iters as u64 * (2 * m + 4 * nv));
        if completion.is_partial() {
            break;
        }
        let dangling: f64 = (0..n).filter(|&v| out_deg[v] == 0.0).map(|v| rank[v]).sum();
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        for u in 0..n {
            // Dangling vertices get an infinite quotient here, but they
            // never appear as anyone's in-neighbor, so it is never read.
            contrib[u] = rank[u] / out_deg[u];
        }
        let mut new_rank = vec![0.0f64; n];
        // Recursive join over destination blocks: each level splits the
        // (rank chunk, segments, range) triples in half so disjoint
        // `&mut` rank slices fan out across the pool.
        fn sweep<F>(
            out: &mut [f64],
            blocks: &[Vec<Vec<(u16, u16)>>],
            ranges: &[(usize, usize)],
            parallel: bool,
            f: &F,
        ) where
            F: Fn(&mut [f64], &[Vec<(u16, u16)>], (usize, usize)) + Sync,
        {
            match blocks.len() {
                0 => {}
                1 => f(out, &blocks[0], ranges[0]),
                k => {
                    let mid = k / 2;
                    let (lo_out, hi_out) = out.split_at_mut(ranges[mid].0 - ranges[0].0);
                    let (lb, hb) = blocks.split_at(mid);
                    let (lr, hr) = ranges.split_at(mid);
                    if parallel {
                        rayon::join(
                            || sweep(lo_out, lb, lr, parallel, f),
                            || sweep(hi_out, hb, hr, parallel, f),
                        );
                    } else {
                        sweep(lo_out, lb, lr, parallel, f);
                        sweep(hi_out, hb, hr, parallel, f);
                    }
                }
            }
        }
        let sweep_block = |out: &mut [f64], segs: &[Vec<(u16, u16)>], (lo, hi): (usize, usize)| {
            let mut acc = vec![0.0f64; hi - lo];
            for (s, seg) in segs.iter().enumerate() {
                let window = &contrib[s * SRC_BLOCK..((s + 1) * SRC_BLOCK).min(contrib.len())];
                if hub_runs {
                    // Entries for one destination are consecutive, so
                    // each run accumulates in a register (seeded from
                    // the partial sum so the addition chain — and
                    // therefore every bit — matches the plain pull
                    // order) instead of bouncing through an
                    // accumulator store per edge.
                    let mut i = 0;
                    while i < seg.len() {
                        let local = seg[i].0 as usize;
                        let mut a = acc[local];
                        while i < seg.len() && seg[i].0 as usize == local {
                            a += window[seg[i].1 as usize];
                            i += 1;
                        }
                        acc[local] = a;
                    }
                } else {
                    for &(local, u) in seg {
                        acc[local as usize] += window[u as usize];
                    }
                }
            }
            for (o, a) in out.iter_mut().zip(acc) {
                *o = base + damping * a;
            }
        };
        sweep(&mut new_rank, &blocks, &dst_ranges, parallel, &sweep_block);
        residual = (0..n).map(|v| (new_rank[v] - rank[v]).abs()).sum();
        rank = new_rank;
        iters += 1;
    }
    flush_power_iteration(g, ctx, iters as u64, m, nv);
    PageRankResult {
        rank,
        work: iters,
        residual,
        completion,
    }
}

/// Gauss–Southwell delta PageRank: keep per-vertex residuals, repeatedly
/// push any residual above `tol * (1/n)` to out-neighbors. Works on
/// forward edges only (no reverse index needed). Ranks are normalized to
/// sum to 1 on return.
pub fn pagerank_delta<G: Adjacency>(g: &G, damping: f64, tol: f64) -> PageRankResult {
    pagerank_delta_with(g, damping, tol, &KernelCtx::serial())
}

/// Instrumented [`pagerank_delta`]. The Gauss–Southwell engine is
/// inherently sequential (each push depends on the residuals left by the
/// previous one), so the context's parallelism knob is ignored; its
/// counters still receive the exact push/edge traffic.
pub fn pagerank_delta_with<G: Adjacency>(
    g: &G,
    damping: f64,
    tol: f64,
    ctx: &KernelCtx,
) -> PageRankResult {
    let n = g.num_vertices();
    if n == 0 {
        return PageRankResult {
            rank: vec![],
            work: 0,
            residual: 0.0,
            completion: Completion::Complete,
        };
    }
    let inv_n = 1.0 / n as f64;
    let threshold = tol * inv_n;
    let mut rank = vec![0.0f64; n];
    let mut residual = vec![(1.0 - damping) * inv_n; n];
    // FIFO processing order: breadth-order residual pushing converges in
    // far fewer pushes than LIFO (a stack re-pushes the same hot vertex
    // with ever-smaller residuals before its neighborhood settles).
    let mut queue: std::collections::VecDeque<VertexId> = (0..n as VertexId).collect();
    let mut queued = vec![true; n];
    let mut pushes = 0usize;
    let mut edges_scanned = 0u64;
    let mut adj_bytes = 0u64;
    let mut completion = Completion::Complete;
    // Budget checks are amortized: one consult per ~1k pushes.
    let mut next_check = BUDGET_CHECK_PUSHES;
    while let Some(v) = queue.pop_front() {
        if pushes >= next_check {
            next_check = pushes + BUDGET_CHECK_PUSHES;
            completion = ctx.budget.check(4 * pushes as u64 + 3 * edges_scanned);
            if completion.is_partial() {
                break;
            }
        }
        queued[v as usize] = false;
        let r = residual[v as usize];
        if r < threshold {
            continue;
        }
        residual[v as usize] = 0.0;
        rank[v as usize] += r;
        pushes += 1;
        let deg = g.degree(v);
        if deg == 0 {
            continue; // dangling mass handled by final normalization
        }
        edges_scanned += deg as u64;
        adj_bytes += g.row_bytes(v);
        let share = damping * r / deg as f64;
        for u in g.neighbors(v) {
            residual[u as usize] += share;
            if residual[u as usize] >= threshold && !queued[u as usize] {
                queued[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    let total: f64 = rank.iter().sum();
    if total > 0.0 {
        for r in &mut rank {
            *r /= total;
        }
    }
    let max_res = residual.iter().cloned().fold(0.0, f64::max);
    // Per push: residual/rank updates (~4 ops, 32 bytes); per edge
    // scanned: the adjacency bytes actually streamed plus one residual
    // add + threshold check (~3 ops, 16 bytes of residual traffic).
    ctx.counters.flush(
        4 * pushes as u64 + 3 * edges_scanned,
        32 * pushes as u64 + adj_bytes + 16 * edges_scanned,
        edges_scanned,
    );
    PageRankResult {
        rank,
        work: pushes,
        residual: max_res,
        completion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_graph::{gen, CompressedCsr, CsrBuilder};

    fn with_reverse(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
        CsrBuilder::new(n)
            .edges(edges.iter().copied())
            .dedup(true)
            .drop_self_loops(true)
            .reverse(true)
            .build()
    }

    #[test]
    fn ranks_sum_to_one() {
        let edges = gen::erdos_renyi(100, 400, 3);
        let g = with_reverse(100, &edges);
        let r = pagerank(&g, 0.85, 1e-10, 200);
        let sum: f64 = r.rank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn uniform_on_ring() {
        let g = with_reverse(10, &gen::ring(10));
        let r = pagerank(&g, 0.85, 1e-12, 500);
        for &x in &r.rank {
            assert!((x - 0.1).abs() < 1e-6);
        }
    }

    #[test]
    fn star_center_dominates() {
        // Leaves point at the center.
        let edges: Vec<_> = (1..20u32).map(|v| (v, 0)).collect();
        let g = with_reverse(20, &edges);
        let r = pagerank(&g, 0.85, 1e-10, 200);
        let top = r.top_k(1);
        assert_eq!(top[0].0, 0);
        // With d=0.85 and the center's rank redistributed as dangling
        // mass, the fixed point puts ~0.47 on the center.
        assert!(top[0].1 > 0.4);
    }

    #[test]
    fn dangling_mass_conserved() {
        // 0 -> 1, 1 dangling.
        let g = with_reverse(3, &[(0, 1)]);
        let r = pagerank(&g, 0.85, 1e-12, 500);
        let sum: f64 = r.rank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(r.rank[1] > r.rank[0]);
    }

    #[test]
    fn delta_matches_power_iteration() {
        for seed in 0..3 {
            let edges = gen::erdos_renyi(120, 600, seed);
            let g = with_reverse(120, &edges);
            let a = pagerank(&g, 0.85, 1e-10, 500);
            let b = pagerank_delta(&g, 0.85, 1e-7);
            for v in 0..120 {
                assert!(
                    (a.rank[v] - b.rank[v]).abs() < 1e-4,
                    "seed {seed} v {v}: {} vs {}",
                    a.rank[v],
                    b.rank[v]
                );
            }
        }
    }

    #[test]
    fn blocked_is_bit_identical_to_pull() {
        let edges = gen::rmat(11, 10 << 11, gen::RmatParams::GRAPH500, 9);
        let g = CsrBuilder::new(1 << 11)
            .edges(edges.iter().copied())
            .symmetrize(true)
            .dedup(true)
            .drop_self_loops(true)
            .reverse(true)
            .build();
        // Fixed iteration count (tol 0 so neither engine converges
        // early) — the protocol the bench harness uses.
        for ctx in [KernelCtx::serial(), KernelCtx::parallel()] {
            let plain = pagerank_with(&g, 0.85, 0.0, 20, &ctx);
            let blocked = pagerank_blocked_with(&g, 0.85, 0.0, 20, &ctx);
            assert_eq!(plain.work, blocked.work);
            assert_eq!(plain.rank, blocked.rank, "blocked ranks must be exact");
            assert_eq!(plain.residual, blocked.residual);
        }
        // And under normal convergence, including dangling vertices.
        let dedges = gen::erdos_renyi(300, 900, 5);
        let dg = with_reverse(300, &dedges);
        let a = pagerank_with(&dg, 0.85, 1e-10, 300, &KernelCtx::serial());
        let b = pagerank_blocked_with(&dg, 0.85, 1e-10, 300, &KernelCtx::serial());
        assert_eq!(a.work, b.work);
        assert_eq!(a.rank, b.rank);
    }

    #[test]
    fn compressed_adjacency_is_bit_identical() {
        let edges = gen::rmat(10, 10 << 10, gen::RmatParams::GRAPH500, 4);
        let g = CsrBuilder::new(1 << 10)
            .edges(edges.iter().copied())
            .symmetrize(true)
            .dedup(true)
            .drop_self_loops(true)
            .reverse(true)
            .build();
        let c = CompressedCsr::from_csr(&g);
        let plain = pagerank(&g, 0.85, 1e-10, 100);
        let comp = pagerank(&c, 0.85, 1e-10, 100);
        assert_eq!(plain.work, comp.work);
        assert_eq!(plain.rank, comp.rank);
        // Compressed runs book fewer mem bytes for the same sweeps.
        let (pc, cc) = (KernelCtx::serial(), KernelCtx::serial());
        pagerank_with(&g, 0.85, 1e-10, 100, &pc);
        pagerank_with(&c, 0.85, 1e-10, 100, &cc);
        let (ps, cs) = (pc.snapshot(), cc.snapshot());
        assert_eq!(ps.cpu_ops, cs.cpu_ops);
        assert!(
            cs.mem_bytes < ps.mem_bytes,
            "compressed must book fewer bytes: {} vs {}",
            cs.mem_bytes,
            ps.mem_bytes
        );
    }

    #[test]
    fn top_k_ordering() {
        let r = PageRankResult {
            rank: vec![0.1, 0.4, 0.4, 0.1],
            work: 0,
            residual: 0.0,
            completion: Completion::Complete,
        };
        assert_eq!(r.top_k(3), vec![(1, 0.4), (2, 0.4), (0, 0.1)]);
    }

    #[test]
    fn op_budget_stops_power_iteration_at_completed_sweep() {
        use crate::ctx::Budget;
        let edges = gen::erdos_renyi(200, 1200, 7);
        let g = with_reverse(200, &edges);
        let free = pagerank(&g, 0.85, 1e-12, 200);
        assert_eq!(free.completion, Completion::Complete);
        // Budget allows exactly two sweeps' worth of ops.
        let per_sweep = 2 * g.num_edges() as u64 + 4 * 200;
        let mut ctx = KernelCtx::serial();
        ctx.budget = Budget::ops(2 * per_sweep);
        let partial = pagerank_with(&g, 0.85, 1e-12, 200, &ctx);
        assert_eq!(partial.completion, Completion::OpBudgetExhausted);
        assert_eq!(partial.work, 2, "stops after the last affordable sweep");
        assert!(partial.work < free.work, "budget must cut iterations");
        let sum: f64 = partial.rank.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "partial ranks still a distribution"
        );
        assert!(ctx.budget.hits() >= 1);
        // Counters reflect the sweeps actually executed, not max_iters.
        let snap = ctx.snapshot();
        assert!(snap.cpu_ops > 0 && snap.cpu_ops < 400 * per_sweep);
    }

    #[test]
    fn zero_op_budget_runs_no_sweeps() {
        use crate::ctx::Budget;
        let g = with_reverse(10, &gen::ring(10));
        let mut ctx = KernelCtx::serial();
        ctx.budget = Budget::ops(0);
        let r = pagerank_with(&g, 0.85, 1e-12, 100, &ctx);
        // check() runs before each sweep with ops-spent-so-far = 0,
        // which already meets a zero limit: no sweeps run, uniform rank.
        assert_eq!(r.work, 0);
        assert_eq!(r.completion, Completion::OpBudgetExhausted);
        for &x in &r.rank {
            assert!((x - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_graph() {
        let g = with_reverse(0, &[]);
        let r = pagerank(&g, 0.85, 1e-6, 10);
        assert!(r.rank.is_empty());
        let d = pagerank_delta(&g, 0.85, 1e-6);
        assert!(d.rank.is_empty());
        let b = pagerank_blocked(&g, 0.85, 1e-6, 10);
        assert!(b.rank.is_empty());
    }
}
